//! Integration tests for the §9.2 defences as device features.

use hd_accel::Defence;
use huffduff::prelude::*;
use huffduff_core::eval::score_geometry;
use huffduff_core::prober::{probe, ProberConfig};

fn victim_net() -> (hd_dnn::graph::Network, hd_dnn::graph::Params) {
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, 8, 5, 1);
    let x = b.conv(x, 8, 3, 1);
    let x = b.max_pool(x, 2);
    b.conv(x, 16, 3, 1);
    let net = b.build();
    let mut params = hd_dnn::graph::Params::init(&net, 4);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.75 }))
            .collect(),
    };
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 5);
    (net, params)
}

fn prober_cfg() -> ProberConfig {
    ProberConfig {
        shifts: 12,
        max_probes: 10,
        stable_probes: 3,
        kernels: vec![1, 3, 5],
        strides: vec![1, 2],
        pools: vec![2, 3],
        seed: 31,
        parallelism: None,
    }
}

#[test]
fn undefended_device_leaks_geometry() {
    let (net, params) = victim_net();
    let device = Device::new(net.clone(), params, AccelConfig::eyeriss_v2());
    let res = probe(&device, &prober_cfg()).expect("probe runs");
    let score = score_geometry(&net, &res);
    assert!(score.perfect(), "mismatches: {:?}", score.mismatches);
}

#[test]
fn random_zero_padding_degrades_recovery() {
    let (net, params) = victim_net();
    let defended = Device::new(
        net.clone(),
        params,
        AccelConfig::eyeriss_v2().with_defence(Defence::RandomZeros {
            max_bytes: 128,
            seed: 9,
        }),
    );
    let res = probe(&defended, &prober_cfg()).expect("probe runs");
    let score = score_geometry(&net, &res);
    assert!(
        score.correct < score.total,
        "heavy volume noise should break at least one layer"
    );
}

#[test]
fn defences_change_only_write_volumes() {
    // Defences pad output tensors; weight reads and the layer structure
    // stay identical, so the attacker still sees the same dataflow.
    let (net, params) = victim_net();
    let img = Tensor3::full(3, 16, 16, 0.4);
    let plain = Device::new(net.clone(), params.clone(), AccelConfig::eyeriss_v2());
    let defended = Device::new(
        net,
        params,
        AccelConfig::eyeriss_v2().with_defence(Defence::PadEdges { band: 1 }),
    );
    let a = hd_trace::analyze(&plain.run(&img)).unwrap();
    let b = hd_trace::analyze(&defended.run(&img)).unwrap();
    assert_eq!(a.layers.len(), b.layers.len());
    for (la, lb) in a.layers.iter().zip(&b.layers) {
        assert_eq!(la.weight_bytes, lb.weight_bytes);
        assert_eq!(la.inputs, lb.inputs);
        assert!(lb.output_bytes >= la.output_bytes);
    }
}

#[test]
fn pad_edges_blanks_truncation_inside_the_band() {
    // "Blocking the source" (§9.2): with the protected band covering the
    // kernel reach, shifts whose entire response lives inside the band
    // become volume-indistinguishable — the ABB… prefix reads as AAA.
    // (The discontinuity moves to the band boundary instead, which is why
    // the paper says a real version needs dynamic, probe-aware hardware.)
    let (net, params) = victim_net();
    let volumes = |device: &Device| -> Vec<u64> {
        let probes = huffduff_core::probe::stripe_probes(device.input_shape(), 3, 1, 8);
        probes[0]
            .images
            .iter()
            .map(|img| hd_trace::analyze(&device.run(img)).unwrap().layers[0].output_bytes)
            .collect()
    };
    let plain = Device::new(net.clone(), params.clone(), AccelConfig::eyeriss_v2());
    let defended = Device::new(
        net,
        params,
        AccelConfig::eyeriss_v2().with_defence(Defence::PadEdges { band: 5 }),
    );
    // Kernel 5 => reach 2; shifts 0..3 respond entirely within band 5.
    let v_plain = volumes(&plain);
    let v_def = volumes(&defended);
    assert!(
        v_plain
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len()
            > 1,
        "undefended shifts must be distinguishable: {v_plain:?}"
    );
    assert!(
        v_def.iter().collect::<std::collections::HashSet<_>>().len() == 1,
        "defended in-band shifts must be indistinguishable: {v_def:?}"
    );
}
