//! Golden diagnostics for the static model/config verifier
//! (`hd_dnn::verify`): a set of deliberately malformed graphs — assembled
//! through the unvalidated `Network::from_raw_parts` escape hatch or by
//! tampering with builder output — each produce a pinned set of typed
//! diagnostics. Any drift in what the verifier catches, or in how it
//! phrases a diagnostic, fails tier-1.
//!
//! Regenerate deliberately with `GOLDEN_REGEN=1 cargo test --test
//! golden_lint` and review the fixture diff like source.

use hd_dnn::graph::{ConvSpec, Network, NetworkBuilder, Node, Op, Params, ValueShape};
use hd_dnn::verify::{verify, verify_network, verify_strict, DiagKind, Limits, Severity};
use hd_tensor::conv::Padding;
use hd_tensor::pool::PoolKind;
use hd_tensor::Shape3;
use huffduff::prelude::*;
use std::fmt::Write as _;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_lint.txt"
);

/// A well-formed reference net (the same scenarios are built by breaking it).
fn clean_net() -> Network {
    let mut b = NetworkBuilder::new(3, 8, 8);
    let x = b.input();
    let x = b.conv(x, 4, 3, 1);
    let x = b.max_pool(x, 2);
    let x = b.global_avg_pool(x);
    b.linear(x, 10);
    b.build()
}

/// Scenario 1: a recorded shape that disagrees with what the conv implies.
fn shape_mismatch_net() -> Network {
    let net = clean_net();
    let mut shapes: Vec<ValueShape> = (0..net.len()).map(|i| net.value_shape(i)).collect();
    shapes[1] = ValueShape::Map(Shape3::new(4, 6, 6)); // conv really yields 4x8x8
    Network::from_raw_parts(
        net.nodes().to_vec(),
        net.input_shape(),
        shapes,
        (0..net.len()).map(|i| net.name(i).to_string()).collect(),
    )
}

/// Scenario 2: a conv whose output feeds nothing (dead layer, a warning).
fn dead_layer_net() -> Network {
    let mut b = NetworkBuilder::new(2, 8, 8);
    let x = b.input();
    let _dead = b.conv(x, 4, 3, 1);
    let x2 = b.conv(x, 4, 3, 1);
    b.global_avg_pool(x2);
    b.build()
}

/// Scenario 3: a Valid-padding kernel larger than its input plane.
fn stride_exceeds_input_net() -> Network {
    let shape = Shape3::new(1, 4, 4);
    let mut spec = ConvSpec::standard(2, 5, 1);
    spec.padding = Padding::Valid;
    Network::from_raw_parts(
        vec![
            Node {
                op: Op::Input,
                inputs: vec![],
            },
            Node {
                op: Op::Conv(spec),
                inputs: vec![0],
            },
        ],
        shape,
        vec![
            ValueShape::Map(shape),
            ValueShape::Map(Shape3::new(2, 0, 0)),
        ],
        vec!["input0".into(), "conv1".into()],
    )
}

/// Scenario 4: a second input node plus a forward reference.
fn forward_reference_net() -> Network {
    let shape = Shape3::new(2, 8, 8);
    Network::from_raw_parts(
        vec![
            Node {
                op: Op::Input,
                inputs: vec![],
            },
            Node {
                op: Op::Input,
                inputs: vec![],
            },
            Node {
                op: Op::Conv(ConvSpec::standard(4, 3, 1)),
                inputs: vec![3],
            },
            Node {
                op: Op::Pool {
                    factor: 2,
                    kind: PoolKind::Max,
                },
                inputs: vec![2],
            },
        ],
        shape,
        vec![
            ValueShape::Map(shape),
            ValueShape::Map(shape),
            ValueShape::Map(Shape3::new(4, 8, 8)),
            ValueShape::Map(Shape3::new(4, 4, 4)),
        ],
        vec![
            "input0".into(),
            "input1".into(),
            "conv2".into(),
            "pool3".into(),
        ],
    )
}

/// Renders one scenario's diagnostics as stable text.
fn render(title: &str, diags: &[hd_dnn::verify::Diagnostic]) -> String {
    let mut s = format!("== {title} ==\n");
    if diags.is_empty() {
        s.push_str("(clean)\n");
    }
    for d in diags {
        let _ = writeln!(s, "{d}");
    }
    s
}

/// The full golden text: every scenario, in order.
fn golden_text() -> String {
    let mut s = String::new();
    s.push_str(&render("clean", &verify_network(&clean_net())));
    s.push_str(&render(
        "shape-mismatch",
        &verify_network(&shape_mismatch_net()),
    ));
    s.push_str(&render("dead-layer", &verify_network(&dead_layer_net())));
    s.push_str(&render(
        "stride-exceeds-input",
        &verify_network(&stride_exceeds_input_net()),
    ));
    s.push_str(&render(
        "forward-reference",
        &verify_network(&forward_reference_net()),
    ));
    let net = clean_net();
    let params = Params::init(&net, 3);
    let tiny = Limits {
        weight_glb_bytes: Some(1),
        max_weight_passes: 4,
        ..Limits::default()
    };
    s.push_str(&render("glb-overflow", &verify(&net, Some(&params), &tiny)));
    s
}

#[test]
fn golden_diagnostics_pinned() {
    let got = golden_text();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(FIXTURE, &got).expect("write lint fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden lint fixture missing; run with GOLDEN_REGEN=1 to create it");
    assert_eq!(
        got, want,
        "verifier diagnostics drifted from the golden fixture; if intentional, \
         regenerate with GOLDEN_REGEN=1 and review the diff"
    );
}

#[test]
fn golden_lint_fixture_is_nontrivial() {
    if std::env::var("GOLDEN_REGEN").is_ok() {
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden lint fixture missing; run with GOLDEN_REGEN=1 to create it");
    for needle in [
        "== clean ==\n(clean)",
        "shape-mismatch",
        "dead-layer",
        "stride-exceeds-input",
        "forward-reference",
        "glb-overflow",
        "error[",
        "warning[",
    ] {
        assert!(want.contains(needle), "fixture missing {needle:?}");
    }
}

/// Every malformed scenario is rejected by strict verification with typed
/// (matchable) diagnostics — independent of the fixture text.
#[test]
fn malformed_graphs_rejected_with_typed_diagnostics() {
    let err = verify_strict(&shape_mismatch_net(), None, &Limits::default())
        .expect_err("shape mismatch must fail strict verification");
    assert!(err
        .errors()
        .any(|d| matches!(d.kind, DiagKind::ShapeMismatch { .. })));

    let err = verify_strict(&stride_exceeds_input_net(), None, &Limits::default())
        .expect_err("oversized Valid kernel must fail strict verification");
    assert!(err
        .errors()
        .any(|d| matches!(d.kind, DiagKind::StrideExceedsInput { .. })));

    let err = verify_strict(&forward_reference_net(), None, &Limits::default())
        .expect_err("forward reference must fail strict verification");
    assert!(err
        .errors()
        .any(|d| matches!(d.kind, DiagKind::ForwardReference { input: 3 })));
    assert!(err.errors().any(|d| matches!(d.kind, DiagKind::ExtraInput)));

    // Dead layers are warnings: strict verification still passes.
    let diags = verify_network(&dead_layer_net());
    assert!(diags
        .iter()
        .any(|d| d.severity == Severity::Warning && matches!(d.kind, DiagKind::DeadLayer)));
    assert!(verify_strict(&dead_layer_net(), None, &Limits::default()).is_ok());
}

/// The device constructor and the config builder surface the same
/// verification, so a malformed graph can never reach simulation.
#[test]
fn device_and_builder_reject_malformed_graphs() {
    let net = shape_mismatch_net();
    let params = Params::init(&clean_net(), 3);
    let err = Device::try_new(net.clone(), params.clone(), AccelConfig::eyeriss_v2())
        .map(|_| ())
        .expect_err("try_new must reject a shape-mismatched graph");
    assert!(err
        .errors()
        .any(|d| matches!(d.kind, DiagKind::ShapeMismatch { .. })));

    let err = AccelConfig::builder()
        .build_for(&net, Some(&params))
        .expect_err("build_for must reject a shape-mismatched graph");
    let msg = err.to_string();
    assert!(msg.contains("shape-mismatch"), "unhelpful error: {msg}");
}
