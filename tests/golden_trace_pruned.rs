//! Golden-trace fixtures for the two new victim classes of the pruning
//! matrix: an N:M (2:4) fine-grained victim and a structured
//! channel-removed victim (residual topology, so the fixture also pins
//! the restructure pass's channel unification). Same harness contract as
//! `tests/golden_trace.rs`: the full DRAM trace CSV and encode-timing
//! table are byte-identical across all three conv backends and pinned to
//! checked-in fixtures.
//!
//! Regenerate deliberately with `GOLDEN_REGEN=1 cargo test --test
//! golden_trace_pruned` and review the fixture diff like source.

use hd_tensor::ConvBackend;
use huffduff::prelude::*;
use std::fmt::Write as _;
use std::sync::Mutex;

const NM_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_trace_nm.txt"
);

const STRUCTURED_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_trace_structured.txt"
);

/// Serializes device-running tests (shared contract with the telemetry
/// tests, which flip the global `hd_obs` flag).
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Seed-pinned 2:4 victim: same chain as the unstructured golden victim,
/// pruned with the N:M pass instead of a sparsity profile.
fn nm_victim() -> (hd_dnn::graph::Network, hd_dnn::graph::Params) {
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 12, 12);
    let x = b.input();
    let x = b.conv(x, 6, 5, 1);
    let x = b.max_pool(x, 2);
    let x = b.conv(x, 9, 3, 2);
    let x = b.global_avg_pool(x);
    b.linear(x, 4);
    let net = b.build();
    let mut params = hd_dnn::graph::Params::init(&net, 20230813);
    hd_dnn::prune::nm_prune(&net, &mut params, 2, 4);
    (net, params)
}

/// Seed-pinned structured victim: a residual block (so the channel plan
/// must unify the add's operands) channel-halved and then magnitude
/// pruned inside the surviving channels.
fn structured_victim() -> (hd_dnn::graph::Network, hd_dnn::graph::Params) {
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 12, 12);
    let x = b.input();
    let stem = b.conv(x, 8, 3, 1);
    let y = b.conv(stem, 8, 3, 1);
    let j = b.add(stem, y);
    let x = b.max_pool(j, 2);
    let x = b.global_avg_pool(x);
    b.linear(x, 4);
    let net = b.build();
    let params = hd_dnn::graph::Params::init(&net, 20230814);
    let r = hd_dnn::prune::structured_prune(
        &net,
        &params,
        &hd_dnn::prune::StructuredCfg {
            keep_frac: 0.5,
            min_keep: 2,
        },
    );
    let (net, mut params) = (r.net, r.params);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net.weighted_nodes().iter().map(|&id| (id, 0.5)).collect(),
    };
    hd_dnn::prune::magnitude_prune_profile(&net, &mut params, &profile);
    (net, params)
}

/// Probe images covering both compute regimes (dense + sparse impulse).
fn golden_images() -> Vec<(&'static str, Tensor3)> {
    let mut dense = Tensor3::zeros(3, 12, 12);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
    dense.fill_uniform(&mut rng, 0.05, 1.0);
    let mut impulse = Tensor3::zeros(3, 12, 12);
    impulse.set(0, 0, 3, -1.0);
    impulse.set(1, 6, 6, 1.0);
    vec![("dense", dense), ("impulse", impulse)]
}

/// Full observable behavior of `(net, params)` on one backend: per-image
/// DRAM trace CSV plus the encode-timing table.
fn snapshot(
    victim: &(hd_dnn::graph::Network, hd_dnn::graph::Params),
    backend: ConvBackend,
) -> String {
    let device = Device::new(
        victim.0.clone(),
        victim.1.clone(),
        AccelConfig::eyeriss_v2().with_conv_backend(backend),
    );
    let mut s = String::new();
    for (name, img) in golden_images() {
        writeln!(s, "== trace {name} ==").unwrap();
        let mut csv = Vec::new();
        device.run(&img).to_csv(&mut csv).unwrap();
        s.push_str(&String::from_utf8(csv).unwrap());
        writeln!(s, "== encode timings {name} ==").unwrap();
        writeln!(
            s,
            "node,duration_ps,first_write_offset_ps,bound,glb_ps,dram_ps"
        )
        .unwrap();
        for (id, t) in device.encode_timings(&img) {
            writeln!(
                s,
                "{id},{},{},{:?},{},{}",
                t.duration_ps, t.first_write_offset_ps, t.bound, t.glb_time_ps, t.dram_time_ps
            )
            .unwrap();
        }
    }
    s
}

fn check_fixture(victim: (hd_dnn::graph::Network, hd_dnn::graph::Params), fixture: &str) {
    let direct = snapshot(&victim, ConvBackend::Direct);
    let gemm = snapshot(&victim, ConvBackend::Im2colGemm);
    let sparse = snapshot(&victim, ConvBackend::SparseCsc);
    assert_eq!(
        direct, gemm,
        "conv backends must produce byte-identical traces and timings"
    );
    assert_eq!(
        direct, sparse,
        "the CSC backend must produce byte-identical traces and timings"
    );
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(fixture, &gemm).expect("write fixture");
        eprintln!("regenerated {fixture}");
        return;
    }
    let want = std::fs::read_to_string(fixture)
        .expect("golden fixture missing; run with GOLDEN_REGEN=1 to create it");
    assert_eq!(
        gemm, want,
        "simulator behavior drifted from the golden fixture; if intentional, \
         regenerate with GOLDEN_REGEN=1 and review the diff"
    );
}

#[test]
fn nm_victim_trace_pinned_across_backends() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    check_fixture(nm_victim(), NM_FIXTURE);
}

#[test]
fn structured_victim_trace_pinned_across_backends() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    check_fixture(structured_victim(), STRUCTURED_FIXTURE);
}

#[test]
fn structured_victim_really_shrank() {
    // The structured fixture must be exercising *smaller* shapes, not a
    // no-op plan: both residual convs drop to 4 output channels and the
    // head's input follows.
    let (net, params) = structured_victim();
    assert_eq!(params.conv(1).w.k(), 4);
    assert_eq!(params.conv(2).w.k(), 4);
    assert_eq!(params.linear(6).in_features, 4);
    assert!(
        hd_dnn::verify::verify_strict(&net, Some(&params), &hd_dnn::verify::Limits::default())
            .is_ok()
    );
}

#[test]
fn pruned_fixtures_are_nontrivial() {
    if std::env::var("GOLDEN_REGEN").is_ok() {
        return;
    }
    for fixture in [NM_FIXTURE, STRUCTURED_FIXTURE] {
        let want = std::fs::read_to_string(fixture)
            .expect("golden fixture missing; run with GOLDEN_REGEN=1 to create it");
        assert!(want.lines().count() > 50, "fixture suspiciously small");
        assert!(want.contains("== trace dense =="));
        assert!(want.contains("== trace impulse =="));
        assert!(want.contains("== encode timings dense =="));
    }
}
