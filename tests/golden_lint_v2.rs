//! Golden diagnostics for the hd-lint v2 semantic rule pack: a seeded
//! mini-workspace (in-memory sources, no tempdirs) exercises each of the
//! four concurrency/determinism rules, the suppression path, and the v2
//! summary counters; the full text report and the JSON document are pinned
//! byte-for-byte.
//!
//! Regenerate deliberately with `GOLDEN_REGEN=1 cargo test --test
//! golden_lint_v2` and review the fixture diff like source.

use hd_lint::lint_sources;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_lint_v2.txt"
);

/// The seeded mini-workspace: one file per rule, a transitive-blocking
/// case that needs the call graph, and one suppressed finding.
fn mini_workspace() -> Vec<(String, String)> {
    let files: &[(&str, &str)] = &[
        (
            "crates/core/src/atomics.rs",
            "use std::sync::atomic::{AtomicUsize, Ordering};\n\
             pub fn bump(c: &AtomicUsize) {\n\
            \x20   c.fetch_add(1, Ordering::Relaxed);\n\
             }\n\
             pub fn sanctioned(c: &AtomicUsize) {\n\
            \x20   // hd-lint: allow(atomic-ordering) -- pure event counter, no data published through it\n\
            \x20   c.fetch_add(1, Ordering::Relaxed);\n\
             }\n",
        ),
        (
            "crates/core/src/guards.rs",
            "use std::sync::Mutex;\n\
             pub fn direct(m: &Mutex<u32>, dev: &Dev) {\n\
            \x20   let g = m.lock().unwrap();\n\
            \x20   dev.observe(&[*g]);\n\
             }\n\
             fn leaf(dev: &Dev) {\n\
            \x20   dev.observe(&[]);\n\
             }\n\
             pub fn transitive(m: &Mutex<u32>, dev: &Dev) {\n\
            \x20   let g = m.lock().unwrap();\n\
            \x20   leaf(dev);\n\
            \x20   drop(g);\n\
             }\n",
        ),
        (
            "crates/trace/src/iters.rs",
            "use std::collections::HashMap;\n\
             pub fn dump(m: &HashMap<u32, u32>) {\n\
            \x20   for (k, v) in m.iter() {\n\
            \x20       println!(\"{k} {v}\");\n\
            \x20   }\n\
             }\n",
        ),
        (
            "crates/dnn/src/floats.rs",
            "pub fn total(xs: &[f32]) -> f32 {\n\
            \x20   xs.iter().sum::<f32>()\n\
             }\n",
        ),
    ];
    files
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect()
}

/// The full golden text: the human report (with allows), then the JSON.
fn golden_text() -> String {
    let report = lint_sources(&mini_workspace());
    format!(
        "== text ==\n{}== json ==\n{}",
        report.to_text(true),
        report.to_json()
    )
}

#[test]
fn golden_v2_diagnostics_pinned() {
    let got = golden_text();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(FIXTURE, &got).expect("write v2 lint fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden v2 fixture missing; run with GOLDEN_REGEN=1 to create it");
    assert_eq!(
        got, want,
        "v2 lint diagnostics drifted from the golden fixture; if intentional, \
         regenerate with GOLDEN_REGEN=1 and review the diff"
    );
}

#[test]
fn golden_v2_fixture_is_nontrivial() {
    if std::env::var("GOLDEN_REGEN").is_ok() {
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden v2 fixture missing; run with GOLDEN_REGEN=1 to create it");
    for needle in [
        "[atomic-ordering]",
        "[lock-discipline]",
        "[unordered-iter]",
        "[float-reduction-order]",
        "crates/core/src/guards.rs:4:",  // direct guard-across-observe
        "crates/core/src/guards.rs:11:", // transitive, via the call graph
        "\"schema\": \"hd-lint/v2\"",
        "\"symbols\":",
        "\"call_edges\":",
        "allow(atomic-ordering) -- pure event counter",
    ] {
        assert!(want.contains(needle), "fixture missing {needle:?}");
    }
}

#[test]
fn lint_json_is_byte_stable_across_runs() {
    let a = lint_sources(&mini_workspace()).to_json();
    let b = lint_sources(&mini_workspace()).to_json();
    assert_eq!(a, b, "same tree must produce byte-identical lint.json");
}

#[test]
fn real_workspace_is_clean_under_the_v2_pack() {
    // The self-audit CI runs with `--deny`: the tree that builds this test
    // must be clean under all ten rules, including the semantic pack.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = hd_lint::lint_workspace(root).expect("scan workspace");
    assert!(report.files_scanned > 50, "scan set suspiciously small");
    assert!(report.symbols > 500, "symbol index suspiciously small");
    assert!(report.call_edges > 100, "call graph suspiciously small");
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.to_text(false)
    );
}
