//! Property-based tests on cross-crate invariants.

use hd_tensor::conv::{conv2d, Conv2dCfg, Padding};
use hd_tensor::{CompressionScheme, Tensor3, Tensor4};
use huffduff_core::pattern::Pattern;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Codec sizes are monotone in nnz for fixed tensor length — the
    /// property the whole volume channel relies on.
    #[test]
    fn bitmap_size_monotone_in_nnz(len in 1usize..256, a in 0usize..256, b in 0usize..256) {
        let (a, b) = (a % (len + 1), b % (len + 1));
        let mk = |nnz: usize| {
            let mut v = vec![0.0f32; len];
            for x in v.iter_mut().take(nnz) {
                *x = 1.0;
            }
            CompressionScheme::Bitmap.encoded_size(&v, 8).bytes
        };
        if a <= b {
            prop_assert!(mk(a) <= mk(b));
        } else {
            prop_assert!(mk(a) >= mk(b));
        }
    }

    /// Interior shift equivariance: shifting a feature column that never
    /// touches the kernel's boundary reach permutes the conv output, so
    /// the post-ReLU nnz is invariant (paper §5.2, the prober's bedrock).
    #[test]
    fn interior_shift_preserves_nnz(
        seed in 0u64..1000,
        kernel in prop_oneof![Just(1usize), Just(3usize), Just(5usize)],
        col in 0usize..4,
        amp in -2.0f32..2.0,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut w = Tensor4::zeros(4, 2, kernel, kernel);
        w.init_he(&mut rng);
        let amp = if amp.abs() < 0.1 { 1.0 } else { amp };

        let w_img = 16usize;
        let margin = kernel; // keep both placements clear of both edges
        let c1 = margin + col;
        let c2 = c1 + 1;
        prop_assume!(c2 + margin < w_img);

        let place = |cx: usize| {
            let mut img = Tensor3::zeros(2, 8, w_img);
            for ch in 0..2 {
                for y in 0..8 {
                    img.set(ch, y, cx, amp * (1.0 + ch as f32));
                }
            }
            let mut out = conv2d(&img, &w, Some(&[0.3, -0.2, 0.1, 0.0]), &Conv2dCfg::new(1, Padding::Same));
            out.relu_inplace();
            out.nnz()
        };
        prop_assert_eq!(place(c1), place(c2));
    }

    /// Pattern refinement is a meet: the result is a coarsening of neither
    /// operand's strict refinements, and refining with the truth never
    /// splits classes the truth keeps together.
    #[test]
    fn measurement_is_coarsening_of_truth(
        truth in prop::collection::vec(0u8..4, 4..12),
        merged in prop::collection::vec(any::<bool>(), 4),
    ) {
        let true_pat = Pattern::of(&truth);
        // One-sided errors merge whole classes (an unobservable boundary
        // effect makes two nnz values collide for *every* shift in those
        // classes), never split them: merged classes all read as 255.
        let measured: Vec<u8> = truth
            .iter()
            .map(|&t| if merged[t as usize] { 255 } else { t })
            .collect();
        let meas_pat = Pattern::of(&measured);
        // The measurement accepts the truth...
        prop_assert!(meas_pat.is_coarsening_of(&true_pat));
        // ...and refining the measurement with the truth recovers the truth.
        let refined = meas_pat.refine(&true_pat);
        prop_assert_eq!(&refined, &true_pat);
    }

    /// The parallel probe executor is an implementation detail: on
    /// randomized small victims — including under RandomZeros defence
    /// noise, which exercises the atomic per-run noise generator — serial
    /// (`parallelism = Some(1)`) and parallel (`Some(4)`) probing yield
    /// bit-identical `ProberResult`s.
    #[test]
    fn parallel_probe_identical_to_serial(
        seed in 0u64..200,
        k1 in 4usize..10,
        kernel in prop_oneof![Just(3usize), Just(5usize)],
        pool in any::<bool>(),
        defended in any::<bool>(),
    ) {
        use huffduff_core::prober::{probe, ProberConfig};

        let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let x = b.conv(x, k1, kernel, 1);
        let x = if pool { b.max_pool(x, 2) } else { x };
        b.conv(x, k1 + 2, 3, 1);
        let net = b.build();
        let params = hd_dnn::graph::Params::init(&net, seed);
        let mut accel = hd_accel::AccelConfig::eyeriss_v2();
        if defended {
            accel = accel.with_defence(hd_accel::Defence::RandomZeros {
                max_bytes: 32,
                seed: seed ^ 0xBAD5EED,
            });
        }
        let device = hd_accel::Device::new(net, params, accel);
        let cfg = ProberConfig {
            shifts: 10,
            max_probes: 4,
            stable_probes: 2,
            kernels: vec![1, 3, 5],
            strides: vec![1, 2],
            pools: vec![2, 3],
            seed,
            parallelism: Some(1),
        };
        let serial = probe(&device, &cfg);
        let parallel = probe(&device, &ProberConfig {
            parallelism: Some(4),
            ..cfg
        });
        prop_assert_eq!(serial, parallel);
    }

    /// Trace analysis conserves bytes: the sum of per-layer output bytes
    /// equals total write traffic minus the host-DMA input upload.
    #[test]
    fn trace_analysis_conserves_write_bytes(seed in 0u64..50, k in 2usize..10) {
        let mut b = hd_dnn::graph::NetworkBuilder::new(2, 8, 8);
        let x = b.input();
        let x = b.conv(x, k, 3, 1);
        let x = b.max_pool(x, 2);
        b.conv(x, k, 3, 1);
        let net = b.build();
        let params = hd_dnn::graph::Params::init(&net, seed);
        let device = hd_accel::Device::new(net, params, hd_accel::AccelConfig::eyeriss_v2());
        let trace = device.run(&Tensor3::full(2, 8, 8, 0.5));
        let analysis = hd_trace::analyze(&trace).unwrap();
        let total_writes = trace.total_bytes(hd_accel::AccessKind::Write);
        let layer_sum: u64 = analysis.layers.iter().map(|l| l.output_bytes).sum();
        let input_bytes = analysis.input_tensor().bytes;
        prop_assert_eq!(total_writes, layer_sum + input_bytes);
    }
}
