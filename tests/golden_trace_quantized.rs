//! Golden-trace fixture for the INT8 deployment path: the same seed-pinned
//! pruned victim as `tests/golden_trace.rs`, deployed at
//! [`Precision::Int8`]. Pins the PTQ calibration, the integer conv
//! arithmetic, the deterministic requantize, and the INT8 trace/timing
//! model — any drift in the quantized datapath fails tier-1. The fixture
//! must also be byte-identical across all three conv backends and both
//! SIMD dispatch modes (the INT8 kernels share the no-FMA lane
//! discipline).
//!
//! Regenerate deliberately with `GOLDEN_REGEN=1 cargo test --test
//! golden_trace_quantized` and review the fixture diff like source.

use hd_accel::Precision;
use hd_tensor::ConvBackend;
use huffduff::prelude::*;
use std::fmt::Write as _;
use std::sync::Mutex;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_trace_quantized.txt"
);

/// Serializes device-running tests (shared contract with the telemetry
/// tests, which flip the global `hd_obs` flag).
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// The `tests/golden_trace.rs` victim, verbatim: two convs (stride 1 and
/// 2), pool, head, with a seed-pinned sparsity profile.
fn golden_victim() -> (hd_dnn::graph::Network, hd_dnn::graph::Params) {
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 12, 12);
    let x = b.input();
    let x = b.conv(x, 6, 5, 1);
    let x = b.max_pool(x, 2);
    let x = b.conv(x, 9, 3, 2);
    let x = b.global_avg_pool(x);
    b.linear(x, 4);
    let net = b.build();
    let mut params = hd_dnn::graph::Params::init(&net, 20230813);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.7 }))
            .collect(),
    };
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 0x60_1D);
    (net, params)
}

/// Probe images covering both compute regimes (dense + sparse impulse).
fn golden_images() -> Vec<(&'static str, Tensor3)> {
    let mut dense = Tensor3::zeros(3, 12, 12);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
    dense.fill_uniform(&mut rng, 0.05, 1.0);
    let mut impulse = Tensor3::zeros(3, 12, 12);
    impulse.set(0, 0, 3, -1.0);
    impulse.set(1, 6, 6, 1.0);
    vec![("dense", dense), ("impulse", impulse)]
}

/// Full observable behavior of the INT8 device on one backend: per-image
/// DRAM trace CSV plus the encode-timing table.
fn snapshot(backend: ConvBackend) -> String {
    let (net, params) = golden_victim();
    let device = Device::new(
        net,
        params,
        AccelConfig::eyeriss_v2()
            .with_conv_backend(backend)
            .with_precision(Precision::Int8),
    );
    let mut s = String::new();
    for (name, img) in golden_images() {
        writeln!(s, "== trace {name} ==").unwrap();
        let mut csv = Vec::new();
        device.run(&img).to_csv(&mut csv).unwrap();
        s.push_str(&String::from_utf8(csv).unwrap());
        writeln!(s, "== encode timings {name} ==").unwrap();
        writeln!(
            s,
            "node,duration_ps,first_write_offset_ps,bound,glb_ps,dram_ps"
        )
        .unwrap();
        for (id, t) in device.encode_timings(&img) {
            writeln!(
                s,
                "{id},{},{},{:?},{},{}",
                t.duration_ps, t.first_write_offset_ps, t.bound, t.glb_time_ps, t.dram_time_ps
            )
            .unwrap();
        }
    }
    s
}

#[test]
fn quantized_trace_pinned_across_backends_and_simd_modes() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let direct = snapshot(ConvBackend::Direct);
    let gemm = snapshot(ConvBackend::Im2colGemm);
    let sparse = snapshot(ConvBackend::SparseCsc);
    assert_eq!(
        direct, gemm,
        "INT8 conv backends must produce byte-identical traces and timings"
    );
    assert_eq!(
        direct, sparse,
        "the INT8 CSC path must produce byte-identical traces and timings"
    );
    hd_tensor::simd::set_enabled(false);
    let scalar = snapshot(ConvBackend::Im2colGemm);
    hd_tensor::simd::set_enabled(true);
    assert_eq!(
        gemm, scalar,
        "INT8 SIMD dispatch modes must produce byte-identical traces"
    );
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(FIXTURE, &gemm).expect("write fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing; run with GOLDEN_REGEN=1 to create it");
    assert_eq!(
        gemm, want,
        "INT8 simulator behavior drifted from the golden fixture; if \
         intentional, regenerate with GOLDEN_REGEN=1 and review the diff"
    );
}

#[test]
fn quantized_fixture_is_nontrivial_and_differs_from_f32() {
    if std::env::var("GOLDEN_REGEN").is_ok() {
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing; run with GOLDEN_REGEN=1 to create it");
    assert!(want.lines().count() > 50, "fixture suspiciously small");
    assert!(want.contains("== trace dense =="));
    assert!(want.contains("== trace impulse =="));
    let f32_fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_trace.txt"
    );
    let f32_want = std::fs::read_to_string(f32_fixture).expect("f32 fixture present");
    assert_ne!(
        want, f32_want,
        "the INT8 deployment must actually change the observable trace"
    );
}
