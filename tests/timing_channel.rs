//! Integration tests for the psum-encoding timing channel across the
//! accelerator, trace, and attack crates.

use hd_accel::EncodeBound;
use huffduff::prelude::*;

fn device_with(
    k1: usize,
    k2: usize,
    dram: hd_accel::DramConfig,
) -> (Device, hd_dnn::graph::Network) {
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, k1, 3, 1);
    b.conv(x, k2, 3, 1);
    let net = b.build();
    let params = hd_dnn::graph::Params::init(&net, 2);
    let cfg = AccelConfig::eyeriss_v2().with_dram(dram);
    (Device::new(net.clone(), params, cfg), net)
}

#[test]
fn encode_windows_scale_with_channel_count_across_dram_parts() {
    for dram in hd_accel::DramConfig::paper_sweep() {
        let (device, _) = device_with(8, 24, dram);
        let img = Tensor3::full(3, 16, 16, 0.4);
        let analysis = hd_trace::analyze(&device.run(&img)).unwrap();
        let w1 = analysis.layers[0].encode_window_ps as f64;
        let w2 = analysis.layers[1].encode_window_ps as f64;
        let ratio = w2 / w1;
        assert!(
            (ratio - 3.0).abs() < 0.2,
            "{dram}: window ratio {ratio} should be ~3 (24/8 channels)"
        );
    }
}

#[test]
fn stock_eyeriss_is_glb_bound_on_every_layer() {
    let (device, _) = device_with(
        16,
        32,
        hd_accel::DramConfig::new(hd_accel::DramKind::Lpddr3, 1),
    );
    let img = Tensor3::full(3, 16, 16, 0.4);
    for (id, timing) in device.encode_timings(&img) {
        assert_eq!(
            timing.bound,
            EncodeBound::GlbBound,
            "node {id} is DRAM-bound at stock config"
        );
    }
}

#[test]
fn windows_are_input_independent() {
    // Dense psum size is P*Q*K regardless of data — the timing channel
    // works with any input (paper §7).
    let (device, _) = device_with(
        8,
        16,
        hd_accel::DramConfig::new(hd_accel::DramKind::Lpddr4, 1),
    );
    let a = hd_trace::analyze(&device.run(&Tensor3::full(3, 16, 16, 0.9))).unwrap();
    let mut img = Tensor3::zeros(3, 16, 16);
    img.set(0, 3, 3, 1.0);
    let b = hd_trace::analyze(&device.run(&img)).unwrap();
    for (la, lb) in a.layers.iter().zip(&b.layers) {
        // GLB-bound: same dense psum volume => same duration. The first
        // write offset shifts slightly with the compressed size, so allow
        // a small tolerance on the observable window.
        let wa = la.encode_window_ps as f64;
        let wb = lb.encode_window_ps as f64;
        assert!(
            (wa - wb).abs() / wa.max(1.0) < 0.05,
            "layer {}: {wa} vs {wb}",
            la.index
        );
    }
}

#[test]
fn glb_scaling_flips_bound_at_predicted_multiplier() {
    let (device, net) = device_with(
        8,
        16,
        hd_accel::DramConfig::new(hd_accel::DramKind::Lpddr4x, 2),
    );
    let img = Tensor3::full(3, 16, 16, 0.4);
    let timings = device.encode_timings(&img);
    let min_mult = timings
        .iter()
        .map(|(_, t)| t.flip_multiplier())
        .fold(f64::INFINITY, f64::min);
    assert!(min_mult.is_finite() && min_mult > 1.0);

    // Rebuild the device with GLB bandwidth above the flip point.
    let params = hd_dnn::graph::Params::init(&net, 2);
    let cfg = AccelConfig::eyeriss_v2()
        .with_dram(hd_accel::DramConfig::new(hd_accel::DramKind::Lpddr4x, 2))
        .with_glb_scale(min_mult * 1.05);
    let fast_glb = Device::new(net, params, cfg);
    let flipped = fast_glb
        .encode_timings(&img)
        .iter()
        .any(|(_, t)| t.bound == EncodeBound::DramBound);
    assert!(
        flipped,
        "scaling past the multiplier must create a DRAM-bound layer"
    );
}
