//! End-to-end backend invariance: the full HuffDuff attack must recover
//! exactly the same geometry, channel ratios, and candidate space whether
//! the victim simulator convolves via the direct kernel, the im2col+GEMM
//! backend, or the cached-CSC sparse forward path, and whether probes run
//! serially or in parallel. The attack
//! reads only DRAM traces and encode timings, both of which are functions
//! of the (bit-identical) layer outputs.

use hd_tensor::ConvBackend;
use huffduff::prelude::*;
use huffduff_core::{AttackConfig, AttackOutcome};

fn victim() -> (hd_dnn::graph::Network, hd_dnn::graph::Params) {
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, 8, 5, 1);
    let x = b.max_pool(x, 2);
    let x = b.conv(x, 16, 3, 1);
    let x = b.global_avg_pool(x);
    b.linear(x, 10);
    let net = b.build();
    let mut params = hd_dnn::graph::Params::init(&net, 7);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.7 }))
            .collect(),
    };
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 7 ^ 0xF00D);
    (net, params)
}

/// A channel-removed victim: the same topology run through the structured
/// pruning pass (5 of 8 stem channels and 11 of 16 second-layer channels
/// survive), then magnitude pruned inside the kept channels. The attack
/// must recover the *pruned* widths, identically on every backend.
fn structured_victim() -> (hd_dnn::graph::Network, hd_dnn::graph::Params) {
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, 8, 5, 1);
    let x = b.max_pool(x, 2);
    let x = b.conv(x, 16, 3, 1);
    let x = b.global_avg_pool(x);
    b.linear(x, 10);
    let net = b.build();
    let params = hd_dnn::graph::Params::init(&net, 7);
    let r = hd_dnn::prune::structured_prune(
        &net,
        &params,
        &hd_dnn::prune::StructuredCfg {
            keep_frac: 0.65,
            min_keep: 2,
        },
    );
    let (net, mut params) = (r.net, r.params);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.4 } else { 0.6 }))
            .collect(),
    };
    hd_dnn::prune::magnitude_prune_profile(&net, &mut params, &profile);
    (net, params)
}

fn attack(backend: ConvBackend, parallelism: Option<usize>) -> AttackOutcome {
    let (net, params) = victim();
    let device = Device::new(
        net,
        params,
        AccelConfig::eyeriss_v2().with_conv_backend(backend),
    );
    let cfg = AttackConfig {
        prober: huffduff_core::prober::ProberConfig {
            shifts: 12,
            max_probes: 8,
            stable_probes: 2,
            ..Default::default()
        }
        .with_parallelism(parallelism),
        classes: 10,
        max_k: 256,
        ..Default::default()
    };
    huffduff_core::run(&device, &cfg).expect("attack succeeds")
}

#[test]
fn attack_outcome_is_backend_and_parallelism_invariant() {
    let baseline = attack(ConvBackend::Direct, Some(1));
    for (backend, par) in [
        (ConvBackend::Im2colGemm, Some(1)),
        (ConvBackend::Direct, Some(4)),
        (ConvBackend::Im2colGemm, Some(4)),
        (ConvBackend::Im2colGemm, None),
        (ConvBackend::SparseCsc, Some(1)),
        (ConvBackend::SparseCsc, Some(4)),
    ] {
        let got = attack(backend, par);
        assert_eq!(
            baseline.prober, got.prober,
            "prober result diverged for {backend} with parallelism {par:?}"
        );
        assert_eq!(
            baseline.ratios, got.ratios,
            "channel ratios diverged for {backend} with parallelism {par:?}"
        );
        assert_eq!(
            baseline.space.as_ref().map(|s| &s.k1_candidates),
            got.space.as_ref().map(|s| &s.k1_candidates),
            "candidate space diverged for {backend} with parallelism {par:?}"
        );
        assert_eq!(
            baseline.report(),
            got.report(),
            "full report diverged for {backend} with parallelism {par:?}"
        );
    }
    // The recovered space must still contain the true first-layer width.
    assert!(baseline.space.as_ref().unwrap().k1_candidates.contains(&8));
}

fn structured_attack(backend: ConvBackend, parallelism: Option<usize>) -> AttackOutcome {
    let (net, params) = structured_victim();
    let device = Device::new(
        net,
        params,
        AccelConfig::eyeriss_v2().with_conv_backend(backend),
    );
    let cfg = AttackConfig {
        prober: huffduff_core::prober::ProberConfig {
            shifts: 12,
            max_probes: 8,
            stable_probes: 2,
            ..Default::default()
        }
        .with_parallelism(parallelism),
        classes: 10,
        max_k: 256,
        ..Default::default()
    };
    huffduff_core::run(&device, &cfg).expect("attack succeeds")
}

#[test]
fn structured_victim_attack_is_backend_and_parallelism_invariant() {
    let (net, params) = structured_victim();
    let stem_channels = params.conv(net.conv_nodes()[0]).w.k();
    assert!(stem_channels < 8, "structured victim did not shrink");

    let baseline = structured_attack(ConvBackend::Direct, Some(1));
    for (backend, par) in [
        (ConvBackend::Im2colGemm, Some(1)),
        (ConvBackend::SparseCsc, Some(1)),
        (ConvBackend::Im2colGemm, Some(4)),
        (ConvBackend::SparseCsc, Some(4)),
    ] {
        let got = structured_attack(backend, par);
        assert_eq!(
            baseline.prober, got.prober,
            "prober result diverged for {backend} with parallelism {par:?}"
        );
        assert_eq!(
            baseline.ratios, got.ratios,
            "channel ratios diverged for {backend} with parallelism {par:?}"
        );
        assert_eq!(
            baseline.space.as_ref().map(|s| &s.k1_candidates),
            got.space.as_ref().map(|s| &s.k1_candidates),
            "candidate space diverged for {backend} with parallelism {par:?}"
        );
        assert_eq!(
            baseline.report(),
            got.report(),
            "full report diverged for {backend} with parallelism {par:?}"
        );
    }
    // The attack tracks the *pruned* channel count, not the textbook 8.
    assert!(
        baseline
            .space
            .as_ref()
            .unwrap()
            .k1_candidates
            .contains(&stem_channels),
        "candidates {:?} miss the pruned stem width {stem_channels}",
        baseline.space.as_ref().unwrap().k1_candidates
    );
}
