//! Golden-trace fixture tests: the full DRAM `TraceEvent` stream and the
//! per-layer encode-timing summary of a tiny seed-pinned victim are pinned
//! to a checked-in fixture. Any simulator behavior drift — compression
//! sizing, phase timing, address allocation, or a convolution backend that
//! perturbs a single output bit — fails tier-1.
//!
//! Regenerate deliberately with `GOLDEN_REGEN=1 cargo test --test
//! golden_trace` and review the fixture diff like source.

use hd_tensor::ConvBackend;
use huffduff::prelude::*;
use std::fmt::Write as _;
use std::sync::Mutex;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_trace.txt"
);

const OBS_FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_obs.txt");

/// Serializes tests that run the device: the telemetry test flips the global
/// `hd_obs` enable flag, and a concurrent `device.run` from another test
/// would pollute its counters.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Seed-pinned pruned victim: two convs (stride 1 and 2), pool, head.
fn golden_victim() -> (hd_dnn::graph::Network, hd_dnn::graph::Params) {
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 12, 12);
    let x = b.input();
    let x = b.conv(x, 6, 5, 1);
    let x = b.max_pool(x, 2);
    let x = b.conv(x, 9, 3, 2);
    let x = b.global_avg_pool(x);
    b.linear(x, 4);
    let net = b.build();
    let mut params = hd_dnn::graph::Params::init(&net, 20230813);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.7 }))
            .collect(),
    };
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 0x60_1D);
    (net, params)
}

/// Probe images covering both compute regimes: a dense image (dense conv
/// backends run) and a sparse impulse (the shared CSC path runs).
fn golden_images() -> Vec<(&'static str, Tensor3)> {
    let mut dense = Tensor3::zeros(3, 12, 12);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
    dense.fill_uniform(&mut rng, 0.05, 1.0);
    let mut impulse = Tensor3::zeros(3, 12, 12);
    impulse.set(0, 0, 3, -1.0);
    impulse.set(1, 6, 6, 1.0);
    vec![("dense", dense), ("impulse", impulse)]
}

/// Renders the full observable behavior of the device on the golden victim:
/// per-image DRAM trace CSV plus the encode-timing table.
fn snapshot(backend: ConvBackend) -> String {
    let (net, params) = golden_victim();
    let device = Device::new(
        net,
        params,
        AccelConfig::eyeriss_v2().with_conv_backend(backend),
    );
    let mut s = String::new();
    for (name, img) in golden_images() {
        writeln!(s, "== trace {name} ==").unwrap();
        let mut csv = Vec::new();
        device.run(&img).to_csv(&mut csv).unwrap();
        s.push_str(&String::from_utf8(csv).unwrap());
        writeln!(s, "== encode timings {name} ==").unwrap();
        writeln!(
            s,
            "node,duration_ps,first_write_offset_ps,bound,glb_ps,dram_ps"
        )
        .unwrap();
        for (id, t) in device.encode_timings(&img) {
            writeln!(
                s,
                "{id},{},{},{:?},{},{}",
                t.duration_ps, t.first_write_offset_ps, t.bound, t.glb_time_ps, t.dram_time_ps
            )
            .unwrap();
        }
    }
    s
}

/// Renders the deterministic slice of a telemetry snapshot: counter values,
/// histogram counts (plus min/max for the deterministic picosecond-domain
/// encode histogram), and span counts per `(name, label)`. Wall-clock
/// durations and f64 sums are deliberately excluded.
fn telemetry_snapshot_text(snap: &hd_obs::Snapshot) -> String {
    let mut s = String::from("== counters ==\nname,label,value\n");
    for c in &snap.counters {
        writeln!(s, "{},{},{}", c.name, c.label, c.value).unwrap();
    }
    s.push_str("== histograms ==\nname,label,count,min,max\n");
    for h in &snap.hists {
        // Only `device.encode.duration_ps` samples simulated time
        // (deterministic); anything else samples wall-clock.
        if h.name == "device.encode.duration_ps" {
            writeln!(s, "{},{},{},{},{}", h.name, h.label, h.count, h.min, h.max).unwrap();
        } else {
            writeln!(s, "{},{},{},-,-", h.name, h.label, h.count).unwrap();
        }
    }
    s.push_str("== spans ==\nname,label,count\n");
    let mut span_counts = std::collections::BTreeMap::new();
    for sp in &snap.spans {
        *span_counts
            .entry((sp.name.clone(), sp.label.clone()))
            .or_insert(0u64) += 1;
    }
    for ((name, label), count) in span_counts {
        writeln!(s, "{name},{label},{count}").unwrap();
    }
    s
}

#[test]
fn golden_telemetry_counters_pinned() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    hd_obs::reset();
    hd_obs::set_enabled(true);
    let (net, params) = golden_victim();
    let device = Device::new(
        net,
        params,
        AccelConfig::eyeriss_v2().with_conv_backend(ConvBackend::Im2colGemm),
    );
    for (_, img) in golden_images() {
        device.run(&img);
    }
    hd_obs::set_enabled(false);
    let snap = hd_obs::snapshot();
    hd_obs::reset();
    let got = telemetry_snapshot_text(&snap);

    // Structural floor, independent of the fixture: every telemetry family
    // the device emits must be present.
    assert!(snap.counter_total("dram.read.bytes") > 0);
    assert!(snap.counter_total("dram.write.bytes") > 0);
    assert!(snap.counter_total("device.compute.cycles") > 0);
    assert_eq!(snap.span_count("device.run"), 2);
    assert!(snap.span_count("device.layer") > 0);

    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(OBS_FIXTURE, &got).expect("write telemetry fixture");
        eprintln!("regenerated {OBS_FIXTURE}");
        return;
    }
    let want = std::fs::read_to_string(OBS_FIXTURE)
        .expect("telemetry fixture missing; run with GOLDEN_REGEN=1 to create it");
    assert_eq!(
        got, want,
        "device telemetry drifted from the golden fixture; if intentional, \
         regenerate with GOLDEN_REGEN=1 and review the diff"
    );
}

#[test]
fn golden_fixture_reproduced_by_all_backends() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let direct = snapshot(ConvBackend::Direct);
    let gemm = snapshot(ConvBackend::Im2colGemm);
    let sparse = snapshot(ConvBackend::SparseCsc);
    assert_eq!(
        direct, gemm,
        "conv backends must produce byte-identical traces and timings"
    );
    assert_eq!(
        direct, sparse,
        "the CSC backend must produce byte-identical traces and timings"
    );
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(FIXTURE, &gemm).expect("write fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing; run with GOLDEN_REGEN=1 to create it");
    assert_eq!(
        gemm, want,
        "simulator behavior drifted from the golden fixture; if intentional, \
         regenerate with GOLDEN_REGEN=1 and review the diff"
    );
}

#[test]
fn golden_fixture_is_nontrivial() {
    // Guard against an accidentally-truncated fixture passing vacuously.
    // Under GOLDEN_REGEN the fixture may not exist yet (tests run in
    // parallel with the regenerating test), so skip the check.
    if std::env::var("GOLDEN_REGEN").is_ok() {
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing; run with GOLDEN_REGEN=1 to create it");
    assert!(want.lines().count() > 50, "fixture suspiciously small");
    assert!(want.contains("== trace dense =="));
    assert!(want.contains("== trace impulse =="));
    assert!(want.contains("== encode timings dense =="));
}
