//! Cross-crate integration tests: the full attack pipeline against small
//! victims, exercising every crate boundary.

use huffduff::prelude::*;
use huffduff_core::eval::score_geometry;
use huffduff_core::prober::LayerKind;

fn pruned_params(
    net: &hd_dnn::graph::Network,
    seed: u64,
    first: f64,
    interior: f64,
) -> hd_dnn::graph::Params {
    let mut params = hd_dnn::graph::Params::init(net, seed);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { first } else { interior }))
            .collect(),
    };
    hd_dnn::prune::apply_sparsity_profile(net, &mut params, &profile, seed ^ 0xF00D);
    params
}

#[test]
fn attack_recovers_plain_cnn_end_to_end() {
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, 8, 5, 1);
    let x = b.max_pool(x, 2);
    let x = b.conv(x, 16, 3, 1);
    let x = b.global_avg_pool(x);
    b.linear(x, 10);
    let net = b.build();
    let params = pruned_params(&net, 7, 0.45, 0.7);
    let device = Device::new(net.clone(), params, AccelConfig::eyeriss_v2());

    let cfg = huffduff_core::AttackConfig {
        prober: huffduff_core::ProberConfig {
            shifts: 12,
            max_probes: 8,
            stable_probes: 2,
            ..Default::default()
        },
        classes: 10,
        max_k: 256,
        ..Default::default()
    };
    let outcome = huffduff_core::run(&device, &cfg).expect("attack completes");

    // Geometry is exact.
    let score = score_geometry(&net, &outcome.prober);
    assert!(score.perfect(), "mismatches: {:?}", score.mismatches);

    // The true first-layer channel count is inside the finalized range.
    let space = outcome.space.as_ref().expect("full channel finalizes");
    assert!(
        space.k1_candidates.contains(&8),
        "k1 range {:?}",
        space.k1_candidates
    );

    // Timing channel sees the 16/8 ratio.
    let r = outcome
        .ratios
        .as_ref()
        .expect("full channel has timing")
        .ratios[1]
        .1;
    assert!((r - 2.0).abs() < 0.3, "ratio {r}");

    // Every candidate rebuilds into a runnable network with 10 logits.
    for arch in space.sample(3, 1) {
        let cand = space.build_network(&arch);
        let p = hd_dnn::graph::Params::init(&cand, 5);
        let out = cand.forward(&p, &Tensor3::full(3, 16, 16, 0.4));
        assert_eq!(out.logits().len(), 10);
    }
}

#[test]
fn attack_recovers_residual_victim() {
    // A two-block residual victim with a stride-2 projection — the
    // dataflow-graph recovery and the join-consistency repair both fire.
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let stem = b.conv(x, 8, 3, 1);
    let y = b.conv(stem, 8, 3, 1);
    let j1 = b.add(stem, y);
    let y2 = b.conv(j1, 8, 3, 1);
    let j2 = b.add(j1, y2);
    let x = b.global_avg_pool(j2);
    b.linear(x, 10);
    let net = b.build();
    let params = pruned_params(&net, 9, 0.45, 0.7);
    let device = Device::new(net.clone(), params, AccelConfig::eyeriss_v2());

    let cfg = huffduff_core::ProberConfig {
        shifts: 12,
        max_probes: 8,
        stable_probes: 2,
        ..Default::default()
    };
    let res = huffduff_core::run_prober(&device, &cfg).expect("prober runs");

    // Both adds recovered with two-input dataflow.
    let adds: Vec<_> = res
        .layers
        .iter()
        .filter(|l| matches!(l.kind, LayerKind::Add))
        .collect();
    assert_eq!(adds.len(), 2);
    for add in adds {
        assert_eq!(add.inputs.len(), 2);
    }
    let score = score_geometry(&net, &res);
    assert!(
        score.correct >= score.total - 1,
        "too many mismatches: {:?}",
        score.mismatches
    );
}

#[test]
fn information_boundary_attack_uses_only_the_trace() {
    // The attack consumes a Device only through the ObservationModel
    // trait; a trait object proves no oracle access sneaks in.
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 12, 12);
    let x = b.input();
    b.conv(x, 6, 3, 1);
    let net = b.build();
    let params = pruned_params(&net, 3, 0.45, 0.7);
    let device = Device::new(net, params, AccelConfig::eyeriss_v2());
    let target: &dyn huffduff_core::ObservationModel = &device;

    let cfg = huffduff_core::ProberConfig {
        shifts: 10,
        max_probes: 6,
        stable_probes: 2,
        ..Default::default()
    };
    let res = huffduff_core::run_prober(target, &cfg).expect("prober runs");
    assert_eq!(res.layers.len(), 1);
    assert_eq!(
        res.layers[0].kind,
        LayerKind::Conv {
            kernel: 3,
            stride: 1
        }
    );
}

#[test]
fn dense_device_defeats_sparse_attack_premise() {
    // On a dense (non-compressing) device, output volumes never vary with
    // probe content — the boundary-effect channel is closed (and
    // ReverseCNN-style equation solving is the right tool instead).
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 12, 12);
    let x = b.input();
    b.conv(x, 6, 5, 1);
    let net = b.build();
    let params = hd_dnn::graph::Params::init(&net, 3);
    let cfg = AccelConfig::eyeriss_v2().with_schemes(
        hd_tensor::CompressionScheme::Dense,
        hd_tensor::CompressionScheme::Dense,
    );
    let device = Device::new(net, params, cfg);

    let probes = huffduff_core::probe::stripe_probes(device.input_shape(), 8, 2, 5);
    let mut volumes = std::collections::HashSet::new();
    for fam in &probes {
        for img in &fam.images {
            let analysis = hd_trace::analyze(&device.run(img)).unwrap();
            volumes.insert(analysis.layers[0].output_bytes);
        }
    }
    assert_eq!(volumes.len(), 1, "dense transfers must not leak nnz");
}

#[test]
fn trace_volumes_are_lower_bounds_of_tensor_sizes() {
    // Eq. 8-10: every observed transfer is at most the dense tensor size.
    let net = hd_dnn::zoo::vgg_s_scaled(10, 0.125);
    let params = pruned_params(&net, 11, 0.45, 0.85);
    let device = Device::new(net.clone(), params.clone(), AccelConfig::eyeriss_v2());
    let img = Tensor3::full(3, 32, 32, 0.5);
    let analysis = hd_trace::analyze(&device.run(&img)).unwrap();
    let fwd = net.forward(&params, &img);

    // Map observed layers back to nodes (skipping Input and Flatten).
    let mut node_of_layer = Vec::new();
    for (id, node) in net.nodes().iter().enumerate() {
        if !matches!(
            node.op,
            hd_dnn::graph::Op::Input | hd_dnn::graph::Op::Flatten
        ) {
            node_of_layer.push(id);
        }
    }
    assert_eq!(node_of_layer.len(), analysis.layers.len());
    for (layer, &node) in analysis.layers.iter().zip(&node_of_layer) {
        let dense_elems = fwd.value(node).flat().len() as u64;
        // Bitmap coding adds 1 bit/elem; output bytes <= dense bytes + pad.
        assert!(
            layer.output_bytes <= dense_elems + dense_elems / 8 + 16,
            "layer {} output {}B exceeds dense size {}",
            layer.index,
            layer.output_bytes,
            dense_elems
        );
    }
}

#[test]
fn footprints_invariant_under_tiled_execution() {
    // A tiny weight buffer forces multi-pass execution with repeated input
    // reads; the attacker's interval-merged footprints must not change
    // (paper §3.2: addresses may be read "possibly more than once").
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 12, 12);
    let x = b.input();
    let x = b.conv(x, 16, 3, 1);
    b.conv(x, 16, 3, 1);
    let net = b.build();
    let params = hd_dnn::graph::Params::init(&net, 8);
    let img = Tensor3::full(3, 12, 12, 0.5);

    let mut tiny_buf = AccelConfig::eyeriss_v2();
    tiny_buf.weight_glb_bytes = 256; // forces many passes
    let roomy = Device::new(net.clone(), params.clone(), AccelConfig::eyeriss_v2());
    let tiled = Device::new(net, params, tiny_buf);

    let a = hd_trace::analyze(&roomy.run(&img)).unwrap();
    let b = hd_trace::analyze(&tiled.run(&img)).unwrap();
    // More raw read traffic under tiling...
    assert!(
        tiled.run(&img).total_bytes(hd_accel::AccessKind::Read)
            > roomy.run(&img).total_bytes(hd_accel::AccessKind::Read)
    );
    // ...but identical recovered footprints and dataflow.
    assert_eq!(a.layers.len(), b.layers.len());
    for (la, lb) in a.layers.iter().zip(&b.layers) {
        assert_eq!(la.weight_bytes, lb.weight_bytes, "layer {}", la.index);
        assert_eq!(la.input_bytes, lb.input_bytes, "layer {}", la.index);
        assert_eq!(la.output_bytes, lb.output_bytes, "layer {}", la.index);
        assert_eq!(la.inputs, lb.inputs);
    }
}

#[test]
fn candidates_rebuild_residual_victims() {
    // Reconstruction through Add joins: channel harmonization must make
    // both join inputs agree even when timing noise rounds them apart.
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let stem = b.conv(x, 8, 3, 1);
    let y = b.conv(stem, 8, 3, 1);
    let j = b.add(stem, y);
    let x = b.global_avg_pool(j);
    b.linear(x, 10);
    let net = b.build();
    let params = pruned_params(&net, 13, 0.45, 0.7);
    let device = Device::new(net, params, AccelConfig::eyeriss_v2());

    let cfg = huffduff_core::AttackConfig {
        prober: huffduff_core::ProberConfig {
            shifts: 12,
            max_probes: 8,
            stable_probes: 2,
            ..Default::default()
        },
        classes: 10,
        max_k: 256,
        ..Default::default()
    };
    let outcome = huffduff_core::run(&device, &cfg).expect("attack completes");
    let space = outcome.space.as_ref().expect("full channel finalizes");
    for arch in space.sample(3, 2) {
        let cand = space.build_network(&arch);
        // The rebuilt graph contains a residual join and runs end to end.
        let has_add = cand
            .nodes()
            .iter()
            .any(|n| matches!(n.op, hd_dnn::graph::Op::Add { .. }));
        assert!(has_add, "candidate lost the residual join");
        let p = hd_dnn::graph::Params::init(&cand, 3);
        let out = cand.forward(&p, &Tensor3::full(3, 16, 16, 0.4));
        assert_eq!(out.logits().len(), 10);
    }
}

#[test]
fn separate_batch_norm_leaks_exact_channel_counts() {
    // Paper §2 "Broader application": executing BN as a separate pass
    // writes dense psums to DRAM, so the attacker reads P*Q*K exactly and
    // the channel-count uncertainty collapses to nothing.
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, 11, 3, 1);
    b.conv(x, 23, 3, 1);
    let net = b.build();
    let params = pruned_params(&net, 21, 0.45, 0.8);
    let mut cfg = AccelConfig::eyeriss_v2();
    cfg.separate_batch_norm = true;
    let device = Device::new(net, params, cfg);

    // A few probe runs with different inputs (psum sizes must not vary).
    let probes = huffduff_core::probe::stripe_probes(device.input_shape(), 4, 1, 3);
    let analyses: Vec<hd_trace::TraceAnalysis> = probes[0]
        .images
        .iter()
        .map(|img| hd_trace::analyze(&device.run(img)).unwrap())
        .collect();

    // With separate BN, each conv becomes (psum-write layer, bn layer):
    // observed layers: conv1-psum(0), conv1-bn(1), conv2-psum(2), conv2-bn(3).
    let hints = vec![(0usize, Some((16usize, 16usize))), (2, Some((16, 16)))];
    let exact = huffduff_core::reversecnn::exact_channels_from_dense_psums(&analyses, &hints, 8);
    assert_eq!(exact, vec![(0, 11), (2, 23)], "exact K recovery failed");
}
