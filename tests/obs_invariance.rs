//! Telemetry invariance and export integrity.
//!
//! The `hd-obs` contract is that switching telemetry on or off never changes
//! what the attack computes — only whether it is observed. These tests run
//! the full HuffDuff attack with telemetry disabled and enabled and require
//! bit-identical [`AttackOutcome`]s, then exercise the export surface: the
//! stable-schema JSON must round-trip through `hd_obs::json`, and the Chrome
//! trace must carry at least one `device.layer` span per executed layer.

use huffduff::prelude::*;
use huffduff_core::{AttackConfig, AttackOutcome, ProberConfig};
use std::sync::Mutex;

/// All tests here mutate the process-global `hd_obs` registry and enable
/// flag, so they must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn victim() -> (hd_dnn::graph::Network, hd_dnn::graph::Params) {
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, 8, 5, 1);
    let x = b.max_pool(x, 2);
    let x = b.conv(x, 16, 3, 1);
    let x = b.global_avg_pool(x);
    b.linear(x, 10);
    let net = b.build();
    let mut params = hd_dnn::graph::Params::init(&net, 7);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.7 }))
            .collect(),
    };
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 7 ^ 0xF00D);
    (net, params)
}

fn device() -> Device {
    let (net, params) = victim();
    Device::new(net, params, AccelConfig::eyeriss_v2())
}

fn attack_config() -> AttackConfig {
    AttackConfig::builder()
        .prober(
            ProberConfig::builder()
                .shifts(12)
                .max_probes(8)
                .stable_probes(2)
                .parallelism(Some(2))
                .build()
                .expect("valid prober config"),
        )
        .classes(10)
        .max_k(256)
        .build()
        .expect("valid attack config")
}

fn run_attack() -> AttackOutcome {
    huffduff_core::run(&device(), &attack_config()).expect("attack succeeds")
}

#[test]
fn attack_outcome_is_bit_identical_with_telemetry_on_and_off() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    hd_obs::set_enabled(false);
    hd_obs::reset();
    let off = run_attack();

    hd_obs::reset();
    hd_obs::set_enabled(true);
    let on = run_attack();
    hd_obs::set_enabled(false);
    let snap = hd_obs::snapshot();
    hd_obs::reset();

    assert_eq!(off.prober, on.prober, "telemetry changed the prober result");
    assert_eq!(
        off.ratios, on.ratios,
        "telemetry changed the channel ratios"
    );
    assert_eq!(off.space, on.space, "telemetry changed the candidate space");
    assert_eq!(off, on, "telemetry changed the attack outcome");

    // The enabled run must actually have recorded the attack. One attack
    // stage span per pipeline phase, and probes landed on every family.
    assert_eq!(snap.span_count("attack.run"), 1);
    assert_eq!(snap.span_count("attack.stage"), 3);
    assert!(snap.counter("prober.families", "").unwrap_or(0) > 0);
    assert!(snap.counter_total("prober.runs") > 0);
    // Every booked probe run executed exactly once: the sharded counter
    // each pool worker bumps must merge to the prober's own accounting.
    assert_eq!(
        snap.counter("prober.probe_runs", "").unwrap_or(0),
        on.prober.runs_used as u64,
        "executed probe count diverged from runs_used"
    );
    assert!(snap.counter_total("dram.read.bytes") > 0);
}

#[test]
fn attack_outcome_is_invariant_under_telemetry_and_wide_parallelism() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    hd_obs::set_enabled(false);
    hd_obs::reset();
    let baseline = run_attack();

    // -j4 exceeds this host's core count on CI's smallest runners, so the
    // pool oversubscribes; with telemetry on, every worker also bumps its
    // own counter shard. Neither may change the outcome.
    let wide_config = AttackConfig::builder()
        .prober(
            ProberConfig::builder()
                .shifts(12)
                .max_probes(8)
                .stable_probes(2)
                .parallelism(Some(4))
                .build()
                .expect("valid prober config"),
        )
        .classes(10)
        .max_k(256)
        .build()
        .expect("valid attack config");
    hd_obs::reset();
    hd_obs::set_enabled(true);
    let wide = huffduff_core::run(&device(), &wide_config).expect("attack succeeds");
    hd_obs::set_enabled(false);
    let snap = hd_obs::snapshot();
    hd_obs::reset();

    assert_eq!(baseline, wide, "-j4 with telemetry changed the outcome");
    assert_eq!(
        snap.counter("prober.probe_runs", "").unwrap_or(0),
        wide.prober.runs_used as u64
    );
}

#[test]
fn disabled_runs_record_nothing() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    hd_obs::set_enabled(false);
    hd_obs::reset();
    device().run(&Tensor3::zeros(3, 16, 16));
    let snap = hd_obs::snapshot();
    assert!(snap.counters.is_empty(), "disabled run recorded counters");
    assert!(snap.hists.is_empty(), "disabled run recorded histograms");
    assert!(snap.spans.is_empty(), "disabled run recorded spans");
}

/// Runs the golden device once with telemetry on and returns the snapshot.
fn recorded_snapshot() -> hd_obs::Snapshot {
    hd_obs::reset();
    hd_obs::set_enabled(true);
    let dev = device();
    let mut img = Tensor3::zeros(3, 16, 16);
    img.set(0, 3, 3, 1.0);
    img.set(1, 8, 8, -0.5);
    dev.run(&img);
    hd_obs::set_enabled(false);
    let snap = hd_obs::snapshot();
    hd_obs::reset();
    snap
}

#[test]
fn json_export_round_trips_through_the_vendored_parser() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let snap = recorded_snapshot();
    let json = hd_obs::json::Json::parse(&snap.to_json()).expect("export is valid JSON");

    assert_eq!(
        json.get("schema").and_then(|s| s.as_str()),
        Some("hd-obs/v1")
    );
    let counters = json
        .get("counters")
        .and_then(|c| c.as_array())
        .expect("counters array");
    assert_eq!(counters.len(), snap.counters.len());
    for (parsed, orig) in counters.iter().zip(&snap.counters) {
        assert_eq!(
            parsed.get("name").and_then(|v| v.as_str()),
            Some(orig.name.as_str())
        );
        assert_eq!(
            parsed.get("label").and_then(|v| v.as_str()),
            Some(orig.label.as_str())
        );
        assert_eq!(
            parsed.get("value").and_then(|v| v.as_f64()),
            Some(orig.value as f64),
            "counter {}.{} did not round-trip",
            orig.name,
            orig.label
        );
    }
    let hists = json
        .get("histograms")
        .and_then(|h| h.as_array())
        .expect("histograms array");
    assert_eq!(hists.len(), snap.hists.len());
    let spans = json
        .get("spans")
        .and_then(|s| s.as_array())
        .expect("spans array");
    assert!(
        !spans.is_empty(),
        "export must aggregate the recorded spans"
    );
    assert_eq!(
        json.get("spans_dropped").and_then(|v| v.as_f64()),
        Some(0.0)
    );
}

#[test]
fn chrome_trace_has_a_span_per_executed_layer() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let snap = recorded_snapshot();
    let trace = hd_obs::json::Json::parse(&snap.to_chrome_trace()).expect("trace is valid JSON");

    let events = trace
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let layer_labels: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("device.layer"))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("label"))
                .and_then(|l| l.as_str())
                .expect("layer span carries its label")
        })
        .collect();

    // Every layer the device executes (everything except Input and the
    // zero-cost Flatten reshape) must appear as a trace span.
    let (net, _) = victim();
    let executed: Vec<&str> = net
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| !matches!(n.op, hd_dnn::graph::Op::Input | hd_dnn::graph::Op::Flatten))
        .map(|(id, _)| net.name(id))
        .collect();
    assert!(!executed.is_empty());
    for name in executed {
        assert!(
            layer_labels.contains(&name),
            "no device.layer trace event for layer {name:?}"
        );
    }
    for e in events {
        assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(e.get("cat").and_then(|c| c.as_str()), Some("hd-obs"));
    }
}
