//! Channel invariance: the [`FullChannel`] wrapper is bit-identical to
//! probing the raw `Device` — same `AttackOutcome`, byte for byte — across
//! conv backends and prober parallelism, and the restricted channels
//! observe *exact projections* of the full channel's evidence (never
//! independently-measured, possibly-diverging views).
//!
//! The first property is what makes the ObservationModel boundary safe to
//! introduce: every pre-existing result (golden fixtures included) is
//! reproduced through the new API without regeneration. The second is what
//! makes the channel × defence matrix meaningful: a restricted channel's
//! degradation measures lost *information*, not a different simulator.

use hd_tensor::ConvBackend;
use huffduff::prelude::*;
use huffduff_core::{
    AttackConfig, AttackOutcome, ChannelKind, FullChannel, ObservationModel, TimingOnly, TraceOnly,
};
use proptest::prelude::*;

fn victim() -> (hd_dnn::graph::Network, hd_dnn::graph::Params) {
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, 8, 5, 1);
    let x = b.max_pool(x, 2);
    let x = b.conv(x, 16, 3, 1);
    let x = b.global_avg_pool(x);
    b.linear(x, 10);
    let net = b.build();
    let mut params = hd_dnn::graph::Params::init(&net, 7);
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.7 }))
            .collect(),
    };
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 7 ^ 0xF00D);
    (net, params)
}

fn attack_cfg(parallelism: Option<usize>) -> AttackConfig {
    AttackConfig {
        prober: huffduff_core::prober::ProberConfig {
            shifts: 12,
            max_probes: 8,
            stable_probes: 2,
            ..Default::default()
        }
        .with_parallelism(parallelism),
        classes: 10,
        max_k: 256,
        ..Default::default()
    }
}

fn device(backend: ConvBackend) -> Device {
    let (net, params) = victim();
    Device::new(
        net,
        params,
        AccelConfig::eyeriss_v2().with_conv_backend(backend),
    )
}

fn attack(target: &dyn ObservationModel, parallelism: Option<usize>) -> AttackOutcome {
    huffduff_core::run(target, &attack_cfg(parallelism)).expect("attack succeeds")
}

#[test]
fn full_channel_is_bit_identical_to_the_raw_device() {
    for (backend, par) in [
        (ConvBackend::Direct, Some(1)),
        (ConvBackend::Direct, Some(4)),
        (ConvBackend::Im2colGemm, Some(1)),
        (ConvBackend::Im2colGemm, Some(4)),
        (ConvBackend::Im2colGemm, None),
        (ConvBackend::SparseCsc, Some(2)),
    ] {
        let dev = device(backend);
        let raw = attack(&dev, par);
        let wrapped = attack(&FullChannel::new(&dev), par);
        assert_eq!(
            raw, wrapped,
            "FullChannel diverged from the raw device on {backend} with parallelism {par:?}"
        );
        // The boxed runtime-selected form must be the same model too.
        let boxed = ChannelKind::Full.model(&dev);
        assert_eq!(
            raw,
            attack(boxed.as_ref(), par),
            "ChannelKind::Full boxed model diverged on {backend} with parallelism {par:?}"
        );
    }
}

#[test]
fn full_channel_attack_is_backend_invariant() {
    // The attack outcome through the wrapper keeps the invariance the raw
    // device already guarantees (tests/backend_invariance.rs).
    let baseline = attack(&FullChannel::new(&device(ConvBackend::Direct)), Some(1));
    for backend in [ConvBackend::Im2colGemm, ConvBackend::SparseCsc] {
        let got = attack(&FullChannel::new(&device(backend)), Some(1));
        assert_eq!(baseline, got, "FullChannel outcome diverged on {backend}");
    }
    let space = baseline.space.as_ref().expect("full channel finalizes");
    assert!(space.k1_candidates.contains(&8));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The restricted wrappers are *projections*: every field they report
    /// equals the corresponding field of the full channel's observation of
    /// the same image, and every field they hide is uniformly absent —
    /// across randomly drawn victims and probe images.
    #[test]
    fn restricted_channels_observe_exact_projections(
        seed in 0u64..1_000,
        k1 in 2usize..6,
        kernel in prop_oneof![Just(1usize), Just(3usize)],
        fill in 0.1f32..0.9,
    ) {
        let mut b = hd_dnn::graph::NetworkBuilder::new(3, 10, 10);
        let x = b.input();
        let x = b.conv(x, k1, kernel, 1);
        b.conv(x, k1 + 2, 3, 1);
        let net = b.build();
        let params = hd_dnn::graph::Params::init(&net, seed);
        let dev = Device::new(net, params, AccelConfig::eyeriss_v2());
        let image = Tensor3::full(3, 10, 10, fill);

        let full = FullChannel::new(&dev).observe(&image).unwrap();
        let trace = TraceOnly::new(&dev).observe(&image).unwrap();
        let timing = TimingOnly::new(&dev).observe(&image).unwrap();

        // Wrapper output is literally the projection of the full evidence.
        prop_assert_eq!(&trace, &full.project(ChannelKind::Trace));
        prop_assert_eq!(&timing, &full.project(ChannelKind::Timing));

        prop_assert_eq!(trace.layers.len(), full.layers.len());
        prop_assert_eq!(timing.layers.len(), full.layers.len());
        for (i, fl) in full.layers.iter().enumerate() {
            let tr = &trace.layers[i];
            let ti = &timing.layers[i];
            // Trace-only keeps volumes and dataflow, hides time.
            prop_assert_eq!(tr.output_bytes, fl.output_bytes);
            prop_assert_eq!(tr.weight_bytes, fl.weight_bytes);
            prop_assert_eq!(tr.input_bytes, fl.input_bytes);
            prop_assert_eq!(&tr.inputs, &fl.inputs);
            prop_assert_eq!(tr.encode_window_ps, None);
            // Timing-only keeps time, hides volumes.
            prop_assert_eq!(ti.encode_window_ps, fl.encode_window_ps);
            prop_assert_eq!(ti.output_bytes, None);
            prop_assert_eq!(ti.weight_bytes, None);
            prop_assert_eq!(ti.input_bytes, None);
        }
        // Neither restricted channel leaks raw timestamps via structure.
        prop_assert!(timing.structure.is_none());
        if let Some(s) = &trace.structure {
            prop_assert!(s
                .tensors
                .iter()
                .all(|t| t.first_write_ps == 0 && t.last_write_ps == 0));
        }
    }

    /// Projection is idempotent: projecting an already-projected
    /// observation changes nothing.
    #[test]
    fn projection_is_idempotent(seed in 0u64..1_000) {
        let mut b = hd_dnn::graph::NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        b.conv(x, 4, 3, 1);
        let net = b.build();
        let params = hd_dnn::graph::Params::init(&net, seed);
        let dev = Device::new(net, params, AccelConfig::eyeriss_v2());
        let image = Tensor3::full(3, 8, 8, 0.5);
        let full = FullChannel::new(&dev).observe(&image).unwrap();
        for kind in [ChannelKind::Trace, ChannelKind::Timing] {
            let once = full.project(kind);
            prop_assert_eq!(&once.project(kind), &once);
        }
    }
}
