//! Volume-channel defences (paper §9.2).
//!
//! The paper sketches two countermeasure families and argues both are
//! non-trivial; this module implements device-side versions of each so the
//! defence ablation can measure what they buy and what they cost:
//!
//! * [`Defence::PadEdges`] — "blocking the source": activations in the
//!   boundary band of every output map are transferred *uncompressed*, so
//!   edge-truncation can never change the transfer volume (an `ABCC`
//!   pattern reads as `AAAA`). Deterministic, but pays bandwidth on every
//!   inference and must widen with the attacker's probe reach.
//! * [`Defence::RandomZeros`] — "obfuscating the detection": the encoder
//!   randomly keeps up to `max_bytes` of zeros uncompressed per tensor,
//!   adding per-run noise to every volume. Breaks the one-sided-error
//!   property the prober relies on, but the paper notes repeated trials
//!   could average it out.
//!
//! A third, scheduling-level countermeasure targets the *timing* and
//! *GEMM-dimension* channels instead of transfer volumes:
//!
//! * [`Defence::NnRearch`] — NNReArch-style schedule obfuscation (Li et
//!   al.): the compiler pads every tile loop up to a multiple of `tile`,
//!   so the psum-encode drain window and the GEMM block counts only reveal
//!   layer dimensions *rounded up to the tile size*. Transfer volumes are
//!   untouched (padded lanes hold architectural zeros the encoder still
//!   elides), so HuffDuff's volume channel sails straight through — the
//!   channel × defence matrix quantifies exactly that asymmetry.

use hd_tensor::cast;
use std::sync::atomic::{AtomicU64, Ordering};

/// Device-side volume-channel countermeasure.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Defence {
    /// No countermeasure (the paper's threat model).
    #[default]
    None,
    /// Transfer the outer `band` cells of every output map uncompressed.
    PadEdges {
        /// Width of the protected boundary band in cells.
        band: usize,
    },
    /// Keep a per-run random number of zeros (up to `max_bytes`)
    /// uncompressed in every output tensor.
    RandomZeros {
        /// Maximum padding bytes per tensor per run.
        max_bytes: u64,
        /// Seed for the device's internal noise generator.
        seed: u64,
    },
    /// NNReArch-style schedule obfuscation: pad tile loops so timing
    /// windows and GEMM dimensions appear rounded up to `tile` multiples.
    /// Deterministic, volume-neutral, and costs dead compute cycles.
    NnRearch {
        /// Tile multiple every leaked dimension is rounded up to.
        tile: usize,
    },
}

impl Defence {
    /// The tile multiple a dimension is rounded up to under this defence
    /// (1 = no rounding). Guarded against a zero tile so callers can
    /// divide by it unconditionally.
    pub fn schedule_tile(&self) -> usize {
        match self {
            Defence::NnRearch { tile } => (*tile).max(1),
            _ => 1,
        }
    }

    /// Rounds `dim` up to this defence's schedule tile.
    pub fn pad_dim(&self, dim: usize) -> usize {
        let t = self.schedule_tile();
        dim.div_ceil(t) * t
    }
}

/// Stateful noise source for [`Defence::RandomZeros`] (xorshift; the
/// device only needs unpredictability from the attacker's viewpoint).
///
/// The state is an [`AtomicU64`] rather than a `Cell` so the simulator is
/// `Sync` and the prober can fan inferences across threads. Note the
/// generator is only *schedule-independent* when each run gets its own
/// state (see [`NoiseState::for_run`]); sharing one instance across
/// concurrent runs stays data-race-free but interleaves the stream.
#[derive(Debug, Default)]
pub struct NoiseState {
    state: AtomicU64,
}

impl Clone for NoiseState {
    fn clone(&self) -> Self {
        NoiseState {
            // hd-lint: allow(atomic-ordering) -- clone snapshots a single word; the RNG state carries no cross-thread happens-before obligations
            state: AtomicU64::new(self.state.load(Ordering::Relaxed)),
        }
    }
}

impl NoiseState {
    /// Creates the generator.
    pub fn new(seed: u64) -> Self {
        NoiseState {
            state: AtomicU64::new(seed | 1),
        }
    }

    /// Creates the generator for one device run, mixing the defence seed
    /// with a per-run discriminator (the device hashes the input image).
    ///
    /// Seeding per run — instead of streaming one generator across runs —
    /// makes the noise a pure function of `(seed, run)`: parallel and
    /// serial probe executions observe bit-identical padding no matter how
    /// runs interleave, while distinct probe images still draw distinct
    /// noise (which is what the defence needs to perturb the prober).
    pub fn for_run(seed: u64, run_discriminator: u64) -> Self {
        // SplitMix64 finalizer: avalanche the combined seed so nearby
        // discriminators (similar images) produce unrelated streams.
        let mut z = seed ^ run_discriminator ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        NoiseState::new(z ^ (z >> 31))
    }

    /// Next padding amount in `0..=max`.
    pub fn next_padding(&self, max: u64) -> u64 {
        let x = self
            .state
            // hd-lint: allow(atomic-ordering) -- the xorshift step only needs atomicity; per-run reseeding (see for_run) makes draw order irrelevant to results
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |mut x| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                Some(x)
            })
            .map(|prev| {
                let mut x = prev;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .expect("fetch_update closure never returns None"); // hd-lint: allow(no-panic) -- the closure is Some-total, so fetch_update cannot fail
        if max == 0 {
            0
        } else {
            x % (max + 1)
        }
    }
}

/// Extra transfer bytes the defence adds for one output tensor.
///
/// `edge_zero_cells` is the number of zero-valued cells inside the
/// protected boundary band (they would have been elided), and `elem_bits`
/// the activation width.
pub fn defence_padding_bytes(
    defence: &Defence,
    noise: &NoiseState,
    edge_zero_cells: usize,
    elem_bits: u32,
) -> u64 {
    match defence {
        Defence::None => 0,
        Defence::PadEdges { .. } => {
            (cast::usize_to_u64(edge_zero_cells) * u64::from(elem_bits)).div_ceil(8)
        }
        Defence::RandomZeros { max_bytes, .. } => noise.next_padding(*max_bytes),
        // Schedule padding burns PE cycles, not DRAM bytes: padded lanes
        // hold architectural zeros the sparse encoder still elides.
        Defence::NnRearch { .. } => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_free() {
        let noise = NoiseState::new(1);
        assert_eq!(defence_padding_bytes(&Defence::None, &noise, 100, 8), 0);
    }

    #[test]
    fn pad_edges_is_deterministic_in_zero_count() {
        let noise = NoiseState::new(1);
        let d = Defence::PadEdges { band: 1 };
        assert_eq!(defence_padding_bytes(&d, &noise, 10, 8), 10);
        assert_eq!(defence_padding_bytes(&d, &noise, 10, 8), 10);
        assert_eq!(defence_padding_bytes(&d, &noise, 0, 8), 0);
    }

    #[test]
    fn random_zeros_vary_and_respect_bound() {
        let noise = NoiseState::new(42);
        let d = Defence::RandomZeros {
            max_bytes: 64,
            seed: 42,
        };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            let p = defence_padding_bytes(&d, &noise, 5, 8);
            assert!(p <= 64);
            seen.insert(p);
        }
        assert!(seen.len() > 4, "noise should vary: {seen:?}");
    }

    #[test]
    fn per_run_noise_is_pure_in_seed_and_run() {
        let a = NoiseState::for_run(7, 0xABCD);
        let b = NoiseState::for_run(7, 0xABCD);
        for _ in 0..10 {
            assert_eq!(a.next_padding(100), b.next_padding(100));
        }
        // A different run discriminator yields a different stream.
        let c = NoiseState::for_run(7, 0xABCE);
        let d = NoiseState::for_run(7, 0xABCD);
        let vc: Vec<u64> = (0..8).map(|_| c.next_padding(u64::MAX - 1)).collect();
        let vd: Vec<u64> = (0..8).map(|_| d.next_padding(u64::MAX - 1)).collect();
        assert_ne!(vc, vd);
    }

    #[test]
    fn noise_state_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<NoiseState>();
    }

    #[test]
    fn nnrearch_pads_dims_but_never_bytes() {
        let noise = NoiseState::new(1);
        let d = Defence::NnRearch { tile: 16 };
        assert_eq!(defence_padding_bytes(&d, &noise, 100, 8), 0);
        assert_eq!(d.schedule_tile(), 16);
        assert_eq!(d.pad_dim(1), 16);
        assert_eq!(d.pad_dim(16), 16);
        assert_eq!(d.pad_dim(17), 32);
        // A zero tile degrades to the identity instead of dividing by zero.
        let z = Defence::NnRearch { tile: 0 };
        assert_eq!(z.pad_dim(7), 7);
        // Non-scheduling defences never round.
        assert_eq!(Defence::None.pad_dim(7), 7);
        assert_eq!(Defence::PadEdges { band: 2 }.pad_dim(7), 7);
    }

    #[test]
    fn noise_deterministic_in_seed() {
        let a = NoiseState::new(7);
        let b = NoiseState::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_padding(100), b.next_padding(100));
        }
    }
}
