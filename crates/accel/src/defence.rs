//! Volume-channel defences (paper §9.2).
//!
//! The paper sketches two countermeasure families and argues both are
//! non-trivial; this module implements device-side versions of each so the
//! defence ablation can measure what they buy and what they cost:
//!
//! * [`Defence::PadEdges`] — "blocking the source": activations in the
//!   boundary band of every output map are transferred *uncompressed*, so
//!   edge-truncation can never change the transfer volume (an `ABCC`
//!   pattern reads as `AAAA`). Deterministic, but pays bandwidth on every
//!   inference and must widen with the attacker's probe reach.
//! * [`Defence::RandomZeros`] — "obfuscating the detection": the encoder
//!   randomly keeps up to `max_bytes` of zeros uncompressed per tensor,
//!   adding per-run noise to every volume. Breaks the one-sided-error
//!   property the prober relies on, but the paper notes repeated trials
//!   could average it out.

use std::cell::Cell;

/// Device-side volume-channel countermeasure.
#[derive(Clone, Debug, PartialEq, Eq)]
#[derive(Default)]
pub enum Defence {
    /// No countermeasure (the paper's threat model).
    #[default]
    None,
    /// Transfer the outer `band` cells of every output map uncompressed.
    PadEdges {
        /// Width of the protected boundary band in cells.
        band: usize,
    },
    /// Keep a per-run random number of zeros (up to `max_bytes`)
    /// uncompressed in every output tensor.
    RandomZeros {
        /// Maximum padding bytes per tensor per run.
        max_bytes: u64,
        /// Seed for the device's internal noise generator.
        seed: u64,
    },
}


/// Stateful noise source for [`Defence::RandomZeros`] (xorshift; the
/// device only needs unpredictability from the attacker's viewpoint).
#[derive(Clone, Debug)]
pub struct NoiseState {
    state: Cell<u64>,
}

impl NoiseState {
    /// Creates the generator.
    pub fn new(seed: u64) -> Self {
        NoiseState {
            state: Cell::new(seed | 1),
        }
    }

    /// Next padding amount in `0..=max`.
    pub fn next_padding(&self, max: u64) -> u64 {
        let mut x = self.state.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state.set(x);
        if max == 0 {
            0
        } else {
            x % (max + 1)
        }
    }
}

/// Extra transfer bytes the defence adds for one output tensor.
///
/// `edge_zero_cells` is the number of zero-valued cells inside the
/// protected boundary band (they would have been elided), and `elem_bits`
/// the activation width.
pub fn defence_padding_bytes(
    defence: &Defence,
    noise: &NoiseState,
    edge_zero_cells: usize,
    elem_bits: u32,
) -> u64 {
    match defence {
        Defence::None => 0,
        Defence::PadEdges { .. } => (edge_zero_cells as u64 * elem_bits as u64).div_ceil(8),
        Defence::RandomZeros { max_bytes, .. } => noise.next_padding(*max_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_free() {
        let noise = NoiseState::new(1);
        assert_eq!(defence_padding_bytes(&Defence::None, &noise, 100, 8), 0);
    }

    #[test]
    fn pad_edges_is_deterministic_in_zero_count() {
        let noise = NoiseState::new(1);
        let d = Defence::PadEdges { band: 1 };
        assert_eq!(defence_padding_bytes(&d, &noise, 10, 8), 10);
        assert_eq!(defence_padding_bytes(&d, &noise, 10, 8), 10);
        assert_eq!(defence_padding_bytes(&d, &noise, 0, 8), 0);
    }

    #[test]
    fn random_zeros_vary_and_respect_bound() {
        let noise = NoiseState::new(42);
        let d = Defence::RandomZeros {
            max_bytes: 64,
            seed: 42,
        };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            let p = defence_padding_bytes(&d, &noise, 5, 8);
            assert!(p <= 64);
            seen.insert(p);
        }
        assert!(seen.len() > 4, "noise should vary: {seen:?}");
    }

    #[test]
    fn noise_deterministic_in_seed() {
        let a = NoiseState::new(7);
        let b = NoiseState::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_padding(100), b.next_padding(100));
        }
    }
}
