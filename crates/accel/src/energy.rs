//! First-order energy model for one inference.
//!
//! The paper motivates sparse accelerators by the energy cost of moving
//! data: a DRAM access costs orders of magnitude more than a MAC, which is
//! why edge devices prune models and compress transfers (and why the
//! resulting volume channel exists at all). This model quantifies the
//! trade-off the defences face: every padded zero buys security with the
//! exact currency the accelerator was built to save.
//!
//! Coefficients are 45 nm-class ballpark figures in the Eyeriss /
//! Horowitz-ISSCC'14 tradition; relative magnitudes are what matter.

use crate::config::AccelConfig;
use crate::trace_event::{AccessKind, Trace};

/// Per-operation energy coefficients in picojoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// DRAM access energy per byte.
    pub dram_pj_per_byte: f64,
    /// Global-buffer access energy per byte.
    pub glb_pj_per_byte: f64,
    /// 8-bit MAC energy.
    pub mac_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            dram_pj_per_byte: 160.0,
            glb_pj_per_byte: 6.0,
            mac_pj: 0.2,
        }
    }
}

/// Energy breakdown of one inference.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyReport {
    /// DRAM transfer energy (pJ).
    pub dram_pj: f64,
    /// GLB psum-drain energy (pJ).
    pub glb_pj: f64,
    /// Compute (MAC) energy (pJ).
    pub mac_pj: f64,
}

impl EnergyReport {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.glb_pj + self.mac_pj
    }

    /// Total energy in microjoules (handier at network scale).
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }
}

/// Estimates inference energy from a bus trace plus the effective MAC and
/// psum counts the device reports.
pub fn estimate_energy(
    model: &EnergyModel,
    cfg: &AccelConfig,
    trace: &Trace,
    effective_macs: f64,
    psum_elems: f64,
) -> EnergyReport {
    let dram_bytes =
        (trace.total_bytes(AccessKind::Read) + trace.total_bytes(AccessKind::Write)) as f64;
    let glb_bytes = psum_elems * cfg.acc_bytes();
    EnergyReport {
        dram_pj: dram_bytes * model.dram_pj_per_byte,
        glb_pj: glb_bytes * model.glb_pj_per_byte,
        mac_pj: effective_macs * model.mac_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelConfig;
    use crate::device::Device;
    use hd_dnn::graph::{NetworkBuilder, Params};
    use hd_tensor::Tensor3;

    fn devices() -> (Device, Device) {
        // Weight-heavy layers so pruning visibly moves the DRAM bill.
        let mut b = NetworkBuilder::new(16, 12, 12);
        let x = b.input();
        let x = b.conv(x, 32, 3, 1);
        b.conv(x, 32, 3, 1);
        let net = b.build();
        let dense_params = Params::init(&net, 1);
        let mut sparse_params = dense_params.clone();
        let profile = hd_dnn::prune::SparsityProfile {
            targets: net.weighted_nodes().iter().map(|&id| (id, 0.9)).collect(),
        };
        hd_dnn::prune::apply_sparsity_profile(&net, &mut sparse_params, &profile, 2);
        (
            Device::new(net.clone(), dense_params, AccelConfig::eyeriss_v2()),
            Device::new(net, sparse_params, AccelConfig::eyeriss_v2()),
        )
    }

    #[test]
    fn pruning_saves_energy() {
        let (dense, sparse) = devices();
        let img = Tensor3::full(16, 12, 12, 0.5);
        let e_dense = dense.energy_estimate(&img, &EnergyModel::default());
        let e_sparse = sparse.energy_estimate(&img, &EnergyModel::default());
        assert!(
            e_sparse.total_pj() < e_dense.total_pj(),
            "sparse {} >= dense {}",
            e_sparse.total_pj(),
            e_dense.total_pj()
        );
        // The DRAM component dominates on edge workloads.
        assert!(e_dense.dram_pj > e_dense.mac_pj);
    }

    #[test]
    fn defence_costs_energy() {
        let mut b = NetworkBuilder::new(2, 12, 12);
        let x = b.input();
        b.conv(x, 8, 3, 1);
        let net = b.build();
        let mut params = Params::init(&net, 3);
        let profile = hd_dnn::prune::SparsityProfile {
            targets: vec![(1, 0.8)],
        };
        hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 4);
        let plain = Device::new(net.clone(), params.clone(), AccelConfig::eyeriss_v2());
        let defended = Device::new(
            net,
            params,
            AccelConfig::eyeriss_v2().with_defence(crate::defence::Defence::PadEdges { band: 2 }),
        );
        let img = {
            // A negative input drives many edge activations to zero so the
            // pad-edges defence has something to pad.
            let mut t = Tensor3::full(2, 12, 12, -0.5);
            t.set(0, 6, 6, 1.0);
            t
        };
        let e0 = plain.energy_estimate(&img, &EnergyModel::default());
        let e1 = defended.energy_estimate(&img, &EnergyModel::default());
        assert!(
            e1.dram_pj >= e0.dram_pj,
            "defence should not reduce DRAM energy"
        );
    }

    #[test]
    fn report_totals_add_up() {
        let r = EnergyReport {
            dram_pj: 1.0,
            glb_pj: 2.0,
            mac_pj: 3.0,
        };
        assert!((r.total_pj() - 6.0).abs() < 1e-12);
        assert!((r.total_uj() - 6e-6).abs() < 1e-18);
    }
}
