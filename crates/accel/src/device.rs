//! The simulated victim device: an accelerator SoC plus external DRAM.
//!
//! [`Device`] seals a network and its weights behind the same information
//! boundary the paper's threat model gives the attacker: the only public
//! output of [`Device::run`] is the DRAM bus [`Trace`] (times, addresses,
//! directions, burst sizes — never data values). Ground-truth accessors are
//! segregated under [`Device::oracle`] and must only be used by evaluation
//! harnesses, never by attack code.

use crate::config::{AccelConfig, Precision};
use crate::defence::{defence_padding_bytes, Defence, NoiseState};
use crate::encoder::{encode_timing, EncodeTiming};
use crate::trace_event::{AccessKind, Trace, TraceEvent, TraceSink};
use hd_dnn::graph::{ForwardTrace, Network, NodeId, Op, Params, Value};
use hd_dnn::ForwardCache;
use hd_tensor::cast;
use hd_tensor::{ConvBackend, Tensor3};
use std::fmt;
use std::sync::OnceLock;

/// Typed failure of a device simulation on a malformed graph.
///
/// Graphs built through `NetworkBuilder` cannot trigger these (its eager
/// shape inference rejects the inputs), but graphs assembled via
/// `Network::from_raw_parts` — e.g. by a future deserializer — can, and the
/// device reports them as errors instead of panicking mid-simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceError {
    /// Node `node` consumes the output of `input`, but that producer never
    /// materialized a DRAM region (e.g. a stray extra `Input` node).
    MissingProducer {
        /// The consuming node.
        node: NodeId,
        /// The input id with no materialized region.
        input: NodeId,
    },
    /// A convolution node's recorded output shape is not an activation map,
    /// so its MAC count (and compute-phase duration) is undefined.
    NotAMap {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::MissingProducer { node, input } => write!(
                f,
                "node {node} reads input {input}, which produced no DRAM region"
            ),
            DeviceError::NotAMap { node } => write!(
                f,
                "conv node {node} has a non-map output shape; MAC count undefined"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Gap between allocated DRAM regions so tensors never abut.
const REGION_GAP: u64 = 0x1_0000;
/// Base address of the (static) weight arena.
const WEIGHT_BASE: u64 = 0x1000_0000;
/// Base address of the (per-run) activation arena.
const ACT_BASE: u64 = 0x8000_0000;
/// Idle gap inserted between layer phases, in picoseconds.
const PHASE_GAP_PS: u64 = 100_000; // 100 ns
/// Seed of the PTQ calibration image set (fixed: quantization must be a
/// pure function of the sealed network, never of run history).
const PTQ_CALIB_SEED: u64 = 0x9E37_79B9;

/// The victim device.
#[derive(Clone, Debug)]
pub struct Device {
    net: Network,
    params: Params,
    cfg: AccelConfig,
    weight_regions: Vec<Option<(u64, u64)>>, // (addr, bytes) per node
    // Base seed for RandomZeros noise. The generator itself is built per
    // run (seeded with this plus an image hash) so `run(&self)` is Sync
    // and noise is independent of how concurrent runs interleave.
    noise_seed: u64,
    // Per-node effective MAC counts, precomputed at construction (weights
    // are sealed, so these never change between runs).
    node_macs: Vec<Result<f64, DeviceError>>,
    // Lazily-built sparse forward state (CSC weights + zero-input baseline),
    // shared by every run that takes the sparse path. Built at most once per
    // device; cloning a device before first use clones an empty cell.
    fwd_cache: OnceLock<ForwardCache>,
    // Lazily-built INT8 network (Precision::Int8 only). PTQ calibration
    // is seeded, so every device over the same (net, params) quantizes
    // identically regardless of run order.
    qnet: OnceLock<hd_dnn::quantize::QuantizedNet>,
    // Lazily-computed GEMM call dimensions per conv node (Im2colGemm
    // backend only). A pure function of the sealed weights and config, so
    // computed at most once per device.
    gemm_shapes: OnceLock<Vec<(NodeId, hd_tensor::GemmShape)>>,
}

/// Ground-truth view handed out by [`Device::oracle`] for evaluation only.
#[derive(Clone, Copy, Debug)]
pub struct Oracle<'a> {
    /// The victim network (architecture the attacker tries to steal).
    pub net: &'a Network,
    /// The victim parameters.
    pub params: &'a Params,
}

impl Device {
    /// Seals `net`/`params` inside a device with the given configuration,
    /// statically verifying the graph first (see [`hd_dnn::verify`]).
    ///
    /// # Panics
    ///
    /// Panics with the full diagnostic list if verification rejects the
    /// graph. `#[track_caller]` pins the panic to the call site. Use
    /// [`Device::try_new`] for the non-panicking variant, or
    /// [`Device::new_unchecked`] to skip verification entirely (malformed
    /// graphs then surface as [`DeviceError`]s from [`Device::try_run`]).
    #[track_caller]
    pub fn new(net: Network, params: Params, cfg: AccelConfig) -> Self {
        match Device::try_new(net, params, cfg) {
            Ok(dev) => dev,
            // hd-lint: allow(no-panic) -- documented #[track_caller] wrapper; try_new is the fallible form
            Err(e) => panic!("rejected malformed network: {e}"),
        }
    }

    /// Verifying constructor: runs [`hd_dnn::verify::verify_strict`] over
    /// the graph, params, and config-derived [`Limits`]
    /// (`hd_dnn::verify::Limits`) before sealing the device.
    ///
    /// # Errors
    ///
    /// Returns the verifier's full diagnostic list when the graph cannot
    /// execute correctly on this configuration: shape inconsistencies,
    /// topology violations, param/geometry disagreements, or weight
    /// buffer pass-count overflows.
    pub fn try_new(
        net: Network,
        params: Params,
        cfg: AccelConfig,
    ) -> Result<Self, hd_dnn::verify::VerifyError> {
        hd_dnn::verify::verify_strict(&net, Some(&params), &cfg.verify_limits())?;
        Ok(Device::new_unchecked(net, params, cfg))
    }

    /// Seals `net`/`params` without static verification.
    ///
    /// Exists for tests that deliberately build malformed graphs (via
    /// `Network::from_raw_parts`) to exercise the device's late typed
    /// errors; everything else should use [`Device::new`] or
    /// [`Device::try_new`].
    pub fn new_unchecked(net: Network, params: Params, cfg: AccelConfig) -> Self {
        // Statically place weights: one region per weighted node.
        let mut weight_regions = vec![None; net.len()];
        let mut cursor = WEIGHT_BASE;
        for id in net.weighted_nodes() {
            let bytes = weight_transfer_bytes(&net, &params, &cfg, id);
            weight_regions[id] = Some((cursor, bytes));
            cursor += bytes + REGION_GAP;
            cursor = align(cursor);
        }
        let noise_seed = match cfg.defence {
            Defence::RandomZeros { seed, .. } => seed,
            _ => 0,
        };
        // Effective MAC counts are a function of the sealed weights only;
        // computing them per run would rescan every weight tensor (~10 ms
        // on VGG-S) in the prober hot loop. Errors (malformed raw graphs)
        // are deferred to `try_run`, which reports them per node.
        let node_macs = (0..net.len())
            .map(|id| effective_macs(&net, &params, id))
            .collect();
        Device {
            net,
            params,
            cfg,
            weight_regions,
            noise_seed,
            node_macs,
            fwd_cache: OnceLock::new(),
            qnet: OnceLock::new(),
            gemm_shapes: OnceLock::new(),
        }
    }

    /// Runs the forward pass with the fastest backend that preserves the
    /// configured numerics.
    ///
    /// The sparse path (cached CSC weights + dirty-column recompute) is
    /// taken when `SparseCsc` is configured explicitly, or when the policy's
    /// `auto_sparse` is set and the image is below the input density
    /// threshold — the stripe-probe regime of the prober hot loop. Every
    /// backend is bit-identical, so this only changes speed, never the
    /// trace or the encode timings.
    fn forward_for(&self, image: &Tensor3) -> ForwardTrace {
        if self.cfg.compute == Precision::Int8 {
            return self.net.forward_quantized(self.quantized_net(), image);
        }
        let policy = self.cfg.backend_policy;
        let sparse = self.cfg.conv_backend == ConvBackend::SparseCsc
            || (policy.auto_sparse && policy.input_is_sparse(image.nnz(), image.shape().len()));
        if sparse {
            let mut built = false;
            let cache = self.fwd_cache.get_or_init(|| {
                built = true;
                ForwardCache::build(&self.net, &self.params, policy)
            });
            hd_obs::counter_add("device.fwd_cache", if built { "miss" } else { "hit" }, 1);
            self.net.forward_cached(&self.params, image, cache)
        } else {
            self.net
                .forward_with_policy(&self.params, image, self.cfg.conv_backend, policy)
        }
    }

    /// The lazily-built INT8 network ([`Precision::Int8`] devices only).
    ///
    /// Calibration uses a fixed-seed uniform image set, so quantization is
    /// a pure function of the sealed `(net, params)` — every clone and
    /// every run order produces the same [`hd_dnn::quantize::QuantizedNet`].
    pub fn quantized_net(&self) -> &hd_dnn::quantize::QuantizedNet {
        self.qnet.get_or_init(|| {
            let _span = hd_obs::span("device.ptq", "");
            let calib =
                hd_dnn::quantize::calibration_images(self.net.input_shape(), 8, PTQ_CALIB_SEED);
            hd_dnn::quantize::ptq(&self.net, &self.params, &calib)
        })
    }

    /// Per-run noise generator: a pure function of the defence seed and
    /// the input image, so repeated or concurrent runs are reproducible.
    fn noise_for(&self, image: &Tensor3) -> NoiseState {
        NoiseState::for_run(self.noise_seed, fnv1a_f32(image.data()))
    }

    /// The accelerator configuration (public on a real device's datasheet).
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// The input shape the device accepts (the attacker knows this — they
    /// control the camera).
    pub fn input_shape(&self) -> hd_tensor::Shape3 {
        self.net.input_shape()
    }

    /// Ground truth for evaluation harnesses.
    ///
    /// Attack code must never call this; see the crate-level docs.
    pub fn oracle(&self) -> Oracle<'_> {
        Oracle {
            net: &self.net,
            params: &self.params,
        }
    }

    /// Executes one inference and returns the DRAM bus trace.
    ///
    /// # Panics
    ///
    /// Panics if the image shape does not match [`Device::input_shape`], or
    /// if the sealed graph is malformed (see [`Device::try_run`] for the
    /// non-panicking variant). `#[track_caller]` pins the panic location to
    /// the call site, not this wrapper.
    #[track_caller]
    pub fn run(&self, image: &Tensor3) -> Trace {
        match self.try_run(image) {
            Ok(trace) => trace,
            // hd-lint: allow(no-panic) -- documented #[track_caller] wrapper; the try_ variant is the fallible form
            Err(e) => panic!("device simulation failed: {e}"),
        }
    }

    /// Executes one inference, reporting malformed-graph conditions as
    /// [`DeviceError`] instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if the image shape does not match [`Device::input_shape`].
    pub fn try_run(&self, image: &Tensor3) -> Result<Trace, DeviceError> {
        let mut out = Trace::default();
        self.try_run_with(image, &mut out)?;
        Ok(out)
    }

    /// Executes one inference, streaming each bus event into `sink` as it
    /// is emitted instead of materializing a [`Trace`].
    ///
    /// This is the memory-bounded observation path: an incremental
    /// analyzer consuming the stream retains only its running state, while
    /// [`Device::try_run`] (a thin wrapper buffering into a [`Trace`] sink)
    /// keeps the whole event vector alive for fixtures and CSV export.
    /// Events reach the sink in nondecreasing `time_ps` order.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError`] on malformed sealed graphs. Events already
    /// streamed before the error surfaced remain in the sink (a real bus
    /// probe would have observed them too).
    ///
    /// # Panics
    ///
    /// Panics if the image shape does not match [`Device::input_shape`].
    pub fn try_run_with(
        &self,
        image: &Tensor3,
        sink: &mut dyn TraceSink,
    ) -> Result<(), DeviceError> {
        let _run_span = hd_obs::span("device.run", "");
        let noise = self.noise_for(image);
        let trace = self.forward_for(image);
        let mut t: u64 = 0;
        let dram_bw = self.cfg.dram.bandwidth_bytes_per_sec();

        // Activation regions are (re)allocated per run. With
        // `reuse_activations`, freed buffers are recycled once their last
        // consumer has run — each write then re-versions its addresses
        // (paper footnote 4).
        let mut act_regions: Vec<Option<(u64, u64)>> = vec![None; self.net.len()];
        let mut allocator = ActAllocator::new(self.cfg.reuse_activations);
        // Remaining-consumer counts per node output (for buffer recycling).
        let mut remaining_uses: Vec<usize> = vec![0; self.net.len()];
        for node in self.net.nodes() {
            for &src in &node.inputs {
                remaining_uses[src] += 1;
            }
        }

        // Host DMA: the (compressed) input image lands in DRAM first.
        let input_bytes = self
            .cfg
            .act_scheme
            .encoded_size(image.data(), self.cfg.act_bits)
            .bytes;
        let input_region = allocator.alloc(input_bytes);
        act_regions[0] = Some(input_region);
        t = self.emit_stream(
            sink,
            t,
            input_region.0,
            input_bytes,
            AccessKind::Write,
            bytes_duration_ps(input_bytes, dram_bw),
            0,
        );
        hd_obs::counter_add("dram.write.bytes", "input_dma", input_bytes);
        t += PHASE_GAP_PS;

        for (id, node) in self.net.nodes().iter().enumerate() {
            if matches!(node.op, Op::Input) {
                continue;
            }
            // Flatten is a pure aliasing reshape: no traffic, no new tensor.
            if matches!(node.op, Op::Flatten) {
                act_regions[id] = act_regions[node.inputs[0]];
                // The alias keeps the buffer alive for its own consumers.
                remaining_uses[node.inputs[0]] += remaining_uses[id];
                continue;
            }
            let _layer_span = hd_obs::span("device.layer", self.net.name(id));

            // 1) Weight fetch.
            if let Some((addr, bytes)) = self.weight_regions[id] {
                t = self.emit_stream(
                    sink,
                    t,
                    addr,
                    bytes,
                    AccessKind::Read,
                    bytes_duration_ps(bytes, dram_bw),
                    0,
                );
                hd_obs::counter_add("dram.read.bytes", "weights", bytes);
            }
            // 2) Input activation fetch. Layers whose weights exceed the
            //    on-chip buffer run in multiple passes and re-read their
            //    inputs once per pass (tiled execution; the attacker's
            //    footprint analysis merges the repeated address ranges).
            let passes = self.weight_regions[id]
                .map(|(_, wb)| wb.div_ceil(self.cfg.weight_glb_bytes.max(1)).max(1))
                .unwrap_or(1);
            for _ in 0..passes {
                for &src in &node.inputs {
                    let (addr, bytes) = act_regions[src].ok_or(DeviceError::MissingProducer {
                        node: id,
                        input: src,
                    })?;
                    t = self.emit_stream(
                        sink,
                        t,
                        addr,
                        bytes,
                        AccessKind::Read,
                        bytes_duration_ps(bytes, dram_bw),
                        0,
                    );
                    hd_obs::counter_add("dram.read.bytes", "activations", bytes);
                }
            }

            // 3) Compute phase (no bus traffic; psums accumulate on-chip).
            t += self.compute_duration_ps(id)?;

            // 3b) Separate batch-norm execution: write the dense pre-BN
            //     psums to DRAM, then read them back for the BN pass. The
            //     attacker sees an uncompressed tensor whose size equals
            //     P*Q*K exactly (paper §2, "Broader application").
            if self.cfg.separate_batch_norm {
                if let Some(pre_bn) = &trace.traces[id].pre_bn {
                    let dense_bytes = (cast::usize_to_u64(pre_bn.data().len())
                        * u64::from(self.cfg.act_bits))
                    .div_ceil(8);
                    let psum_region = allocator.alloc(dense_bytes);
                    t = self.emit_stream(
                        sink,
                        t,
                        psum_region.0,
                        dense_bytes,
                        AccessKind::Write,
                        bytes_duration_ps(dense_bytes, dram_bw),
                        0,
                    );
                    hd_obs::counter_add("dram.write.bytes", "psum", dense_bytes);
                    t += PHASE_GAP_PS;
                    t = self.emit_stream(
                        sink,
                        t,
                        psum_region.0,
                        dense_bytes,
                        AccessKind::Read,
                        bytes_duration_ps(dense_bytes, dram_bw),
                        0,
                    );
                    hd_obs::counter_add("dram.read.bytes", "psum", dense_bytes);
                }
            }

            // 4) Encode + writeback phase: the timing side channel.
            let out_value = &trace.traces[id].out;
            let out_bytes = self.value_transfer_bytes(out_value, &noise);
            let psum_elems = self.scheduled_psum_elems(out_value);
            let timing = encode_timing(&self.cfg, psum_elems, out_bytes);
            hd_obs::observe(
                "device.encode.duration_ps",
                self.net.name(id),
                timing.duration_ps as f64,
            );
            let region = allocator.alloc(out_bytes);
            act_regions[id] = Some(region);
            t = self.emit_encode_writes(sink, t, region.0, out_bytes, &timing);
            hd_obs::counter_add("dram.write.bytes", "activations", out_bytes);
            t += PHASE_GAP_PS;

            // Release input buffers whose last consumer just ran.
            for &src in &node.inputs {
                remaining_uses[src] = remaining_uses[src].saturating_sub(1);
                if remaining_uses[src] == 0 {
                    if let Some(region) = act_regions[src] {
                        allocator.release(region);
                    }
                }
            }
        }
        Ok(())
    }

    /// Per-layer encode timings for an input, keyed by node id. This is a
    /// modelling convenience for experiments; the attacker derives the same
    /// information from the trace write timestamps.
    pub fn encode_timings(&self, image: &Tensor3) -> Vec<(NodeId, EncodeTiming)> {
        let noise = self.noise_for(image);
        let trace = self.forward_for(image);
        let mut v = Vec::new();
        for (id, node) in self.net.nodes().iter().enumerate() {
            if matches!(node.op, Op::Input | Op::Flatten) {
                continue;
            }
            let out_value = &trace.traces[id].out;
            let out_bytes = self.value_transfer_bytes(out_value, &noise);
            let psum_elems = self.scheduled_psum_elems(out_value);
            v.push((id, encode_timing(&self.cfg, psum_elems, out_bytes)));
        }
        v
    }

    /// Psum count the encode pipeline actually drains for one output.
    ///
    /// Without a scheduling defence this is the output element count. An
    /// NNReArch-style defence pads the tile loop, so the drain covers the
    /// channel dimension rounded up to the schedule tile — the padded
    /// lanes are architectural zeros that cost cycles but, being elided by
    /// the sparse encoder, never move a byte (transfer volumes and traces
    /// are untouched).
    fn scheduled_psum_elems(&self, v: &Value) -> u64 {
        let elems = cast::usize_to_u64(v.flat().len());
        if self.cfg.defence.schedule_tile() == 1 {
            return elems;
        }
        match v {
            Value::Map(t) => cast::usize_to_u64(self.cfg.defence.pad_dim(t.c()) * t.h() * t.w()),
            Value::Vector(x) => cast::usize_to_u64(self.cfg.defence.pad_dim(x.len())),
        }
    }

    /// Dimensions of every GEMM call one inference issues, keyed by conv
    /// node id, in execution order — the Cache-Telepathy observable (Yan
    /// et al.): on a real system these leak through shared-cache probes of
    /// the BLAS library's block loops, no DRAM access needed.
    ///
    /// Empty unless the device actually lowers convolutions through
    /// im2col+GEMM ([`ConvBackend::Im2colGemm`]); the direct and sparse-CSC
    /// backends issue no GEMM, so there is nothing to observe. Under
    /// [`Defence::NnRearch`] every dimension is rounded up to the schedule
    /// tile, which is exactly what the padded block loops expose.
    ///
    /// The dims are a pure function of the sealed weights and config
    /// (input-independent), so they are computed once and cached.
    pub fn gemm_calls(&self) -> &[(NodeId, hd_tensor::GemmShape)] {
        self.gemm_shapes.get_or_init(|| {
            if self.cfg.conv_backend != ConvBackend::Im2colGemm {
                return Vec::new();
            }
            let mut calls = Vec::new();
            for (id, node) in self.net.nodes().iter().enumerate() {
                let Op::Conv(spec) = &node.op else { continue };
                let Some(in_shape) = self.net.value_shape(node.inputs[0]).as_map() else {
                    continue;
                };
                let cfg = hd_tensor::conv::Conv2dCfg::new(spec.stride, spec.padding);
                let w = self.params.conv(id).w;
                if let Some(g) = hd_tensor::gemm_call_dims(in_shape.h, in_shape.w, w, &cfg) {
                    let d = &self.cfg.defence;
                    calls.push((
                        id,
                        hd_tensor::GemmShape {
                            m: d.pad_dim(g.m),
                            k: d.pad_dim(g.k),
                            n: d.pad_dim(g.n),
                        },
                    ));
                }
            }
            calls
        })
    }

    /// First-order energy estimate for one inference (see [`crate::energy`]).
    ///
    /// # Panics
    ///
    /// Panics on malformed graphs; see [`Device::try_energy_estimate`].
    #[track_caller]
    pub fn energy_estimate(
        &self,
        image: &Tensor3,
        model: &crate::energy::EnergyModel,
    ) -> crate::energy::EnergyReport {
        match self.try_energy_estimate(image, model) {
            Ok(report) => report,
            // hd-lint: allow(no-panic) -- documented #[track_caller] wrapper; the try_ variant is the fallible form
            Err(e) => panic!("device simulation failed: {e}"),
        }
    }

    /// Non-panicking variant of [`Device::energy_estimate`].
    pub fn try_energy_estimate(
        &self,
        image: &Tensor3,
        model: &crate::energy::EnergyModel,
    ) -> Result<crate::energy::EnergyReport, DeviceError> {
        let trace = self.try_run(image)?;
        let mut macs = 0.0;
        let mut psums = 0.0;
        for (id, node) in self.net.nodes().iter().enumerate() {
            if matches!(node.op, Op::Input | Op::Flatten) {
                continue;
            }
            macs += self.node_macs[id]?;
            psums += self.net.value_shape(id).len() as f64;
        }
        Ok(crate::energy::estimate_energy(
            model, &self.cfg, &trace, macs, psums,
        ))
    }

    fn value_transfer_bytes(&self, v: &Value, noise: &NoiseState) -> u64 {
        let base = self
            .cfg
            .act_scheme
            .encoded_size(v.flat(), self.cfg.act_bits)
            .bytes;
        let edge_zero_cells = match (&self.cfg.defence, v) {
            (Defence::PadEdges { band }, Value::Map(t)) => {
                let (h, w) = (t.h(), t.w());
                let mut zeros = 0usize;
                for c in 0..t.c() {
                    for y in 0..h {
                        for x in 0..w {
                            let on_edge =
                                y < *band || x < *band || y + *band >= h || x + *band >= w;
                            if on_edge && t.at(c, y, x) == 0.0 {
                                zeros += 1;
                            }
                        }
                    }
                }
                zeros
            }
            _ => 0,
        };
        base + defence_padding_bytes(&self.cfg.defence, noise, edge_zero_cells, self.cfg.act_bits)
    }

    fn compute_duration_ps(&self, id: NodeId) -> Result<u64, DeviceError> {
        let macs = self.node_macs[id]?;
        // INT8 PE arrays pack two 8-bit MACs into each f32-equivalent
        // multiplier slot, doubling compute throughput; the encode phase
        // (the side channel) is unaffected.
        let throughput = match self.cfg.compute {
            Precision::F32 => self.cfg.macs_per_cycle,
            Precision::Int8 => self.cfg.macs_per_cycle * 2.0,
        };
        let cycles = macs / throughput.max(1.0);
        hd_obs::counter_add(
            "device.compute.cycles",
            self.net.name(id),
            cast::f64_round_to_u64(cycles),
        );
        Ok(cast::f64_round_to_u64(
            cycles / (self.cfg.freq_mhz * 1e6) * 1e12,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_stream(
        &self,
        sink: &mut dyn TraceSink,
        start_ps: u64,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        duration_ps: u64,
        offset_ps: u64,
    ) -> u64 {
        if bytes == 0 {
            return start_ps;
        }
        let burst = self.cfg.burst_bytes;
        let n_bursts = bytes.div_ceil(burst);
        let window = duration_ps.saturating_sub(offset_ps).max(1);
        for i in 0..n_bursts {
            let frac = if n_bursts == 1 {
                0.0
            } else {
                i as f64 / (n_bursts - 1) as f64
            };
            let time_ps = start_ps + offset_ps + cast::f64_round_to_u64(frac * window as f64);
            let this_bytes = burst.min(bytes - i * burst);
            sink.event(TraceEvent {
                time_ps,
                addr: addr + i * burst,
                kind,
                bytes: this_bytes,
            });
        }
        start_ps + duration_ps.max(1)
    }

    fn emit_encode_writes(
        &self,
        sink: &mut dyn TraceSink,
        start_ps: u64,
        addr: u64,
        bytes: u64,
        timing: &EncodeTiming,
    ) -> u64 {
        self.emit_stream(
            sink,
            start_ps,
            addr,
            bytes,
            AccessKind::Write,
            timing.duration_ps,
            timing.first_write_offset_ps,
        )
    }
}

/// Per-run DRAM activation allocator: bump allocation by default,
/// optional slot recycling when the device reuses buffers.
struct ActAllocator {
    cursor: u64,
    reuse: bool,
    free: Vec<(u64, u64)>, // (addr, capacity)
    capacity_of: std::collections::HashMap<u64, u64>,
}

impl ActAllocator {
    fn new(reuse: bool) -> Self {
        ActAllocator {
            cursor: ACT_BASE,
            reuse,
            free: Vec::new(),
            capacity_of: std::collections::HashMap::new(),
        }
    }

    fn alloc(&mut self, bytes: u64) -> (u64, u64) {
        if self.reuse {
            if let Some(pos) = self.free.iter().position(|&(_, cap)| cap >= bytes) {
                let (addr, cap) = self.free.swap_remove(pos);
                self.capacity_of.insert(addr, cap);
                return (addr, bytes);
            }
        }
        let addr = self.cursor;
        let cap = bytes.max(4096) * 2;
        self.cursor = align(self.cursor + cap + REGION_GAP);
        self.capacity_of.insert(addr, cap);
        (addr, bytes)
    }

    fn release(&mut self, region: (u64, u64)) {
        if !self.reuse {
            return;
        }
        if let Some(cap) = self.capacity_of.get(&region.0).copied() {
            self.free.push((region.0, cap));
        }
    }
}

fn align(addr: u64) -> u64 {
    (addr + 0xFFF) & !0xFFF
}

/// FNV-1a over the raw bit patterns of an f32 slice; used as the per-run
/// discriminator for defence noise (bit-exact, platform-independent).
fn fnv1a_f32(data: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn bytes_duration_ps(bytes: u64, bw_bytes_per_sec: f64) -> u64 {
    cast::f64_round_to_u64(bytes as f64 / bw_bytes_per_sec * 1e12)
}

/// Compressed transfer size of a node's weights (plus its small dense
/// bias/batch-norm sideband parameters).
fn weight_transfer_bytes(net: &Network, params: &Params, cfg: &AccelConfig, id: NodeId) -> u64 {
    match &net.nodes()[id].op {
        Op::Conv(_) => {
            let p = params.conv(id);
            let mut bytes = cfg
                .weight_scheme
                .encoded_size(p.w.data(), cfg.weight_bits)
                .bytes;
            if let Some(b) = p.b {
                bytes += cast::usize_to_u64(b.len()) * 4;
            }
            if let Some(bn) = p.bn {
                bytes += cast::usize_to_u64(bn.channels()) * 8;
            }
            bytes
        }
        Op::DwConv { .. } => {
            let p = params.dwconv(id);
            let mut bytes = cfg
                .weight_scheme
                .encoded_size(p.w.data(), cfg.weight_bits)
                .bytes;
            if let Some(bn) = p.bn {
                bytes += cast::usize_to_u64(bn.channels()) * 8;
            }
            bytes
        }
        Op::Linear { .. } => {
            let p = params.linear(id);
            cfg.weight_scheme.encoded_size(p.w, cfg.weight_bits).bytes
                + cast::usize_to_u64(p.b.len()) * 4
        }
        _ => 0,
    }
}

/// Effective (zero-skipped) MAC estimate for the compute-phase duration.
fn effective_macs(net: &Network, params: &Params, id: NodeId) -> Result<f64, DeviceError> {
    Ok(match &net.nodes()[id].op {
        Op::Conv(spec) => {
            let out = net
                .value_shape(id)
                .as_map()
                .ok_or(DeviceError::NotAMap { node: id })?;
            let p = params.conv(id);
            let density = p.w.nnz() as f64 / p.w.len().max(1) as f64;
            (out.h * out.w) as f64 * p.w.len() as f64 / (spec.stride * spec.stride) as f64 * density
        }
        Op::DwConv { .. } => {
            let out = net
                .value_shape(id)
                .as_map()
                .ok_or(DeviceError::NotAMap { node: id })?;
            let p = params.dwconv(id);
            let density = p.w.nnz() as f64 / p.w.len().max(1) as f64;
            (out.h * out.w) as f64 * p.w.len() as f64 * density
        }
        Op::Linear { .. } => {
            let p = params.linear(id);
            hd_tensor::nnz(p.w) as f64
        }
        Op::Pool { .. } | Op::Add { .. } | Op::GlobalAvgPool => net.value_shape(id).len() as f64,
        _ => 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_dnn::graph::NetworkBuilder;

    fn tiny_device() -> Device {
        let mut b = NetworkBuilder::new(2, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.conv(x, 6, 3, 1);
        let x = b.global_avg_pool(x);
        b.linear(x, 3);
        let net = b.build();
        let params = Params::init(&net, 42);
        Device::new(net, params, AccelConfig::eyeriss_v2())
    }

    #[test]
    fn run_produces_ordered_trace() {
        let dev = tiny_device();
        let img = Tensor3::full(2, 8, 8, 0.5);
        let trace = dev.run(&img);
        assert!(!trace.is_empty());
        for w in trace.events.windows(2) {
            assert!(w[0].time_ps <= w[1].time_ps, "events out of order");
        }
    }

    #[test]
    fn trace_has_reads_and_writes() {
        let dev = tiny_device();
        let img = Tensor3::full(2, 8, 8, 0.5);
        let trace = dev.run(&img);
        assert!(trace.total_bytes(AccessKind::Read) > 0);
        assert!(trace.total_bytes(AccessKind::Write) > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let dev = tiny_device();
        let img = Tensor3::full(2, 8, 8, 0.5);
        assert_eq!(dev.run(&img), dev.run(&img));
    }

    #[test]
    fn device_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Device>();
    }

    #[test]
    fn random_zeros_noise_is_per_image_not_per_call_order() {
        let mut b = NetworkBuilder::new(2, 8, 8);
        let x = b.input();
        b.conv(x, 4, 3, 1);
        let net = b.build();
        let params = Params::init(&net, 42);
        let mut cfg = AccelConfig::eyeriss_v2();
        cfg.defence = Defence::RandomZeros {
            max_bytes: 64,
            seed: 9,
        };
        let dev = Device::new(net, params, cfg);
        let a = Tensor3::full(2, 8, 8, 0.5);
        let b = Tensor3::full(2, 8, 8, 0.25);
        // Interleaving runs of different images must not change any trace:
        // noise depends on (seed, image), not on device call history.
        let ta1 = dev.run(&a);
        let tb1 = dev.run(&b);
        let tb2 = dev.run(&b);
        let ta2 = dev.run(&a);
        assert_eq!(ta1, ta2);
        assert_eq!(tb1, tb2);
        // ...while distinct images still draw distinct noise streams.
        assert_ne!(ta1, tb1);
    }

    #[test]
    fn weight_reads_are_input_independent() {
        let dev = tiny_device();
        let a = dev.run(&Tensor3::full(2, 8, 8, 0.5));
        let b = dev.run(&Tensor3::zeros(2, 8, 8));
        // Weight-region reads (static arena below ACT_BASE) are identical
        // regardless of input; activation traffic may differ.
        let weight_reads = |t: &Trace| -> Vec<(u64, u64)> {
            t.events
                .iter()
                .filter(|e| e.kind == AccessKind::Read && e.addr < ACT_BASE)
                .map(|e| (e.addr, e.bytes))
                .collect()
        };
        assert_eq!(weight_reads(&a), weight_reads(&b));
        // The input image compresses differently: its host-DMA write volume
        // is smaller for the all-zero image.
        let first_write_bytes = |t: &Trace| -> u64 {
            t.events
                .iter()
                .take_while(|e| e.kind == AccessKind::Write)
                .map(|e| e.bytes)
                .sum()
        };
        assert!(first_write_bytes(&b) < first_write_bytes(&a));
    }

    #[test]
    fn weight_regions_disjoint_from_activation_regions() {
        let dev = tiny_device();
        let img = Tensor3::full(2, 8, 8, 0.5);
        let trace = dev.run(&img);
        for e in &trace.events {
            if e.kind == AccessKind::Write {
                assert!(e.addr >= ACT_BASE, "writes must target activations");
            }
        }
    }

    #[test]
    fn encode_timings_cover_all_compute_nodes() {
        let dev = tiny_device();
        let img = Tensor3::full(2, 8, 8, 0.5);
        let timings = dev.encode_timings(&img);
        // conv, pool, conv, gap, linear = 5 (input skipped, no flatten).
        assert_eq!(timings.len(), 5);
        for (_, t) in &timings {
            assert!(t.duration_ps > 0);
        }
    }

    #[test]
    fn nnrearch_equalizes_windows_but_not_traces() {
        let build = |defence: Defence| {
            let mut b = NetworkBuilder::new(2, 8, 8);
            let x = b.input();
            let x = b.conv(x, 4, 3, 1);
            b.conv(x, 6, 3, 1);
            let net = b.build();
            let params = Params::init(&net, 42);
            let mut cfg = AccelConfig::eyeriss_v2();
            cfg.defence = defence;
            Device::new(net, params, cfg)
        };
        let plain = build(Defence::None);
        let padded = build(Defence::NnRearch { tile: 16 });
        let img = Tensor3::full(2, 8, 8, 0.5);

        // Schedule padding rounds both conv drains up to 16 channels, so
        // the 4-channel and 6-channel layers become indistinguishable in
        // the GLB-bound window; undefended they differ.
        let w = |d: &Device| -> Vec<u64> {
            d.encode_timings(&img)
                .iter()
                .map(|(_, t)| t.duration_ps)
                .collect()
        };
        let (wp, wn) = (w(&padded), w(&plain));
        assert_ne!(wn[0], wn[1], "undefended windows must differ");
        assert_eq!(wp[0], wp[1], "NNReArch must equalize the windows");
        assert!(wp[0] > wn[1], "padding can only lengthen the drain");

        // The volume channel is untouched: every write's byte count (and
        // address) matches the undefended device event for event.
        let writes = |t: &Trace| -> Vec<(u64, u64)> {
            t.events
                .iter()
                .filter(|e| e.kind == AccessKind::Write)
                .map(|e| (e.addr, e.bytes))
                .collect()
        };
        assert_eq!(writes(&plain.run(&img)), writes(&padded.run(&img)));
    }

    #[test]
    fn gemm_calls_report_real_dims_and_respect_the_backend() {
        let mk = |cfg: AccelConfig| {
            let mut b = NetworkBuilder::new(3, 8, 8);
            let x = b.input();
            let x = b.conv(x, 4, 3, 1);
            let x = b.conv(x, 6, 3, 2);
            let x = b.global_avg_pool(x);
            b.linear(x, 3);
            let net = b.build();
            let params = Params::init(&net, 7);
            Device::new(net, params, cfg)
        };
        let gemm = mk(AccelConfig::eyeriss_v2().with_conv_backend(ConvBackend::Im2colGemm));
        let calls = gemm.gemm_calls();
        assert_eq!(calls.len(), 2, "one GEMM per conv node");
        // Dense init: m = K, k = C·3·3, n = P·Q (Same padding).
        assert_eq!(calls[0].1, hd_tensor::GemmShape { m: 4, k: 27, n: 64 });
        assert_eq!(calls[1].1, hd_tensor::GemmShape { m: 6, k: 36, n: 16 });
        // Cached: the second call returns the same slice.
        assert_eq!(gemm.gemm_calls(), calls);

        // Other backends issue no GEMM — nothing for the channel to see.
        let direct = mk(AccelConfig::eyeriss_v2().with_conv_backend(ConvBackend::Direct));
        assert!(direct.gemm_calls().is_empty());

        // NNReArch rounds every dimension up to the schedule tile.
        let mut cfg = AccelConfig::eyeriss_v2().with_conv_backend(ConvBackend::Im2colGemm);
        cfg.defence = Defence::NnRearch { tile: 16 };
        let defended = mk(cfg);
        assert_eq!(
            defended.gemm_calls()[0].1,
            hd_tensor::GemmShape {
                m: 16,
                k: 32,
                n: 64
            }
        );
    }

    #[test]
    fn psum_window_tracks_dense_output_size() {
        // Two convs with different K on the same spatial size: the encode
        // windows must scale with K when GLB-bound.
        let mk = |k: usize| {
            let mut b = NetworkBuilder::new(1, 8, 8);
            let x = b.input();
            b.conv(x, k, 3, 1);
            let net = b.build();
            let params = Params::init(&net, 7);
            Device::new(net, params, AccelConfig::eyeriss_v2())
        };
        let img = Tensor3::full(1, 8, 8, 0.3);
        let t4 = mk(4).encode_timings(&img)[0].1;
        let t8 = mk(8).encode_timings(&img)[0].1;
        let ratio = t8.duration_ps as f64 / t4.duration_ps as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "input shape")]
    fn wrong_image_shape_panics() {
        let dev = tiny_device();
        let _ = dev.run(&Tensor3::zeros(2, 4, 4));
    }

    #[test]
    fn conv_backend_does_not_change_traces_or_timings() {
        let mut b = NetworkBuilder::new(2, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.conv(x, 6, 3, 2);
        b.global_avg_pool(x);
        let net = b.build();
        let params = Params::init(&net, 42);
        let mk = |backend| {
            Device::new(
                net.clone(),
                params.clone(),
                AccelConfig::eyeriss_v2().with_conv_backend(backend),
            )
        };
        let direct = mk(hd_tensor::ConvBackend::Direct);
        let gemm = mk(hd_tensor::ConvBackend::Im2colGemm);
        let sparse = mk(hd_tensor::ConvBackend::SparseCsc);
        let dense_img = Tensor3::full(2, 8, 8, 0.5); // exercises both dense backends
        let mut stripe = Tensor3::zeros(2, 8, 8); // stripe probe: the sparse regime
        for y in 0..8 {
            stripe.set(0, y, 3, 1.0);
            stripe.set(1, y, 3, -1.0);
        }
        for img in [&dense_img, &stripe] {
            assert_eq!(direct.run(img), gemm.run(img));
            assert_eq!(direct.run(img), sparse.run(img));
            assert_eq!(direct.encode_timings(img), gemm.encode_timings(img));
            assert_eq!(direct.encode_timings(img), sparse.encode_timings(img));
        }
    }

    #[test]
    fn auto_sparse_path_matches_explicit_backends() {
        // With the default policy a sparse image routes the *default* device
        // through the cached-CSC path; a device with auto_sparse disabled
        // must produce the identical trace and timings.
        let mut b = NetworkBuilder::new(2, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.conv(x, 6, 3, 1);
        let x = b.global_avg_pool(x);
        b.linear(x, 5);
        let net = b.build();
        let params = Params::init(&net, 9);
        let auto = Device::new(net.clone(), params.clone(), AccelConfig::eyeriss_v2());
        let dense_only = Device::new(
            net,
            params,
            AccelConfig::eyeriss_v2().with_backend_policy(hd_tensor::BackendPolicy {
                auto_sparse: false,
                ..Default::default()
            }),
        );
        let mut stripe = Tensor3::zeros(2, 8, 8);
        for y in 0..8 {
            stripe.set(0, y, 5, 1.0);
        }
        assert_eq!(auto.run(&stripe), dense_only.run(&stripe));
        assert_eq!(
            auto.encode_timings(&stripe),
            dense_only.encode_timings(&stripe)
        );
    }

    #[test]
    fn int8_device_runs_and_is_deterministic() {
        let mut b = NetworkBuilder::new(2, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.conv(x, 6, 3, 1);
        let x = b.global_avg_pool(x);
        b.linear(x, 3);
        let net = b.build();
        let params = Params::init(&net, 42);
        let dev = Device::new(
            net,
            params,
            AccelConfig::eyeriss_v2().with_precision(Precision::Int8),
        );
        let img = Tensor3::full(2, 8, 8, 0.5);
        let a = dev.run(&img);
        let b = dev.run(&img);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // A fresh device over the same sealed state quantizes identically.
        let dev2 = dev.clone();
        assert_eq!(dev2.run(&img), a);
    }

    #[test]
    fn int8_compute_phase_is_shorter_but_encode_channel_persists() {
        let mut b = NetworkBuilder::new(2, 8, 8);
        let x = b.input();
        b.conv(x, 4, 3, 1);
        let net = b.build();
        let params = Params::init(&net, 42);
        let f32_dev = Device::new(net.clone(), params.clone(), AccelConfig::eyeriss_v2());
        let i8_dev = Device::new(
            net,
            params,
            AccelConfig::eyeriss_v2().with_precision(Precision::Int8),
        );
        // Compute phase: INT8 retires MACs at twice the rate.
        let f = f32_dev.compute_duration_ps(1).unwrap();
        let i = i8_dev.compute_duration_ps(1).unwrap();
        assert!(
            (i as f64 * 2.0 - f as f64).abs() <= 2.0,
            "int8 {i} ps should be half of f32 {f} ps"
        );
        // Encode timings still track output volume (the channel survives).
        let img = Tensor3::full(2, 8, 8, 0.5);
        for (_, t) in i8_dev.encode_timings(&img) {
            assert!(t.duration_ps > 0);
        }
    }

    // Regression tests for the panics that `DeviceError` replaced: graphs
    // below are unreachable via NetworkBuilder, so they are assembled raw.

    /// A stray second `Input` node feeding a conv. `forward` succeeds (Input
    /// nodes just clone the image), but the device allocates no DRAM region
    /// for the stray input — this used to panic with "producer ran earlier".
    #[test]
    fn stray_input_yields_missing_producer_error() {
        use hd_dnn::graph::{ConvSpec, Node, ValueShape};
        use hd_tensor::Shape3;
        let shape = Shape3::new(2, 8, 8);
        let spec = ConvSpec::standard(4, 3, 1);
        let net = Network::from_raw_parts(
            vec![
                Node {
                    op: Op::Input,
                    inputs: vec![],
                },
                Node {
                    op: Op::Input,
                    inputs: vec![],
                },
                Node {
                    op: Op::Conv(spec),
                    inputs: vec![1],
                },
            ],
            shape,
            vec![
                ValueShape::Map(shape),
                ValueShape::Map(shape),
                ValueShape::Map(Shape3::new(4, 8, 8)),
            ],
            vec!["input0".into(), "input1".into(), "conv2".into()],
        );
        let params = Params::init(&net, 1);
        let dev = Device::new_unchecked(net, params, AccelConfig::eyeriss_v2());
        let err = dev.try_run(&Tensor3::full(2, 8, 8, 0.5)).unwrap_err();
        assert_eq!(err, DeviceError::MissingProducer { node: 2, input: 1 });
        assert!(err.to_string().contains("no DRAM region"));
    }

    /// A conv node whose recorded output shape is a vector. `forward` is
    /// shape-oblivious, but the MAC estimate used to hit `as_map().unwrap()`.
    #[test]
    fn vector_shaped_conv_yields_not_a_map_error() {
        use hd_dnn::graph::{ConvSpec, Node, ValueShape};
        use hd_tensor::Shape3;
        let shape = Shape3::new(2, 8, 8);
        let spec = ConvSpec::standard(4, 3, 1);
        let net = Network::from_raw_parts(
            vec![
                Node {
                    op: Op::Input,
                    inputs: vec![],
                },
                Node {
                    op: Op::Conv(spec),
                    inputs: vec![0],
                },
            ],
            shape,
            vec![ValueShape::Map(shape), ValueShape::Vector(4 * 8 * 8)],
            vec!["input0".into(), "conv1".into()],
        );
        let params = Params::init(&net, 1);
        let dev = Device::new_unchecked(net, params, AccelConfig::eyeriss_v2());
        let img = Tensor3::full(2, 8, 8, 0.5);
        let err = dev.try_run(&img).unwrap_err();
        assert_eq!(err, DeviceError::NotAMap { node: 1 });
        let err = dev
            .try_energy_estimate(&img, &crate::energy::EnergyModel::default())
            .unwrap_err();
        assert_eq!(err, DeviceError::NotAMap { node: 1 });
    }

    #[test]
    #[should_panic(expected = "no DRAM region")]
    fn run_wrapper_panics_with_typed_message() {
        use hd_dnn::graph::{ConvSpec, Node, ValueShape};
        use hd_tensor::Shape3;
        let shape = Shape3::new(2, 8, 8);
        let net = Network::from_raw_parts(
            vec![
                Node {
                    op: Op::Input,
                    inputs: vec![],
                },
                Node {
                    op: Op::Input,
                    inputs: vec![],
                },
                Node {
                    op: Op::Conv(ConvSpec::standard(4, 3, 1)),
                    inputs: vec![1],
                },
            ],
            shape,
            vec![
                ValueShape::Map(shape),
                ValueShape::Map(shape),
                ValueShape::Map(Shape3::new(4, 8, 8)),
            ],
            vec!["input0".into(), "input1".into(), "conv2".into()],
        );
        let params = Params::init(&net, 1);
        let dev = Device::new_unchecked(net, params, AccelConfig::eyeriss_v2());
        let _ = dev.run(&Tensor3::full(2, 8, 8, 0.5));
    }
}
