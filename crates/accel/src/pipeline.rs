//! Event-level simulation of the on-the-fly encoding pipeline (paper
//! Fig. 3): GLB rows are read one per cycle into the encoding module,
//! compressed bytes accumulate in a small double buffer, and full bursts
//! drain to DRAM at the channel's bandwidth.
//!
//! [`crate::encoder::encode_timing`] models the same pipeline analytically
//! as `max(GLB time, DRAM time)`; this module exists to *validate* that
//! closed form — the tests check the two agree within the pipeline's
//! fill/drain transients, which is exactly the approximation error the
//! paper accepts ("we found this small inaccuracy to be acceptable").

use crate::config::AccelConfig;
use crate::encoder::EncodeBound;
use hd_tensor::cast;

/// Result of the event-level pipeline simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineResult {
    /// Time of the first DRAM burst, in picoseconds from drain start.
    pub first_write_ps: u64,
    /// Time of the last DRAM burst.
    pub last_write_ps: u64,
    /// Total bursts issued.
    pub bursts: u64,
    /// Which side the simulation found limiting (by final stall counts).
    pub bound: EncodeBound,
}

impl PipelineResult {
    /// The attacker-visible window.
    pub fn observable_window_ps(&self) -> u64 {
        self.last_write_ps.saturating_sub(self.first_write_ps)
    }
}

/// Simulates draining `psum_elems` dense accumulators that compress to
/// `compressed_bytes`, cycle by cycle.
///
/// Model: each core cycle the encoder consumes one GLB row
/// (`banks * words` psum elements) and emits the row's share of the
/// compressed output into a buffer of two bursts; whenever a full burst is
/// buffered it is handed to DRAM, which transfers one burst every
/// `burst_bytes / bandwidth` seconds and makes the encoder stall when the
/// buffer is full.
///
/// # Panics
///
/// Panics if the configuration has a zero-size GLB row or zero bandwidth.
pub fn simulate_drain(cfg: &AccelConfig, psum_elems: u64, compressed_bytes: u64) -> PipelineResult {
    let row_elems = cast::usize_to_u64(cfg.glb_banks * cfg.bank_words);
    assert!(row_elems > 0, "GLB row must hold at least one element");
    let dram_bw = cfg.dram.bandwidth_bytes_per_sec();
    assert!(dram_bw > 0.0, "DRAM bandwidth must be positive");

    let cycle_ps = cast::f64_round_to_u64(1e6 / (cfg.freq_mhz * cfg.glb_bandwidth_scale)); // ps per row read
    let burst_ps = cast::f64_round_to_u64(cfg.burst_bytes as f64 / dram_bw * 1e12);

    let rows = psum_elems.div_ceil(row_elems).max(1);
    let bytes_per_row = compressed_bytes as f64 / rows as f64;

    // Encoder state.
    let mut buffered = 0.0f64; // compressed bytes waiting in the buffer
    let buffer_cap = (2 * cfg.burst_bytes) as f64;
    let mut emitted_bursts = 0u64;
    let total_bursts = compressed_bytes.div_ceil(cfg.burst_bytes);

    let mut now_ps = 0u64;
    let mut dram_free_at = 0u64;
    let mut first_write = None;
    let mut last_write = 0u64;
    let mut glb_stalls = 0u64;
    let mut dram_idle = 0u64;

    for _row in 0..rows {
        // Stall if the buffer cannot absorb this row's output.
        while buffered + bytes_per_row > buffer_cap {
            // Wait for DRAM to take a burst.
            let start = now_ps.max(dram_free_at);
            let done = start + burst_ps;
            if buffered >= cfg.burst_bytes as f64 || emitted_bursts + 1 == total_bursts {
                buffered = (buffered - cfg.burst_bytes as f64).max(0.0);
                emitted_bursts += 1;
                first_write.get_or_insert(start);
                last_write = done;
                glb_stalls += done.saturating_sub(now_ps);
                now_ps = now_ps.max(done);
                dram_free_at = done;
            } else {
                break;
            }
        }
        now_ps += cycle_ps;
        buffered += bytes_per_row;
        // Opportunistically drain full bursts that DRAM can take now.
        while buffered >= cfg.burst_bytes as f64
            && dram_free_at <= now_ps
            && emitted_bursts < total_bursts
        {
            let start = now_ps.max(dram_free_at);
            dram_idle += start.saturating_sub(dram_free_at);
            let done = start + burst_ps;
            buffered -= cfg.burst_bytes as f64;
            emitted_bursts += 1;
            first_write.get_or_insert(start);
            last_write = done;
            dram_free_at = done;
        }
    }
    // Flush the tail.
    while emitted_bursts < total_bursts {
        let start = now_ps.max(dram_free_at);
        let done = start + burst_ps;
        buffered = (buffered - cfg.burst_bytes as f64).max(0.0);
        emitted_bursts += 1;
        first_write.get_or_insert(start);
        last_write = done;
        dram_free_at = done;
        now_ps = done;
    }

    PipelineResult {
        first_write_ps: first_write.unwrap_or(0),
        last_write_ps: last_write,
        bursts: emitted_bursts,
        bound: if glb_stalls > dram_idle {
            EncodeBound::DramBound
        } else {
            EncodeBound::GlbBound
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DramConfig, DramKind};
    use crate::encoder::encode_timing;

    fn stock() -> AccelConfig {
        AccelConfig::eyeriss_v2()
    }

    #[test]
    fn event_sim_matches_analytic_when_glb_bound() {
        let cfg = stock();
        // Typical layer: 64x16x16 psums at ~35% output density (8-bit).
        let psums = 64 * 16 * 16u64;
        let compressed = (psums as f64 * 0.35) as u64 + psums / 8;
        let analytic = encode_timing(&cfg, psums, compressed);
        let sim = simulate_drain(&cfg, psums, compressed);
        assert_eq!(analytic.bound, EncodeBound::GlbBound);
        assert_eq!(sim.bound, EncodeBound::GlbBound);
        let a = analytic.observable_window_ps() as f64;
        let s = sim.observable_window_ps() as f64;
        assert!((a - s).abs() / a < 0.15, "analytic {a} vs event-level {s}");
    }

    #[test]
    fn event_sim_matches_analytic_when_dram_bound() {
        // Starve DRAM: huge GLB bandwidth + slow single-channel LPDDR3 and a
        // barely-compressible output.
        let cfg = stock()
            .with_glb_scale(50.0)
            .with_dram(DramConfig::new(DramKind::Lpddr3, 1));
        let psums = 32 * 1024u64;
        let compressed = psums; // 1 byte per element, incompressible
        let analytic = encode_timing(&cfg, psums, compressed);
        let sim = simulate_drain(&cfg, psums, compressed);
        assert_eq!(analytic.bound, EncodeBound::DramBound);
        assert_eq!(sim.bound, EncodeBound::DramBound);
        let a = analytic.duration_ps as f64;
        let s = sim.last_write_ps as f64;
        assert!((a - s).abs() / a < 0.15, "analytic {a} vs event-level {s}");
    }

    #[test]
    fn window_scales_linearly_with_psums_in_event_sim() {
        let cfg = stock();
        let w = |psums: u64| {
            let compressed = (psums as f64 * 0.4) as u64;
            simulate_drain(&cfg, psums, compressed).observable_window_ps() as f64
        };
        let ratio = w(80_000) / w(40_000);
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn burst_accounting_is_exact() {
        let cfg = stock();
        let sim = simulate_drain(&cfg, 10_000, 3_333);
        assert_eq!(sim.bursts, 3_333u64.div_ceil(cfg.burst_bytes));
        assert!(sim.first_write_ps <= sim.last_write_ps);
    }

    #[test]
    fn tiny_tensor_single_burst() {
        let cfg = stock();
        let sim = simulate_drain(&cfg, 16, 10);
        assert_eq!(sim.bursts, 1);
    }
}
