//! Sparse-accelerator + DRAM simulator (the paper's victim device).
//!
//! Models an Eyeriss-v2-class edge accelerator executing a pruned CNN
//! layerwise with two-sided sparsity:
//!
//! * weights and activations cross the DRAM bus *compressed*
//!   ([`hd_tensor::CompressionScheme`]),
//! * dense partial sums are drained through an on-the-fly encoder whose
//!   timing is bounded by the GLB or the DRAM side ([`encoder`]),
//! * every bus burst is visible to a physical probe as a [`TraceEvent`] —
//!   the attacker's entire view of the system.
//!
//! # Examples
//!
//! ```
//! use hd_accel::{AccelConfig, Device};
//! use hd_dnn::graph::{NetworkBuilder, Params};
//! use hd_tensor::Tensor3;
//!
//! let mut b = NetworkBuilder::new(1, 8, 8);
//! let x = b.input();
//! b.conv(x, 4, 3, 1);
//! let net = b.build();
//! let params = Params::init(&net, 0);
//! let device = Device::new(net, params, AccelConfig::eyeriss_v2());
//! let trace = device.run(&Tensor3::full(1, 8, 8, 0.5));
//! assert!(!trace.is_empty());
//! ```

pub mod config;
pub mod defence;
pub mod device;
pub mod encoder;
pub mod energy;
pub mod pipeline;
pub mod trace_event;

pub use config::{AccelConfig, AccelConfigBuilder, ConfigError, DramConfig, DramKind, Precision};
pub use defence::Defence;
pub use device::{Device, DeviceError, Oracle};
pub use encoder::{encode_timing, EncodeBound, EncodeTiming};
pub use energy::{EnergyModel, EnergyReport};
pub use pipeline::{simulate_drain, PipelineResult};
pub use trace_event::{AccessKind, Trace, TraceEvent, TraceSink};
