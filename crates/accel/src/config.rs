//! Accelerator and DRAM configuration.

use crate::defence::Defence;
use hd_tensor::cast;
use hd_tensor::{BackendPolicy, CompressionScheme, ConvBackend};
use std::fmt;

/// DRAM generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DramKind {
    /// LPDDR3 (JESD209-3).
    Lpddr3,
    /// LPDDR4 (JESD209-4).
    Lpddr4,
    /// LPDDR4X (JESD209-4-1).
    Lpddr4x,
}

impl DramKind {
    /// All generations the paper evaluates.
    pub const ALL: [DramKind; 3] = [DramKind::Lpddr3, DramKind::Lpddr4, DramKind::Lpddr4x];
}

impl fmt::Display for DramKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramKind::Lpddr3 => write!(f, "LPDDR3"),
            DramKind::Lpddr4 => write!(f, "LPDDR4"),
            DramKind::Lpddr4x => write!(f, "LPDDR4X"),
        }
    }
}

/// A DRAM part: generation + channel count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Generation.
    pub kind: DramKind,
    /// 1 (single) or 2 (dual) channels.
    pub channels: u8,
}

impl DramConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics unless `channels` is 1 or 2.
    pub fn new(kind: DramKind, channels: u8) -> Self {
        assert!(channels == 1 || channels == 2, "1 or 2 channels supported");
        DramConfig { kind, channels }
    }

    /// Peak bandwidth in bytes per second (mobile x32-per-channel parts at
    /// typical data rates: LPDDR3-1600, LPDDR4-2133(x2 effective), LPDDR4X-2666).
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        let per_channel = match self.kind {
            DramKind::Lpddr3 => 6.4e9,
            DramKind::Lpddr4 => 8.5e9,
            DramKind::Lpddr4x => 10.7e9,
        };
        per_channel * self.channels as f64
    }

    /// The six configurations of the paper's §8.2 bandwidth table.
    pub fn paper_sweep() -> Vec<DramConfig> {
        let mut v = Vec::new();
        for kind in DramKind::ALL {
            for ch in [1u8, 2] {
                v.push(DramConfig::new(kind, ch));
            }
        }
        v
    }
}

impl fmt::Display for DramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-{}",
            self.kind,
            if self.channels == 1 { "s" } else { "d" }
        )
    }
}

/// Numeric precision of the PE-array datapath.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full-precision f32 execution (the repo's bit-identity baseline).
    #[default]
    F32,
    /// INT8 post-training-quantized execution: the device builds a
    /// [`hd_dnn::quantize::QuantizedNet`] on first use (BN folded, i32
    /// accumulators) and runs every inference through it. INT8 MAC units
    /// retire two MACs per f32-equivalent cycle slot, halving the compute
    /// phase; the encoding channel sees the dequantized activations.
    Int8,
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::F32 => write!(f, "f32"),
            Precision::Int8 => write!(f, "int8"),
        }
    }
}

/// Full accelerator configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct AccelConfig {
    /// Number of psum GLB banks readable in parallel.
    pub glb_banks: usize,
    /// Words per GLB bank row.
    pub bank_words: usize,
    /// Accumulator (psum) width in bits.
    pub acc_bits: u32,
    /// Activation width in bits (post-quantization).
    pub act_bits: u32,
    /// Weight width in bits.
    pub weight_bits: u32,
    /// Core clock in MHz.
    pub freq_mhz: f64,
    /// Activation transfer codec.
    pub act_scheme: CompressionScheme,
    /// Weight transfer codec.
    pub weight_scheme: CompressionScheme,
    /// External memory.
    pub dram: DramConfig,
    /// DRAM burst size in bytes (one trace event per burst).
    pub burst_bytes: u64,
    /// Effective MACs retired per cycle (PE-array throughput for the compute
    /// phase; only affects inter-layer spacing, not the encoding channel).
    pub macs_per_cycle: f64,
    /// Multiplier applied to the GLB drain bandwidth (1.0 = stock Eyeriss
    /// v2); the §8.2 experiment sweeps this to find the DRAM-bound flip.
    pub glb_bandwidth_scale: f64,
    /// Volume-channel countermeasure applied by the post-processing unit.
    pub defence: Defence,
    /// On-chip weight buffer capacity in bytes. Layers whose compressed
    /// weights exceed it execute in multiple passes, re-reading their
    /// input activations once per pass (tiled execution).
    pub weight_glb_bytes: u64,
    /// Reuse freed activation buffers in DRAM instead of bump-allocating a
    /// fresh region per tensor. Exercises the paper's footnote 4: each
    /// write then creates a new "version" of the address, which the
    /// attacker must disambiguate by time (see `hd_trace::analyze_versioned`).
    pub reuse_activations: bool,
    /// Execute batch normalization as a separate pass: the convolution
    /// writes its *dense* pre-BN partial sums to DRAM, and a second pass
    /// reads them back, normalizes, applies ReLU, and writes the
    /// compressed result. The paper (§2, "Broader application") notes this
    /// relaxation hands the attacker exact tensor volumes — see
    /// `huffduff_core::reversecnn::exact_channels_from_dense_psums`.
    pub separate_batch_norm: bool,
    /// Host-side convolution backend used to simulate the victim's
    /// functional execution. Backends are bit-identical, so traces and
    /// timings are backend-invariant; this only changes simulation speed.
    pub conv_backend: ConvBackend,
    /// Density thresholds steering the host-side kernel dispatch, including
    /// whether sparse probe images auto-upgrade to the cached
    /// [`ConvBackend::SparseCsc`] path. Like the backend, it never changes
    /// traces or timings — only simulation speed.
    pub backend_policy: BackendPolicy,
    /// PE-array numeric precision. Unlike the backend knobs this *does*
    /// change the functional output (INT8 is a lossy deployment transform),
    /// which is exactly what the quantization experiments measure.
    pub compute: Precision,
}

/// A rejected accelerator configuration (from [`AccelConfig::builder`]).
///
/// Struct-literal construction stays possible and unvalidated — presets and
/// tests may build exotic configs directly — but everything that goes
/// through the builder is checked here instead of failing deep inside a
/// simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// DRAM channel count outside the supported 1..=2 range (0 would be a
    /// device with no external memory at all).
    DramChannels {
        /// The rejected channel count.
        got: u8,
    },
    /// A structurally required count (GLB banks, bank words, burst bytes,
    /// bit widths) was zero.
    ZeroField {
        /// Which field was zero.
        field: &'static str,
    },
    /// A rate (clock frequency, MACs per cycle, bandwidth scale) was not a
    /// positive finite number.
    NonPositiveRate {
        /// Which field was rejected.
        field: &'static str,
        /// The rejected value.
        got: f64,
    },
    /// The configuration is self-consistent but rejects the model it was
    /// built for (see [`AccelConfigBuilder::build_for`]).
    Model {
        /// The verifier's findings, in node order.
        diagnostics: Vec<hd_dnn::verify::Diagnostic>,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::DramChannels { got } => {
                write!(f, "DRAM channels must be 1 or 2, got {got}")
            }
            ConfigError::ZeroField { field } => write!(f, "{field} must be nonzero"),
            ConfigError::NonPositiveRate { field, got } => {
                write!(f, "{field} must be positive and finite, got {got}")
            }
            ConfigError::Model { diagnostics } => {
                write!(f, "configuration rejects the model:")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`AccelConfig`], seeded from a preset.
///
/// ```
/// use hd_accel::{AccelConfig, DramConfig, DramKind};
/// let cfg = AccelConfig::builder()
///     .dram(DramKind::Lpddr4x, 2)
///     .freq_mhz(400.0)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.dram, DramConfig::new(DramKind::Lpddr4x, 2));
///
/// assert!(AccelConfig::builder().dram(DramKind::Lpddr3, 0).build().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct AccelConfigBuilder {
    cfg: AccelConfig,
    dram_kind: DramKind,
    dram_channels: u8,
}

impl AccelConfigBuilder {
    fn from_preset(cfg: AccelConfig) -> Self {
        AccelConfigBuilder {
            dram_kind: cfg.dram.kind,
            dram_channels: cfg.dram.channels,
            cfg,
        }
    }

    /// External DRAM part. Channel counts are validated at [`build`]
    /// (`AccelConfigBuilder::build`), not here, so invalid values surface
    /// as a [`ConfigError`] rather than a panic.
    pub fn dram(mut self, kind: DramKind, channels: u8) -> Self {
        self.dram_kind = kind;
        self.dram_channels = channels;
        self
    }

    /// Core clock in MHz.
    pub fn freq_mhz(mut self, mhz: f64) -> Self {
        self.cfg.freq_mhz = mhz;
        self
    }

    /// Activation and weight transfer codecs.
    pub fn schemes(mut self, act: CompressionScheme, weight: CompressionScheme) -> Self {
        self.cfg.act_scheme = act;
        self.cfg.weight_scheme = weight;
        self
    }

    /// Volume-channel defence.
    pub fn defence(mut self, defence: Defence) -> Self {
        self.cfg.defence = defence;
        self
    }

    /// Host-side convolution backend.
    pub fn conv_backend(mut self, backend: ConvBackend) -> Self {
        self.cfg.conv_backend = backend;
        self
    }

    /// Kernel-dispatch policy.
    pub fn backend_policy(mut self, policy: BackendPolicy) -> Self {
        self.cfg.backend_policy = policy;
        self
    }

    /// PE-array numeric precision.
    pub fn precision(mut self, compute: Precision) -> Self {
        self.cfg.compute = compute;
        self
    }

    /// GLB drain bandwidth multiplier.
    pub fn glb_scale(mut self, scale: f64) -> Self {
        self.cfg.glb_bandwidth_scale = scale;
        self
    }

    /// Psum GLB geometry: parallel banks and words per bank row.
    pub fn glb_geometry(mut self, banks: usize, bank_words: usize) -> Self {
        self.cfg.glb_banks = banks;
        self.cfg.bank_words = bank_words;
        self
    }

    /// On-chip weight buffer capacity in bytes.
    pub fn weight_glb_bytes(mut self, bytes: u64) -> Self {
        self.cfg.weight_glb_bytes = bytes;
        self
    }

    /// DRAM burst size in bytes.
    pub fn burst_bytes(mut self, bytes: u64) -> Self {
        self.cfg.burst_bytes = bytes;
        self
    }

    /// Recycle freed DRAM activation buffers (paper footnote 4).
    pub fn reuse_activations(mut self, on: bool) -> Self {
        self.cfg.reuse_activations = on;
        self
    }

    /// Run batch norm as a separate dense-psum pass (paper §2).
    pub fn separate_batch_norm(mut self, on: bool) -> Self {
        self.cfg.separate_batch_norm = on;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for unsupported DRAM channel counts, zero
    /// structural counts, or non-positive rates.
    pub fn build(self) -> Result<AccelConfig, ConfigError> {
        if !(1..=2).contains(&self.dram_channels) {
            return Err(ConfigError::DramChannels {
                got: self.dram_channels,
            });
        }
        let mut cfg = self.cfg;
        cfg.dram = DramConfig {
            kind: self.dram_kind,
            channels: self.dram_channels,
        };
        for (field, value) in [
            ("glb_banks", cast::usize_to_u64(cfg.glb_banks)),
            ("bank_words", cast::usize_to_u64(cfg.bank_words)),
            ("acc_bits", u64::from(cfg.acc_bits)),
            ("act_bits", u64::from(cfg.act_bits)),
            ("weight_bits", u64::from(cfg.weight_bits)),
            ("burst_bytes", cfg.burst_bytes),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroField { field });
            }
        }
        for (field, value) in [
            ("freq_mhz", cfg.freq_mhz),
            ("macs_per_cycle", cfg.macs_per_cycle),
            ("glb_bandwidth_scale", cfg.glb_bandwidth_scale),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ConfigError::NonPositiveRate { field, got: value });
            }
        }
        Ok(cfg)
    }

    /// [`build`](AccelConfigBuilder::build), then statically verifies the
    /// configuration against the network it will execute (and its params,
    /// when available): shape consistency, weight-buffer pass counts, and
    /// backend preconditions — the same pass [`crate::Device::try_new`]
    /// runs, surfaced at configuration time.
    ///
    /// # Errors
    ///
    /// Returns the builder's own [`ConfigError`]s first; then
    /// [`ConfigError::Model`] carrying the verifier's diagnostics if the
    /// config rejects the network.
    pub fn build_for(
        self,
        net: &hd_dnn::Network,
        params: Option<&hd_dnn::Params>,
    ) -> Result<AccelConfig, ConfigError> {
        let cfg = self.build()?;
        hd_dnn::verify::verify_strict(net, params, &cfg.verify_limits()).map_err(|e| {
            ConfigError::Model {
                diagnostics: e.diagnostics,
            }
        })?;
        Ok(cfg)
    }
}

impl AccelConfig {
    /// A validating builder seeded with the [`AccelConfig::eyeriss_v2`]
    /// preset. Use [`AccelConfig::builder_from`] to start elsewhere.
    pub fn builder() -> AccelConfigBuilder {
        AccelConfigBuilder::from_preset(AccelConfig::eyeriss_v2())
    }

    /// A validating builder seeded with an arbitrary base configuration.
    pub fn builder_from(base: AccelConfig) -> AccelConfigBuilder {
        AccelConfigBuilder::from_preset(base)
    }

    /// Eyeriss-v2-like defaults (paper §8.2): 8 psum GLB banks x 3 words,
    /// 20-bit accumulators, 8-bit activations, 200 MHz, bitmap codec,
    /// single-channel LPDDR4.
    pub fn eyeriss_v2() -> Self {
        AccelConfig {
            glb_banks: 8,
            bank_words: 3,
            acc_bits: 20,
            act_bits: 8,
            weight_bits: 8,
            freq_mhz: 200.0,
            act_scheme: CompressionScheme::Bitmap,
            weight_scheme: CompressionScheme::Bitmap,
            dram: DramConfig::new(DramKind::Lpddr4, 1),
            burst_bytes: 64,
            macs_per_cycle: 192.0,
            glb_bandwidth_scale: 1.0,
            defence: Defence::None,
            // Eyeriss v2 carries ~192 KB of GLB; weights get the bulk.
            weight_glb_bytes: 128 * 1024,
            reuse_activations: false,
            separate_batch_norm: false,
            conv_backend: ConvBackend::default(),
            backend_policy: BackendPolicy::default(),
            compute: Precision::F32,
        }
    }

    /// SCNN-like preset (Parashar et al. 2017): wider 24-bit accumulators,
    /// a larger psum buffer organization, and CSC-style transfer encoding.
    /// Useful for checking that the attack does not depend on Eyeriss-v2
    /// specifics (the paper claims generality across sparse accelerators).
    pub fn scnn_like() -> Self {
        AccelConfig {
            glb_banks: 32,
            bank_words: 1,
            acc_bits: 24,
            act_bits: 8,
            weight_bits: 8,
            freq_mhz: 800.0,
            act_scheme: CompressionScheme::Csc { offset_bits: 12 },
            weight_scheme: CompressionScheme::Csc { offset_bits: 12 },
            dram: DramConfig::new(DramKind::Lpddr4, 2),
            burst_bytes: 64,
            macs_per_cycle: 1024.0,
            glb_bandwidth_scale: 1.0,
            defence: Defence::None,
            weight_glb_bytes: 512 * 1024,
            reuse_activations: false,
            separate_batch_norm: false,
            conv_backend: ConvBackend::default(),
            backend_policy: BackendPolicy::default(),
            compute: Precision::F32,
        }
    }

    /// Same accelerator with a different DRAM part.
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.dram = dram;
        self
    }

    /// Same accelerator with a scaled GLB drain bandwidth.
    pub fn with_glb_scale(mut self, scale: f64) -> Self {
        self.glb_bandwidth_scale = scale;
        self
    }

    /// Same accelerator with different transfer codecs.
    pub fn with_schemes(mut self, act: CompressionScheme, weight: CompressionScheme) -> Self {
        self.act_scheme = act;
        self.weight_scheme = weight;
        self
    }

    /// Same accelerator with a volume-channel defence enabled.
    pub fn with_defence(mut self, defence: Defence) -> Self {
        self.defence = defence;
        self
    }

    /// Same accelerator with an explicit host-side convolution backend.
    pub fn with_conv_backend(mut self, backend: ConvBackend) -> Self {
        self.conv_backend = backend;
        self
    }

    /// Same accelerator with an explicit kernel-dispatch policy.
    pub fn with_backend_policy(mut self, policy: BackendPolicy) -> Self {
        self.backend_policy = policy;
        self
    }

    /// Same accelerator with an explicit PE-array precision.
    pub fn with_precision(mut self, compute: Precision) -> Self {
        self.compute = compute;
        self
    }

    /// GLB psum drain bandwidth in bytes per second:
    /// `banks x words x acc_bits` per cycle.
    pub fn glb_bandwidth_bytes_per_sec(&self) -> f64 {
        let bits_per_cycle = (self.glb_banks * self.bank_words) as f64 * self.acc_bits as f64;
        bits_per_cycle / 8.0 * self.freq_mhz * 1e6 * self.glb_bandwidth_scale
    }

    /// Bytes occupied by one dense psum element.
    pub fn acc_bytes(&self) -> f64 {
        self.acc_bits as f64 / 8.0
    }

    /// Lowers this configuration into the capacity limits and backend
    /// requirements [`hd_dnn::verify`] checks a network against.
    ///
    /// The pass ceiling of 64 tolerates every tiled schedule the simulator
    /// models (the zoo's largest layer needs ~21 passes through the
    /// Eyeriss-v2 weight buffer) while rejecting config/model pairings
    /// whose re-read traffic would dwarf the computation.
    pub fn verify_limits(&self) -> hd_dnn::verify::Limits {
        hd_dnn::verify::Limits {
            weight_glb_bytes: Some(self.weight_glb_bytes),
            weight_bits: self.weight_bits,
            weight_scheme: self.weight_scheme,
            max_weight_passes: 64,
            require_sparse_eligible: self.conv_backend == ConvBackend::SparseCsc
                || self.backend_policy.auto_sparse,
        }
    }
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig::eyeriss_v2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eyeriss_glb_bandwidth() {
        let cfg = AccelConfig::eyeriss_v2();
        // 8 banks x 3 words x 20 bits = 480 bits/cycle @ 200 MHz = 12 GB/s.
        assert!((cfg.glb_bandwidth_bytes_per_sec() - 12.0e9).abs() < 1e6);
    }

    #[test]
    fn dual_channel_doubles_bandwidth() {
        let s = DramConfig::new(DramKind::Lpddr4, 1);
        let d = DramConfig::new(DramKind::Lpddr4, 2);
        assert!((d.bandwidth_bytes_per_sec() - 2.0 * s.bandwidth_bytes_per_sec()).abs() < 1.0);
    }

    #[test]
    fn bandwidth_ordering_matches_generations() {
        let b = |k| DramConfig::new(k, 1).bandwidth_bytes_per_sec();
        assert!(b(DramKind::Lpddr3) < b(DramKind::Lpddr4));
        assert!(b(DramKind::Lpddr4) < b(DramKind::Lpddr4x));
    }

    #[test]
    fn paper_sweep_has_six_configs() {
        assert_eq!(DramConfig::paper_sweep().len(), 6);
    }

    #[test]
    fn display_names() {
        assert_eq!(DramConfig::new(DramKind::Lpddr3, 1).to_string(), "LPDDR3-s");
        assert_eq!(
            DramConfig::new(DramKind::Lpddr4x, 2).to_string(),
            "LPDDR4X-d"
        );
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn invalid_channels_panic() {
        let _ = DramConfig::new(DramKind::Lpddr3, 3);
    }

    #[test]
    fn scnn_preset_is_self_consistent() {
        let cfg = AccelConfig::scnn_like();
        // 32 banks x 1 word x 24 bits @ 800 MHz = 76.8 GB/s.
        assert!((cfg.glb_bandwidth_bytes_per_sec() - 76.8e9).abs() < 1e6);
        assert_eq!(cfg.acc_bits, 24);
        assert!(matches!(cfg.act_scheme, CompressionScheme::Csc { .. }));
    }

    #[test]
    fn presets_default_to_auto_sparse_policy() {
        for cfg in [AccelConfig::eyeriss_v2(), AccelConfig::scnn_like()] {
            assert_eq!(cfg.backend_policy, BackendPolicy::default());
            assert!(cfg.backend_policy.auto_sparse);
        }
        let off = AccelConfig::eyeriss_v2().with_backend_policy(BackendPolicy {
            auto_sparse: false,
            ..BackendPolicy::default()
        });
        assert!(!off.backend_policy.auto_sparse);
    }

    #[test]
    fn builder_defaults_match_eyeriss_preset() {
        assert_eq!(
            AccelConfig::builder().build().unwrap(),
            AccelConfig::eyeriss_v2()
        );
        assert_eq!(
            AccelConfig::builder_from(AccelConfig::scnn_like())
                .build()
                .unwrap(),
            AccelConfig::scnn_like()
        );
    }

    #[test]
    fn builder_applies_setters() {
        let cfg = AccelConfig::builder()
            .dram(DramKind::Lpddr4x, 2)
            .freq_mhz(400.0)
            .glb_geometry(16, 2)
            .burst_bytes(32)
            .reuse_activations(true)
            .separate_batch_norm(true)
            .build()
            .unwrap();
        assert_eq!(cfg.dram, DramConfig::new(DramKind::Lpddr4x, 2));
        assert_eq!(cfg.freq_mhz, 400.0);
        assert_eq!((cfg.glb_banks, cfg.bank_words), (16, 2));
        assert_eq!(cfg.burst_bytes, 32);
        assert!(cfg.reuse_activations && cfg.separate_batch_norm);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert_eq!(
            AccelConfig::builder().dram(DramKind::Lpddr3, 0).build(),
            Err(ConfigError::DramChannels { got: 0 })
        );
        assert_eq!(
            AccelConfig::builder().dram(DramKind::Lpddr3, 3).build(),
            Err(ConfigError::DramChannels { got: 3 })
        );
        assert_eq!(
            AccelConfig::builder().glb_geometry(0, 3).build(),
            Err(ConfigError::ZeroField { field: "glb_banks" })
        );
        assert_eq!(
            AccelConfig::builder().burst_bytes(0).build(),
            Err(ConfigError::ZeroField {
                field: "burst_bytes"
            })
        );
        let err = AccelConfig::builder().freq_mhz(0.0).build().unwrap_err();
        assert!(matches!(
            err,
            ConfigError::NonPositiveRate {
                field: "freq_mhz",
                ..
            }
        ));
        assert!(err.to_string().contains("freq_mhz"));
        assert!(AccelConfig::builder().glb_scale(f64::NAN).build().is_err());
    }

    #[test]
    fn glb_scale_multiplies() {
        let base = AccelConfig::eyeriss_v2();
        let scaled = base.clone().with_glb_scale(2.0);
        assert!(
            (scaled.glb_bandwidth_bytes_per_sec() - 2.0 * base.glb_bandwidth_bytes_per_sec()).abs()
                < 1.0
        );
    }
}
