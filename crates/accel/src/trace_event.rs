//! DRAM bus trace events — exactly what a hardware bus probe (HMTT-style)
//! would capture: time, address, direction, and burst size. Contents are
//! deliberately absent (the threat model assumes encrypted data).

use std::fmt;

/// Bus transfer direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Chip reads from DRAM.
    Read,
    /// Chip writes to DRAM.
    Write,
}

/// One observed DRAM burst.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Time of the burst in picoseconds from trace start.
    pub time_ps: u64,
    /// Starting byte address.
    pub addr: u64,
    /// Direction.
    pub kind: AccessKind,
    /// Burst length in bytes.
    pub bytes: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        };
        write!(
            f,
            "{:>12}ps {k} 0x{:08x} +{}",
            self.time_ps, self.addr, self.bytes
        )
    }
}

/// A consumer of bus events as the device emits them.
///
/// This is the streaming observation surface: a hardware bus probe hands
/// the attacker one burst at a time, and an incremental analyzer (e.g.
/// `hd-trace`'s `StreamingAnalyzer`) can fold each event into running
/// state instead of materializing the full event vector. The buffered
/// [`Trace`] is itself a sink (it just pushes), so golden-trace fixtures
/// and CSV interchange keep working unchanged.
///
/// The contract mirrors what the bus delivers:
///
/// * events arrive in nondecreasing `time_ps` order (the device emits
///   chronologically; analyzers may treat violations as errors),
/// * one device run feeds exactly one sink from start to finish — sinks
///   carry per-run state and are not reused across runs,
/// * `event` must not panic on well-formed input; analyzers report
///   malformed streams when their `finish`-style method is called.
pub trait TraceSink {
    /// Consumes one bus event.
    fn event(&mut self, e: TraceEvent);
}

/// A full run's worth of bus events, in chronological order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Chronological events.
    pub events: Vec<TraceEvent>,
}

/// The buffering sink: retains every event. This is the thin adapter that
/// keeps golden-trace fixtures byte-identical under the streaming API.
impl TraceSink for Trace {
    fn event(&mut self, e: TraceEvent) {
        self.events.push(e);
    }
}

impl Trace {
    /// Total bytes transferred in the given direction.
    pub fn total_bytes(&self, kind: AccessKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.bytes)
            .sum()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Error parsing a CSV trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and reason).
    Malformed {
        /// Line number.
        line: usize,
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "i/o error: {e}"),
            ParseTraceError::Malformed { line, reason } => {
                write!(f, "malformed trace line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

impl From<std::io::Error> for ParseTraceError {
    fn from(e: std::io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

impl Trace {
    /// Writes the trace as CSV (`time_ps,kind,addr,bytes`) — the natural
    /// interchange format for traces captured by real bus probes.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn to_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "time_ps,kind,addr,bytes")?;
        for e in &self.events {
            let k = match e.kind {
                AccessKind::Read => 'R',
                AccessKind::Write => 'W',
            };
            writeln!(w, "{},{k},0x{:x},{}", e.time_ps, e.addr, e.bytes)?;
        }
        Ok(())
    }

    /// Parses a CSV trace produced by [`Trace::to_csv`] (or converted from
    /// a hardware probe's log).
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on I/O failure or malformed rows.
    pub fn from_csv<R: std::io::BufRead>(r: R) -> Result<Trace, ParseTraceError> {
        let mut events = Vec::new();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || (i == 0 && line.starts_with("time_ps")) {
                continue;
            }
            let mut parts = line.split(',');
            let mut field = |reason| {
                parts.next().ok_or(ParseTraceError::Malformed {
                    line: i + 1,
                    reason,
                })
            };
            let time_ps =
                field("missing time")?
                    .trim()
                    .parse()
                    .map_err(|_| ParseTraceError::Malformed {
                        line: i + 1,
                        reason: "bad time",
                    })?;
            let kind = match field("missing kind")?.trim() {
                "R" | "r" => AccessKind::Read,
                "W" | "w" => AccessKind::Write,
                _ => {
                    return Err(ParseTraceError::Malformed {
                        line: i + 1,
                        reason: "kind must be R or W",
                    })
                }
            };
            let addr_s = field("missing addr")?.trim();
            let addr = if let Some(hex) = addr_s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                addr_s.parse()
            }
            .map_err(|_| ParseTraceError::Malformed {
                line: i + 1,
                reason: "bad addr",
            })?;
            let bytes =
                field("missing bytes")?
                    .trim()
                    .parse()
                    .map_err(|_| ParseTraceError::Malformed {
                        line: i + 1,
                        reason: "bad bytes",
                    })?;
            events.push(TraceEvent {
                time_ps,
                addr,
                kind,
                bytes,
            });
        }
        Ok(Trace { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_by_direction() {
        let t = Trace {
            events: vec![
                TraceEvent {
                    time_ps: 0,
                    addr: 0,
                    kind: AccessKind::Read,
                    bytes: 64,
                },
                TraceEvent {
                    time_ps: 10,
                    addr: 64,
                    kind: AccessKind::Write,
                    bytes: 32,
                },
                TraceEvent {
                    time_ps: 20,
                    addr: 128,
                    kind: AccessKind::Read,
                    bytes: 64,
                },
            ],
        };
        assert_eq!(t.total_bytes(AccessKind::Read), 128);
        assert_eq!(t.total_bytes(AccessKind::Write), 32);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn csv_roundtrip() {
        let t = Trace {
            events: vec![
                TraceEvent {
                    time_ps: 0,
                    addr: 0x1000,
                    kind: AccessKind::Write,
                    bytes: 64,
                },
                TraceEvent {
                    time_ps: 120,
                    addr: 0x2000,
                    kind: AccessKind::Read,
                    bytes: 32,
                },
            ],
        };
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        let parsed = Trace::from_csv(buf.as_slice()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn csv_accepts_decimal_addresses_and_skips_header() {
        let csv = "time_ps,kind,addr,bytes\n5,R,4096,64\n";
        let t = Trace::from_csv(csv.as_bytes()).unwrap();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].addr, 4096);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(Trace::from_csv("1,X,0x0,64\n".as_bytes()).is_err());
        assert!(Trace::from_csv("nope\n".as_bytes()).is_err());
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            time_ps: 1234,
            addr: 0x1000,
            kind: AccessKind::Write,
            bytes: 64,
        };
        let s = e.to_string();
        assert!(s.contains("W"));
        assert!(s.contains("0x00001000"));
    }
}
