//! On-the-fly psum encoding timing model (paper §7.1–7.2).
//!
//! After a layer's accumulation completes, the post-processing unit drains
//! the *dense* psum tile from the GLB, clamps/quantizes/compresses it, and
//! writes the *sparse* output feature map to DRAM. The drain is pipelined,
//! so the total encode time is bounded by the slower of two sides:
//!
//! * **GLB side** — reading `psum_elems` accumulator words at the GLB row
//!   bandwidth: time proportional to the dense psum footprint `P*Q*K`,
//! * **DRAM side** — writing `compressed_bytes` at the DRAM write bandwidth:
//!   time proportional to the sparse output footprint.
//!
//! When the process is GLB-bound (the common case, §8.2), the window between
//! the first and last DRAM write reveals the dense psum size — the timing
//! side channel HuffDuff uses to recover output channel counts.

use crate::config::AccelConfig;
use hd_tensor::cast;

/// Which side limits the encode pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EncodeBound {
    /// GLB psum reads are the bottleneck (duration tracks dense psum size).
    GlbBound,
    /// DRAM writes are the bottleneck (duration tracks compressed size).
    DramBound,
}

/// Timing of one layer's encode phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EncodeTiming {
    /// Total drain duration in picoseconds.
    pub duration_ps: u64,
    /// Offset of the first DRAM write within the phase, in picoseconds
    /// (the attacker cannot see GLB activity before it).
    pub first_write_offset_ps: u64,
    /// Limiting side.
    pub bound: EncodeBound,
    /// GLB-side time in picoseconds (dense psum drain).
    pub glb_time_ps: u64,
    /// DRAM-side time in picoseconds (compressed writeback).
    pub dram_time_ps: u64,
}

impl EncodeTiming {
    /// The window an attacker observes: last write minus first write.
    pub fn observable_window_ps(&self) -> u64 {
        self.duration_ps.saturating_sub(self.first_write_offset_ps)
    }

    /// The GLB-bandwidth multiplier at which this layer would flip to
    /// DRAM-bound (>= 1.0 when currently GLB-bound).
    ///
    /// A 0-element layer (both sides take zero time) is already at the
    /// flip point, so it reports `1.0`; only a genuinely free DRAM side
    /// with real GLB work reports `INFINITY` (it can never flip).
    pub fn flip_multiplier(&self) -> f64 {
        match (self.glb_time_ps, self.dram_time_ps) {
            (0, 0) => 1.0,
            (_, 0) => f64::INFINITY,
            (g, d) => g as f64 / d as f64,
        }
    }
}

/// Computes the encode timing for a layer with `psum_elems` dense psum
/// elements compressed down to `compressed_bytes`.
///
/// # Panics
///
/// Panics if the configuration yields non-positive bandwidths.
pub fn encode_timing(cfg: &AccelConfig, psum_elems: u64, compressed_bytes: u64) -> EncodeTiming {
    let glb_bw = cfg.glb_bandwidth_bytes_per_sec();
    let dram_bw = cfg.dram.bandwidth_bytes_per_sec();
    assert!(glb_bw > 0.0 && dram_bw > 0.0, "bandwidths must be positive");

    let psum_bytes = psum_elems as f64 * cfg.acc_bytes();
    let glb_time = psum_bytes / glb_bw; // seconds
    let dram_time = compressed_bytes as f64 / dram_bw;

    let (duration, bound) = if glb_time >= dram_time {
        (glb_time, EncodeBound::GlbBound)
    } else {
        (dram_time, EncodeBound::DramBound)
    };

    // The first compressed block must be assembled before the first write:
    // one burst's worth of output at the pipeline's effective rate.
    let first_block = (cfg.burst_bytes as f64).min(compressed_bytes as f64);
    let first_offset = if compressed_bytes == 0 {
        0.0
    } else {
        duration * first_block / compressed_bytes as f64
    };

    EncodeTiming {
        duration_ps: cast::f64_round_to_u64(duration * 1e12),
        first_write_offset_ps: cast::f64_round_to_u64(first_offset * 1e12),
        bound,
        glb_time_ps: cast::f64_round_to_u64(glb_time * 1e12),
        dram_time_ps: cast::f64_round_to_u64(dram_time * 1e12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DramConfig, DramKind};

    #[test]
    fn typical_layer_is_glb_bound() {
        // Dense psums are ~5-6x larger than sparse outputs and accumulators
        // are 2.5x wider than activations, so GLB wins at stock bandwidth.
        let cfg = AccelConfig::eyeriss_v2();
        let psum_elems = 64 * 16 * 16; // P*Q*K
        let compressed = (psum_elems as f64 * 0.35) as u64; // 35% density, 8-bit
        let t = encode_timing(&cfg, psum_elems as u64, compressed);
        assert_eq!(t.bound, EncodeBound::GlbBound);
        assert!(t.flip_multiplier() > 1.0);
    }

    #[test]
    fn duration_scales_linearly_with_psum_when_glb_bound() {
        let cfg = AccelConfig::eyeriss_v2();
        let a = encode_timing(&cfg, 10_000, 1_000);
        let b = encode_timing(&cfg, 20_000, 1_000);
        let ratio = b.duration_ps as f64 / a.duration_ps as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn huge_output_with_weak_dram_is_dram_bound() {
        let cfg = AccelConfig::eyeriss_v2()
            .with_glb_scale(100.0)
            .with_dram(DramConfig::new(DramKind::Lpddr3, 1));
        let t = encode_timing(&cfg, 10_000, 9_000);
        assert_eq!(t.bound, EncodeBound::DramBound);
        assert!(t.flip_multiplier() < 1.0);
    }

    #[test]
    fn observable_window_close_to_duration() {
        let cfg = AccelConfig::eyeriss_v2();
        let t = encode_timing(&cfg, 100_000, 30_000);
        let win = t.observable_window_ps() as f64;
        let dur = t.duration_ps as f64;
        assert!(win / dur > 0.99, "window {win} vs duration {dur}");
    }

    #[test]
    fn zero_output_has_zero_offset() {
        let cfg = AccelConfig::eyeriss_v2();
        let t = encode_timing(&cfg, 1_000, 0);
        assert_eq!(t.first_write_offset_ps, 0);
    }

    #[test]
    fn degenerate_zero_element_layer_flips_at_one() {
        // A 0-element layer: no psums to drain, nothing to write. The old
        // code returned INFINITY (and NaN-adjacent math downstream); the
        // degenerate case is defined as already at the flip point.
        let cfg = AccelConfig::eyeriss_v2();
        let t = encode_timing(&cfg, 0, 0);
        assert_eq!(t.glb_time_ps, 0);
        assert_eq!(t.dram_time_ps, 0);
        assert_eq!(t.flip_multiplier(), 1.0);
        assert!(t.flip_multiplier().is_finite());
        // Real GLB work with a free DRAM side still reports "never flips".
        let t = encode_timing(&cfg, 1_000, 0);
        assert_eq!(t.flip_multiplier(), f64::INFINITY);
    }

    #[test]
    fn flip_multiplier_matches_scaled_config() {
        // If flip multiplier is m, scaling GLB bandwidth by slightly more
        // than m must make the layer DRAM-bound.
        let cfg = AccelConfig::eyeriss_v2();
        let t = encode_timing(&cfg, 50_000, 14_000);
        let m = t.flip_multiplier();
        assert_eq!(t.bound, EncodeBound::GlbBound);
        let flipped = encode_timing(&cfg.clone().with_glb_scale(m * 1.01), 50_000, 14_000);
        assert_eq!(flipped.bound, EncodeBound::DramBound);
        let not_flipped = encode_timing(&cfg.with_glb_scale(m * 0.99), 50_000, 14_000);
        assert_eq!(not_flipped.bound, EncodeBound::GlbBound);
    }
}
