//! Property tests for the pruning invariants the robustness matrix leans
//! on: N:M group structure, structured channel removal leaving no
//! dangling channels, and `Mask` sparsity accounting.

use hd_dnn::graph::{LayerParams, Network, NetworkBuilder, Params};
use hd_dnn::prune::{magnitude_prune_global, nm_mask, nm_prune, structured_prune, StructuredCfg};
use hd_dnn::verify::{verify_strict, Limits};
use hd_tensor::Tensor3;
use proptest::prelude::*;

fn conv_stack(in_c: usize, hw: usize, widths: &[usize]) -> Network {
    let mut b = NetworkBuilder::new(in_c, hw, hw);
    let mut x = b.input();
    for &k in widths {
        x = b.conv(x, k, 3, 1);
    }
    let x = b.global_avg_pool(x);
    b.linear(x, 4);
    b.build()
}

fn residual_net(in_c: usize, hw: usize, width: usize) -> Network {
    let mut b = NetworkBuilder::new(in_c, hw, hw);
    let x = b.input();
    let stem = b.conv(x, width, 3, 1);
    let y = b.conv(stem, width, 3, 1);
    let j = b.add(stem, y);
    let x = b.global_avg_pool(j);
    b.linear(x, 3);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every M-group of an N:M conv mask holds at most N nonzeros, and
    /// the survivors are exactly the group's top-N magnitudes: no pruned
    /// weight in a group strictly exceeds a kept one.
    #[test]
    fn nm_groups_keep_top_n(
        seed in 0u64..500,
        n in 1usize..4,
        extra in 0usize..3,
        in_c in 3usize..9,
    ) {
        let m = n + extra;
        let net = conv_stack(in_c, 8, &[5, 4]);
        let params = Params::init(&net, seed);
        let mask = nm_mask(&net, &params, n, m);
        for &id in &net.conv_nodes() {
            let w = match &params.layers[id] {
                Some(LayerParams::Conv { w, .. }) => w,
                other => panic!("conv node without conv params: {other:?}"),
            };
            let mk = mask.masks[id].as_ref().expect("conv is masked");
            for k in 0..w.k() {
                for r in 0..w.r() {
                    for s in 0..w.s() {
                        for c0 in (0..w.c()).step_by(m) {
                            let group: Vec<usize> = (c0..(c0 + m).min(w.c()))
                                .map(|c| w.index(k, c, r, s))
                                .collect();
                            let nnz = group.iter().filter(|&&i| mk[i]).count();
                            prop_assert!(nnz <= n, "group nnz {} > {}", nnz, n);
                            // Top-N property: every kept weight dominates
                            // every pruned one (ties break toward keeping
                            // the lower index, so >= suffices).
                            let min_kept = group
                                .iter()
                                .filter(|&&i| mk[i])
                                .map(|&i| w.data()[i].abs())
                                .fold(f32::INFINITY, f32::min);
                            for &i in group.iter().filter(|&&i| !mk[i]) {
                                prop_assert!(
                                    w.data()[i].abs() <= min_kept,
                                    "pruned |{}| beats kept |{}|",
                                    w.data()[i], min_kept
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Applying the N:M mask leaves a forward pass identical to manually
    /// zeroing the same weights, and a second application is idempotent.
    #[test]
    fn nm_prune_is_idempotent(seed in 0u64..200, n in 1usize..3) {
        let m = 4usize;
        let net = conv_stack(4, 8, &[4]);
        let mut params = Params::init(&net, seed);
        let mask1 = nm_prune(&net, &mut params, n, m);
        let after_once = params.clone();
        let mask2 = nm_prune(&net, &mut params, n, m);
        prop_assert_eq!(&params, &after_once);
        prop_assert_eq!(mask1.overall_sparsity(), mask2.overall_sparsity());
    }

    /// Structured pruning leaves zero dangling channels on plain stacks:
    /// the rewritten graph passes strict verification, every conv's
    /// weight K/C axes match its spec and input, and the forward pass
    /// still produces finite logits.
    #[test]
    fn structured_leaves_no_dangling_channels(
        seed in 0u64..200,
        w1 in 4usize..10,
        w2 in 4usize..10,
        keep_pct in 30u32..100,
    ) {
        let net = conv_stack(3, 8, &[w1, w2]);
        let params = Params::init(&net, seed);
        let cfg = StructuredCfg { keep_frac: f64::from(keep_pct) / 100.0, min_keep: 2 };
        let r = structured_prune(&net, &params, &cfg);
        prop_assert!(verify_strict(&r.net, Some(&r.params), &Limits::default()).is_ok());
        for &id in &r.net.conv_nodes() {
            let view = r.params.conv(id);
            let spec = match &r.net.nodes()[id].op {
                hd_dnn::graph::Op::Conv(spec) => *spec,
                other => panic!("conv node without conv op: {other:?}"),
            };
            prop_assert_eq!(view.w.k(), spec.out_channels);
            if let Some(bn) = view.bn {
                prop_assert_eq!(bn.channels(), spec.out_channels);
            }
        }
        let out = r.net.forward(&r.params, &Tensor3::full(3, 8, 8, 0.5));
        prop_assert!(out.logits().iter().all(|v| v.is_finite()));
    }

    /// Same guarantee across a residual add: both operands of the add
    /// keep identical channel sets, at any keep fraction.
    #[test]
    fn structured_residual_stays_coherent(
        seed in 0u64..200,
        width in 4usize..12,
        keep_pct in 20u32..100,
    ) {
        let net = residual_net(3, 8, width);
        let params = Params::init(&net, seed);
        let cfg = StructuredCfg { keep_frac: f64::from(keep_pct) / 100.0, min_keep: 2 };
        let r = structured_prune(&net, &params, &cfg);
        prop_assert!(verify_strict(&r.net, Some(&r.params), &Limits::default()).is_ok());
        prop_assert_eq!(r.params.conv(1).w.k(), r.params.conv(2).w.k());
    }

    /// `Mask::overall_sparsity` and `layer_sparsity` agree with a naive
    /// recount of the mask bits.
    #[test]
    fn mask_sparsity_matches_naive_recount(
        seed in 0u64..300,
        sparsity in 0.1f64..0.95,
    ) {
        let net = conv_stack(3, 8, &[5, 6]);
        let params = Params::init(&net, seed);
        let mask = magnitude_prune_global(&net, &params, sparsity, 1);
        let mut pruned = 0usize;
        let mut total = 0usize;
        for (id, entry) in mask.masks.iter().enumerate() {
            let Some(bits) = entry else { continue };
            let layer_pruned = bits.iter().filter(|&&b| !b).count();
            pruned += layer_pruned;
            total += bits.len();
            let naive_layer = layer_pruned as f64 / bits.len() as f64;
            let reported = mask.layer_sparsity(id).expect("masked layer reports");
            prop_assert!((reported - naive_layer).abs() < 1e-12,
                "layer {}: {} vs {}", id, reported, naive_layer);
        }
        let naive = pruned as f64 / total as f64;
        prop_assert!((mask.overall_sparsity() - naive).abs() < 1e-12);
    }
}
