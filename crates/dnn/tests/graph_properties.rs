//! Property-based tests on the graph framework.

use hd_dnn::graph::{NetworkBuilder, Params};
use hd_dnn::prune::{magnitude_prune_global, SparsityProfile};
use hd_tensor::Tensor3;
use proptest::prelude::*;

fn arb_net(
    c: usize,
    hw: usize,
    convs: &[(usize, usize, usize)],
    pool_after: usize,
) -> hd_dnn::graph::Network {
    let mut b = NetworkBuilder::new(c, hw, hw);
    let mut x = b.input();
    for (i, &(k, kernel, stride)) in convs.iter().enumerate() {
        x = b.conv(x, k, kernel, stride);
        if i + 1 == pool_after {
            x = b.max_pool(x, 2);
        }
    }
    let x = b.global_avg_pool(x);
    b.linear(x, 5);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Shape inference matches the executed shapes for arbitrary stacks.
    #[test]
    fn shapes_match_execution(
        k1 in 2usize..6, k2 in 2usize..6,
        kernel in prop_oneof![Just(1usize), Just(3usize), Just(5usize)],
        stride in 1usize..3,
        pool_after in 0usize..3,
    ) {
        let net = arb_net(2, 12, &[(k1, kernel, stride), (k2, 3, 1)], pool_after);
        let params = Params::init(&net, 7);
        let out = net.forward(&params, &Tensor3::full(2, 12, 12, 0.5));
        for id in 0..net.len() {
            let declared = net.value_shape(id).len();
            let actual = out.value(id).flat().len();
            prop_assert_eq!(declared, actual, "node {}", id);
        }
    }

    /// Forward execution is a pure function of (params, input).
    #[test]
    fn forward_is_deterministic(seed in 0u64..100, fill in 0.0f32..1.0) {
        let net = arb_net(2, 8, &[(3, 3, 1)], 1);
        let params = Params::init(&net, seed);
        let img = Tensor3::full(2, 8, 8, fill);
        let a = net.forward(&params, &img);
        let b = net.forward(&params, &img);
        prop_assert_eq!(a.logits(), b.logits());
    }

    /// Global magnitude pruning: pruned weights are the smallest ones —
    /// no kept weight (above the per-layer floor) is smaller than a
    /// pruned weight within the same layer.
    #[test]
    fn pruning_keeps_largest_weights(seed in 0u64..100, sparsity in 0.1f64..0.9) {
        let net = arb_net(2, 8, &[(4, 3, 1), (4, 3, 1)], 1);
        let params = Params::init(&net, seed);
        let mask = magnitude_prune_global(&net, &params, sparsity, 1);
        for id in net.weighted_nodes() {
            let keep = mask.masks[id].as_ref().unwrap();
            let w: Vec<f32> = match &params.layers[id] {
                Some(hd_dnn::graph::LayerParams::Conv { w, .. }) => w.data().to_vec(),
                Some(hd_dnn::graph::LayerParams::Linear { w, .. }) => w.clone(),
                _ => continue,
            };
            let max_pruned = w.iter().zip(keep).filter(|(_, &k)| !k)
                .map(|(v, _)| v.abs()).fold(0.0f32, f32::max);
            let min_kept = w.iter().zip(keep).filter(|(_, &k)| k)
                .map(|(v, _)| v.abs()).fold(f32::INFINITY, f32::min);
            // Global thresholding: within a layer kept >= pruned, unless the
            // per-layer floor forced extra keeps (floor = 1 here, so only
            // degenerate single-weight layers could violate; none exist).
            prop_assert!(min_kept >= max_pruned || keep.iter().filter(|&&k| k).count() == 1,
                "layer {}: kept {} < pruned {}", id, min_kept, max_pruned);
        }
    }

    /// Applying a sparsity profile then re-applying its own mask is
    /// idempotent on the weights.
    #[test]
    fn profile_masks_are_idempotent(seed in 0u64..100, s in 0.2f64..0.9) {
        let net = arb_net(2, 8, &[(4, 3, 1)], 1);
        let mut params = Params::init(&net, seed);
        let profile = SparsityProfile {
            targets: net.weighted_nodes().iter().map(|&id| (id, s)).collect(),
        };
        let mask = hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, seed ^ 1);
        let snapshot = params.clone();
        mask.apply(&mut params);
        prop_assert_eq!(params, snapshot);
    }
}
