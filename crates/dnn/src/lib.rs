//! CNN framework for the HuffDuff reproduction.
//!
//! This crate replaces the PyTorch + TorchVision stack the paper used:
//!
//! * [`graph`] — a small dataflow-graph CNN representation with explicit
//!   layer geometry (the quantities the attacker tries to recover), plus
//!   forward execution,
//! * [`train`] — reverse-mode differentiation over the graph, softmax
//!   cross-entropy, and SGD with momentum,
//! * [`prune`] — magnitude pruning, lottery-ticket-style iterative pruning,
//!   and synthetic per-layer sparsity profiles matching the paper's victims,
//! * [`zoo`] — VGG-S, ResNet-18, AlexNet, and MobileNetV2 CIFAR-scale
//!   topologies (full-size and width-scaled "mini" variants),
//! * [`data`] — a deterministic synthetic image-classification dataset
//!   standing in for CIFAR-10 (see DESIGN.md "Substitutions").
//!
//! # Examples
//!
//! ```
//! use hd_dnn::graph::{NetworkBuilder, Params};
//! use hd_tensor::Tensor3;
//!
//! let mut b = NetworkBuilder::new(3, 8, 8);
//! let x = b.input();
//! let x = b.conv(x, 4, 3, 1);
//! let x = b.max_pool(x, 2);
//! let x = b.global_avg_pool(x);
//! let _logits = b.linear(x, 10);
//! let net = b.build();
//!
//! let params = Params::init(&net, 1);
//! let out = net.forward(&params, &Tensor3::zeros(3, 8, 8));
//! assert_eq!(out.logits().len(), 10);
//! ```

pub mod data;
pub mod graph;
pub mod io;
pub mod prune;
pub mod quantize;
pub mod sparse_forward;
pub mod train;
pub mod verify;
pub mod zoo;

pub use graph::{ConvSpec, Network, NetworkBuilder, NodeId, Op, Params};
pub use sparse_forward::ForwardCache;
