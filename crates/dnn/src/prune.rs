//! Pruning: unstructured magnitude, lottery-ticket schedules, N:M
//! fine-grained sparsity, and structured channel removal.
//!
//! The paper's victims are pruned 10x with the Lottery Ticket Hypothesis.
//! Several paths are provided:
//!
//! * [`lottery_ticket`] — the real thing at mini scale: train, prune the
//!   smallest-magnitude weights, rewind surviving weights to their initial
//!   values, retrain; repeated over rounds,
//! * [`apply_sparsity_profile`] — synthesizes a per-layer sparsity *pattern*
//!   directly (random mask at the requested density), used for the full-size
//!   probing victims where only the sparsity structure matters (see
//!   DESIGN.md "Substitutions"),
//! * [`nm_prune`] — N:M fine-grained pruning (default 2:4): within every
//!   group of `M` consecutive weights along the input-channel axis, keep the
//!   `N` largest magnitudes. This is the hardware-friendly pattern sparse
//!   tensor cores accelerate, and it changes the nnz *statistics* the
//!   attack's symbolic engine consumes without changing any layer shape,
//! * [`restructure`] — structured channel pruning: whole output channels are
//!   ranked by L1 norm and *physically removed*, shrinking the producer's
//!   `K` axis, every consumer's `C` axis, BN/bias vectors, and the head's
//!   input features. Residual adds force their operands to share one keep
//!   set. Unlike every mode above, this changes the layer shapes the
//!   boundary-effect prober recovers.

use crate::graph::{LayerParams, Network, NodeId, Params};
use crate::train::{train, TrainConfig};
use hd_tensor::Tensor3;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

pub mod restructure;

pub use restructure::{structured_prune, ChannelPlan, Restructured, StructuredCfg};

/// Binary keep-masks for every weighted node.
#[derive(Clone, Debug, PartialEq)]
pub struct Mask {
    /// `masks[id]` is `Some(keep)` iff node `id` carries maskable weights.
    pub masks: Vec<Option<Vec<bool>>>,
}

impl Mask {
    /// All-keep mask for a network.
    pub fn ones(net: &Network, params: &Params) -> Mask {
        let masks = (0..net.len())
            .map(|id| weight_slice(params, id).map(|w| vec![true; w.len()]))
            .collect();
        Mask { masks }
    }

    /// Zeroes out pruned weights in `params`.
    pub fn apply(&self, params: &mut Params) {
        for (id, m) in self.masks.iter().enumerate() {
            let Some(m) = m else { continue };
            if let Some(w) = weight_slice_mut(params, id) {
                for (v, keep) in w.iter_mut().zip(m) {
                    if !keep {
                        *v = 0.0;
                    }
                }
            }
        }
    }

    /// Fraction of weights pruned across all layers.
    pub fn overall_sparsity(&self) -> f64 {
        let (mut kept, mut total) = (0usize, 0usize);
        for m in self.masks.iter().flatten() {
            kept += m.iter().filter(|&&k| k).count();
            total += m.len();
        }
        if total == 0 {
            0.0
        } else {
            1.0 - kept as f64 / total as f64
        }
    }

    /// Per-node sparsity (pruned fraction), `None` for weightless nodes.
    pub fn layer_sparsity(&self, id: NodeId) -> Option<f64> {
        self.masks[id].as_ref().map(|m| {
            let kept = m.iter().filter(|&&k| k).count();
            1.0 - kept as f64 / m.len().max(1) as f64
        })
    }
}

fn weight_slice(params: &Params, id: NodeId) -> Option<&[f32]> {
    match &params.layers[id] {
        Some(LayerParams::Conv { w, .. }) => Some(w.data()),
        Some(LayerParams::DwConv { w, .. }) => Some(w.data()),
        Some(LayerParams::Linear { w, .. }) => Some(w),
        None => None,
    }
}

fn weight_slice_mut(params: &mut Params, id: NodeId) -> Option<&mut [f32]> {
    match &mut params.layers[id] {
        Some(LayerParams::Conv { w, .. }) => Some(w.data_mut()),
        Some(LayerParams::DwConv { w, .. }) => Some(w.data_mut()),
        Some(LayerParams::Linear { w, .. }) => Some(w),
        None => None,
    }
}

/// Global magnitude pruning: keeps the largest-magnitude weights so the
/// overall density is `1 - sparsity`, never pruning a layer below
/// `min_layer_keep` surviving weights.
///
/// # Panics
///
/// Panics if `sparsity` is not in `[0, 1)`.
pub fn magnitude_prune_global(
    net: &Network,
    params: &Params,
    sparsity: f64,
    min_layer_keep: usize,
) -> Mask {
    assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0,1)");
    // Collect |w| across all layers to find the global threshold.
    let mut all: Vec<f32> = Vec::new();
    for id in net.weighted_nodes() {
        if let Some(w) = weight_slice(params, id) {
            all.extend(w.iter().map(|v| v.abs()));
        }
    }
    if all.is_empty() {
        return Mask::ones(net, params);
    }
    all.sort_by(|a, b| a.total_cmp(b));
    let cut_idx = ((all.len() as f64) * sparsity) as usize;
    let threshold = all[cut_idx.min(all.len() - 1)];

    let mut masks = vec![None; net.len()];
    #[allow(clippy::needless_range_loop)] // index-parallel numeric kernel
    for id in 0..net.len() {
        let Some(w) = weight_slice(params, id) else {
            continue;
        };
        let mut keep: Vec<bool> = w.iter().map(|v| v.abs() > threshold).collect();
        let kept = keep.iter().filter(|&&k| k).count();
        if kept < min_layer_keep.min(w.len()) {
            // Re-rank within the layer to preserve the floor.
            let mut idx: Vec<usize> = (0..w.len()).collect();
            idx.sort_by(|&a, &b| w[b].abs().total_cmp(&w[a].abs()));
            keep = vec![false; w.len()];
            for &i in idx.iter().take(min_layer_keep.min(w.len())) {
                keep[i] = true;
            }
        }
        masks[id] = Some(keep);
    }
    Mask { masks }
}

/// Per-layer magnitude pruning to an exact per-layer sparsity.
pub fn magnitude_prune_layer(params: &Params, id: NodeId, sparsity: f64) -> Option<Vec<bool>> {
    let w = weight_slice(params, id)?;
    let mut idx: Vec<usize> = (0..w.len()).collect();
    idx.sort_by(|&a, &b| w[a].abs().total_cmp(&w[b].abs()));
    let prune_n = ((w.len() as f64) * sparsity).round() as usize;
    let mut keep = vec![true; w.len()];
    for &i in idx.iter().take(prune_n.min(w.len())) {
        keep[i] = false;
    }
    Some(keep)
}

/// A per-layer target-sparsity profile.
#[derive(Clone, Debug, PartialEq)]
pub struct SparsityProfile {
    /// `(node id, pruned fraction)` for each weighted node.
    pub targets: Vec<(NodeId, f64)>,
}

impl SparsityProfile {
    /// Overall sparsity implied by the profile for the given network.
    pub fn overall(&self, net: &Network, params: &Params) -> f64 {
        let mut dense = 0.0;
        let mut kept = 0.0;
        for &(id, s) in &self.targets {
            if let Some(w) = weight_slice(params, id) {
                dense += w.len() as f64;
                kept += w.len() as f64 * (1.0 - s);
            }
        }
        let _ = net;
        if dense == 0.0 {
            0.0
        } else {
            1.0 - kept / dense
        }
    }
}

/// A sparsity profile shaped like the paper's 10x-pruned victims:
/// the first conv layer keeps ~55% of its weights (paper §8.2: first-layer
/// sparsity "rarely beyond 60%"), the final classifier stays moderately
/// dense, and interior layers absorb the rest of the 90% global pruning
/// budget in proportion to their size (large layers pruned hardest,
/// mirroring the paper's observation about e.g. conv5_3 at 99.85%).
pub fn paper_profile(net: &Network) -> SparsityProfile {
    let weighted = net.weighted_nodes();
    let n = weighted.len();
    let mut targets = Vec::with_capacity(n);
    // Estimate layer sizes from geometry to distribute the budget.
    let sizes: Vec<usize> = weighted
        .iter()
        .map(|&id| match &net.nodes()[id].op {
            crate::graph::Op::Conv(spec) => {
                let in_c = net
                    .value_shape(net.nodes()[id].inputs[0])
                    .as_map()
                    .map_or(1, |s| s.c);
                spec.out_channels * in_c * spec.kernel * spec.kernel
            }
            crate::graph::Op::DwConv { kernel, .. } => {
                let in_c = net
                    .value_shape(net.nodes()[id].inputs[0])
                    .as_map()
                    .map_or(1, |s| s.c);
                in_c * kernel * kernel
            }
            crate::graph::Op::Linear { out_features, .. } => {
                net.value_shape(net.nodes()[id].inputs[0]).len() * out_features
            }
            _ => 0,
        })
        .collect();
    let max_size = sizes.iter().copied().max().unwrap_or(1) as f64;
    for (pos, (&id, &size)) in weighted.iter().zip(&sizes).enumerate() {
        let s = if pos == 0 {
            0.45 // first layer: hard to prune
        } else if pos + 1 == n {
            0.70 // classifier head
        } else {
            // Interior: between 85% and 99.8%, larger layers pruned harder.
            let t = (size as f64 / max_size).sqrt();
            0.85 + t * 0.148
        };
        targets.push((id, s));
    }
    SparsityProfile { targets }
}

/// Applies a sparsity profile with *random* masks (structure-only pruning
/// for full-size probing victims). Deterministic in `seed`.
pub fn apply_sparsity_profile(
    net: &Network,
    params: &mut Params,
    profile: &SparsityProfile,
    seed: u64,
) -> Mask {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut masks = vec![None; net.len()];
    for &(id, sparsity) in &profile.targets {
        let Some(w) = weight_slice(params, id) else {
            continue;
        };
        let len = w.len();
        let prune_n = ((len as f64) * sparsity).round() as usize;
        let mut keep = vec![true; len];
        let mut idx: Vec<usize> = (0..len).collect();
        idx.shuffle(&mut rng);
        for &i in idx.iter().take(prune_n.min(len)) {
            keep[i] = false;
        }
        masks[id] = Some(keep);
    }
    let mask = Mask { masks };
    mask.apply(params);
    mask
}

/// Applies a sparsity profile by *magnitude* (keeps each layer's largest
/// trained weights at the profile's per-layer density). Use this for
/// trained victims; [`apply_sparsity_profile`] (random masks) is for
/// structure-only victims.
pub fn magnitude_prune_profile(
    net: &Network,
    params: &mut Params,
    profile: &SparsityProfile,
) -> Mask {
    let mut masks = vec![None; net.len()];
    for &(id, sparsity) in &profile.targets {
        masks[id] = magnitude_prune_layer(params, id, sparsity);
    }
    let mask = Mask { masks };
    mask.apply(params);
    mask
}

/// Marks the top-`n` magnitudes of one `M`-group as kept. `group` holds
/// flat indices into `w`; ties break toward the lower index so the mask is
/// a pure function of the weights.
fn nm_keep_group(w: &[f32], group: &[usize], n: usize, keep: &mut [bool]) {
    let mut order: Vec<usize> = group.to_vec();
    order.sort_by(|&a, &b| w[b].abs().total_cmp(&w[a].abs()).then(a.cmp(&b)));
    for &i in order.iter().take(n.min(group.len())) {
        keep[i] = true;
    }
}

/// N:M fine-grained pruning mask: within every group of `m` consecutive
/// positions along the input-channel axis, the `n` largest-magnitude
/// weights survive (per output channel and kernel tap for convolutions,
/// per output feature for linear layers). The default hardware pattern is
/// 2:4; arbitrary `n <= m` is supported. Groups shorter than `m` (channel
/// count not divisible by `m`) keep `min(n, len)` weights.
///
/// Depthwise convolutions have a unit input-channel axis, so the pattern
/// is vacuous there and every depthwise weight is kept.
///
/// # Panics
///
/// Panics unless `1 <= n <= m`.
pub fn nm_mask(net: &Network, params: &Params, n: usize, m: usize) -> Mask {
    assert!(n >= 1, "N:M pruning requires n >= 1");
    assert!(n <= m, "N:M pruning requires n <= m");
    let mut masks = vec![None; net.len()];
    for (id, node) in net.nodes().iter().enumerate() {
        match (&node.op, &params.layers[id]) {
            (crate::graph::Op::Conv(_), Some(LayerParams::Conv { w, .. })) => {
                let mut keep = vec![false; w.len()];
                let mut group = Vec::with_capacity(m);
                for k in 0..w.k() {
                    for r in 0..w.r() {
                        for s in 0..w.s() {
                            for c0 in (0..w.c()).step_by(m) {
                                group.clear();
                                for c in c0..(c0 + m).min(w.c()) {
                                    group.push(w.index(k, c, r, s));
                                }
                                nm_keep_group(w.data(), &group, n, &mut keep);
                            }
                        }
                    }
                }
                masks[id] = Some(keep);
            }
            (crate::graph::Op::DwConv { .. }, Some(LayerParams::DwConv { w, .. })) => {
                // Unit input-channel axis: the N:M pattern is vacuous.
                masks[id] = Some(vec![true; w.len()]);
            }
            (crate::graph::Op::Linear { .. }, Some(LayerParams::Linear { w, in_features, .. })) => {
                let in_f = (*in_features).max(1);
                let mut keep = vec![false; w.len()];
                let mut group = Vec::with_capacity(m);
                for row in 0..w.len() / in_f {
                    for i0 in (0..in_f).step_by(m) {
                        group.clear();
                        for i in i0..(i0 + m).min(in_f) {
                            group.push(row * in_f + i);
                        }
                        nm_keep_group(w, &group, n, &mut keep);
                    }
                }
                masks[id] = Some(keep);
            }
            _ => {}
        }
    }
    Mask { masks }
}

/// Computes the N:M mask ([`nm_mask`]) and zeroes the pruned weights.
pub fn nm_prune(net: &Network, params: &mut Params, n: usize, m: usize) -> Mask {
    let mask = nm_mask(net, params, n, m);
    mask.apply(params);
    mask
}

/// Configuration for [`lottery_ticket`].
#[derive(Clone, Debug)]
pub struct LotteryConfig {
    /// Pruning rounds.
    pub rounds: usize,
    /// Fraction of *remaining* weights pruned each round.
    pub prune_per_round: f64,
    /// Training schedule per round.
    pub train: TrainConfig,
    /// Floor of surviving weights per layer.
    pub min_layer_keep: usize,
}

impl Default for LotteryConfig {
    fn default() -> Self {
        LotteryConfig {
            rounds: 3,
            prune_per_round: 0.5,
            train: TrainConfig::default(),
            min_layer_keep: 8,
        }
    }
}

/// Iterative magnitude pruning with weight rewinding (Lottery Ticket
/// Hypothesis, Frankle & Carbin 2019): train -> prune globally -> rewind
/// surviving weights to initialization -> repeat; finally retrain the ticket.
///
/// Returns the final mask; `params` holds the trained sparse weights.
pub fn lottery_ticket(
    net: &Network,
    params: &mut Params,
    dataset: &[(Tensor3, usize)],
    cfg: &LotteryConfig,
) -> Mask {
    let init = params.clone();
    let mut mask = Mask::ones(net, params);
    let mut cumulative_sparsity = 0.0;
    for _round in 0..cfg.rounds {
        train(net, params, dataset, &cfg.train, Some(&mask));
        cumulative_sparsity = 1.0 - (1.0 - cumulative_sparsity) * (1.0 - cfg.prune_per_round);
        mask = magnitude_prune_global(net, params, cumulative_sparsity, cfg.min_layer_keep);
        // Rewind to initialization (keeping only the surviving weights).
        *params = init.clone();
        mask.apply(params);
    }
    train(net, params, dataset, &cfg.train, Some(&mask));
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;

    fn tiny_net() -> Network {
        let mut b = NetworkBuilder::new(2, 6, 6);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.conv(x, 4, 3, 1);
        let x = b.global_avg_pool(x);
        b.linear(x, 3);
        b.build()
    }

    #[test]
    fn nm_mask_groups_hold_n_of_m() {
        let net = tiny_net();
        let mut params = Params::init(&net, 5);
        let mask = nm_prune(&net, &mut params, 2, 4);
        for id in [1usize, 2] {
            let w = params.conv(id).w;
            let m = mask.masks[id].as_ref().unwrap();
            for k in 0..w.k() {
                for r in 0..w.r() {
                    for s in 0..w.s() {
                        for c0 in (0..w.c()).step_by(4) {
                            let group: Vec<usize> = (c0..(c0 + 4).min(w.c()))
                                .map(|c| ((k * w.c() + c) * w.r() + r) * w.s() + s)
                                .collect();
                            let nnz = group.iter().filter(|&&i| m[i]).count();
                            assert!(nnz <= 2, "group carries {nnz} > 2 nonzeros");
                            // Pruned weights are physically zeroed.
                            for &i in &group {
                                if !m[i] {
                                    assert_eq!(w.data()[i], 0.0);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn nm_mask_keeps_top_magnitudes() {
        let mut b = NetworkBuilder::new(4, 6, 6);
        let x = b.input();
        let x = b.conv(x, 1, 1, 1);
        b.global_avg_pool(x);
        let net = b.build();
        let mut params = Params::init(&net, 1);
        if let Some(w) = params.conv_weights_mut(1) {
            for (c, v) in [0.1, -0.9, 0.5, 0.2].into_iter().enumerate() {
                w.set(0, c, 0, 0, v);
            }
        }
        let mask = nm_mask(&net, &params, 2, 4);
        assert_eq!(
            mask.masks[1],
            Some(vec![false, true, true, false]),
            "keeps |-0.9| and |0.5|"
        );
    }

    #[test]
    fn nm_linear_groups_along_in_features() {
        let net = tiny_net();
        let mut params = Params::init(&net, 9);
        nm_prune(&net, &mut params, 1, 2);
        let lin = params.linear(4);
        for row in lin.w.chunks(lin.in_features) {
            for pair in row.chunks(2) {
                let nnz = pair.iter().filter(|v| **v != 0.0).count();
                assert!(nnz <= 1, "1:2 row group has {nnz} nonzeros");
            }
        }
    }

    #[test]
    #[should_panic(expected = "n <= m")]
    fn nm_rejects_n_above_m() {
        let net = tiny_net();
        let params = Params::init(&net, 3);
        nm_mask(&net, &params, 5, 4);
    }

    #[test]
    fn ones_mask_is_noop() {
        let net = tiny_net();
        let mut params = Params::init(&net, 1);
        let before = params.clone();
        Mask::ones(&net, &params).apply(&mut params);
        assert_eq!(params, before);
    }

    #[test]
    fn global_prune_hits_target() {
        let net = tiny_net();
        let params = Params::init(&net, 2);
        let mask = magnitude_prune_global(&net, &params, 0.9, 1);
        let s = mask.overall_sparsity();
        assert!((s - 0.9).abs() < 0.05, "sparsity {s}");
    }

    #[test]
    fn global_prune_respects_layer_floor() {
        let net = tiny_net();
        let params = Params::init(&net, 2);
        let mask = magnitude_prune_global(&net, &params, 0.99, 10);
        for id in net.weighted_nodes() {
            let m = mask.masks[id].as_ref().unwrap();
            assert!(m.iter().filter(|&&k| k).count() >= 10.min(m.len()));
        }
    }

    #[test]
    fn apply_zeroes_pruned_weights() {
        let net = tiny_net();
        let mut params = Params::init(&net, 3);
        let mask = magnitude_prune_global(&net, &params, 0.5, 1);
        mask.apply(&mut params);
        let total_nnz = net.sparse_weight_count(&params);
        let dense = net.dense_weight_count(&params);
        assert!((total_nnz as f64) < dense as f64 * 0.6);
    }

    #[test]
    fn profile_application_matches_targets() {
        let net = tiny_net();
        let mut params = Params::init(&net, 4);
        let profile = paper_profile(&net);
        let mask = apply_sparsity_profile(&net, &mut params, &profile, 11);
        for &(id, s) in &profile.targets {
            let got = mask.layer_sparsity(id).unwrap();
            // Small layers only hit the target up to rounding (one weight).
            let len = mask.masks[id].as_ref().unwrap().len() as f64;
            let tol = (1.0 / len).max(0.01);
            assert!((got - s).abs() <= tol, "layer {id}: got {got}, want {s}");
        }
    }

    #[test]
    fn profile_is_deterministic_in_seed() {
        let net = tiny_net();
        let profile = paper_profile(&net);
        let mut p1 = Params::init(&net, 4);
        let mut p2 = Params::init(&net, 4);
        let m1 = apply_sparsity_profile(&net, &mut p1, &profile, 11);
        let m2 = apply_sparsity_profile(&net, &mut p2, &profile, 11);
        assert_eq!(m1, m2);
        let m3 = apply_sparsity_profile(&net, &mut p1, &profile, 12);
        assert_ne!(m1, m3);
    }

    #[test]
    fn first_layer_stays_dense_in_paper_profile() {
        let net = tiny_net();
        let profile = paper_profile(&net);
        assert!(profile.targets[0].1 <= 0.6);
        // Interior layers should be much sparser.
        assert!(profile.targets[1].1 > 0.8);
    }

    #[test]
    fn lottery_ticket_produces_sparse_trainable_net() {
        let net = tiny_net();
        let mut params = Params::init(&net, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let dataset: Vec<(Tensor3, usize)> = (0..12)
            .map(|i| {
                let mut t = Tensor3::zeros(2, 6, 6);
                t.fill_uniform(&mut rng, 0.0, 1.0);
                let class = i % 3;
                t.set(0, class, class, 4.0);
                (t, class)
            })
            .collect();
        let cfg = LotteryConfig {
            rounds: 2,
            prune_per_round: 0.5,
            train: TrainConfig {
                epochs: 4,
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
                lr_decay: 1.0,
            },
            min_layer_keep: 4,
        };
        let mask = lottery_ticket(&net, &mut params, &dataset, &cfg);
        let s = mask.overall_sparsity();
        assert!(s > 0.5 && s < 0.9, "sparsity {s}");
        // Pruned weights are actually zero.
        for id in net.weighted_nodes() {
            let m = mask.masks[id].as_ref().unwrap();
            let w = super::weight_slice(&params, id).unwrap();
            for (v, keep) in w.iter().zip(m) {
                if !keep {
                    assert_eq!(*v, 0.0);
                }
            }
        }
    }
}
