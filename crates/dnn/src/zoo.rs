//! Model zoo: CIFAR-scale topologies used in the paper's evaluation.
//!
//! Geometry (input 3x32x32, 10 classes by default):
//!
//! * [`vgg_s`] — VGG-S (Chatfield et al. "slow" variant adapted to CIFAR):
//!   a 96-channel 7x7 first conv, a 256-channel 5x5 conv, then 512-channel
//!   3x3 blocks ending in `conv5_1..conv5_3` (so the paper's conv5_3 at
//!   512x512x3x3 = 2 359 296 weights exists verbatim),
//! * [`resnet18`] — CIFAR ResNet-18 (3x3 stem, four 2-block stages at
//!   64/128/256/512 channels, 1x1 downsample shortcuts),
//! * [`alexnet`] — the CIFAR AlexNet baseline (prior-generation model for
//!   Figure 4),
//! * [`mobilenet_v2`] — inverted-residual MobileNetV2 (transfer baselines in
//!   Figures 5 and 6),
//! * every constructor has a `*_scaled` variant whose channel widths are
//!   multiplied by `width` — the "mini" models used to keep the training
//!   experiments CPU-feasible (DESIGN.md "Substitutions").

use crate::graph::{ConvSpec, Network, NetworkBuilder, NodeId};
use hd_tensor::conv::Padding;

fn scale(ch: usize, width: f64) -> usize {
    ((ch as f64 * width).round() as usize).max(2)
}

/// VGG-S adapted to 32x32 inputs. `classes` selects the head size.
pub fn vgg_s(classes: usize) -> Network {
    vgg_s_scaled(classes, 1.0)
}

/// Width-scaled VGG-S (use `width < 1` for fast experiments).
pub fn vgg_s_scaled(classes: usize, width: f64) -> Network {
    let mut b = NetworkBuilder::new(3, 32, 32);
    let x = b.input();
    // conv1: 96 @ 7x7 (stride 1 on CIFAR-scale inputs), pool /2
    let x = b.conv(x, scale(96, width), 7, 1);
    let x = b.max_pool(x, 2); // 16x16
                              // conv2: 256 @ 5x5, pool /2
    let x = b.conv(x, scale(256, width), 5, 1);
    let x = b.max_pool(x, 2); // 8x8
                              // conv3, conv4: 512 @ 3x3
    let x = b.conv(x, scale(512, width), 3, 1);
    let x = b.conv(x, scale(512, width), 3, 1);
    let x = b.max_pool(x, 2); // 4x4
                              // conv5_1..conv5_3: 512 @ 3x3 (conv5_3 is the paper's 2.36M-weight layer)
    let x = b.conv(x, scale(512, width), 3, 1);
    let x = b.conv(x, scale(512, width), 3, 1);
    let x = b.conv(x, scale(512, width), 3, 1);
    let x = b.max_pool(x, 2); // 2x2
    let x = b.flatten(x);
    let x = b.linear_opts(x, scale(1024, width), true);
    b.linear(x, classes);
    b.build()
}

/// Classic CIFAR VGG-16: thirteen 3x3 convolutions in five pooled blocks.
/// Not a paper victim, but a useful extra target for the ablations — its
/// all-3x3 front end spreads probe features slowly, so the boundary
/// effect stays observable deeper than in VGG-S.
pub fn vgg16(classes: usize) -> Network {
    vgg16_scaled(classes, 1.0)
}

/// Width-scaled CIFAR VGG-16.
pub fn vgg16_scaled(classes: usize, width: f64) -> Network {
    let mut b = NetworkBuilder::new(3, 32, 32);
    let x = b.input();
    let blocks: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut x = x;
    for (ch, reps) in blocks {
        for _ in 0..reps {
            x = b.conv(x, scale(ch, width), 3, 1);
        }
        x = b.max_pool(x, 2);
    }
    let x = b.flatten(x); // 1x1x512 after five pools
    let x = b.linear_opts(x, scale(512, width), true);
    b.linear(x, classes);
    b.build()
}

fn basic_block(b: &mut NetworkBuilder, x: NodeId, channels: usize, stride: usize) -> NodeId {
    let y = b.conv(x, channels, 3, stride);
    let y = b.conv_spec(
        y,
        ConvSpec {
            out_channels: channels,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            bias: false,
            batch_norm: true,
            relu: false, // ReLU happens after the residual join
        },
    );
    let shortcut = if stride != 1 || needs_projection(b, x, channels) {
        b.conv_spec(
            x,
            ConvSpec {
                out_channels: channels,
                kernel: 1,
                stride,
                padding: Padding::Same,
                bias: false,
                batch_norm: true,
                relu: false,
            },
        )
    } else {
        x
    };
    b.add(y, shortcut)
}

fn needs_projection(b: &NetworkBuilder, _x: NodeId, _channels: usize) -> bool {
    // The builder does not expose shapes pre-build; callers pass stride != 1
    // exactly when the channel count changes in CIFAR ResNet-18, except the
    // very first stage where both are unchanged. We keep the signature for
    // clarity and decide purely on stride at the call sites below.
    let _ = b;
    false
}

/// CIFAR ResNet-18. `classes` selects the head size.
pub fn resnet18(classes: usize) -> Network {
    resnet18_scaled(classes, 1.0)
}

/// Width-scaled CIFAR ResNet-18.
pub fn resnet18_scaled(classes: usize, width: f64) -> Network {
    let mut b = NetworkBuilder::new(3, 32, 32);
    let x = b.input();
    let x = b.conv(x, scale(64, width), 3, 1); // CIFAR stem
                                               // Stage 1: 2 blocks @ 64, stride 1.
    let x = basic_block(&mut b, x, scale(64, width), 1);
    let x = basic_block(&mut b, x, scale(64, width), 1);
    // Stage 2: 2 blocks @ 128, first stride 2.
    let x = basic_block(&mut b, x, scale(128, width), 2);
    let x = basic_block(&mut b, x, scale(128, width), 1);
    // Stage 3: 2 blocks @ 256.
    let x = basic_block(&mut b, x, scale(256, width), 2);
    let x = basic_block(&mut b, x, scale(256, width), 1);
    // Stage 4: 2 blocks @ 512.
    let x = basic_block(&mut b, x, scale(512, width), 2);
    let x = basic_block(&mut b, x, scale(512, width), 1);
    let x = b.global_avg_pool(x);
    b.linear(x, classes);
    b.build()
}

/// CIFAR AlexNet (the Figure-4 prior-generation baseline).
pub fn alexnet(classes: usize) -> Network {
    alexnet_scaled(classes, 1.0)
}

/// Width-scaled CIFAR AlexNet.
pub fn alexnet_scaled(classes: usize, width: f64) -> Network {
    let mut b = NetworkBuilder::new(3, 32, 32);
    let x = b.input();
    let x = b.conv(x, scale(64, width), 3, 1);
    let x = b.max_pool(x, 2); // 16
    let x = b.conv(x, scale(192, width), 3, 1);
    let x = b.max_pool(x, 2); // 8
    let x = b.conv(x, scale(384, width), 3, 1);
    let x = b.conv(x, scale(256, width), 3, 1);
    let x = b.conv(x, scale(256, width), 3, 1);
    let x = b.max_pool(x, 2); // 4
    let x = b.flatten(x);
    let x = b.linear_opts(x, scale(1024, width), true);
    b.linear(x, classes);
    b.build()
}

fn inverted_residual(
    b: &mut NetworkBuilder,
    x: NodeId,
    in_c: usize,
    out_c: usize,
    expand: usize,
    stride: usize,
) -> NodeId {
    let hidden = in_c * expand;
    let mut y = x;
    if expand != 1 {
        y = b.conv(y, hidden, 1, 1); // pointwise expand + ReLU
    }
    y = b.dwconv(y, 3, stride, true); // depthwise + ReLU
    y = b.conv_spec(
        y,
        ConvSpec {
            out_channels: out_c,
            kernel: 1,
            stride: 1,
            padding: Padding::Same,
            bias: false,
            batch_norm: true,
            relu: false, // linear bottleneck
        },
    );
    if stride == 1 && in_c == out_c {
        b.add_opts(x, y, false)
    } else {
        y
    }
}

/// CIFAR MobileNetV2 (transfer-attack baselines in Figures 5/6).
pub fn mobilenet_v2(classes: usize) -> Network {
    mobilenet_v2_scaled(classes, 1.0)
}

/// Width-scaled CIFAR MobileNetV2.
pub fn mobilenet_v2_scaled(classes: usize, width: f64) -> Network {
    let mut b = NetworkBuilder::new(3, 32, 32);
    let x = b.input();
    let stem = scale(32, width);
    let mut x = b.conv(x, stem, 3, 1);
    let mut in_c = stem;
    // (expand, out_channels, repeats, first_stride) — CIFAR variant keeps
    // early strides at 1 so feature maps do not vanish on 32x32 inputs.
    let cfg: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 1),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (expand, out, repeats, first_stride) in cfg {
        let out = scale(out, width);
        for i in 0..repeats {
            let stride = if i == 0 { first_stride } else { 1 };
            x = inverted_residual(&mut b, x, in_c, out, expand, stride);
            in_c = out;
        }
    }
    let head = scale(1280, width);
    let x = b.conv(x, head, 1, 1);
    let x = b.global_avg_pool(x);
    b.linear(x, classes);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Params;
    use hd_tensor::Tensor3;

    #[test]
    fn vgg_s_geometry() {
        let net = vgg_s(10);
        let convs = net.conv_nodes();
        assert_eq!(convs.len(), 7);
        // conv5_3 is the last conv: 512x512x3x3.
        let params = Params::init(&net, 0);
        let last = *convs.last().unwrap();
        let w = params.conv(last).w;
        assert_eq!((w.k(), w.c(), w.r(), w.s()), (512, 512, 3, 3));
        assert_eq!(w.len(), 2_359_296);
        // First conv: 96 @ 7x7.
        let first = params.conv(convs[0]).w;
        assert_eq!((first.k(), first.r()), (96, 7));
    }

    #[test]
    fn resnet18_has_expected_conv_count() {
        let net = resnet18(10);
        // stem + 8 blocks x 2 convs + 3 downsample projections = 20.
        assert_eq!(net.conv_nodes().len(), 20);
    }

    #[test]
    fn mini_models_forward() {
        for net in [
            vgg_s_scaled(4, 0.0625),
            resnet18_scaled(4, 0.0625),
            alexnet_scaled(4, 0.0625),
            mobilenet_v2_scaled(4, 0.125),
        ] {
            let params = Params::init(&net, 1);
            let out = net.forward(&params, &Tensor3::full(3, 32, 32, 0.5));
            assert_eq!(out.logits().len(), 4);
            assert!(out.logits().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn resnet18_spatial_reduction() {
        let net = resnet18(10);
        // Final conv output should be 512 x 4 x 4 on 32x32 inputs.
        let last_conv = *net.conv_nodes().last().unwrap();
        // The add after it shares the shape.
        let shape = net.value_shape(last_conv).as_map().unwrap();
        assert_eq!((shape.c, shape.h, shape.w), (512, 4, 4));
    }

    #[test]
    fn width_scaling_shrinks_weights() {
        let full = vgg_s(10);
        let mini = vgg_s_scaled(10, 0.125);
        let pf = Params::init(&full, 0);
        let pm = Params::init(&mini, 0);
        assert!(mini.dense_weight_count(&pm) < full.dense_weight_count(&pf) / 32);
    }

    #[test]
    fn vgg16_geometry() {
        let net = vgg16(10);
        assert_eq!(net.conv_nodes().len(), 13);
        let params = Params::init(&net, 0);
        let out = net.forward(&params, &Tensor3::full(3, 32, 32, 0.3));
        assert_eq!(out.logits().len(), 10);
        // Final conv block is 512-channel 3x3.
        let last = *net.conv_nodes().last().unwrap();
        let w = params.conv(last).w;
        assert_eq!((w.k(), w.c(), w.r()), (512, 512, 3));
    }

    #[test]
    fn mobilenet_blocks_use_depthwise() {
        let net = mobilenet_v2_scaled(10, 0.25);
        let has_dw = net
            .nodes()
            .iter()
            .any(|n| matches!(n.op, crate::graph::Op::DwConv { .. }));
        assert!(has_dw);
    }
}
