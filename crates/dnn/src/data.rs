//! Deterministic synthetic image-classification dataset.
//!
//! Stands in for CIFAR-10 (see DESIGN.md "Substitutions"): each class is a
//! procedurally generated template — a mixture of oriented sinusoids and
//! Gaussian blobs — and samples are noisy, randomly jittered draws from the
//! template. The task is learnable by small CNNs yet non-trivial, which is
//! all the retraining/transfer experiments (Figures 4–6) require.

use hd_tensor::Tensor3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntheticImages {
    /// Number of classes.
    pub classes: usize,
    /// Channels (3 for RGB-like inputs).
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
    /// Per-pixel Gaussian noise amplitude.
    pub noise: f32,
    /// Template seed: two generators with the same seed produce the same
    /// class templates (and therefore a consistent task).
    pub seed: u64,
}

impl SyntheticImages {
    /// A CIFAR-like default: 10 classes of 3x32x32 images.
    pub fn cifar_like(seed: u64) -> Self {
        SyntheticImages {
            classes: 10,
            channels: 3,
            height: 32,
            width: 32,
            noise: 0.15,
            seed,
        }
    }

    /// A small fast variant for tests.
    pub fn tiny(seed: u64) -> Self {
        SyntheticImages {
            classes: 4,
            channels: 2,
            height: 8,
            width: 8,
            noise: 0.1,
            seed,
        }
    }

    fn template(&self, class: usize) -> Tensor3 {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (class as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut t = Tensor3::zeros(self.channels, self.height, self.width);
        // Oriented sinusoid per channel.
        for c in 0..self.channels {
            let fx: f32 = rng.gen_range(0.5..3.0);
            let fy: f32 = rng.gen_range(0.5..3.0);
            let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            for y in 0..self.height {
                for x in 0..self.width {
                    let v = ((x as f32 * fx / self.width as f32
                        + y as f32 * fy / self.height as f32)
                        * std::f32::consts::TAU
                        + phase)
                        .sin();
                    t.set(c, y, x, 0.35 + 0.2 * v);
                }
            }
        }
        // A couple of class-specific blobs.
        for _ in 0..3 {
            let cy: f32 = rng.gen_range(0.0..self.height as f32);
            let cx: f32 = rng.gen_range(0.0..self.width as f32);
            let sigma: f32 = rng.gen_range(1.5..4.0);
            let amp: f32 = rng.gen_range(0.2..0.5);
            let ch = rng.gen_range(0..self.channels);
            for y in 0..self.height {
                for x in 0..self.width {
                    let d2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                    let v = t.at(ch, y, x) + amp * (-d2 / (2.0 * sigma * sigma)).exp();
                    t.set(ch, y, x, v);
                }
            }
        }
        t
    }

    /// Generates one labelled sample; `sample_seed` individuates draws.
    pub fn sample(&self, class: usize, sample_seed: u64) -> (Tensor3, usize) {
        assert!(class < self.classes, "class out of range");
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ 0xDEAD_BEEF_CAFE_F00D
                ^ sample_seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
                ^ (class as u64) << 48,
        );
        let template = self.template(class);
        let mut img = template;
        // Random translation jitter of up to 2 pixels.
        let dy = rng.gen_range(-2i32..=2);
        let dx = rng.gen_range(-2i32..=2);
        let mut jittered = Tensor3::zeros(self.channels, self.height, self.width);
        for c in 0..self.channels {
            for y in 0..self.height {
                for x in 0..self.width {
                    let sy = y as i32 - dy;
                    let sx = x as i32 - dx;
                    if sy >= 0 && sy < self.height as i32 && sx >= 0 && sx < self.width as i32 {
                        jittered.set(c, y, x, img.at(c, sy as usize, sx as usize));
                    }
                }
            }
        }
        img = jittered;
        for v in img.data_mut() {
            *v = (*v + self.noise * hd_tensor::tensor::gaussian(&mut rng)).clamp(0.0, 1.0);
        }
        (img, class)
    }

    /// Generates a balanced labelled dataset of `n` samples.
    pub fn dataset(&self, n: usize, salt: u64) -> Vec<(Tensor3, usize)> {
        (0..n)
            .map(|i| self.sample(i % self.classes, salt.wrapping_add(i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let gen = SyntheticImages::tiny(42);
        let (a, _) = gen.sample(1, 7);
        let (b, _) = gen.sample(1, 7);
        assert_eq!(a, b);
        let (c, _) = gen.sample(1, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn classes_differ() {
        let gen = SyntheticImages::tiny(42);
        let (a, la) = gen.sample(0, 7);
        let (b, lb) = gen.sample(1, 7);
        assert_ne!(a, b);
        assert_eq!((la, lb), (0, 1));
    }

    #[test]
    fn values_in_unit_range() {
        let gen = SyntheticImages::cifar_like(1);
        let (img, _) = gen.sample(3, 99);
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn dataset_is_balanced() {
        let gen = SyntheticImages::tiny(2);
        let ds = gen.dataset(40, 0);
        for class in 0..gen.classes {
            assert_eq!(ds.iter().filter(|(_, y)| *y == class).count(), 10);
        }
    }

    #[test]
    fn task_is_learnable() {
        use crate::graph::{NetworkBuilder, Params};
        use crate::train::{accuracy, train, TrainConfig};
        let gen = SyntheticImages::tiny(5);
        let train_set = gen.dataset(48, 0);
        let test_set = gen.dataset(24, 10_000);
        let mut b = NetworkBuilder::new(gen.channels, gen.height, gen.width);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.conv(x, 8, 3, 1);
        let x = b.flatten(x);
        b.linear(x, gen.classes);
        let net = b.build();
        let mut params = Params::init(&net, 3);
        train(
            &net,
            &mut params,
            &train_set,
            &TrainConfig {
                epochs: 15,
                lr: 0.01,
                momentum: 0.9,
                weight_decay: 0.0,
                lr_decay: 1.0,
            },
            None,
        );
        let acc = accuracy(&net, &params, &test_set);
        assert!(acc > 0.5, "test accuracy {acc} too low (chance = 0.25)");
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn class_bounds_checked() {
        let gen = SyntheticImages::tiny(1);
        let _ = gen.sample(99, 0);
    }
}
