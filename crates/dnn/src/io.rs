//! Binary (de)serialization of trained parameters.
//!
//! Experiments train candidate fleets; being able to checkpoint them to
//! disk (and reload across runs) keeps the harness restartable. The format
//! is a small self-describing container: magic, version, then per-node
//! tagged parameter blocks with explicit dimensions — no external
//! dependencies, stable across platforms (little-endian throughout).

use crate::graph::{LayerParams, Params};
use hd_tensor::norm::Affine;
use hd_tensor::Tensor4;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"HDPARAM1";

/// Errors from parameter (de)serialization.
#[derive(Debug)]
pub enum ParamsIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a parameter file or is from an incompatible
    /// version.
    BadMagic,
    /// The stream is structurally invalid (truncated, bad tag, or sizes
    /// that do not match their dimensions).
    Corrupt(&'static str),
}

impl std::fmt::Display for ParamsIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamsIoError::Io(e) => write!(f, "i/o error: {e}"),
            ParamsIoError::BadMagic => write!(f, "not a HDPARAM1 parameter stream"),
            ParamsIoError::Corrupt(what) => write!(f, "corrupt parameter stream: {what}"),
        }
    }
}

impl std::error::Error for ParamsIoError {}

impl From<io::Error> for ParamsIoError {
    fn from(e: io::Error) -> Self {
        ParamsIoError::Io(e)
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32s<W: Write>(w: &mut W, vs: &[f32]) -> io::Result<()> {
    write_u32(w, vs.len() as u32)?;
    for v in vs {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, ParamsIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_f32s<R: Read>(r: &mut R) -> Result<Vec<f32>, ParamsIoError> {
    let n = read_u32(r)? as usize;
    if n > 1 << 28 {
        return Err(ParamsIoError::Corrupt("implausible vector length"));
    }
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(f32::from_le_bytes(b));
    }
    Ok(out)
}

/// Serializes parameters to a writer. A `&mut` reference works for any
/// writer (e.g. `&mut Vec<u8>`, `&mut File`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_params<W: Write>(params: &Params, mut w: W) -> Result<(), ParamsIoError> {
    w.write_all(MAGIC)?;
    write_u32(&mut w, params.layers.len() as u32)?;
    for layer in &params.layers {
        match layer {
            None => write_u32(&mut w, 0)?,
            Some(LayerParams::Conv { w: wt, b, bn }) => {
                write_u32(&mut w, 1)?;
                for d in [wt.k(), wt.c(), wt.r(), wt.s()] {
                    write_u32(&mut w, d as u32)?;
                }
                write_f32s(&mut w, wt.data())?;
                match b {
                    Some(b) => {
                        write_u32(&mut w, 1)?;
                        write_f32s(&mut w, b)?;
                    }
                    None => write_u32(&mut w, 0)?,
                }
                match bn {
                    Some(bn) => {
                        write_u32(&mut w, 1)?;
                        write_f32s(&mut w, bn.scale())?;
                        write_f32s(&mut w, bn.shift())?;
                    }
                    None => write_u32(&mut w, 0)?,
                }
            }
            Some(LayerParams::DwConv { w: wt, bn }) => {
                write_u32(&mut w, 2)?;
                for d in [wt.k(), wt.c(), wt.r(), wt.s()] {
                    write_u32(&mut w, d as u32)?;
                }
                write_f32s(&mut w, wt.data())?;
                match bn {
                    Some(bn) => {
                        write_u32(&mut w, 1)?;
                        write_f32s(&mut w, bn.scale())?;
                        write_f32s(&mut w, bn.shift())?;
                    }
                    None => write_u32(&mut w, 0)?,
                }
            }
            Some(LayerParams::Linear {
                w: wt,
                b,
                in_features,
                out_features,
            }) => {
                write_u32(&mut w, 3)?;
                write_u32(&mut w, *in_features as u32)?;
                write_u32(&mut w, *out_features as u32)?;
                write_f32s(&mut w, wt)?;
                write_f32s(&mut w, b)?;
            }
        }
    }
    Ok(())
}

/// Deserializes parameters from a reader.
///
/// # Errors
///
/// Returns [`ParamsIoError`] on I/O failure, bad magic, or structural
/// corruption.
pub fn load_params<R: Read>(mut r: R) -> Result<Params, ParamsIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ParamsIoError::BadMagic);
    }
    let n = read_u32(&mut r)? as usize;
    if n > 1 << 20 {
        return Err(ParamsIoError::Corrupt("implausible layer count"));
    }
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = read_u32(&mut r)?;
        let layer = match tag {
            0 => None,
            1 => {
                let (k, c, rr, s) = (
                    read_u32(&mut r)? as usize,
                    read_u32(&mut r)? as usize,
                    read_u32(&mut r)? as usize,
                    read_u32(&mut r)? as usize,
                );
                let data = read_f32s(&mut r)?;
                if data.len() != k * c * rr * s {
                    return Err(ParamsIoError::Corrupt("conv weight size mismatch"));
                }
                let w = Tensor4::from_vec(k, c, rr, s, data);
                let b = if read_u32(&mut r)? == 1 {
                    Some(read_f32s(&mut r)?)
                } else {
                    None
                };
                let bn = if read_u32(&mut r)? == 1 {
                    let scale = read_f32s(&mut r)?;
                    let shift = read_f32s(&mut r)?;
                    if scale.len() != shift.len() {
                        return Err(ParamsIoError::Corrupt("bn scale/shift mismatch"));
                    }
                    Some(Affine::new(scale, shift))
                } else {
                    None
                };
                Some(LayerParams::Conv { w, b, bn })
            }
            2 => {
                let (k, c, rr, s) = (
                    read_u32(&mut r)? as usize,
                    read_u32(&mut r)? as usize,
                    read_u32(&mut r)? as usize,
                    read_u32(&mut r)? as usize,
                );
                let data = read_f32s(&mut r)?;
                if data.len() != k * c * rr * s {
                    return Err(ParamsIoError::Corrupt("dwconv weight size mismatch"));
                }
                let w = Tensor4::from_vec(k, c, rr, s, data);
                let bn = if read_u32(&mut r)? == 1 {
                    let scale = read_f32s(&mut r)?;
                    let shift = read_f32s(&mut r)?;
                    if scale.len() != shift.len() {
                        return Err(ParamsIoError::Corrupt("bn scale/shift mismatch"));
                    }
                    Some(Affine::new(scale, shift))
                } else {
                    None
                };
                Some(LayerParams::DwConv { w, bn })
            }
            3 => {
                let in_features = read_u32(&mut r)? as usize;
                let out_features = read_u32(&mut r)? as usize;
                let w = read_f32s(&mut r)?;
                let b = read_f32s(&mut r)?;
                if w.len() != in_features * out_features || b.len() != out_features {
                    return Err(ParamsIoError::Corrupt("linear size mismatch"));
                }
                Some(LayerParams::Linear {
                    w,
                    b,
                    in_features,
                    out_features,
                })
            }
            _ => return Err(ParamsIoError::Corrupt("unknown layer tag")),
        };
        layers.push(layer);
    }
    Ok(Params { layers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;

    fn sample_params() -> Params {
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.dwconv(x, 3, 1, true);
        let x = b.global_avg_pool(x);
        b.linear(x, 5);
        Params::init(&b.build(), 42)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let params = sample_params();
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();
        let loaded = load_params(buf.as_slice()).unwrap();
        assert_eq!(params, loaded);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_params(&b"NOTPARAM...."[..]).unwrap_err();
        assert!(matches!(err, ParamsIoError::BadMagic));
    }

    #[test]
    fn truncation_is_detected() {
        let params = sample_params();
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_params(buf.as_slice()).is_err());
    }

    #[test]
    fn corrupted_tag_is_detected() {
        let params = sample_params();
        let mut buf = Vec::new();
        save_params(&params, &mut buf).unwrap();
        // Overwrite the first layer tag (right after magic + count).
        buf[12] = 0xFF;
        let err = load_params(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, ParamsIoError::Corrupt(_) | ParamsIoError::Io(_)),
            "{err}"
        );
    }

    #[test]
    fn file_roundtrip() {
        let params = sample_params();
        let path = std::env::temp_dir().join("hd_params_roundtrip.bin");
        save_params(&params, std::fs::File::create(&path).unwrap()).unwrap();
        let loaded = load_params(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(params, loaded);
        let _ = std::fs::remove_file(&path);
    }
}
