//! Structured channel pruning: rank whole output channels by L1 norm and
//! *physically remove* them, rewriting the graph and its parameters.
//!
//! Unstructured and N:M pruning zero weights but leave every shape intact;
//! structured pruning shrinks them. That is exactly the regime where the
//! boundary-effect prober's job changes: the channel counts it recovers are
//! no longer the zoo's textbook values, so the attack must read them off
//! the device rather than pattern-match a known family.
//!
//! # Channel classes
//!
//! Removing output channel `k` of a convolution forces every consumer of
//! that activation map to drop its input channel `k` too — and a residual
//! `Add` forces *both* of its operands to keep the same channel set. The
//! pass therefore first partitions map-producing nodes into **channel
//! classes** with a union-find:
//!
//! * a `Conv` output starts its own class,
//! * `DwConv` and `Pool` outputs join their input's class (channel
//!   preserving),
//! * `Add` unifies the classes of both operands (and joins them),
//! * a class containing the network `Input` is unprunable — the attacker
//!   feeds images, not channel-sliced tensors.
//!
//! Each prunable class scores channel `k` as the summed L1 norm of filter
//! `k` over every producer conv in the class (plus the per-channel
//! depthwise weights riding on the class), keeps the top `keep_frac`
//! fraction, and [`restructure`] rewrites the network: producer `K` axes,
//! consumer `C` axes, biases, BN affines, depthwise filters, and the
//! flatten/GAP-fed linear head's input columns all shrink together. The
//! result is validated with [`crate::verify`] — a half-rewritten graph
//! (orphaned BN length, mismatched residual operands) is a bug, not a
//! victim.

use crate::graph::{LayerParams, Network, Node, NodeId, Op, Params, ValueShape};
use hd_tensor::conv::{conv_out_dim, Padding};
use hd_tensor::norm::Affine;
use hd_tensor::Shape3;

/// Configuration for [`structured_prune`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StructuredCfg {
    /// Fraction of each prunable class's channels to keep (ceil-rounded).
    pub keep_frac: f64,
    /// Floor of surviving channels per class.
    pub min_keep: usize,
}

impl Default for StructuredCfg {
    fn default() -> Self {
        StructuredCfg {
            keep_frac: 0.5,
            min_keep: 2,
        }
    }
}

/// Per-node output-channel keep masks produced by [`plan_channels`].
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelPlan {
    /// `keep[id]` is `Some(mask)` for map-producing nodes; nodes in the
    /// same channel class share identical masks.
    pub keep: Vec<Option<Vec<bool>>>,
}

impl ChannelPlan {
    /// Total channels removed across all distinct classes.
    pub fn channels_removed(&self, net: &Network) -> usize {
        // Count each class once, via its conv producers' output masks.
        let mut removed = 0;
        for (id, node) in net.nodes().iter().enumerate() {
            if matches!(node.op, Op::Conv(_)) {
                if let Some(mask) = &self.keep[id] {
                    removed += mask.iter().filter(|&&k| !k).count();
                }
            }
        }
        removed
    }

    /// The keep mask over node `id`'s output channels, if it produces a map.
    pub fn keep_for(&self, id: NodeId) -> Option<&[bool]> {
        self.keep[id].as_deref()
    }
}

/// Minimal union-find over node ids.
struct Uf(Vec<usize>);

impl Uf {
    fn new(n: usize) -> Uf {
        Uf((0..n).collect())
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.0[i] != i {
            self.0[i] = self.0[self.0[i]];
            i = self.0[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: the smaller root wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.0[hi] = lo;
        }
    }
}

fn map_c(net: &Network, id: NodeId) -> usize {
    match net.value_shape(id) {
        ValueShape::Map(s) => s.c,
        // hd-lint: allow(no-panic) -- callers only pass map-producing nodes of a verify-clean graph
        ValueShape::Vector(_) => panic!("node {id} does not produce an activation map"),
    }
}

/// Computes the channel classes and per-class keep masks for `net` under
/// `cfg`, scoring channels by summed producer L1 norm.
///
/// # Panics
///
/// Panics if `cfg.keep_frac` is not in `(0, 1]`, or if the graph's channel
/// bookkeeping is inconsistent (run [`crate::verify`] first).
pub fn plan_channels(net: &Network, params: &Params, cfg: &StructuredCfg) -> ChannelPlan {
    assert!(
        cfg.keep_frac > 0.0 && cfg.keep_frac <= 1.0,
        "keep_frac must be in (0, 1]"
    );
    let n = net.len();
    let mut uf = Uf::new(n);
    let mut is_map = vec![false; n];
    for (id, node) in net.nodes().iter().enumerate() {
        match &node.op {
            Op::Input | Op::Conv(_) => is_map[id] = true,
            Op::DwConv { .. } | Op::Pool { .. } => {
                is_map[id] = true;
                uf.union(id, node.inputs[0]);
            }
            Op::Add { .. } => {
                is_map[id] = true;
                uf.union(node.inputs[0], node.inputs[1]);
                uf.union(id, node.inputs[0]);
            }
            Op::GlobalAvgPool | Op::Flatten | Op::Linear { .. } => {}
        }
    }

    // Per class root: channel count, prunability, and channel scores.
    let mut channels = vec![0usize; n];
    let mut prunable = vec![true; n];
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); n];
    for (id, &mapped) in is_map.iter().enumerate() {
        if !mapped {
            continue;
        }
        let root = uf.find(id);
        let c = map_c(net, id);
        if channels[root] == 0 {
            channels[root] = c;
            scores[root] = vec![0.0; c];
        } else {
            assert_eq!(
                channels[root], c,
                "channel class of node {id} mixes widths {} and {c}; graph is not verify-clean",
                channels[root]
            );
        }
        match &net.nodes()[id].op {
            Op::Input => prunable[root] = false,
            Op::Conv(_) => {
                if let Some(LayerParams::Conv { w, .. }) = &params.layers[id] {
                    let filter = w.c() * w.r() * w.s();
                    for (score, taps) in scores[root].iter_mut().zip(w.data().chunks_exact(filter))
                    {
                        // hd-lint: allow(float-reduction-order) -- summed in slice order (left-to-right), and widened to f64 so the tap order cannot flip a ranking
                        let l1: f64 = taps.iter().map(|v| f64::from(v.abs())).sum();
                        *score += l1;
                    }
                }
            }
            Op::DwConv { .. } => {
                // Per-channel depthwise weights vote for their channel.
                if let Some(LayerParams::DwConv { w, .. }) = &params.layers[id] {
                    let filter = w.c() * w.r() * w.s();
                    for (score, taps) in scores[root].iter_mut().zip(w.data().chunks_exact(filter))
                    {
                        // hd-lint: allow(float-reduction-order) -- summed in slice order (left-to-right), and widened to f64 so the tap order cannot flip a ranking
                        let l1: f64 = taps.iter().map(|v| f64::from(v.abs())).sum();
                        *score += l1;
                    }
                }
            }
            _ => {}
        }
    }

    // A class with no conv producer has nothing to rank (it is fed by the
    // input); such classes stay intact even without an Input member.
    let mut has_producer = vec![false; n];
    for (id, node) in net.nodes().iter().enumerate() {
        if matches!(node.op, Op::Conv(_)) {
            let root = uf.find(id);
            has_producer[root] = true;
        }
    }

    let mut class_keep: Vec<Option<Vec<bool>>> = vec![None; n];
    for root in 0..n {
        if channels[root] == 0 {
            continue; // not a class root (or vector node)
        }
        let c = channels[root];
        let keep = if !prunable[root] || !has_producer[root] {
            vec![true; c]
        } else {
            let want = ((c as f64) * cfg.keep_frac).ceil() as usize;
            let keep_count = want.max(cfg.min_keep).clamp(1, c);
            let mut order: Vec<usize> = (0..c).collect();
            order.sort_by(|&a, &b| scores[root][b].total_cmp(&scores[root][a]).then(a.cmp(&b)));
            let mut keep = vec![false; c];
            for &k in order.iter().take(keep_count) {
                keep[k] = true;
            }
            keep
        };
        class_keep[root] = Some(keep);
    }

    let mut keep = vec![None; n];
    for id in 0..n {
        if is_map[id] {
            let root = uf.find(id);
            keep[id] = class_keep[root].clone();
        }
    }
    ChannelPlan { keep }
}

fn count(keep: &[bool]) -> usize {
    keep.iter().filter(|&&k| k).count()
}

fn slice_vec(v: &[f32], keep: &[bool]) -> Vec<f32> {
    v.iter()
        .zip(keep)
        .filter(|(_, &k)| k)
        .map(|(&x, _)| x)
        .collect()
}

fn slice_affine(bn: &Affine, keep: &[bool]) -> Affine {
    Affine::new(slice_vec(bn.scale(), keep), slice_vec(bn.shift(), keep))
}

/// Physically rewrites `net`/`params` according to `plan`: producer `K`
/// axes, consumer `C` axes, biases, BN affines, and the flatten/GAP-fed
/// linear head all shrink to the surviving channels. Returns the new
/// network and parameters; shapes are re-inferred from scratch.
///
/// # Panics
///
/// Panics if `plan` was built for a different graph, or if the rewrite
/// produces a graph that fails [`crate::verify`] (an internal invariant:
/// dangling channels are a bug, not a result).
pub fn restructure(net: &Network, params: &Params, plan: &ChannelPlan) -> (Network, Params) {
    assert_eq!(
        plan.keep.len(),
        net.len(),
        "plan built for a different graph"
    );
    let n = net.len();
    let mut nodes: Vec<Node> = Vec::with_capacity(n);
    let mut shapes: Vec<ValueShape> = Vec::with_capacity(n);
    let mut layers: Vec<Option<LayerParams>> = Vec::with_capacity(n);
    // Element-level keep mask per node output: channel mask for maps,
    // expanded per-element mask for vectors (drives linear-column slicing).
    let mut out_keep: Vec<Vec<bool>> = Vec::with_capacity(n);

    let map_shape = |shapes: &[ValueShape], id: NodeId| -> Shape3 {
        match shapes[id] {
            ValueShape::Map(s) => s,
            // hd-lint: allow(no-panic) -- restructure only runs on verify-clean graphs where map consumers read map producers
            ValueShape::Vector(_) => panic!("node {id} does not produce an activation map"),
        }
    };
    let keep_of = |plan: &ChannelPlan, id: NodeId| -> Vec<bool> {
        match &plan.keep[id] {
            Some(k) => k.clone(),
            // hd-lint: allow(no-panic) -- plan_channels fills every map-producing node
            None => panic!("plan has no keep mask for map node {id}"),
        }
    };

    for (id, node) in net.nodes().iter().enumerate() {
        match &node.op {
            Op::Input => {
                nodes.push(node.clone());
                shapes.push(ValueShape::Map(net.input_shape()));
                layers.push(None);
                out_keep.push(vec![true; net.input_shape().c]);
            }
            Op::Conv(spec) => {
                let src = node.inputs[0];
                let in_shape = map_shape(&shapes, src);
                let in_keep = &out_keep[src];
                let ch_keep = keep_of(plan, id);
                let mut new_spec = *spec;
                new_spec.out_channels = count(&ch_keep);
                let lp = match &params.layers[id] {
                    Some(LayerParams::Conv { w, b, bn }) => LayerParams::Conv {
                        w: w.select_k(&ch_keep).select_c(in_keep),
                        b: b.as_ref().map(|b| slice_vec(b, &ch_keep)),
                        bn: bn.as_ref().map(|bn| slice_affine(bn, &ch_keep)),
                    },
                    // hd-lint: allow(no-panic) -- verify-clean graphs carry conv params on conv nodes
                    other => panic!("conv node {id} has no conv params: {other:?}"),
                };
                let oh = conv_out_dim(
                    in_shape.h,
                    new_spec.kernel,
                    new_spec.stride,
                    new_spec.padding,
                );
                let ow = conv_out_dim(
                    in_shape.w,
                    new_spec.kernel,
                    new_spec.stride,
                    new_spec.padding,
                );
                nodes.push(Node {
                    op: Op::Conv(new_spec),
                    inputs: node.inputs.clone(),
                });
                shapes.push(ValueShape::Map(Shape3::new(new_spec.out_channels, oh, ow)));
                layers.push(Some(lp));
                out_keep.push(ch_keep);
            }
            Op::DwConv { kernel, stride, .. } => {
                let src = node.inputs[0];
                let in_shape = map_shape(&shapes, src);
                let ch_keep = out_keep[src].clone();
                let lp = match &params.layers[id] {
                    Some(LayerParams::DwConv { w, bn }) => LayerParams::DwConv {
                        w: w.select_k(&ch_keep),
                        bn: bn.as_ref().map(|bn| slice_affine(bn, &ch_keep)),
                    },
                    // hd-lint: allow(no-panic) -- verify-clean graphs carry dwconv params on dwconv nodes
                    other => panic!("dwconv node {id} has no dwconv params: {other:?}"),
                };
                let oh = conv_out_dim(in_shape.h, *kernel, *stride, Padding::Same);
                let ow = conv_out_dim(in_shape.w, *kernel, *stride, Padding::Same);
                nodes.push(node.clone());
                shapes.push(ValueShape::Map(Shape3::new(count(&ch_keep), oh, ow)));
                layers.push(Some(lp));
                out_keep.push(ch_keep);
            }
            Op::Pool { factor, .. } => {
                let src = node.inputs[0];
                let s = map_shape(&shapes, src);
                nodes.push(node.clone());
                shapes.push(ValueShape::Map(Shape3::new(
                    s.c,
                    s.h / factor,
                    s.w / factor,
                )));
                layers.push(None);
                out_keep.push(out_keep[src].clone());
            }
            Op::Add { .. } => {
                let s = map_shape(&shapes, node.inputs[0]);
                nodes.push(node.clone());
                shapes.push(ValueShape::Map(s));
                layers.push(None);
                out_keep.push(out_keep[node.inputs[0]].clone());
            }
            Op::GlobalAvgPool => {
                let src = node.inputs[0];
                let s = map_shape(&shapes, src);
                nodes.push(node.clone());
                shapes.push(ValueShape::Vector(s.c));
                layers.push(None);
                out_keep.push(out_keep[src].clone());
            }
            Op::Flatten => {
                let src = node.inputs[0];
                let new_shape = map_shape(&shapes, src);
                // Expand the channel mask over the *original* map layout:
                // flatten is channel-major, so channel k owns h*w columns.
                let old_shape = match net.value_shape(src) {
                    ValueShape::Map(s) => s,
                    // hd-lint: allow(no-panic) -- flatten reads a map in any verify-clean graph
                    ValueShape::Vector(_) => panic!("flatten input {src} is not a map"),
                };
                let plane = old_shape.h * old_shape.w;
                let mut elems = Vec::with_capacity(old_shape.len());
                for &keep_ch in &out_keep[src] {
                    elems.extend(std::iter::repeat_n(keep_ch, plane));
                }
                nodes.push(node.clone());
                shapes.push(ValueShape::Vector(new_shape.len()));
                layers.push(None);
                out_keep.push(elems);
            }
            Op::Linear { out_features, .. } => {
                let src = node.inputs[0];
                let in_keep = &out_keep[src];
                let new_in = count(in_keep);
                let lp = match &params.layers[id] {
                    Some(LayerParams::Linear {
                        w, b, in_features, ..
                    }) => {
                        assert_eq!(
                            *in_features,
                            in_keep.len(),
                            "linear node {id} input features disagree with the keep mask"
                        );
                        let mut new_w = Vec::with_capacity(out_features * new_in);
                        for row in w.chunks(*in_features) {
                            new_w.extend(
                                row.iter().zip(in_keep).filter(|(_, &k)| k).map(|(&x, _)| x),
                            );
                        }
                        LayerParams::Linear {
                            w: new_w,
                            b: b.clone(),
                            in_features: new_in,
                            out_features: *out_features,
                        }
                    }
                    // hd-lint: allow(no-panic) -- verify-clean graphs carry linear params on linear nodes
                    other => panic!("linear node {id} has no linear params: {other:?}"),
                };
                nodes.push(node.clone());
                shapes.push(ValueShape::Vector(*out_features));
                layers.push(Some(lp));
                out_keep.push(vec![true; *out_features]);
            }
        }
    }

    let names = (0..n).map(|id| net.name(id).to_string()).collect();
    let new_net = Network::from_raw_parts(nodes, net.input_shape(), shapes, names);
    let new_params = Params { layers };
    (new_net, new_params)
}

/// A structured-pruning result: the rewritten network and parameters plus
/// the channel plan that produced them.
#[derive(Clone, Debug)]
pub struct Restructured {
    /// The channel-removed network.
    pub net: Network,
    /// Parameters matching [`Restructured::net`].
    pub params: Params,
    /// The per-node keep masks that were applied.
    pub plan: ChannelPlan,
}

/// Structured channel pruning end to end: plan channel classes, rewrite
/// the graph, and validate the result with [`crate::verify`].
///
/// # Panics
///
/// Panics if the *input* graph is not verify-clean, or if the rewrite
/// fails verification (an internal invariant).
pub fn structured_prune(net: &Network, params: &Params, cfg: &StructuredCfg) -> Restructured {
    let plan = plan_channels(net, params, cfg);
    let (new_net, new_params) = restructure(net, params, &plan);
    let errors: Vec<_> = crate::verify::verify(
        &new_net,
        Some(&new_params),
        &crate::verify::Limits::default(),
    )
    .into_iter()
    .filter(|d| d.severity == crate::verify::Severity::Error)
    .collect();
    assert!(
        errors.is_empty(),
        "restructured graph failed verification (dangling channels?): {errors:?}"
    );
    Restructured {
        net: new_net,
        params: new_params,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;
    use hd_tensor::Tensor3;

    fn chain_net() -> (Network, Params) {
        let mut b = NetworkBuilder::new(3, 12, 12);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.conv(x, 6, 3, 1);
        let x = b.global_avg_pool(x);
        b.linear(x, 4);
        let net = b.build();
        let params = Params::init(&net, 11);
        (net, params)
    }

    fn residual_net() -> (Network, Params) {
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let stem = b.conv(x, 8, 3, 1);
        let y = b.conv(stem, 8, 3, 1);
        let j = b.add(stem, y);
        let x = b.global_avg_pool(j);
        b.linear(x, 3);
        let net = b.build();
        let params = Params::init(&net, 13);
        (net, params)
    }

    #[test]
    fn chain_halves_channels_and_verifies() {
        let (net, params) = chain_net();
        let r = structured_prune(&net, &params, &StructuredCfg::default());
        // conv1: 8 -> 4, conv3: 6 -> 3.
        let w1 = r.params.conv(1).w;
        assert_eq!((w1.k(), w1.c()), (4, 3));
        let w3 = r.params.conv(3).w;
        assert_eq!((w3.k(), w3.c()), (3, 4));
        // Head input shrank with the GAP channels.
        let head = r.params.linear(5);
        assert_eq!(head.in_features, 3);
        assert_eq!(head.out_features, 4);
        assert!(crate::verify::verify_strict(
            &r.net,
            Some(&r.params),
            &crate::verify::Limits::default()
        )
        .is_ok());
    }

    #[test]
    fn residual_add_operands_share_a_keep_set() {
        let (net, params) = residual_net();
        let r = structured_prune(&net, &params, &StructuredCfg::default());
        // Both convs feed the add (one directly, one through it): the class
        // is shared, so both keep masks are identical.
        assert_eq!(r.plan.keep[1], r.plan.keep[2]);
        assert_eq!(r.params.conv(1).w.k(), r.params.conv(2).w.k());
        // conv2's input channels track conv1's surviving outputs.
        assert_eq!(r.params.conv(2).w.c(), r.params.conv(1).w.k());
        let out = r.net.forward(&r.params, &Tensor3::full(3, 8, 8, 0.5));
        assert!(out.logits().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn l1_ranking_keeps_the_heavy_channels() {
        let mut b = NetworkBuilder::new(1, 6, 6);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        b.global_avg_pool(x);
        let net = b.build();
        let mut params = Params::init(&net, 1);
        // Make channels 1 and 3 heavy, 0 and 2 tiny.
        if let Some(w) = params.conv_weights_mut(1) {
            for k in 0..4 {
                let scale = if k % 2 == 1 { 10.0 } else { 0.01 };
                for c in 0..1 {
                    for r in 0..3 {
                        for s in 0..3 {
                            w.set(k, c, r, s, scale);
                        }
                    }
                }
            }
        }
        let plan = plan_channels(&net, &params, &StructuredCfg::default());
        assert_eq!(plan.keep[1], Some(vec![false, true, false, true]));
        assert_eq!(plan.channels_removed(&net), 2);
    }

    #[test]
    fn forward_matches_manual_channel_slice() {
        // Keeping all channels must reproduce the original network exactly.
        let (net, params) = chain_net();
        let cfg = StructuredCfg {
            keep_frac: 1.0,
            min_keep: 1,
        };
        let r = structured_prune(&net, &params, &cfg);
        assert_eq!(r.net, net);
        assert_eq!(r.params, params);
    }

    #[test]
    fn min_keep_floor_holds() {
        let (net, params) = chain_net();
        let cfg = StructuredCfg {
            keep_frac: 0.01,
            min_keep: 2,
        };
        let r = structured_prune(&net, &params, &cfg);
        assert_eq!(r.params.conv(1).w.k(), 2);
        assert_eq!(r.params.conv(3).w.k(), 2);
    }

    #[test]
    fn input_class_is_never_pruned() {
        let (net, params) = chain_net();
        let plan = plan_channels(&net, &params, &StructuredCfg::default());
        assert_eq!(plan.keep[0], Some(vec![true; 3]));
    }
}
