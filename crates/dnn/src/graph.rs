//! Dataflow-graph CNN representation and forward execution.
//!
//! A [`Network`] is a topologically-ordered list of nodes; each node applies
//! one [`Op`] to the outputs of earlier nodes. The representation keeps the
//! *architectural hyperparameters* the HuffDuff attacker is trying to steal
//! (kernel size, stride, pooling factors, channel counts, dataflow edges)
//! explicit and queryable, so experiments can compare recovered vs. actual
//! geometry directly.

use hd_tensor::conv::{conv2d, conv_out_dim, BackendPolicy, Conv2dCfg, ConvBackend, Padding};
use hd_tensor::dwconv::dwconv2d;
use hd_tensor::norm::Affine;
use hd_tensor::pool::{global_avg_pool, pool2d, PoolKind};
use hd_tensor::{Shape3, Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Index of a node within a [`Network`].
pub type NodeId = usize;

/// Hyperparameters of a convolution layer (CONV -> BatchNorm -> ReLU).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Output channel count `K`.
    pub out_channels: usize,
    /// Symmetric kernel size `R = S`.
    pub kernel: usize,
    /// Symmetric stride.
    pub stride: usize,
    /// Padding mode ("same" zero padding is the paper's common case).
    pub padding: Padding,
    /// Whether an explicit additive bias is present.
    pub bias: bool,
    /// Whether an inference-mode batch-norm affine follows the convolution.
    pub batch_norm: bool,
    /// Whether a ReLU follows.
    pub relu: bool,
}

impl ConvSpec {
    /// The common CONV+BN+ReLU configuration.
    pub fn standard(out_channels: usize, kernel: usize, stride: usize) -> Self {
        ConvSpec {
            out_channels,
            kernel,
            stride,
            padding: Padding::Same,
            bias: false,
            batch_norm: true,
            relu: true,
        }
    }
}

/// One graph operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// The network input (exactly one per network, always node 0).
    Input,
    /// Standard convolution (optionally + BN + ReLU).
    Conv(ConvSpec),
    /// Depthwise convolution (optionally + BN + ReLU).
    DwConv {
        /// Symmetric kernel size.
        kernel: usize,
        /// Symmetric stride.
        stride: usize,
        /// Batch-norm affine after the convolution.
        batch_norm: bool,
        /// ReLU after (MobileNetV2 uses linear bottlenecks, so this varies).
        relu: bool,
    },
    /// Spatial pooling with symmetric non-overlapping windows.
    Pool {
        /// Window size == stride.
        factor: usize,
        /// Max or average.
        kind: PoolKind,
    },
    /// Elementwise residual addition of two equal-shaped maps.
    Add {
        /// ReLU after the join (ResNet basic blocks do this).
        relu: bool,
    },
    /// Collapse each channel to its spatial mean, producing a vector.
    GlobalAvgPool,
    /// Reshape a map into a vector.
    Flatten,
    /// Fully connected layer on a vector.
    Linear {
        /// Output feature count.
        out_features: usize,
        /// ReLU after.
        relu: bool,
    },
}

/// A node: an op plus the ids of its inputs.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Input node ids (earlier in the list).
    pub inputs: Vec<NodeId>,
}

/// Shape of a node's output value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueShape {
    /// A `C x H x W` activation map.
    Map(Shape3),
    /// A flat feature vector.
    Vector(usize),
}

impl ValueShape {
    /// Total element count.
    pub fn len(&self) -> usize {
        match self {
            ValueShape::Map(s) => s.len(),
            ValueShape::Vector(n) => *n,
        }
    }

    /// Returns `true` when the value holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The map shape, if this is a map.
    pub fn as_map(&self) -> Option<Shape3> {
        match self {
            ValueShape::Map(s) => Some(*s),
            ValueShape::Vector(_) => None,
        }
    }
}

/// A runtime value flowing along a graph edge.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Activation map.
    Map(Tensor3),
    /// Feature vector.
    Vector(Vec<f32>),
}

impl Value {
    /// Borrows the map.
    ///
    /// # Panics
    ///
    /// Panics if the value is a vector.
    pub fn map(&self) -> &Tensor3 {
        match self {
            Value::Map(t) => t,
            // hd-lint: allow(no-panic) -- documented panicking accessor; callers use as_map for the fallible form
            Value::Vector(_) => panic!("expected activation map, found vector"),
        }
    }

    /// Borrows the vector.
    ///
    /// # Panics
    ///
    /// Panics if the value is a map.
    pub fn vector(&self) -> &[f32] {
        match self {
            Value::Vector(v) => v,
            // hd-lint: allow(no-panic) -- documented panicking accessor; callers use as_vector for the fallible form
            Value::Map(_) => panic!("expected vector, found activation map"),
        }
    }

    /// Flat element view regardless of variant.
    pub fn flat(&self) -> &[f32] {
        match self {
            Value::Map(t) => t.data(),
            Value::Vector(v) => v,
        }
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        hd_tensor::nnz(self.flat())
    }
}

/// A CNN as a topologically-ordered dataflow graph.
#[derive(Clone, Debug, PartialEq)]
pub struct Network {
    nodes: Vec<Node>,
    input_shape: Shape3,
    shapes: Vec<ValueShape>,
    names: Vec<String>,
}

impl Network {
    /// Assembles a network from pre-built parts **without validation**.
    ///
    /// [`NetworkBuilder`] runs eager shape inference and is the supported
    /// construction path; this escape hatch exists for tests (and future
    /// deserializers) that need to materialize graphs the builder would
    /// reject — e.g. to exercise [`hd-accel`]'s typed device errors on
    /// malformed graphs. `nodes`, `shapes`, and `names` must be
    /// index-aligned.
    ///
    /// # Panics
    ///
    /// Panics if `shapes` or `names` length differs from `nodes`.
    pub fn from_raw_parts(
        nodes: Vec<Node>,
        input_shape: Shape3,
        shapes: Vec<ValueShape>,
        names: Vec<String>,
    ) -> Network {
        assert_eq!(nodes.len(), shapes.len(), "one shape per node");
        assert_eq!(nodes.len(), names.len(), "one name per node");
        Network {
            nodes,
            input_shape,
            shapes,
            names,
        }
    }

    /// Nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes (including the input node).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The network input shape.
    pub fn input_shape(&self) -> Shape3 {
        self.input_shape
    }

    /// Output shape of node `id`.
    pub fn value_shape(&self, id: NodeId) -> ValueShape {
        self.shapes[id]
    }

    /// Debug name of node `id`.
    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id]
    }

    /// Ids of all convolution nodes (standard + depthwise), in order.
    pub fn conv_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Conv(_) | Op::DwConv { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids of nodes that carry weights (conv, depthwise conv, linear).
    pub fn weighted_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, Op::Conv(_) | Op::DwConv { .. } | Op::Linear { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total weight element count (dense footprint).
    pub fn dense_weight_count(&self, params: &Params) -> usize {
        self.weighted_nodes()
            .iter()
            .map(|&id| match &params.layers[id] {
                Some(LayerParams::Conv { w, .. }) => w.len(),
                Some(LayerParams::DwConv { w, .. }) => w.len(),
                Some(LayerParams::Linear { w, .. }) => w.len(),
                None => 0,
            })
            .sum()
    }

    /// Total non-zero weight count (sparse footprint).
    pub fn sparse_weight_count(&self, params: &Params) -> usize {
        self.weighted_nodes()
            .iter()
            .map(|&id| match &params.layers[id] {
                Some(LayerParams::Conv { w, .. }) => w.nnz(),
                Some(LayerParams::DwConv { w, .. }) => w.nnz(),
                Some(LayerParams::Linear { w, .. }) => hd_tensor::nnz(w),
                None => 0,
            })
            .sum()
    }

    /// Runs the network with the default convolution backend, keeping every
    /// intermediate needed for backprop.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the network's declared input
    /// shape, or if parameters are missing for a weighted node.
    pub fn forward(&self, params: &Params, input: &Tensor3) -> ForwardTrace {
        self.forward_with(params, input, ConvBackend::default())
    }

    /// Runs the network with an explicit convolution backend.
    ///
    /// Backends are bit-identical (see `hd_tensor::gemm` and
    /// `hd_tensor::csc_conv`), so this only changes wall-clock time, never
    /// the trace contents.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::forward`].
    pub fn forward_with(
        &self,
        params: &Params,
        input: &Tensor3,
        backend: ConvBackend,
    ) -> ForwardTrace {
        self.forward_with_policy(params, input, backend, BackendPolicy::default())
    }

    /// [`Network::forward_with`] with an explicit kernel-dispatch policy.
    ///
    /// The policy moves work between bit-identical kernels (CSC scatter vs
    /// dense backends), so like the backend choice it never changes the
    /// trace contents.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::forward`].
    pub fn forward_with_policy(
        &self,
        params: &Params,
        input: &Tensor3,
        backend: ConvBackend,
        policy: BackendPolicy,
    ) -> ForwardTrace {
        assert_eq!(
            input.shape(),
            self.input_shape,
            "input shape {} does not match network input {}",
            input.shape(),
            self.input_shape
        );
        let mut traces: Vec<NodeTrace> = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            let trace = match &node.op {
                Op::Input => NodeTrace {
                    out: Value::Map(input.clone()),
                    pre_bn: None,
                    pre_relu: None,
                },
                Op::Conv(spec) => {
                    let x = traces[node.inputs[0]].out.map();
                    let lp = params.conv(id);
                    let cfg = Conv2dCfg::new(spec.stride, spec.padding)
                        .with_backend(backend)
                        .with_policy(policy);
                    let conv_out = conv2d(x, lp.w, lp.b.as_deref(), &cfg);
                    let (pre_bn, bn_out) = if let Some(bn) = &lp.bn {
                        (Some(conv_out.clone()), bn.apply(&conv_out))
                    } else {
                        (None, conv_out)
                    };
                    let (pre_relu, out) = if spec.relu {
                        let mut o = bn_out.clone();
                        o.relu_inplace();
                        (Some(bn_out), o)
                    } else {
                        (None, bn_out)
                    };
                    NodeTrace {
                        out: Value::Map(out),
                        pre_bn,
                        pre_relu: pre_relu.map(Value::Map),
                    }
                }
                Op::DwConv {
                    kernel: _,
                    stride,
                    batch_norm: _,
                    relu,
                } => {
                    let x = traces[node.inputs[0]].out.map();
                    let lp = params.dwconv(id);
                    let cfg = Conv2dCfg::new(*stride, Padding::Same)
                        .with_backend(backend)
                        .with_policy(policy);
                    let conv_out = dwconv2d(x, lp.w, &cfg);
                    let (pre_bn, bn_out) = if let Some(bn) = &lp.bn {
                        (Some(conv_out.clone()), bn.apply(&conv_out))
                    } else {
                        (None, conv_out)
                    };
                    let (pre_relu, out) = if *relu {
                        let mut o = bn_out.clone();
                        o.relu_inplace();
                        (Some(bn_out), o)
                    } else {
                        (None, bn_out)
                    };
                    NodeTrace {
                        out: Value::Map(out),
                        pre_bn,
                        pre_relu: pre_relu.map(Value::Map),
                    }
                }
                Op::Pool { factor, kind } => {
                    let x = traces[node.inputs[0]].out.map();
                    NodeTrace {
                        out: Value::Map(pool2d(x, *factor, *kind)),
                        pre_bn: None,
                        pre_relu: None,
                    }
                }
                Op::Add { relu } => {
                    let a = traces[node.inputs[0]].out.map();
                    let b = traces[node.inputs[1]].out.map();
                    let sum = a.add(b);
                    let (pre_relu, out) = if *relu {
                        let mut o = sum.clone();
                        o.relu_inplace();
                        (Some(sum), o)
                    } else {
                        (None, sum)
                    };
                    NodeTrace {
                        out: Value::Map(out),
                        pre_bn: None,
                        pre_relu: pre_relu.map(Value::Map),
                    }
                }
                Op::GlobalAvgPool => {
                    let x = traces[node.inputs[0]].out.map();
                    NodeTrace {
                        out: Value::Vector(global_avg_pool(x)),
                        pre_bn: None,
                        pre_relu: None,
                    }
                }
                Op::Flatten => {
                    let x = traces[node.inputs[0]].out.map();
                    NodeTrace {
                        out: Value::Vector(x.data().to_vec()),
                        pre_bn: None,
                        pre_relu: None,
                    }
                }
                Op::Linear { out_features, relu } => {
                    let x = traces[node.inputs[0]].out.vector();
                    let lp = params.linear(id);
                    assert_eq!(lp.in_features, x.len(), "linear input size mismatch");
                    let mut y = vec![0.0f32; *out_features];
                    for (o, yo) in y.iter_mut().enumerate() {
                        let row = &lp.w[o * lp.in_features..(o + 1) * lp.in_features];
                        let mut acc = lp.b[o];
                        for (wi, xi) in row.iter().zip(x) {
                            if *wi != 0.0 && *xi != 0.0 {
                                acc += wi * xi;
                            }
                        }
                        *yo = acc;
                    }
                    let (pre_relu, out) = if *relu {
                        let pre = y.clone();
                        for v in &mut y {
                            if *v < 0.0 {
                                *v = 0.0;
                            }
                        }
                        (Some(Value::Vector(pre)), y)
                    } else {
                        (None, y)
                    };
                    NodeTrace {
                        out: Value::Vector(out),
                        pre_bn: None,
                        pre_relu,
                    }
                }
            };
            traces.push(trace);
        }
        ForwardTrace { traces }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, node) in self.nodes.iter().enumerate() {
            writeln!(
                f,
                "#{id:<3} {:<12} inputs={:?} -> {:?}",
                self.names[id], node.inputs, self.shapes[id]
            )?;
        }
        Ok(())
    }
}

/// Per-node intermediates kept by [`Network::forward`].
#[derive(Clone, Debug)]
pub struct NodeTrace {
    /// Final node output.
    pub out: Value,
    /// Pre-batch-norm convolution output (when BN is present).
    pub pre_bn: Option<Tensor3>,
    /// Pre-ReLU value (when ReLU is present).
    pub pre_relu: Option<Value>,
}

/// Forward execution record: one [`NodeTrace`] per node.
#[derive(Clone, Debug)]
pub struct ForwardTrace {
    /// One entry per node, in topological order.
    pub traces: Vec<NodeTrace>,
}

impl ForwardTrace {
    /// Output of node `id`.
    pub fn value(&self, id: NodeId) -> &Value {
        &self.traces[id].out
    }

    /// The final node's output as a logit vector.
    ///
    /// # Panics
    ///
    /// Panics if the final node does not produce a vector.
    pub fn logits(&self) -> &[f32] {
        // hd-lint: allow(no-panic) -- documented above: networks are non-empty by NetworkBuilder construction
        self.traces.last().expect("empty network").out.vector()
    }

    /// Index of the largest logit.
    pub fn predicted_class(&self) -> usize {
        let logits = self.logits();
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Parameters of a standard convolution node.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvParams {
    /// Weights, `K x C x R x S`.
    pub w: Tensor4,
    /// Optional bias, length `K`.
    pub b: Option<Vec<f32>>,
    /// Optional inference-mode batch norm.
    pub bn: Option<Affine>,
}

/// Parameters of a depthwise convolution node.
#[derive(Clone, Debug, PartialEq)]
pub struct DwConvParams {
    /// Weights, `C x 1 x R x S`.
    pub w: Tensor4,
    /// Optional inference-mode batch norm.
    pub bn: Option<Affine>,
}

/// Parameters of a linear node.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearParams {
    /// Row-major `out_features x in_features` weights.
    pub w: Vec<f32>,
    /// Bias, length `out_features`.
    pub b: Vec<f32>,
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
}

/// Parameters of one node.
#[derive(Clone, Debug, PartialEq)]
pub enum LayerParams {
    /// Standard convolution.
    Conv {
        /// Weights.
        w: Tensor4,
        /// Optional bias.
        b: Option<Vec<f32>>,
        /// Optional batch norm.
        bn: Option<Affine>,
    },
    /// Depthwise convolution.
    DwConv {
        /// Weights (`C x 1 x R x S`).
        w: Tensor4,
        /// Optional batch norm.
        bn: Option<Affine>,
    },
    /// Fully connected.
    Linear {
        /// Row-major weights.
        w: Vec<f32>,
        /// Bias.
        b: Vec<f32>,
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
}

/// All parameters of a network, indexed by node id.
#[derive(Clone, Debug, PartialEq)]
pub struct Params {
    /// `layers[id]` is `Some` iff node `id` carries weights.
    pub layers: Vec<Option<LayerParams>>,
}

/// Borrowed view of conv parameters.
pub struct ConvView<'a> {
    /// Weights.
    pub w: &'a Tensor4,
    /// Bias.
    pub b: &'a Option<Vec<f32>>,
    /// Batch norm.
    pub bn: &'a Option<Affine>,
}

/// Borrowed view of depthwise conv parameters.
pub struct DwConvView<'a> {
    /// Weights.
    pub w: &'a Tensor4,
    /// Batch norm.
    pub bn: &'a Option<Affine>,
}

/// Borrowed view of linear parameters.
pub struct LinearView<'a> {
    /// Weights.
    pub w: &'a [f32],
    /// Bias.
    pub b: &'a [f32],
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
}

impl Params {
    /// Randomly initializes parameters for `net` (He weights, BN scale ~1).
    pub fn init(net: &Network, seed: u64) -> Params {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(net.len());
        for (id, node) in net.nodes().iter().enumerate() {
            let lp = match &node.op {
                Op::Conv(spec) => {
                    let in_c = net
                        .value_shape(node.inputs[0])
                        .as_map()
                        .expect("conv input must be a map") // hd-lint: allow(no-panic) -- NetworkBuilder only wires conv nodes to map-producing inputs
                        .c;
                    let mut w = Tensor4::zeros(spec.out_channels, in_c, spec.kernel, spec.kernel);
                    w.init_he(&mut rng);
                    let b = spec.bias.then(|| {
                        (0..spec.out_channels)
                            .map(|_| hd_tensor::tensor::gaussian(&mut rng) * 0.1)
                            .collect()
                    });
                    let bn = spec.batch_norm.then(|| {
                        let scale = (0..spec.out_channels)
                            .map(|_| 1.0 + hd_tensor::tensor::gaussian(&mut rng) * 0.1)
                            .collect();
                        let shift = (0..spec.out_channels)
                            .map(|_| hd_tensor::tensor::gaussian(&mut rng) * 0.1)
                            .collect();
                        Affine::new(scale, shift)
                    });
                    Some(LayerParams::Conv { w, b, bn })
                }
                Op::DwConv {
                    kernel, batch_norm, ..
                } => {
                    let in_c = net
                        .value_shape(node.inputs[0])
                        .as_map()
                        .expect("dwconv input must be a map") // hd-lint: allow(no-panic) -- NetworkBuilder only wires dwconv nodes to map-producing inputs
                        .c;
                    let mut w = Tensor4::zeros(in_c, 1, *kernel, *kernel);
                    w.init_he(&mut rng);
                    let bn = batch_norm.then(|| {
                        let scale = (0..in_c)
                            .map(|_| 1.0 + hd_tensor::tensor::gaussian(&mut rng) * 0.1)
                            .collect();
                        let shift = (0..in_c)
                            .map(|_| hd_tensor::tensor::gaussian(&mut rng) * 0.1)
                            .collect();
                        Affine::new(scale, shift)
                    });
                    Some(LayerParams::DwConv { w, bn })
                }
                Op::Linear { out_features, .. } => {
                    let in_features = net.value_shape(node.inputs[0]).len();
                    let std = (2.0 / in_features as f32).sqrt();
                    let w = (0..out_features * in_features)
                        .map(|_| hd_tensor::tensor::gaussian(&mut rng) * std)
                        .collect();
                    let b = vec![0.0; *out_features];
                    Some(LayerParams::Linear {
                        w,
                        b,
                        in_features,
                        out_features: *out_features,
                    })
                }
                _ => None,
            };
            layers.push(lp);
            let _ = id;
        }
        Params { layers }
    }

    /// Conv parameter view for node `id`.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a conv node.
    pub fn conv(&self, id: NodeId) -> ConvView<'_> {
        match &self.layers[id] {
            Some(LayerParams::Conv { w, b, bn }) => ConvView { w, b, bn },
            // hd-lint: allow(no-panic) -- documented panicking view; geometry was checked by the caller
            other => panic!("node {id} is not a conv layer: {other:?}"),
        }
    }

    /// Depthwise conv parameter view for node `id`.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a depthwise conv node.
    pub fn dwconv(&self, id: NodeId) -> DwConvView<'_> {
        match &self.layers[id] {
            Some(LayerParams::DwConv { w, bn }) => DwConvView { w, bn },
            // hd-lint: allow(no-panic) -- documented panicking view; geometry was checked by the caller
            other => panic!("node {id} is not a depthwise conv layer: {other:?}"),
        }
    }

    /// Linear parameter view for node `id`.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a linear node.
    pub fn linear(&self, id: NodeId) -> LinearView<'_> {
        match &self.layers[id] {
            Some(LayerParams::Linear {
                w,
                b,
                in_features,
                out_features,
            }) => LinearView {
                w,
                b,
                in_features: *in_features,
                out_features: *out_features,
            },
            // hd-lint: allow(no-panic) -- documented panicking view; geometry was checked by the caller
            other => panic!("node {id} is not a linear layer: {other:?}"),
        }
    }

    /// Mutable weight tensor of a conv / depthwise-conv node, if any.
    pub fn conv_weights_mut(&mut self, id: NodeId) -> Option<&mut Tensor4> {
        match &mut self.layers[id] {
            Some(LayerParams::Conv { w, .. }) | Some(LayerParams::DwConv { w, .. }) => Some(w),
            _ => None,
        }
    }
}

/// Incremental builder for [`Network`].
///
/// Nodes are appended in topological order; shape inference runs eagerly so
/// geometry errors surface at construction time.
#[derive(Debug)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    shapes: Vec<ValueShape>,
    names: Vec<String>,
    input_shape: Shape3,
    input_added: bool,
}

impl NetworkBuilder {
    /// Starts a network with the given input shape.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        NetworkBuilder {
            nodes: Vec::new(),
            shapes: Vec::new(),
            names: Vec::new(),
            input_shape: Shape3::new(c, h, w),
            input_added: false,
        }
    }

    /// Adds the input node (must be called first, exactly once).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn input(&mut self) -> NodeId {
        assert!(!self.input_added, "input() may only be called once");
        self.input_added = true;
        self.push(
            Op::Input,
            vec![],
            ValueShape::Map(self.input_shape),
            "input",
        )
    }

    fn push(&mut self, op: Op, inputs: Vec<NodeId>, shape: ValueShape, name: &str) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node { op, inputs });
        self.shapes.push(shape);
        self.names.push(format!("{name}{id}"));
        id
    }

    fn map_shape(&self, id: NodeId) -> Shape3 {
        self.shapes[id]
            .as_map()
            // hd-lint: allow(no-panic) -- builder-internal: every op below requires a map-producing input
            .unwrap_or_else(|| panic!("node {id} does not produce an activation map"))
    }

    /// Standard CONV+BN+ReLU layer.
    pub fn conv(&mut self, x: NodeId, out_channels: usize, kernel: usize, stride: usize) -> NodeId {
        self.conv_spec(x, ConvSpec::standard(out_channels, kernel, stride))
    }

    /// Convolution with full control over the spec.
    pub fn conv_spec(&mut self, x: NodeId, spec: ConvSpec) -> NodeId {
        let s = self.map_shape(x);
        let oh = conv_out_dim(s.h, spec.kernel, spec.stride, spec.padding);
        let ow = conv_out_dim(s.w, spec.kernel, spec.stride, spec.padding);
        let shape = ValueShape::Map(Shape3::new(spec.out_channels, oh, ow));
        self.push(Op::Conv(spec), vec![x], shape, "conv")
    }

    /// Depthwise CONV+BN+ReLU layer.
    pub fn dwconv(&mut self, x: NodeId, kernel: usize, stride: usize, relu: bool) -> NodeId {
        let s = self.map_shape(x);
        let oh = conv_out_dim(s.h, kernel, stride, Padding::Same);
        let ow = conv_out_dim(s.w, kernel, stride, Padding::Same);
        let shape = ValueShape::Map(Shape3::new(s.c, oh, ow));
        self.push(
            Op::DwConv {
                kernel,
                stride,
                batch_norm: true,
                relu,
            },
            vec![x],
            shape,
            "dwconv",
        )
    }

    /// Max pooling.
    pub fn max_pool(&mut self, x: NodeId, factor: usize) -> NodeId {
        self.pool(x, factor, PoolKind::Max)
    }

    /// Average pooling.
    pub fn avg_pool(&mut self, x: NodeId, factor: usize) -> NodeId {
        self.pool(x, factor, PoolKind::Avg)
    }

    fn pool(&mut self, x: NodeId, factor: usize, kind: PoolKind) -> NodeId {
        let s = self.map_shape(x);
        let shape = ValueShape::Map(Shape3::new(s.c, s.h / factor, s.w / factor));
        self.push(Op::Pool { factor, kind }, vec![x], shape, "pool")
    }

    /// Residual join with ReLU.
    ///
    /// # Panics
    ///
    /// Panics if the two inputs have different map shapes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add_opts(a, b, true)
    }

    /// Residual join with optional ReLU.
    pub fn add_opts(&mut self, a: NodeId, b: NodeId, relu: bool) -> NodeId {
        let sa = self.map_shape(a);
        let sb = self.map_shape(b);
        assert_eq!(sa, sb, "residual join of mismatched shapes {sa} vs {sb}");
        self.push(Op::Add { relu }, vec![a, b], ValueShape::Map(sa), "add")
    }

    /// Global average pooling (map -> vector).
    pub fn global_avg_pool(&mut self, x: NodeId) -> NodeId {
        let s = self.map_shape(x);
        self.push(Op::GlobalAvgPool, vec![x], ValueShape::Vector(s.c), "gap")
    }

    /// Flatten (map -> vector).
    pub fn flatten(&mut self, x: NodeId) -> NodeId {
        let s = self.map_shape(x);
        self.push(Op::Flatten, vec![x], ValueShape::Vector(s.len()), "flatten")
    }

    /// Fully connected layer without activation (e.g. final logits).
    pub fn linear(&mut self, x: NodeId, out_features: usize) -> NodeId {
        self.linear_opts(x, out_features, false)
    }

    /// Fully connected layer with optional ReLU.
    pub fn linear_opts(&mut self, x: NodeId, out_features: usize, relu: bool) -> NodeId {
        assert!(
            matches!(self.shapes[x], ValueShape::Vector(_)),
            "linear layers require a vector input; insert flatten/global_avg_pool first"
        );
        self.push(
            Op::Linear { out_features, relu },
            vec![x],
            ValueShape::Vector(out_features),
            "fc",
        )
    }

    /// Finalizes the network.
    ///
    /// # Panics
    ///
    /// Panics if no input node was added.
    pub fn build(self) -> Network {
        assert!(self.input_added, "network has no input node");
        Network {
            nodes: self.nodes,
            input_shape: self.input_shape,
            shapes: self.shapes,
            names: self.names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> Network {
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.global_avg_pool(x);
        b.linear(x, 10);
        b.build()
    }

    #[test]
    fn shape_inference() {
        let net = tiny_net();
        assert_eq!(net.value_shape(1), ValueShape::Map(Shape3::new(4, 8, 8)));
        assert_eq!(net.value_shape(2), ValueShape::Map(Shape3::new(4, 4, 4)));
        assert_eq!(net.value_shape(3), ValueShape::Vector(4));
        assert_eq!(net.value_shape(4), ValueShape::Vector(10));
    }

    #[test]
    fn forward_produces_logits() {
        let net = tiny_net();
        let params = Params::init(&net, 3);
        let mut input = Tensor3::zeros(3, 8, 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        input.fill_uniform(&mut rng, 0.0, 1.0);
        let out = net.forward(&params, &input);
        assert_eq!(out.logits().len(), 10);
        assert!(out.predicted_class() < 10);
    }

    #[test]
    fn forward_is_deterministic() {
        let net = tiny_net();
        let params = Params::init(&net, 3);
        let input = Tensor3::full(3, 8, 8, 0.25);
        let a = net.forward(&params, &input);
        let b = net.forward(&params, &input);
        assert_eq!(a.logits(), b.logits());
    }

    #[test]
    fn relu_outputs_nonnegative() {
        let net = tiny_net();
        let params = Params::init(&net, 5);
        let input = Tensor3::full(3, 8, 8, 1.0);
        let out = net.forward(&params, &input);
        assert!(out.value(1).flat().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn residual_add() {
        let mut b = NetworkBuilder::new(2, 4, 4);
        let x = b.input();
        let y = b.conv(x, 2, 3, 1);
        let z = b.add(x, y);
        b.global_avg_pool(z);
        let net = b.build();
        let params = Params::init(&net, 9);
        let input = Tensor3::full(2, 4, 4, 0.5);
        let out = net.forward(&params, &input);
        assert_eq!(out.value(2).map().shape(), Shape3::new(2, 4, 4));
    }

    #[test]
    fn conv_nodes_and_weighted_nodes() {
        let net = tiny_net();
        assert_eq!(net.conv_nodes(), vec![1]);
        assert_eq!(net.weighted_nodes(), vec![1, 4]);
    }

    #[test]
    fn dense_and_sparse_weight_counts() {
        let net = tiny_net();
        let mut params = Params::init(&net, 3);
        let dense = net.dense_weight_count(&params);
        assert_eq!(dense, 4 * 3 * 3 * 3 + 10 * 4);
        // Zero one conv weight.
        params.conv_weights_mut(1).unwrap().data_mut()[0] = 0.0;
        assert_eq!(net.sparse_weight_count(&params), dense - 1);
    }

    #[test]
    #[should_panic(expected = "input shape")]
    fn wrong_input_shape_panics() {
        let net = tiny_net();
        let params = Params::init(&net, 3);
        let _ = net.forward(&params, &Tensor3::zeros(3, 4, 4));
    }

    #[test]
    #[should_panic(expected = "vector input")]
    fn linear_on_map_panics() {
        let mut b = NetworkBuilder::new(1, 4, 4);
        let x = b.input();
        b.linear(x, 2);
    }

    #[test]
    fn depthwise_preserves_channels() {
        let mut b = NetworkBuilder::new(6, 8, 8);
        let x = b.input();
        let y = b.dwconv(x, 3, 2, true);
        let net = {
            b.global_avg_pool(y);
            b.build()
        };
        assert_eq!(net.value_shape(1), ValueShape::Map(Shape3::new(6, 4, 4)));
        let params = Params::init(&net, 2);
        let out = net.forward(&params, &Tensor3::full(6, 8, 8, 1.0));
        assert_eq!(out.value(1).map().c(), 6);
    }

    #[test]
    fn forward_backends_are_bit_identical() {
        let net = tiny_net();
        let params = Params::init(&net, 3);
        let mut input = Tensor3::zeros(3, 8, 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        input.fill_uniform(&mut rng, 0.1, 1.0);
        let direct = net.forward_with(&params, &input, ConvBackend::Direct);
        let gemm = net.forward_with(&params, &input, ConvBackend::Im2colGemm);
        for (a, b) in direct.traces.iter().zip(&gemm.traces) {
            for (x, y) in a.out.flat().iter().zip(b.out.flat()) {
                assert!(x.to_bits() == y.to_bits(), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn from_raw_parts_round_trips_builder_output() {
        let net = tiny_net();
        let rebuilt = Network::from_raw_parts(
            net.nodes().to_vec(),
            net.input_shape(),
            (0..net.len()).map(|id| net.value_shape(id)).collect(),
            (0..net.len()).map(|id| net.name(id).to_string()).collect(),
        );
        assert_eq!(net, rebuilt);
    }

    #[test]
    fn display_lists_nodes() {
        let net = tiny_net();
        let s = net.to_string();
        assert!(s.contains("input"));
        assert!(s.contains("conv"));
        assert!(s.contains("fc"));
    }
}
