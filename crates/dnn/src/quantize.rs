//! Post-training quantization (PTQ) to INT8 and the quantized forward
//! path.
//!
//! [`ptq`] folds inference-mode batch norm into the convolution weights
//! (`w' = gamma * w`, `b' = gamma * b + beta` — the standard deployment
//! transform, so the INT8 network has no separate BN step), calibrates
//! per-node activation ranges on a set of calibration images, and
//! quantizes weights symmetrically per output channel
//! ([`hd_tensor::QTensor4`]). [`Network::forward_quantized`] then runs the
//! whole graph in the integer domain — i8 activations, i32 accumulators,
//! one deterministic requantize per output element — and reports a
//! [`ForwardTrace`] whose values are the *dequantized* INT8 activations,
//! so every downstream consumer (accelerator timing model, attack code,
//! experiments) sees exactly what an INT8 accelerator would compute.
//!
//! Zero-skipping survives quantization by construction: activation zero
//! points are exact ([`QuantParams::from_range`] widens the calibrated
//! range to include 0.0), so an INT8 ReLU zero dequantizes to bit-exact
//! `0.0` and the trace's nnz accounting matches what the sparse
//! accelerator's datapath would skip. Because BN is folded, the quantized
//! trace has no `pre_bn` / `pre_relu` intermediates — the INT8 datapath
//! never materializes them, and the attack must work from the fused
//! outputs alone.

use crate::graph::{ForwardTrace, Network, NodeTrace, Op, Params, Value};
use hd_tensor::conv::Conv2dCfg;
use hd_tensor::dwconv::dwconv2d;
use hd_tensor::pool::PoolKind;
use hd_tensor::qconv::{qconv2d, requantize, QConvParams};
use hd_tensor::{QTensor3, QTensor4, QuantParams, Shape3, Tensor3};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Quantized parameters of a fully connected layer: symmetric per-output-
/// row weights, i32 bias in accumulator units, and per-row requantization
/// multipliers (same contract as [`QConvParams`]).
#[derive(Clone, Debug)]
pub struct QLinearParams {
    /// Row-major `out_features x in_features` quantized weights.
    pub w_q: Vec<i8>,
    /// Bias in accumulator units: `round(b[o] / (s_in * s_w[o]))`.
    pub bias_q: Vec<i32>,
    /// Per-row requantization multiplier `s_in * s_w[o] / s_out`.
    pub multipliers: Vec<f32>,
    /// Output activation quantization.
    pub out_qp: QuantParams,
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
}

/// Quantized parameters of one weighted node.
#[derive(Clone, Debug)]
pub enum QLayer {
    /// Standard convolution with BN folded into weights and bias.
    Conv(QConvParams),
    /// Depthwise convolution: kept in f32 (dequantize -> dwconv + BN +
    /// ReLU -> requantize). Depthwise layers are a tiny fraction of the
    /// MACs and real INT8 deployments frequently leave them in higher
    /// precision for accuracy.
    DwConv {
        /// f32 weights (`C x 1 x R x S`).
        w: hd_tensor::Tensor4,
        /// Inference-mode batch norm, if present.
        bn: Option<hd_tensor::norm::Affine>,
    },
    /// Fully connected layer.
    Linear(QLinearParams),
}

/// An INT8-quantized network: per-node activation quantization plus
/// quantized parameters for every weighted node. Produced by [`ptq`];
/// consumed by [`Network::forward_quantized`].
#[derive(Clone, Debug)]
pub struct QuantizedNet {
    /// Effective output quantization of each node. Calibrated for nodes
    /// that compute (conv, dwconv, add, linear, input); propagated from
    /// the producer for shape-only nodes (pool, flatten, global-avg-pool)
    /// so those stay in the integer domain without an extra requantize.
    pub act_qp: Vec<QuantParams>,
    /// `layers[id]` is `Some` iff node `id` carries weights.
    pub layers: Vec<Option<QLayer>>,
}

impl QuantizedNet {
    /// Quantization of the network input.
    pub fn input_qp(&self) -> QuantParams {
        self.act_qp[0]
    }

    /// Total non-zero quantized weight count (INT8 sparse footprint).
    pub fn sparse_weight_count(&self) -> usize {
        self.layers
            .iter()
            .flatten()
            .map(|l| match l {
                QLayer::Conv(p) => p.weight.nnz(),
                QLayer::DwConv { w, .. } => w.nnz(),
                QLayer::Linear(p) => p.w_q.iter().filter(|&&q| q != 0).count(),
            })
            .sum()
    }
}

/// Deterministic calibration set: `n` images uniform in `[-1, 1]`.
///
/// Uniform noise exercises the full input range, which is what range
/// calibration needs; PTQ quality on real data is dominated by the
/// activation ranges, and those are driven by the weights, not by input
/// image structure.
pub fn calibration_images(shape: Shape3, n: usize, seed: u64) -> Vec<Tensor3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t = Tensor3::zeros(shape.c, shape.h, shape.w);
            t.fill_uniform(&mut rng, -1.0, 1.0);
            t
        })
        .collect()
}

/// Post-training quantization of `(net, params)` calibrated on `calib`.
///
/// # Panics
///
/// Panics if `calib` is empty or if `params` is missing parameters for a
/// weighted node (same condition as [`Network::forward`]).
pub fn ptq(net: &Network, params: &Params, calib: &[Tensor3]) -> QuantizedNet {
    assert!(
        !calib.is_empty(),
        "PTQ needs at least one calibration image"
    );
    // Pass 1: per-node min/max of the f32 activations over the
    // calibration set.
    let mut lo = vec![f32::MAX; net.len()];
    let mut hi = vec![f32::MIN; net.len()];
    for img in calib {
        let trace = net.forward(params, img);
        for (id, t) in trace.traces.iter().enumerate() {
            for &v in t.out.flat() {
                lo[id] = lo[id].min(v);
                hi[id] = hi[id].max(v);
            }
        }
    }
    // Pass 2: effective output quantization per node. Shape-only nodes
    // inherit the producer's parameters so max pooling stays exact and
    // no spurious requantization error is introduced.
    let mut act_qp = vec![QuantParams::from_range(0.0, 0.0); net.len()];
    for (id, node) in net.nodes().iter().enumerate() {
        act_qp[id] = match &node.op {
            Op::Pool { .. } | Op::Flatten | Op::GlobalAvgPool => act_qp[node.inputs[0]],
            _ => QuantParams::from_range(lo[id], hi[id]),
        };
    }
    // Pass 3: quantize weights against the calibrated activation scales.
    let mut layers: Vec<Option<QLayer>> = Vec::with_capacity(net.len());
    for (id, node) in net.nodes().iter().enumerate() {
        let layer = match &node.op {
            Op::Conv(_) => {
                let lp = params.conv(id);
                let s_in = act_qp[node.inputs[0]].scale;
                // Fold BN: w' = gamma * w, b' = gamma * b + beta. A
                // pruned (exactly zero) weight stays exactly zero.
                let k = lp.w.k();
                let per = lp.w.c() * lp.w.r() * lp.w.s();
                let mut folded = lp.w.clone();
                let mut bias = vec![0.0f32; k];
                for ko in 0..k {
                    let (gamma, beta) = match lp.bn {
                        Some(bn) => (bn.scale()[ko], bn.shift()[ko]),
                        None => (1.0, 0.0),
                    };
                    let b = lp.b.as_ref().map_or(0.0, |b| b[ko]);
                    for w in &mut folded.data_mut()[ko * per..(ko + 1) * per] {
                        *w *= gamma;
                    }
                    bias[ko] = gamma * b + beta;
                }
                let weight = QTensor4::quantize(&folded);
                let out_qp = act_qp[id];
                let bias_q: Vec<i32> = bias
                    .iter()
                    .zip(weight.scales())
                    .map(|(&b, &sw)| (b / (s_in * sw)).round() as i32)
                    .collect();
                let multipliers: Vec<f32> = weight
                    .scales()
                    .iter()
                    .map(|&sw| s_in * sw / out_qp.scale)
                    .collect();
                Some(QLayer::Conv(QConvParams {
                    weight,
                    bias_q,
                    multipliers,
                    out_qp,
                }))
            }
            Op::DwConv { .. } => {
                let lp = params.dwconv(id);
                Some(QLayer::DwConv {
                    w: lp.w.clone(),
                    bn: lp.bn.clone(),
                })
            }
            Op::Linear { .. } => {
                let lp = params.linear(id);
                let s_in = act_qp[node.inputs[0]].scale;
                let out_qp = act_qp[id];
                let (nin, nout) = (lp.in_features, lp.out_features);
                let mut w_q = Vec::with_capacity(nout * nin);
                let mut scales = Vec::with_capacity(nout);
                for o in 0..nout {
                    let row = &lp.w[o * nin..(o + 1) * nin];
                    let maxabs = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                    let qp = QuantParams::symmetric(maxabs);
                    scales.push(qp.scale);
                    w_q.extend(row.iter().map(|&v| qp.quantize(v)));
                }
                let bias_q: Vec<i32> =
                    lp.b.iter()
                        .zip(&scales)
                        .map(|(&b, &sw)| (b / (s_in * sw)).round() as i32)
                        .collect();
                let multipliers: Vec<f32> =
                    scales.iter().map(|&sw| s_in * sw / out_qp.scale).collect();
                Some(QLayer::Linear(QLinearParams {
                    w_q,
                    bias_q,
                    multipliers,
                    out_qp,
                    in_features: nin,
                    out_features: nout,
                }))
            }
            _ => None,
        };
        layers.push(layer);
    }
    QuantizedNet { act_qp, layers }
}

/// A quantized value flowing along a graph edge during
/// [`Network::forward_quantized`].
enum QValue {
    Map(QTensor3),
    Vector(Vec<i8>, QuantParams),
}

impl QValue {
    fn map(&self) -> &QTensor3 {
        match self {
            QValue::Map(t) => t,
            // hd-lint: allow(no-panic) -- internal: shape inference guarantees the variant
            QValue::Vector(..) => panic!("expected quantized map, found vector"),
        }
    }

    fn vector(&self) -> (&[i8], QuantParams) {
        match self {
            QValue::Vector(v, qp) => (v, *qp),
            // hd-lint: allow(no-panic) -- internal: shape inference guarantees the variant
            QValue::Map(_) => panic!("expected quantized vector, found map"),
        }
    }

    fn dequantize(&self) -> Value {
        match self {
            QValue::Map(t) => Value::Map(t.dequantize()),
            QValue::Vector(v, qp) => Value::Vector(v.iter().map(|&q| qp.dequantize(q)).collect()),
        }
    }
}

/// Integer-domain non-overlapping pooling, staying in the input's
/// quantization. Max pooling is exact (max is monotone in `q`); average
/// pooling rounds the zero-point-centered window mean once per output.
fn qpool2d(input: &QTensor3, factor: usize, kind: PoolKind) -> QTensor3 {
    assert!(factor > 0, "pool factor must be positive");
    if factor == 1 {
        return input.clone();
    }
    let (c, h, w) = (input.c(), input.h(), input.w());
    let (out_h, out_w) = (h / factor, w / factor);
    let zp = input.qp.zero_point;
    let mut out = vec![0i8; c * out_h * out_w];
    for ch in 0..c {
        let plane = &input.data()[ch * h * w..(ch + 1) * h * w];
        for p in 0..out_h {
            for q in 0..out_w {
                let mut best = i32::MIN;
                let mut sum = 0i32;
                for dy in 0..factor {
                    for dx in 0..factor {
                        let v = plane[(p * factor + dy) * w + (q * factor + dx)] as i32;
                        best = best.max(v);
                        sum += v - zp;
                    }
                }
                let v = match kind {
                    PoolKind::Max => best,
                    PoolKind::Avg => zp + (sum as f32 / (factor * factor) as f32).round() as i32,
                };
                out[(ch * out_h + p) * out_w + q] = v.clamp(-128, 127) as i8;
            }
        }
    }
    QTensor3::from_raw(c, out_h, out_w, out, input.qp)
}

impl Network {
    /// Runs the INT8-quantized network.
    ///
    /// All convolutions, linear layers, pooling, and residual joins
    /// execute in the integer domain (depthwise convolutions fall back to
    /// f32, see [`QLayer::DwConv`]). The returned [`ForwardTrace`] holds
    /// the *dequantized* activations; `pre_bn` / `pre_relu` are `None`
    /// because BN is folded into the quantized weights.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match, or if `qnet` was built
    /// for a different topology.
    pub fn forward_quantized(&self, qnet: &QuantizedNet, input: &Tensor3) -> ForwardTrace {
        assert_eq!(
            input.shape(),
            self.input_shape(),
            "input shape {} does not match network input {}",
            input.shape(),
            self.input_shape()
        );
        assert_eq!(
            qnet.act_qp.len(),
            self.len(),
            "quantized net topology mismatch"
        );
        let mut values: Vec<QValue> = Vec::with_capacity(self.len());
        let mut traces: Vec<NodeTrace> = Vec::with_capacity(self.len());
        for (id, node) in self.nodes().iter().enumerate() {
            let value = match &node.op {
                Op::Input => QValue::Map(QTensor3::quantize(input, qnet.act_qp[id])),
                Op::Conv(spec) => {
                    let x = values[node.inputs[0]].map();
                    let p = match &qnet.layers[id] {
                        Some(QLayer::Conv(p)) => p,
                        // hd-lint: allow(no-panic) -- topology mismatch is a caller bug, documented above
                        other => panic!("node {id} is not a quantized conv: {other:?}"),
                    };
                    let cfg = Conv2dCfg::new(spec.stride, spec.padding);
                    let mut out = qconv2d(x, p, &cfg);
                    if spec.relu {
                        qrelu_inplace(&mut out);
                    }
                    QValue::Map(out)
                }
                Op::DwConv {
                    stride,
                    relu: do_relu,
                    ..
                } => {
                    let x = values[node.inputs[0]].map();
                    let (w, bn) = match &qnet.layers[id] {
                        Some(QLayer::DwConv { w, bn }) => (w, bn),
                        // hd-lint: allow(no-panic) -- topology mismatch is a caller bug, documented above
                        other => panic!("node {id} is not a quantized dwconv: {other:?}"),
                    };
                    let cfg = Conv2dCfg::new(*stride, hd_tensor::conv::Padding::Same);
                    let mut out = dwconv2d(&x.dequantize(), w, &cfg);
                    if let Some(bn) = bn {
                        bn.apply_inplace(&mut out);
                    }
                    if *do_relu {
                        out.relu_inplace();
                    }
                    QValue::Map(QTensor3::quantize(&out, qnet.act_qp[id]))
                }
                Op::Pool { factor, kind } => {
                    QValue::Map(qpool2d(values[node.inputs[0]].map(), *factor, *kind))
                }
                Op::Add { relu: do_relu } => {
                    let a = values[node.inputs[0]].map();
                    let b = values[node.inputs[1]].map();
                    let out_qp = qnet.act_qp[id];
                    let (zpa, zpb, zpo) = (a.qp.zero_point, b.qp.zero_point, out_qp.zero_point);
                    let ma = a.qp.scale / out_qp.scale;
                    let mb = b.qp.scale / out_qp.scale;
                    let zp_i8 = out_qp.zero_point.clamp(-128, 127) as i8;
                    let data: Vec<i8> = a
                        .data()
                        .iter()
                        .zip(b.data())
                        .map(|(&qa, &qb)| {
                            let real =
                                ma * (qa as i32 - zpa) as f32 + mb * (qb as i32 - zpb) as f32;
                            let q = (zpo as f32 + real.round()).clamp(-128.0, 127.0) as i8;
                            if *do_relu {
                                q.max(zp_i8)
                            } else {
                                q
                            }
                        })
                        .collect();
                    QValue::Map(QTensor3::from_raw(a.c(), a.h(), a.w(), data, out_qp))
                }
                Op::GlobalAvgPool => {
                    let x = values[node.inputs[0]].map();
                    let area = (x.h() * x.w()).max(1) as f32;
                    let zp = x.qp.zero_point;
                    let plane = x.h() * x.w();
                    let v: Vec<i8> = (0..x.c())
                        .map(|c| {
                            let sum: i32 = x.data()[c * plane..(c + 1) * plane]
                                .iter()
                                .map(|&q| q as i32 - zp)
                                .sum();
                            (zp + (sum as f32 / area).round() as i32).clamp(-128, 127) as i8
                        })
                        .collect();
                    QValue::Vector(v, x.qp)
                }
                Op::Flatten => {
                    let x = values[node.inputs[0]].map();
                    QValue::Vector(x.data().to_vec(), x.qp)
                }
                Op::Linear { relu: do_relu, .. } => {
                    let (x, x_qp) = values[node.inputs[0]].vector();
                    let p = match &qnet.layers[id] {
                        Some(QLayer::Linear(p)) => p,
                        // hd-lint: allow(no-panic) -- topology mismatch is a caller bug, documented above
                        other => panic!("node {id} is not a quantized linear: {other:?}"),
                    };
                    assert_eq!(p.in_features, x.len(), "linear input size mismatch");
                    let zp_in = x_qp.zero_point;
                    let zp_out = p.out_qp.zero_point;
                    let zp_i8 = zp_out.clamp(-128, 127) as i8;
                    let mut y = vec![0i8; p.out_features];
                    for (o, yo) in y.iter_mut().enumerate() {
                        let row = &p.w_q[o * p.in_features..(o + 1) * p.in_features];
                        let mut acc = p.bias_q[o];
                        for (&wq, &xq) in row.iter().zip(x) {
                            let wv = wq as i32;
                            if wv != 0 {
                                acc += wv * (xq as i32 - zp_in);
                            }
                        }
                        let q = requantize(acc, p.multipliers[o], zp_out);
                        *yo = if *do_relu { q.max(zp_i8) } else { q };
                    }
                    QValue::Vector(y, p.out_qp)
                }
            };
            traces.push(NodeTrace {
                out: value.dequantize(),
                pre_bn: None,
                pre_relu: None,
            });
            values.push(value);
        }
        ForwardTrace { traces }
    }
}

/// Integer-domain ReLU: clamps below the zero point (which dequantizes to
/// exactly 0.0).
fn qrelu_inplace(t: &mut QTensor3) {
    let zp = t.zero_point_i8();
    let qp = t.qp;
    let (c, h, w) = (t.c(), t.h(), t.w());
    let data: Vec<i8> = t.data().iter().map(|&q| q.max(zp)).collect();
    *t = QTensor3::from_raw(c, h, w, data, qp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;
    use crate::prune;

    fn small_net() -> (Network, Params) {
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.conv(x, 8, 3, 1);
        let x = b.flatten(x);
        let x = b.linear_opts(x, 16, true);
        let _ = b.linear(x, 10);
        let net = b.build();
        let params = Params::init(&net, 7);
        (net, params)
    }

    #[test]
    fn quantized_forward_tracks_f32_forward() {
        let (net, mut params) = small_net();
        prune::magnitude_prune_global(&net, &params, 0.6, 4).apply(&mut params);
        let calib = calibration_images(net.input_shape(), 8, 11);
        let qnet = ptq(&net, &params, &calib);
        let mut agree = 0;
        let eval = calibration_images(net.input_shape(), 16, 99);
        for img in &eval {
            let f = net.forward(&params, img);
            let q = net.forward_quantized(&qnet, img);
            assert_eq!(f.logits().len(), q.logits().len());
            if f.predicted_class() == q.predicted_class() {
                agree += 1;
            }
            // Logits stay within a small multiple of the output step.
            let step = qnet.act_qp[net.len() - 1].scale;
            for (a, b) in f.logits().iter().zip(q.logits()) {
                assert!(
                    (a - b).abs() < step * 16.0 + 0.5,
                    "logit divergence {a} vs {b} (step {step})"
                );
            }
        }
        assert!(agree >= 12, "INT8 top-1 agreement too low: {agree}/16");
    }

    #[test]
    fn relu_zeros_are_exact_in_the_dequantized_trace() {
        let (net, params) = small_net();
        let calib = calibration_images(net.input_shape(), 4, 2);
        let qnet = ptq(&net, &params, &calib);
        let trace = net.forward_quantized(&qnet, &calib[0]);
        // Node 1 is CONV+BN+ReLU: its dequantized output must contain
        // exact zeros (ReLU clamps to the zero point) and no negatives.
        let out = trace.traces[1].out.flat();
        assert!(out.iter().all(|&v| v >= 0.0));
        assert!(
            out.iter().any(|&v| v.to_bits() == 0.0f32.to_bits()),
            "expected exact 0.0 values after integer-domain ReLU"
        );
        // BN is folded: no pre-BN / pre-ReLU intermediates exist.
        assert!(trace.traces[1].pre_bn.is_none());
        assert!(trace.traces[1].pre_relu.is_none());
    }

    #[test]
    fn quantized_forward_is_deterministic_across_simd_modes() {
        let (net, params) = small_net();
        let calib = calibration_images(net.input_shape(), 2, 5);
        let qnet = ptq(&net, &params, &calib);
        hd_tensor::simd::set_enabled(false);
        let a = net.forward_quantized(&qnet, &calib[0]);
        hd_tensor::simd::set_enabled(true);
        let b = net.forward_quantized(&qnet, &calib[0]);
        hd_tensor::simd::set_enabled(true);
        for (ta, tb) in a.traces.iter().zip(&b.traces) {
            let (fa, fb) = (ta.out.flat(), tb.out.flat());
            assert_eq!(fa.len(), fb.len());
            for (x, y) in fa.iter().zip(fb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn residual_add_and_gap_run_in_integer_domain() {
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let a = b.conv(x, 4, 3, 1);
        let c = b.conv(a, 4, 3, 1);
        let j = b.add(a, c);
        let g = b.global_avg_pool(j);
        let _ = b.linear(g, 5);
        let net = b.build();
        let params = Params::init(&net, 3);
        let calib = calibration_images(net.input_shape(), 4, 13);
        let qnet = ptq(&net, &params, &calib);
        let f = net.forward(&params, &calib[0]);
        let q = net.forward_quantized(&qnet, &calib[0]);
        assert_eq!(f.logits().len(), q.logits().len());
        let worst = f
            .logits()
            .iter()
            .zip(q.logits())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let span = f
            .logits()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(1e-3);
        assert!(worst < span, "residual INT8 error {worst} vs span {span}");
    }

    #[test]
    fn pruned_weights_stay_pruned_after_ptq() {
        let (net, mut params) = small_net();
        prune::magnitude_prune_global(&net, &params, 0.8, 4).apply(&mut params);
        let dense_nnz = net.sparse_weight_count(&params);
        let calib = calibration_images(net.input_shape(), 2, 1);
        let qnet = ptq(&net, &params, &calib);
        // Symmetric quantization maps f32 zeros to INT8 zeros; small
        // weights may additionally round to zero, so nnz can only drop.
        assert!(qnet.sparse_weight_count() <= dense_nnz);
        assert!(qnet.sparse_weight_count() > 0);
    }

    #[test]
    fn calibration_images_are_seeded() {
        let s = Shape3::new(3, 4, 4);
        let a = calibration_images(s, 3, 42);
        let b = calibration_images(s, 3, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data());
        }
        assert!(a[0].data().iter().all(|v| (-1.0..=1.0).contains(v)));
    }
}
