//! Cached sparsity-aware forward execution for probe campaigns.
//!
//! The prober runs `shifts x families` inferences against one fixed victim,
//! and every probe image is a vertical stripe — one nonzero column. Two
//! things are therefore constant across the whole campaign and worth
//! computing once per device instead of once per inference:
//!
//! 1. **The weight compaction.** [`ForwardCache::build`] encodes every conv
//!    layer's pruned weights into [`CscWeights`] and every linear layer's
//!    rows into nonzero `(index, value)` lists.
//! 2. **The zero-input baseline.** A stripe differs from the all-zero image
//!    in one column, and every op in the graph is column-local, so each
//!    layer's activation differs from its zero-input baseline only inside
//!    the stripe's receptive field. [`Network::forward_cached`] tracks that
//!    dirty interval with [`ColSpan`] and recomputes *only* the dirty
//!    columns, copying everything else from the baseline trace.
//!
//! # Bit-identity
//!
//! The recomputed columns run the exact kernels (and accumulation orders) of
//! [`Network::forward_with`]; the copied columns are bit-equal to a full
//! recomputation because their inputs are bit-equal to the baseline's and
//! every op is column-local (batch-norm shifts and biases are absorbed by
//! the baseline rather than widening the interval). The resulting
//! [`ForwardTrace`] is therefore bit-identical to the ordinary forward pass
//! — property-tested in this module and pinned end-to-end by the golden
//! trace fixture.

use hd_tensor::colspan::ColSpan;
use hd_tensor::conv::{same_pad, BackendPolicy, Conv2dCfg, Padding};
use hd_tensor::csc_conv::{conv2d_csc, CscWeights};
use hd_tensor::dwconv::dwconv2d;
use hd_tensor::pool::{global_avg_pool, pool2d_cols};
use hd_tensor::Tensor3;

use crate::graph::{ForwardTrace, Network, NodeTrace, Op, Params, Value};

/// Nonzero `(input index, weight)` list of one linear-layer row.
type SparseRow = Vec<(u32, f32)>;

/// Per-victim precomputed state reused across probe inferences.
#[derive(Clone, Debug)]
pub struct ForwardCache {
    policy: BackendPolicy,
    /// CSC weight compaction per conv node.
    csc: Vec<Option<CscWeights>>,
    /// Compacted rows per linear node.
    linear_rows: Vec<Option<Vec<SparseRow>>>,
    /// Full forward trace on the all-zero input.
    baseline: ForwardTrace,
}

impl ForwardCache {
    /// Compacts weights and records the zero-input baseline trace for
    /// `net`/`params`.
    pub fn build(net: &Network, params: &Params, policy: BackendPolicy) -> Self {
        let mut csc: Vec<Option<CscWeights>> = vec![None; net.len()];
        let mut linear_rows: Vec<Option<Vec<SparseRow>>> = vec![None; net.len()];
        for (id, node) in net.nodes().iter().enumerate() {
            match &node.op {
                Op::Conv(_) => {
                    csc[id] = Some(CscWeights::build(params.conv(id).w));
                }
                Op::Linear { out_features, .. } => {
                    let lp = params.linear(id);
                    let rows = (0..*out_features)
                        .map(|o| {
                            lp.w[o * lp.in_features..(o + 1) * lp.in_features]
                                .iter()
                                .enumerate()
                                .filter(|(_, &w)| w != 0.0)
                                .map(|(i, &w)| (i as u32, w))
                                .collect()
                        })
                        .collect();
                    linear_rows[id] = Some(rows);
                }
                _ => {}
            }
        }
        let shape = net.input_shape();
        let zeros = Tensor3::zeros(shape.c, shape.h, shape.w);
        let baseline = net.forward_with_policy(params, &zeros, Default::default(), policy);
        ForwardCache {
            policy,
            csc,
            linear_rows,
            baseline,
        }
    }

    /// The dispatch policy the cache was built with.
    pub fn policy(&self) -> BackendPolicy {
        self.policy
    }
}

/// The baseline tensor equal to a conv node's raw (pre-BN, pre-ReLU)
/// output: the trace stores it in whichever slot the node's epilogue left
/// it in.
fn conv_baseline(trace: &NodeTrace, has_bn: bool, has_relu: bool) -> &Tensor3 {
    if has_bn {
        trace.pre_bn.as_ref().expect("BN node keeps pre_bn") // hd-lint: allow(no-panic) -- forward() populates pre_bn for every BN-bearing node
    } else if has_relu {
        trace
            .pre_relu
            .as_ref()
            .expect("ReLU node keeps pre_relu") // hd-lint: allow(no-panic) -- forward() populates pre_relu for every ReLU-bearing node
            .map()
    } else {
        trace.out.map()
    }
}

/// The baseline tensor equal to a node's post-BN (pre-ReLU) value.
fn bn_baseline(trace: &NodeTrace, has_relu: bool) -> &Tensor3 {
    if has_relu {
        trace
            .pre_relu
            .as_ref()
            .expect("ReLU node keeps pre_relu") // hd-lint: allow(no-panic) -- forward() populates pre_relu for every ReLU-bearing node
            .map()
    } else {
        trace.out.map()
    }
}

/// Applies `scale/shift` to the `span` columns of `x`, copying the rest from
/// `baseline` — the column-restricted form of `Affine::apply`.
fn affine_cols(
    x: &Tensor3,
    scale: &[f32],
    shift: &[f32],
    span: ColSpan,
    baseline: &Tensor3,
) -> Tensor3 {
    let mut out = baseline.clone();
    let (h, w) = (x.h(), x.w());
    let plane = h * w;
    let src = x.data();
    let dst = out.data_mut();
    for (c, (&s, &b)) in scale.iter().zip(shift).enumerate() {
        for y in 0..h {
            let row = c * plane + y * w;
            for i in row + span.lo()..row + span.hi() {
                dst[i] = s * src[i] + b;
            }
        }
    }
    out
}

/// ReLU over the `span` columns of `x`, copying the rest from `baseline`.
fn relu_cols(x: &Tensor3, span: ColSpan, baseline: &Tensor3) -> Tensor3 {
    let mut out = baseline.clone();
    let (h, w) = (x.h(), x.w());
    let plane = h * w;
    let src = x.data();
    let dst = out.data_mut();
    for c in 0..x.c() {
        for y in 0..h {
            let row = c * plane + y * w;
            for i in row + span.lo()..row + span.hi() {
                let v = src[i];
                dst[i] = if v < 0.0 { 0.0 } else { v };
            }
        }
    }
    out
}

/// Elementwise sum of the `span` columns of `a` and `b`, copying the rest
/// from `baseline`.
fn add_cols(a: &Tensor3, b: &Tensor3, span: ColSpan, baseline: &Tensor3) -> Tensor3 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in add");
    let mut out = baseline.clone();
    let (h, w) = (a.h(), a.w());
    let plane = h * w;
    let (sa, sb) = (a.data(), b.data());
    let dst = out.data_mut();
    for c in 0..a.c() {
        for y in 0..h {
            let row = c * plane + y * w;
            for i in row + span.lo()..row + span.hi() {
                dst[i] = sa[i] + sb[i];
            }
        }
    }
    out
}

impl Network {
    /// Runs the network through `cache`, recomputing only the columns that
    /// can differ from the cached zero-input baseline.
    ///
    /// Bit-identical to [`Network::forward_with`] under any backend; the
    /// narrower the input's nonzero-column interval, the larger the saving.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::forward`], plus a mismatch between
    /// `cache` and this network/params (caches are per-victim).
    pub fn forward_cached(
        &self,
        params: &Params,
        input: &Tensor3,
        cache: &ForwardCache,
    ) -> ForwardTrace {
        assert_eq!(
            input.shape(),
            self.input_shape(),
            "input shape {} does not match network input {}",
            input.shape(),
            self.input_shape()
        );
        assert_eq!(
            cache.baseline.traces.len(),
            self.len(),
            "forward cache was built for a different network"
        );
        let mut traces: Vec<NodeTrace> = Vec::with_capacity(self.len());
        // Dirty-column interval per map-valued node (None for vectors).
        let mut spans: Vec<Option<ColSpan>> = Vec::with_capacity(self.len());
        for (id, node) in self.nodes().iter().enumerate() {
            let base = &cache.baseline.traces[id];
            let (trace, span) = match &node.op {
                Op::Input => (
                    NodeTrace {
                        out: Value::Map(input.clone()),
                        pre_bn: None,
                        pre_relu: None,
                    },
                    Some(ColSpan::of_tensor(input)),
                ),
                Op::Conv(spec) => {
                    let x = traces[node.inputs[0]].out.map();
                    let in_span = spans[node.inputs[0]].expect("conv input is a map"); // hd-lint: allow(no-panic) -- topology validated by Network construction; map inputs carry spans
                    let lp = params.conv(id);
                    let csc = cache.csc[id].as_ref().expect("conv weights cached"); // hd-lint: allow(no-panic) -- cache is built for every conv node up front
                    let cfg = Conv2dCfg::new(spec.stride, spec.padding);
                    let conv_out = conv2d_csc(
                        x,
                        csc,
                        lp.b.as_deref(),
                        &cfg,
                        in_span,
                        Some(conv_baseline(base, lp.bn.is_some(), spec.relu)),
                    );
                    let pad_x = match spec.padding {
                        Padding::Same => same_pad(x.w(), spec.kernel, spec.stride),
                        Padding::Valid => 0,
                    };
                    let out_span =
                        in_span
                            .clamp(x.w())
                            .conv(spec.kernel, spec.stride, pad_x, conv_out.w());
                    let (pre_bn, bn_out) = if let Some(bn) = &lp.bn {
                        let o = affine_cols(
                            &conv_out,
                            bn.scale(),
                            bn.shift(),
                            out_span,
                            bn_baseline(base, spec.relu),
                        );
                        (Some(conv_out), o)
                    } else {
                        (None, conv_out)
                    };
                    let (pre_relu, out) = if spec.relu {
                        let o = relu_cols(&bn_out, out_span, base.out.map());
                        (Some(bn_out), o)
                    } else {
                        (None, bn_out)
                    };
                    (
                        NodeTrace {
                            out: Value::Map(out),
                            pre_bn,
                            pre_relu: pre_relu.map(Value::Map),
                        },
                        Some(out_span),
                    )
                }
                Op::DwConv {
                    kernel,
                    stride,
                    batch_norm: _,
                    relu,
                } => {
                    // Depthwise layers are cheap (one filter per channel);
                    // recompute them fully with the ordinary kernels and
                    // keep propagating the receptive-field interval.
                    let x = traces[node.inputs[0]].out.map();
                    let in_span = spans[node.inputs[0]].expect("dwconv input is a map"); // hd-lint: allow(no-panic) -- topology validated by Network construction; map inputs carry spans
                    let lp = params.dwconv(id);
                    let cfg = Conv2dCfg::new(*stride, Padding::Same);
                    let conv_out = dwconv2d(x, lp.w, &cfg);
                    let pad_x = same_pad(x.w(), *kernel, *stride);
                    let out_span = in_span
                        .clamp(x.w())
                        .conv(*kernel, *stride, pad_x, conv_out.w());
                    let (pre_bn, bn_out) = if let Some(bn) = &lp.bn {
                        (Some(conv_out.clone()), bn.apply(&conv_out))
                    } else {
                        (None, conv_out)
                    };
                    let (pre_relu, out) = if *relu {
                        let mut o = bn_out.clone();
                        o.relu_inplace();
                        (Some(bn_out), o)
                    } else {
                        (None, bn_out)
                    };
                    (
                        NodeTrace {
                            out: Value::Map(out),
                            pre_bn,
                            pre_relu: pre_relu.map(Value::Map),
                        },
                        Some(out_span),
                    )
                }
                Op::Pool { factor, kind } => {
                    let x = traces[node.inputs[0]].out.map();
                    let in_span = spans[node.inputs[0]].expect("pool input is a map"); // hd-lint: allow(no-panic) -- topology validated by Network construction; map inputs carry spans
                    let out_w = if *factor == 1 { x.w() } else { x.w() / *factor };
                    let out_span = in_span.pool(*factor, out_w);
                    let out = pool2d_cols(x, *factor, *kind, out_span, base.out.map());
                    (
                        NodeTrace {
                            out: Value::Map(out),
                            pre_bn: None,
                            pre_relu: None,
                        },
                        Some(out_span),
                    )
                }
                Op::Add { relu } => {
                    let a = traces[node.inputs[0]].out.map();
                    let b = traces[node.inputs[1]].out.map();
                    let span = spans[node.inputs[0]]
                        .expect("add input is a map") // hd-lint: allow(no-panic) -- topology validated by Network construction; map inputs carry spans
                        .union(spans[node.inputs[1]].expect("add input is a map")); // hd-lint: allow(no-panic) -- topology validated by Network construction; map inputs carry spans
                    let sum = add_cols(a, b, span, bn_baseline(base, *relu));
                    let (pre_relu, out) = if *relu {
                        let o = relu_cols(&sum, span, base.out.map());
                        (Some(sum), o)
                    } else {
                        (None, sum)
                    };
                    (
                        NodeTrace {
                            out: Value::Map(out),
                            pre_bn: None,
                            pre_relu: pre_relu.map(Value::Map),
                        },
                        Some(span),
                    )
                }
                Op::GlobalAvgPool => {
                    let x = traces[node.inputs[0]].out.map();
                    (
                        NodeTrace {
                            out: Value::Vector(global_avg_pool(x)),
                            pre_bn: None,
                            pre_relu: None,
                        },
                        None,
                    )
                }
                Op::Flatten => {
                    let x = traces[node.inputs[0]].out.map();
                    (
                        NodeTrace {
                            out: Value::Vector(x.data().to_vec()),
                            pre_bn: None,
                            pre_relu: None,
                        },
                        None,
                    )
                }
                Op::Linear { out_features, relu } => {
                    let x = traces[node.inputs[0]].out.vector();
                    let lp = params.linear(id);
                    assert_eq!(lp.in_features, x.len(), "linear input size mismatch");
                    let rows = cache.linear_rows[id]
                        .as_ref()
                        .expect("linear weights cached"); // hd-lint: allow(no-panic) -- cache is built for every linear node up front
                    let mut y = vec![0.0f32; *out_features];
                    for (o, yo) in y.iter_mut().enumerate() {
                        // Ascending-index nonzero list: the same surviving
                        // multiplies, in the same order, as the dense loop.
                        let mut acc = lp.b[o];
                        for &(i, w) in &rows[o] {
                            let xi = x[i as usize];
                            if xi != 0.0 {
                                acc += w * xi;
                            }
                        }
                        *yo = acc;
                    }
                    let (pre_relu, out) = if *relu {
                        let pre = y.clone();
                        for v in &mut y {
                            if *v < 0.0 {
                                *v = 0.0;
                            }
                        }
                        (Some(Value::Vector(pre)), y)
                    } else {
                        (None, y)
                    };
                    (
                        NodeTrace {
                            out: Value::Vector(out),
                            pre_bn: None,
                            pre_relu,
                        },
                        None,
                    )
                }
            };
            // Telemetry: how much work the dirty-interval machinery saved on
            // this node. Input nodes are excluded (nothing is recomputed
            // there) and the span is clamped to the node's own width first.
            if hd_obs::enabled() && !matches!(node.op, Op::Input) {
                if let Some(node_span) = span {
                    let w = trace.out.map().w();
                    let recomputed = node_span.clamp(w).width() as u64;
                    hd_obs::counter_add("sparse_fwd.cols_recomputed", "", recomputed);
                    hd_obs::counter_add("sparse_fwd.cols_skipped", "", w as u64 - recomputed);
                    hd_obs::observe("sparse_fwd.colspan_width", "", recomputed as f64);
                }
            }
            traces.push(trace);
            spans.push(span);
        }
        ForwardTrace { traces }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;
    use hd_tensor::ConvBackend;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_traces_bit_identical(a: &ForwardTrace, b: &ForwardTrace) {
        assert_eq!(a.traces.len(), b.traces.len());
        for (id, (ta, tb)) in a.traces.iter().zip(&b.traces).enumerate() {
            assert_eq!(ta.out, tb.out, "out differs at node {id}");
            assert_eq!(ta.pre_bn, tb.pre_bn, "pre_bn differs at node {id}");
            assert_eq!(ta.pre_relu, tb.pre_relu, "pre_relu differs at node {id}");
        }
    }

    fn pruned_params(net: &Network, seed: u64) -> Params {
        let mut params = Params::init(net, seed);
        let profile = crate::prune::SparsityProfile {
            targets: net
                .weighted_nodes()
                .iter()
                .enumerate()
                .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.8 }))
                .collect(),
        };
        crate::prune::apply_sparsity_profile(net, &mut params, &profile, seed ^ 0xABCD);
        params
    }

    fn probe_images(c: usize, h: usize, w: usize, seed: u64) -> Vec<Tensor3> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::new();
        // Stripe probes at the left edge, interior, and right edge.
        for col in [0, w / 2, w - 1] {
            let mut img = Tensor3::zeros(c, h, w);
            for ch in 0..c {
                for y in 0..h {
                    img.set(ch, y, col, rng.gen_range(-1.0..1.0));
                }
            }
            images.push(img);
        }
        // A dense image (full-width span) and the all-zero image.
        let mut dense = Tensor3::zeros(c, h, w);
        dense.fill_uniform(&mut rng, -1.0, 1.0);
        images.push(dense);
        images.push(Tensor3::zeros(c, h, w));
        images
    }

    #[test]
    fn cached_forward_is_bit_identical_on_conv_pool_chain() {
        let mut b = NetworkBuilder::new(3, 12, 12);
        let x = b.input();
        let x = b.conv(x, 6, 5, 1);
        let x = b.max_pool(x, 2);
        let x = b.conv(x, 8, 3, 2);
        let x = b.global_avg_pool(x);
        b.linear(x, 4);
        let net = b.build();
        let params = pruned_params(&net, 11);
        let cache = ForwardCache::build(&net, &params, BackendPolicy::default());
        for (i, img) in probe_images(3, 12, 12, 5).iter().enumerate() {
            let want = net.forward_with(&params, img, ConvBackend::Direct);
            let got = net.forward_cached(&params, img, &cache);
            assert_traces_bit_identical(&want, &got);
            let _ = i;
        }
    }

    #[test]
    fn cached_forward_is_bit_identical_on_residual_dwconv_net() {
        use crate::graph::ConvSpec;
        let mut b = NetworkBuilder::new(3, 16, 16);
        let x = b.input();
        let stem = b.conv(x, 8, 3, 1);
        let branch = b.conv(stem, 8, 3, 1);
        let joined = b.add(stem, branch);
        let dw = b.dwconv(joined, 3, 2, true);
        // A biased conv without BN exercises the bias-first accumulation.
        let mut spec = ConvSpec::standard(5, 3, 1);
        spec.bias = true;
        spec.batch_norm = false;
        let x = b.conv_spec(dw, spec);
        let x = b.avg_pool(x, 2);
        let x = b.flatten(x);
        b.linear(x, 6);
        let net = b.build();
        let params = pruned_params(&net, 23);
        let cache = ForwardCache::build(&net, &params, BackendPolicy::default());
        for img in probe_images(3, 16, 16, 17) {
            let want = net.forward_with(&params, &img, ConvBackend::Im2colGemm);
            let got = net.forward_cached(&params, &img, &cache);
            assert_traces_bit_identical(&want, &got);
        }
    }

    #[test]
    fn cached_forward_matches_on_paper_zoo_victims() {
        // End-to-end spot check on a real zoo graph with paper sparsities.
        let net = crate::zoo::vgg_s(10);
        let mut params = Params::init(&net, 3);
        let profile = crate::prune::paper_profile(&net);
        crate::prune::apply_sparsity_profile(&net, &mut params, &profile, 3);
        let cache = ForwardCache::build(&net, &params, BackendPolicy::default());
        let shape = net.input_shape();
        let mut img = Tensor3::zeros(shape.c, shape.h, shape.w);
        for ch in 0..shape.c {
            for y in 0..shape.h {
                img.set(ch, y, 7, if (ch + y) % 2 == 0 { 0.75 } else { -0.5 });
            }
        }
        let want = net.forward_with(&params, &img, ConvBackend::default());
        let got = net.forward_cached(&params, &img, &cache);
        assert_traces_bit_identical(&want, &got);
    }
}
