//! Static verification of a [`Network`] (and optionally its [`Params`])
//! *before* execution.
//!
//! [`NetworkBuilder`](crate::graph::NetworkBuilder) rejects malformed
//! geometry eagerly, but graphs assembled through
//! [`Network::from_raw_parts`] — tests, future deserializers, fuzzers —
//! carry whatever shapes their author recorded. Until this pass existed,
//! such graphs were accepted silently and failed deep inside
//! `hd_accel::Device::run` (or worse, produced a plausible-looking trace
//! from inconsistent shape bookkeeping). `verify` re-infers every node's
//! output shape from its op and inputs, checks the graph topology, params
//! consistency, buffer-capacity limits, and backend preconditions, and
//! reports every problem as a typed [`Diagnostic`] with the layer path and
//! the expected/actual shapes.
//!
//! The same diagnostics back three frontends:
//!
//! * `hd_accel::Device::{new, try_new}` verify the sealed graph at
//!   construction (fail-early instead of mid-simulation),
//! * `hd_accel::AccelConfigBuilder::build_for` verifies a config *against*
//!   a network,
//! * the `hd-lint --models` CLI verifies every zoo topology against the
//!   accelerator presets and prints the diagnostics below verbatim.
//!
//! # Example
//!
//! ```
//! use hd_dnn::graph::{NetworkBuilder, Params};
//! use hd_dnn::verify::{verify, Limits};
//!
//! let mut b = NetworkBuilder::new(3, 8, 8);
//! let x = b.input();
//! let x = b.conv(x, 4, 3, 1);
//! b.global_avg_pool(x);
//! let net = b.build();
//! let params = Params::init(&net, 1);
//! assert!(verify(&net, Some(&params), &Limits::default()).is_empty());
//! ```

use crate::graph::{LayerParams, Network, NodeId, Op, Params, ValueShape};
use hd_tensor::conv::{conv_out_dim, Padding};
use hd_tensor::norm::Affine;
use hd_tensor::{CompressionScheme, Shape3};
use std::fmt;

/// How serious a [`Diagnostic`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable (dead layers, pool remainders).
    Warning,
    /// The graph cannot execute correctly; `verify_strict` rejects it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// What went wrong, with the evidence attached.
#[derive(Clone, Debug, PartialEq)]
pub enum DiagKind {
    /// The graph has no nodes at all.
    EmptyGraph,
    /// Node 0 is not an [`Op::Input`] (or its recorded shape is not the
    /// network input shape).
    NoInput,
    /// An [`Op::Input`] node appears after node 0.
    ExtraInput,
    /// A node reads an input at or after its own position; topological
    /// order is violated.
    ForwardReference {
        /// The out-of-order input id.
        input: NodeId,
    },
    /// A node has the wrong number of inputs for its op.
    BadArity {
        /// Inputs the op requires.
        expected: usize,
        /// Inputs the node records.
        got: usize,
    },
    /// An op that consumes an activation map reads a vector-valued input.
    NotAMap {
        /// The offending input id.
        input: NodeId,
    },
    /// An op that consumes a vector reads a map-valued input.
    NotAVector {
        /// The offending input id.
        input: NodeId,
    },
    /// The node's recorded output shape disagrees with the shape inferred
    /// from its op and inputs.
    ShapeMismatch {
        /// Shape implied by the op.
        expected: ValueShape,
        /// Shape the graph records.
        actual: ValueShape,
    },
    /// A residual join of two differently-shaped maps.
    AddMismatch {
        /// First input shape.
        left: Shape3,
        /// Second input shape.
        right: Shape3,
    },
    /// A structurally required attribute (kernel, stride, pool factor,
    /// out_channels, out_features) is zero.
    ZeroAttr {
        /// Which attribute.
        attr: &'static str,
    },
    /// A `Valid`-padded convolution whose kernel or stride exceeds the
    /// input extent, leaving no output positions.
    StrideExceedsInput {
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Input map shape.
        input: Shape3,
    },
    /// A node's output holds zero elements.
    ZeroOutput {
        /// The degenerate shape.
        shape: ValueShape,
    },
    /// A non-terminal node whose output nothing consumes.
    DeadLayer,
    /// A pooling window that does not tile the input evenly (rows/columns
    /// are silently dropped).
    PoolRemainder {
        /// Pool factor.
        factor: usize,
        /// Input map shape.
        input: Shape3,
    },
    /// Params were supplied but hold no entry for a weighted node.
    MissingParams,
    /// Params were supplied whose tensor geometry disagrees with the op.
    ParamShapeMismatch {
        /// Geometry the op implies, rendered `KxCxRxS`-style.
        expected: String,
        /// Geometry the params hold.
        actual: String,
    },
    /// A per-channel companion parameter (BN affine or bias) no longer
    /// matches the layer's output-channel count — the classic leftover of
    /// a channel-removal pass that resized weights but not their
    /// companions.
    OrphanedBn {
        /// Channels the op produces.
        expected: usize,
        /// Channels the companion parameter covers.
        got: usize,
    },
    /// `params.layers` is not index-aligned with the node list.
    RaggedParams {
        /// Node count.
        expected: usize,
        /// Param entry count.
        got: usize,
    },
    /// A layer's compressed weights need more on-chip passes than the
    /// configured ceiling allows (see [`Limits::max_weight_passes`]).
    GlbOverflow {
        /// Compressed weight bytes of the layer.
        weight_bytes: u64,
        /// On-chip weight buffer capacity in bytes.
        capacity: u64,
        /// Passes the layer would need.
        passes: u64,
        /// The configured ceiling.
        max_passes: u64,
    },
    /// The sparse (CSC-cached) backend cannot execute this graph.
    SparseIneligible {
        /// Why.
        reason: String,
    },
}

impl DiagKind {
    /// Stable kebab-case rule name (shared with the `hd-lint` JSON schema).
    pub fn rule(&self) -> &'static str {
        match self {
            DiagKind::EmptyGraph => "empty-graph",
            DiagKind::NoInput => "no-input",
            DiagKind::ExtraInput => "extra-input",
            DiagKind::ForwardReference { .. } => "forward-reference",
            DiagKind::BadArity { .. } => "bad-arity",
            DiagKind::NotAMap { .. } => "not-a-map",
            DiagKind::NotAVector { .. } => "not-a-vector",
            DiagKind::ShapeMismatch { .. } => "shape-mismatch",
            DiagKind::AddMismatch { .. } => "add-mismatch",
            DiagKind::ZeroAttr { .. } => "zero-attr",
            DiagKind::StrideExceedsInput { .. } => "stride-exceeds-input",
            DiagKind::ZeroOutput { .. } => "zero-output",
            DiagKind::DeadLayer => "dead-layer",
            DiagKind::PoolRemainder { .. } => "pool-remainder",
            DiagKind::MissingParams => "missing-params",
            DiagKind::ParamShapeMismatch { .. } => "param-shape-mismatch",
            DiagKind::OrphanedBn { .. } => "orphaned-bn",
            DiagKind::RaggedParams { .. } => "ragged-params",
            DiagKind::GlbOverflow { .. } => "glb-overflow",
            DiagKind::SparseIneligible { .. } => "sparse-ineligible",
        }
    }

    /// Default severity of this kind.
    pub fn severity(&self) -> Severity {
        match self {
            DiagKind::DeadLayer | DiagKind::PoolRemainder { .. } => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

fn shape_str(s: &ValueShape) -> String {
    match s {
        ValueShape::Map(m) => format!("{}x{}x{}", m.c, m.h, m.w),
        ValueShape::Vector(n) => format!("vec[{n}]"),
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagKind::EmptyGraph => write!(f, "graph has no nodes"),
            DiagKind::NoInput => write!(f, "node 0 is not the network input"),
            DiagKind::ExtraInput => write!(f, "extra input node (exactly one allowed, at node 0)"),
            DiagKind::ForwardReference { input } => {
                write!(f, "reads input {input}, which is not an earlier node")
            }
            DiagKind::BadArity { expected, got } => {
                write!(f, "expects {expected} input(s), has {got}")
            }
            DiagKind::NotAMap { input } => {
                write!(
                    f,
                    "requires an activation-map input, but node {input} produces a vector"
                )
            }
            DiagKind::NotAVector { input } => {
                write!(
                    f,
                    "requires a vector input, but node {input} produces a map"
                )
            }
            DiagKind::ShapeMismatch { expected, actual } => write!(
                f,
                "recorded output shape {} but the op implies {}",
                shape_str(actual),
                shape_str(expected)
            ),
            DiagKind::AddMismatch { left, right } => {
                write!(f, "residual join of mismatched shapes {left} vs {right}")
            }
            DiagKind::ZeroAttr { attr } => write!(f, "{attr} must be nonzero"),
            DiagKind::StrideExceedsInput {
                kernel,
                stride,
                input,
            } => write!(
                f,
                "kernel {kernel} / stride {stride} leave no valid output positions on input {input}"
            ),
            DiagKind::ZeroOutput { shape } => {
                write!(f, "output shape {} holds no elements", shape_str(shape))
            }
            DiagKind::DeadLayer => write!(f, "output is never consumed (dead layer)"),
            DiagKind::PoolRemainder { factor, input } => write!(
                f,
                "pool factor {factor} does not tile input {input}; edge rows/cols are dropped"
            ),
            DiagKind::MissingParams => write!(f, "weighted node has no parameter entry"),
            DiagKind::ParamShapeMismatch { expected, actual } => {
                write!(f, "params have geometry {actual}, op implies {expected}")
            }
            DiagKind::OrphanedBn { expected, got } => {
                write!(
                    f,
                    "per-channel params cover {got} channels, layer produces {expected}"
                )
            }
            DiagKind::RaggedParams { expected, got } => {
                write!(f, "params hold {got} entries for {expected} nodes")
            }
            DiagKind::GlbOverflow {
                weight_bytes,
                capacity,
                passes,
                max_passes,
            } => write!(
                f,
                "compressed weights ({weight_bytes} B) need {passes} passes through a \
                 {capacity} B weight buffer (limit {max_passes})"
            ),
            DiagKind::SparseIneligible { reason } => {
                write!(f, "sparse (CSC) backend ineligible: {reason}")
            }
        }
    }
}

/// One verification finding: where, how bad, and what.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Severity (strict verification rejects on any [`Severity::Error`]).
    pub severity: Severity,
    /// The node the finding anchors to, if any.
    pub node: Option<NodeId>,
    /// Layer path: the node's debug name, or `net` for graph-level findings.
    pub path: String,
    /// The typed finding.
    pub kind: DiagKind,
}

impl Diagnostic {
    fn at(net: &Network, node: NodeId, kind: DiagKind) -> Diagnostic {
        Diagnostic {
            severity: kind.severity(),
            node: Some(node),
            path: net.name(node).to_string(),
            kind,
        }
    }

    fn global(kind: DiagKind) -> Diagnostic {
        Diagnostic {
            severity: kind.severity(),
            node: None,
            path: "net".to_string(),
            kind,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(id) => write!(
                f,
                "{}[{}] #{id} {}: {}",
                self.severity,
                self.kind.rule(),
                self.path,
                self.kind
            ),
            None => write!(
                f,
                "{}[{}] {}: {}",
                self.severity,
                self.kind.rule(),
                self.path,
                self.kind
            ),
        }
    }
}

/// Accelerator-derived capacity limits and backend requirements.
///
/// `hd-dnn` cannot see `hd_accel::AccelConfig` (the dependency points the
/// other way), so the accel crate lowers its config into this struct — see
/// `AccelConfig::verify_limits()` — and anything else (tests, the lint CLI)
/// can construct one directly.
#[derive(Clone, Debug, PartialEq)]
pub struct Limits {
    /// On-chip weight buffer capacity in bytes; `None` disables the
    /// capacity check.
    pub weight_glb_bytes: Option<u64>,
    /// Weight storage width in bits (for compressed-size estimates).
    pub weight_bits: u32,
    /// Weight transfer codec (for compressed-size estimates).
    pub weight_scheme: CompressionScheme,
    /// Most tiled passes a single layer may take through the weight buffer
    /// before the graph is rejected. Tiling re-reads the layer's inputs
    /// once per pass, so a pathological pass count signals a config/model
    /// mismatch rather than a workable schedule.
    pub max_weight_passes: u64,
    /// Require the graph to be executable by the CSC-cached sparse
    /// backend (set when the device config pins `ConvBackend::SparseCsc`
    /// or auto-routes sparse inputs).
    pub require_sparse_eligible: bool,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            weight_glb_bytes: None,
            weight_bits: 8,
            weight_scheme: CompressionScheme::Bitmap,
            max_weight_passes: 64,
            require_sparse_eligible: false,
        }
    }
}

/// Verification failure: the diagnostics that made the graph unacceptable.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyError {
    /// Every finding, errors and warnings alike, in node order.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyError {
    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errors = self.errors().count();
        writeln!(
            f,
            "network verification failed with {errors} error(s), {} warning(s):",
            self.diagnostics.len() - errors
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Verifies `net` (and `params`, when given) against `limits`, returning
/// every finding. An empty vector means the graph is clean.
///
/// The pass is purely static: no forward execution, no allocation beyond
/// the diagnostics themselves. Cost is `O(nodes)` plus one scan over each
/// weight tensor when a capacity limit is set.
pub fn verify(net: &Network, params: Option<&Params>, limits: &Limits) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if net.is_empty() {
        diags.push(Diagnostic::global(DiagKind::EmptyGraph));
        return diags;
    }

    // --- Topology: one input at node 0, back-references only. ---
    let first_ok = matches!(net.nodes()[0].op, Op::Input)
        && net.value_shape(0) == ValueShape::Map(net.input_shape());
    if !first_ok {
        diags.push(Diagnostic::global(DiagKind::NoInput));
    }
    let mut consumers = vec![0usize; net.len()];
    for (id, node) in net.nodes().iter().enumerate() {
        if id > 0 && matches!(node.op, Op::Input) {
            diags.push(Diagnostic::at(net, id, DiagKind::ExtraInput));
        }
        let expected_arity = match node.op {
            Op::Input => 0,
            Op::Add { .. } => 2,
            _ => 1,
        };
        if node.inputs.len() != expected_arity {
            diags.push(Diagnostic::at(
                net,
                id,
                DiagKind::BadArity {
                    expected: expected_arity,
                    got: node.inputs.len(),
                },
            ));
            continue; // Shape checks below index node.inputs positionally.
        }
        let mut ordered = true;
        for &src in &node.inputs {
            if src >= id {
                diags.push(Diagnostic::at(
                    net,
                    id,
                    DiagKind::ForwardReference { input: src },
                ));
                ordered = false;
            } else {
                consumers[src] += 1;
            }
        }
        if !ordered {
            continue;
        }
        check_node_shape(net, id, &mut diags);
    }

    // --- Dead layers: every non-terminal node must feed something. ---
    let last = net.len() - 1;
    for (id, &uses) in consumers.iter().enumerate() {
        if uses == 0 && id != last {
            diags.push(Diagnostic::at(net, id, DiagKind::DeadLayer));
        }
    }

    // --- Params consistency. ---
    if let Some(params) = params {
        check_params(net, params, &mut diags);
    }

    // --- Capacity: compressed weights vs the on-chip buffer. ---
    if let Some(cap) = limits.weight_glb_bytes {
        check_glb(net, params, limits, cap, &mut diags);
    }

    // --- Backend preconditions. ---
    if limits.require_sparse_eligible && params.is_none() {
        diags.push(Diagnostic::global(DiagKind::SparseIneligible {
            reason: "the CSC weight cache requires materialized params".to_string(),
        }));
    }

    diags
}

/// Graph-only verification with default limits (no capacity checks).
pub fn verify_network(net: &Network) -> Vec<Diagnostic> {
    verify(net, None, &Limits::default())
}

/// [`verify`], rejecting the graph if any [`Severity::Error`] finding
/// exists. Warnings alone do not fail, but ride along in the error's
/// diagnostic list when errors are present.
///
/// # Errors
///
/// Returns [`VerifyError`] carrying every diagnostic when at least one is
/// an error.
pub fn verify_strict(
    net: &Network,
    params: Option<&Params>,
    limits: &Limits,
) -> Result<(), VerifyError> {
    let diagnostics = verify(net, params, limits);
    if diagnostics.iter().any(|d| d.severity == Severity::Error) {
        Err(VerifyError { diagnostics })
    } else {
        Ok(())
    }
}

/// Re-infers node `id`'s output shape from its op and the *recorded* input
/// shapes, and reports any disagreement with the recorded output shape.
fn check_node_shape(net: &Network, id: NodeId, diags: &mut Vec<Diagnostic>) {
    let node = &net.nodes()[id];
    let actual = net.value_shape(id);
    let map_input = |idx: usize, diags: &mut Vec<Diagnostic>| -> Option<Shape3> {
        let src = node.inputs[idx];
        match net.value_shape(src).as_map() {
            Some(s) => Some(s),
            None => {
                diags.push(Diagnostic::at(net, id, DiagKind::NotAMap { input: src }));
                None
            }
        }
    };
    let expected = match &node.op {
        Op::Input => Some(ValueShape::Map(net.input_shape())),
        Op::Conv(spec) => {
            let mut ok = true;
            for (attr, v) in [
                ("kernel", spec.kernel),
                ("stride", spec.stride),
                ("out_channels", spec.out_channels),
            ] {
                if v == 0 {
                    diags.push(Diagnostic::at(net, id, DiagKind::ZeroAttr { attr }));
                    ok = false;
                }
            }
            let s = map_input(0, diags);
            match (ok, s) {
                (true, Some(s)) => {
                    let oh = conv_out_dim(s.h, spec.kernel, spec.stride, spec.padding);
                    let ow = conv_out_dim(s.w, spec.kernel, spec.stride, spec.padding);
                    if oh == 0 || ow == 0 {
                        diags.push(Diagnostic::at(
                            net,
                            id,
                            DiagKind::StrideExceedsInput {
                                kernel: spec.kernel,
                                stride: spec.stride,
                                input: s,
                            },
                        ));
                        None
                    } else {
                        Some(ValueShape::Map(Shape3::new(spec.out_channels, oh, ow)))
                    }
                }
                _ => None,
            }
        }
        Op::DwConv { kernel, stride, .. } => {
            let mut ok = true;
            for (attr, v) in [("kernel", *kernel), ("stride", *stride)] {
                if v == 0 {
                    diags.push(Diagnostic::at(net, id, DiagKind::ZeroAttr { attr }));
                    ok = false;
                }
            }
            let s = map_input(0, diags);
            match (ok, s) {
                (true, Some(s)) => {
                    let oh = conv_out_dim(s.h, *kernel, *stride, Padding::Same);
                    let ow = conv_out_dim(s.w, *kernel, *stride, Padding::Same);
                    Some(ValueShape::Map(Shape3::new(s.c, oh, ow)))
                }
                _ => None,
            }
        }
        Op::Pool { factor, .. } => {
            if *factor == 0 {
                diags.push(Diagnostic::at(
                    net,
                    id,
                    DiagKind::ZeroAttr { attr: "factor" },
                ));
                None
            } else {
                map_input(0, diags).map(|s| {
                    if s.h % factor != 0 || s.w % factor != 0 {
                        diags.push(Diagnostic::at(
                            net,
                            id,
                            DiagKind::PoolRemainder {
                                factor: *factor,
                                input: s,
                            },
                        ));
                    }
                    ValueShape::Map(Shape3::new(s.c, s.h / factor, s.w / factor))
                })
            }
        }
        Op::Add { .. } => {
            let a = map_input(0, diags);
            let b = map_input(1, diags);
            match (a, b) {
                (Some(a), Some(b)) if a == b => Some(ValueShape::Map(a)),
                (Some(a), Some(b)) => {
                    diags.push(Diagnostic::at(
                        net,
                        id,
                        DiagKind::AddMismatch { left: a, right: b },
                    ));
                    None
                }
                _ => None,
            }
        }
        Op::GlobalAvgPool => map_input(0, diags).map(|s| ValueShape::Vector(s.c)),
        Op::Flatten => map_input(0, diags).map(|s| ValueShape::Vector(s.len())),
        Op::Linear { out_features, .. } => {
            if *out_features == 0 {
                diags.push(Diagnostic::at(
                    net,
                    id,
                    DiagKind::ZeroAttr {
                        attr: "out_features",
                    },
                ));
            }
            let src = node.inputs[0];
            if !matches!(net.value_shape(src), ValueShape::Vector(_)) {
                diags.push(Diagnostic::at(net, id, DiagKind::NotAVector { input: src }));
            }
            (*out_features > 0).then_some(ValueShape::Vector(*out_features))
        }
    };
    if let Some(expected) = expected {
        if expected != actual {
            diags.push(Diagnostic::at(
                net,
                id,
                DiagKind::ShapeMismatch { expected, actual },
            ));
        } else if actual.is_empty() {
            diags.push(Diagnostic::at(
                net,
                id,
                DiagKind::ZeroOutput { shape: actual },
            ));
        }
    }
}

/// Checks params/graph index alignment and per-node weight geometry.
fn check_params(net: &Network, params: &Params, diags: &mut Vec<Diagnostic>) {
    if params.layers.len() != net.len() {
        diags.push(Diagnostic::global(DiagKind::RaggedParams {
            expected: net.len(),
            got: params.layers.len(),
        }));
        return;
    }
    for (id, node) in net.nodes().iter().enumerate() {
        let entry = &params.layers[id];
        let in_shape = node
            .inputs
            .first()
            .and_then(|&src| net.value_shape(src).as_map());
        match (&node.op, entry) {
            (Op::Conv(spec), Some(LayerParams::Conv { w, b, bn })) => {
                let in_c = in_shape.map(|s| s.c).unwrap_or(w.c());
                let want = (spec.out_channels, in_c, spec.kernel, spec.kernel);
                let got = (w.k(), w.c(), w.r(), w.s());
                if want != got {
                    diags.push(Diagnostic::at(
                        net,
                        id,
                        DiagKind::ParamShapeMismatch {
                            expected: format!("{}x{}x{}x{}", want.0, want.1, want.2, want.3),
                            actual: format!("{}x{}x{}x{}", got.0, got.1, got.2, got.3),
                        },
                    ));
                }
                // Per-channel companions must track the output width —
                // channel-removal passes that resize `w` but forget the
                // BN affine or bias leave these orphaned.
                for cover in [b.as_ref().map(Vec::len), bn.as_ref().map(Affine::channels)]
                    .into_iter()
                    .flatten()
                {
                    if cover != spec.out_channels {
                        diags.push(Diagnostic::at(
                            net,
                            id,
                            DiagKind::OrphanedBn {
                                expected: spec.out_channels,
                                got: cover,
                            },
                        ));
                    }
                }
            }
            (Op::DwConv { kernel, .. }, Some(LayerParams::DwConv { w, bn })) => {
                let in_c = in_shape.map(|s| s.c).unwrap_or(w.k());
                let want = (in_c, 1, *kernel, *kernel);
                let got = (w.k(), w.c(), w.r(), w.s());
                if want != got {
                    diags.push(Diagnostic::at(
                        net,
                        id,
                        DiagKind::ParamShapeMismatch {
                            expected: format!("{}x{}x{}x{}", want.0, want.1, want.2, want.3),
                            actual: format!("{}x{}x{}x{}", got.0, got.1, got.2, got.3),
                        },
                    ));
                }
                if let Some(bn) = bn {
                    if bn.channels() != in_c {
                        diags.push(Diagnostic::at(
                            net,
                            id,
                            DiagKind::OrphanedBn {
                                expected: in_c,
                                got: bn.channels(),
                            },
                        ));
                    }
                }
            }
            (
                Op::Linear { out_features, .. },
                Some(LayerParams::Linear {
                    w,
                    b,
                    in_features,
                    out_features: got_out,
                }),
            ) => {
                let want_in = node
                    .inputs
                    .first()
                    .map(|&src| net.value_shape(src).len())
                    .unwrap_or(*in_features);
                if *got_out != *out_features
                    || *in_features != want_in
                    || w.len() != in_features * got_out
                    || b.len() != *got_out
                {
                    diags.push(Diagnostic::at(
                        net,
                        id,
                        DiagKind::ParamShapeMismatch {
                            expected: format!("{out_features}x{want_in}"),
                            actual: format!("{got_out}x{in_features}"),
                        },
                    ));
                }
            }
            (Op::Conv(_) | Op::DwConv { .. } | Op::Linear { .. }, _) => {
                diags.push(Diagnostic::at(net, id, DiagKind::MissingParams));
            }
            _ => {}
        }
    }
}

/// Flags layers whose compressed weights would need more passes through
/// the on-chip weight buffer than `limits.max_weight_passes`.
fn check_glb(
    net: &Network,
    params: Option<&Params>,
    limits: &Limits,
    cap: u64,
    diags: &mut Vec<Diagnostic>,
) {
    if cap == 0 {
        return;
    }
    for id in net.weighted_nodes() {
        let weight_bytes = match params.map(|p| p.layers.get(id)) {
            Some(Some(Some(LayerParams::Conv { w, .. })))
            | Some(Some(Some(LayerParams::DwConv { w, .. }))) => {
                limits
                    .weight_scheme
                    .encoded_size(w.data(), limits.weight_bits)
                    .bytes
            }
            Some(Some(Some(LayerParams::Linear { w, .. }))) => {
                limits
                    .weight_scheme
                    .encoded_size(w, limits.weight_bits)
                    .bytes
            }
            // No params: bound below by the dense footprint.
            _ => dense_weight_bytes(net, id, limits.weight_bits),
        };
        let passes = weight_bytes.div_ceil(cap);
        if passes > limits.max_weight_passes {
            diags.push(Diagnostic::at(
                net,
                id,
                DiagKind::GlbOverflow {
                    weight_bytes,
                    capacity: cap,
                    passes,
                    max_passes: limits.max_weight_passes,
                },
            ));
        }
    }
}

/// Dense weight footprint of a node in bytes, from geometry alone.
fn dense_weight_bytes(net: &Network, id: NodeId, weight_bits: u32) -> u64 {
    let node = &net.nodes()[id];
    let in_shape = node
        .inputs
        .first()
        .and_then(|&src| net.value_shape(src).as_map());
    let elems = match &node.op {
        Op::Conv(spec) => {
            let in_c = in_shape.map(|s| s.c).unwrap_or(0);
            spec.out_channels * in_c * spec.kernel * spec.kernel
        }
        Op::DwConv { kernel, .. } => in_shape.map(|s| s.c).unwrap_or(0) * kernel * kernel,
        Op::Linear { out_features, .. } => {
            out_features
                * node
                    .inputs
                    .first()
                    .map(|&s| net.value_shape(s).len())
                    .unwrap_or(0)
        }
        _ => 0,
    };
    (elems as u64 * u64::from(weight_bits)).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConvSpec, NetworkBuilder, Node};
    use hd_tensor::pool::PoolKind;

    fn clean_net() -> Network {
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.global_avg_pool(x);
        b.linear(x, 10);
        b.build()
    }

    #[test]
    fn builder_output_is_clean() {
        let net = clean_net();
        let params = Params::init(&net, 3);
        assert!(verify(&net, Some(&params), &Limits::default()).is_empty());
        assert!(verify_strict(&net, Some(&params), &Limits::default()).is_ok());
    }

    #[test]
    fn zoo_victims_are_clean_under_preset_limits() {
        let limits = Limits {
            weight_glb_bytes: Some(128 * 1024),
            ..Limits::default()
        };
        for net in [
            crate::zoo::vgg_s(10),
            crate::zoo::resnet18(10),
            crate::zoo::alexnet(10),
            crate::zoo::mobilenet_v2(10),
        ] {
            let params = Params::init(&net, 1);
            let errors: Vec<_> = verify(&net, Some(&params), &limits)
                .into_iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "zoo net rejected: {errors:?}");
        }
    }

    #[test]
    fn restructured_graph_is_clean() {
        // Structured pruning rewrites shapes from scratch; verify must
        // accept the result without complaint.
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let stem = b.conv(x, 8, 3, 1);
        let y = b.conv(stem, 8, 3, 1);
        let j = b.add(stem, y);
        let x = b.global_avg_pool(j);
        b.linear(x, 5);
        let net = b.build();
        let params = Params::init(&net, 21);
        let r =
            crate::prune::structured_prune(&net, &params, &crate::prune::StructuredCfg::default());
        assert!(verify_strict(&r.net, Some(&r.params), &Limits::default()).is_ok());
    }

    #[test]
    fn orphaned_bn_after_channel_removal_is_rejected() {
        let net = clean_net();
        let mut params = Params::init(&net, 7);
        // Simulate a broken channel-removal pass: shrink the conv weights
        // and spec but leave the BN affine at the old width.
        let keep = [true, true, false, false];
        let mut nodes = net.nodes().to_vec();
        if let Op::Conv(spec) = &mut nodes[1].op {
            spec.out_channels = 2;
        }
        let mut shapes: Vec<ValueShape> = (0..net.len()).map(|i| net.value_shape(i)).collect();
        shapes[1] = ValueShape::Map(Shape3::new(2, 8, 8));
        shapes[2] = ValueShape::Map(Shape3::new(2, 4, 4));
        shapes[3] = ValueShape::Vector(2);
        let broken = Network::from_raw_parts(
            nodes,
            net.input_shape(),
            shapes,
            (0..net.len()).map(|i| net.name(i).to_string()).collect(),
        );
        if let Some(LayerParams::Conv { w, .. }) = &mut params.layers[1] {
            *w = w.select_k(&keep);
        }
        if let Some(LayerParams::Linear { w, in_features, .. }) = &mut params.layers[4] {
            *in_features = 2;
            w.truncate(10 * 2);
        }
        let diags = verify(&broken, Some(&params), &Limits::default());
        assert!(
            diags.iter().any(|d| matches!(
                &d.kind,
                DiagKind::OrphanedBn {
                    expected: 2,
                    got: 4
                }
            )),
            "orphaned BN not caught: {diags:?}"
        );
        assert_eq!(
            diags
                .iter()
                .find(|d| matches!(d.kind, DiagKind::OrphanedBn { .. }))
                .map(|d| d.kind.rule()),
            Some("orphaned-bn")
        );
    }

    #[test]
    fn residual_add_channel_mismatch_is_rejected() {
        // Shrinking only one operand of a residual add must trip
        // AddMismatch: a restructure pass has to keep the class unified.
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let stem = b.conv(x, 8, 3, 1);
        let y = b.conv(stem, 8, 3, 1);
        let j = b.add(stem, y);
        b.global_avg_pool(j);
        let net = b.build();
        let mut nodes = net.nodes().to_vec();
        if let Op::Conv(spec) = &mut nodes[2].op {
            spec.out_channels = 4;
        }
        let mut shapes: Vec<ValueShape> = (0..net.len()).map(|i| net.value_shape(i)).collect();
        shapes[2] = ValueShape::Map(Shape3::new(4, 8, 8));
        let broken = Network::from_raw_parts(
            nodes,
            net.input_shape(),
            shapes,
            (0..net.len()).map(|i| net.name(i).to_string()).collect(),
        );
        let diags = verify_network(&broken);
        assert!(
            diags.iter().any(|d| matches!(
                &d.kind,
                DiagKind::AddMismatch { left, right }
                    if left.c != right.c
            )),
            "add mismatch not caught: {diags:?}"
        );
    }

    #[test]
    fn conv_bias_length_mismatch_is_rejected() {
        let mut b = NetworkBuilder::new(3, 8, 8);
        let x = b.input();
        let x = b.conv_spec(
            x,
            ConvSpec {
                bias: true,
                batch_norm: false,
                ..ConvSpec::standard(4, 3, 1)
            },
        );
        b.global_avg_pool(x);
        let net = b.build();
        let mut params = Params::init(&net, 9);
        if let Some(LayerParams::Conv { b: Some(b), .. }) = &mut params.layers[1] {
            b.pop();
        }
        let diags = verify(&net, Some(&params), &Limits::default());
        assert!(
            diags.iter().any(|d| matches!(
                &d.kind,
                DiagKind::OrphanedBn {
                    expected: 4,
                    got: 3
                }
            )),
            "short bias not caught: {diags:?}"
        );
    }

    #[test]
    fn shape_mismatch_is_reported_with_both_shapes() {
        let net = clean_net();
        let mut shapes: Vec<ValueShape> = (0..net.len()).map(|i| net.value_shape(i)).collect();
        shapes[1] = ValueShape::Map(Shape3::new(4, 6, 6)); // conv really yields 4x8x8
        let broken = Network::from_raw_parts(
            net.nodes().to_vec(),
            net.input_shape(),
            shapes,
            (0..net.len()).map(|i| net.name(i).to_string()).collect(),
        );
        let diags = verify_network(&broken);
        assert!(diags.iter().any(|d| matches!(
            &d.kind,
            DiagKind::ShapeMismatch { expected, actual }
                if *expected == ValueShape::Map(Shape3::new(4, 8, 8))
                    && *actual == ValueShape::Map(Shape3::new(4, 6, 6))
        )));
        // The mismatch cascades into the pool node's shape too; both carry
        // node ids and layer paths.
        for d in &diags {
            assert!(d.node.is_some());
            assert!(!d.path.is_empty());
        }
    }

    #[test]
    fn dead_layer_is_a_warning() {
        let mut b = NetworkBuilder::new(2, 8, 8);
        let x = b.input();
        let _dead = b.conv(x, 4, 3, 1);
        let x2 = b.conv(x, 4, 3, 1);
        b.global_avg_pool(x2);
        let net = b.build();
        let diags = verify_network(&net);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(matches!(diags[0].kind, DiagKind::DeadLayer));
        assert_eq!(diags[0].node, Some(1));
        // Warnings alone do not fail strict verification.
        assert!(verify_strict(&net, None, &Limits::default()).is_ok());
    }

    #[test]
    fn forward_reference_and_extra_input_rejected() {
        let shape = Shape3::new(2, 8, 8);
        let net = Network::from_raw_parts(
            vec![
                Node {
                    op: Op::Input,
                    inputs: vec![],
                },
                Node {
                    op: Op::Input,
                    inputs: vec![],
                },
                Node {
                    op: Op::Conv(ConvSpec::standard(4, 3, 1)),
                    inputs: vec![3],
                },
                Node {
                    op: Op::Pool {
                        factor: 2,
                        kind: PoolKind::Max,
                    },
                    inputs: vec![2],
                },
            ],
            shape,
            vec![
                ValueShape::Map(shape),
                ValueShape::Map(shape),
                ValueShape::Map(Shape3::new(4, 8, 8)),
                ValueShape::Map(Shape3::new(4, 4, 4)),
            ],
            vec![
                "input0".into(),
                "input1".into(),
                "conv2".into(),
                "pool3".into(),
            ],
        );
        let diags = verify_network(&net);
        assert!(diags.iter().any(|d| matches!(d.kind, DiagKind::ExtraInput)));
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::ForwardReference { input: 3 })));
        assert!(verify_strict(&net, None, &Limits::default()).is_err());
    }

    #[test]
    fn valid_conv_larger_than_input_rejected() {
        let shape = Shape3::new(1, 4, 4);
        let mut spec = ConvSpec::standard(2, 5, 1);
        spec.padding = Padding::Valid;
        let net = Network::from_raw_parts(
            vec![
                Node {
                    op: Op::Input,
                    inputs: vec![],
                },
                Node {
                    op: Op::Conv(spec),
                    inputs: vec![0],
                },
            ],
            shape,
            vec![
                ValueShape::Map(shape),
                ValueShape::Map(Shape3::new(2, 0, 0)),
            ],
            vec!["input0".into(), "conv1".into()],
        );
        let diags = verify_network(&net);
        assert!(diags.iter().any(|d| matches!(
            d.kind,
            DiagKind::StrideExceedsInput {
                kernel: 5,
                stride: 1,
                ..
            }
        )));
    }

    #[test]
    fn glb_overflow_reports_pass_count() {
        let net = clean_net();
        let params = Params::init(&net, 3);
        let limits = Limits {
            weight_glb_bytes: Some(1),
            max_weight_passes: 4,
            ..Limits::default()
        };
        let diags = verify(&net, Some(&params), &limits);
        let overflow = diags
            .iter()
            .find(|d| matches!(d.kind, DiagKind::GlbOverflow { .. }))
            .expect("conv weights cannot fit a 1-byte buffer");
        if let DiagKind::GlbOverflow {
            passes, capacity, ..
        } = overflow.kind
        {
            assert_eq!(capacity, 1);
            assert!(passes > 4);
        }
    }

    #[test]
    fn param_geometry_mismatch_detected() {
        let net = clean_net();
        // Params initialized for a *different* conv width.
        let mut other = NetworkBuilder::new(3, 8, 8);
        let x = other.input();
        let x = other.conv(x, 8, 3, 1);
        let x = other.max_pool(x, 2);
        let x = other.global_avg_pool(x);
        other.linear(x, 10);
        let params = Params::init(&other.build(), 3);
        let diags = verify(&net, Some(&params), &Limits::default());
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::ParamShapeMismatch { .. })));
    }

    #[test]
    fn missing_and_ragged_params_detected() {
        let net = clean_net();
        let mut params = Params::init(&net, 3);
        params.layers[1] = None;
        let diags = verify(&net, Some(&params), &Limits::default());
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::MissingParams) && d.node == Some(1)));
        params.layers.pop();
        let diags = verify(&net, Some(&params), &Limits::default());
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::RaggedParams { .. })));
    }

    #[test]
    fn pool_remainder_is_a_warning() {
        let mut b = NetworkBuilder::new(1, 9, 9);
        let x = b.input();
        let x = b.max_pool(x, 2); // 9 is not divisible by 2
        b.global_avg_pool(x);
        let net = b.build();
        let diags = verify_network(&net);
        assert!(diags.iter().any(
            |d| matches!(d.kind, DiagKind::PoolRemainder { factor: 2, .. })
                && d.severity == Severity::Warning
        ));
    }

    #[test]
    fn sparse_eligibility_requires_params() {
        let net = clean_net();
        let limits = Limits {
            require_sparse_eligible: true,
            ..Limits::default()
        };
        assert!(verify(&net, None, &limits)
            .iter()
            .any(|d| matches!(d.kind, DiagKind::SparseIneligible { .. })));
        let params = Params::init(&net, 3);
        assert!(verify(&net, Some(&params), &limits).is_empty());
    }

    #[test]
    fn display_formats_are_stable() {
        let net = clean_net();
        let d = Diagnostic::at(
            &net,
            1,
            DiagKind::ShapeMismatch {
                expected: ValueShape::Map(Shape3::new(4, 8, 8)),
                actual: ValueShape::Vector(3),
            },
        );
        assert_eq!(
            d.to_string(),
            "error[shape-mismatch] #1 conv1: recorded output shape vec[3] but the op implies 4x8x8"
        );
    }
}
