//! Reverse-mode differentiation, loss functions, and SGD training.
//!
//! The backward pass walks the graph in reverse topological order,
//! accumulating gradients at every node output. It produces both parameter
//! gradients (for training) and the gradient with respect to the network
//! input (for FGSM/BIM adversarial-example generation in `hd-adversarial`).

use crate::graph::{ForwardTrace, LayerParams, Network, Op, Params};
use hd_tensor::conv::{conv2d_bias_grad, conv2d_input_grad, conv2d_weight_grad, Conv2dCfg};
use hd_tensor::dwconv::{dwconv2d_input_grad, dwconv2d_weight_grad};
use hd_tensor::norm::relu_backward;
use hd_tensor::pool::pool2d_backward;
use hd_tensor::{Tensor3, Tensor4};

/// Gradients for one weighted node.
#[derive(Clone, Debug)]
pub enum LayerGrads {
    /// Conv gradients.
    Conv {
        /// dL/dW.
        w: Tensor4,
        /// dL/db, if the layer has a bias.
        b: Option<Vec<f32>>,
        /// dL/d(scale), dL/d(shift) for batch norm, if present.
        bn: Option<(Vec<f32>, Vec<f32>)>,
    },
    /// Depthwise conv gradients.
    DwConv {
        /// dL/dW.
        w: Tensor4,
        /// Batch-norm gradients, if present.
        bn: Option<(Vec<f32>, Vec<f32>)>,
    },
    /// Linear gradients.
    Linear {
        /// dL/dW (row-major).
        w: Vec<f32>,
        /// dL/db.
        b: Vec<f32>,
    },
}

/// All gradients produced by one backward pass.
#[derive(Clone, Debug)]
pub struct Grads {
    /// `layers[id]` is `Some` iff node `id` carries weights.
    pub layers: Vec<Option<LayerGrads>>,
    /// Gradient of the loss with respect to the network input.
    pub input: Tensor3,
}

/// Runs a backward pass from a gradient on the final node's output.
///
/// # Panics
///
/// Panics if `grad_output` length does not match the final node output.
pub fn backward(
    net: &Network,
    params: &Params,
    trace: &ForwardTrace,
    grad_output: &[f32],
) -> Grads {
    let n = net.len();
    let last = n - 1;
    assert_eq!(
        grad_output.len(),
        net.value_shape(last).len(),
        "grad_output length mismatch"
    );

    // Per-node output gradients, accumulated from consumers.
    let mut grads: Vec<Option<Vec<f32>>> = vec![None; n];
    grads[last] = Some(grad_output.to_vec());

    let mut layer_grads: Vec<Option<LayerGrads>> = vec![None; n];
    let mut input_grad: Option<Tensor3> = None;

    let accumulate = |slot: &mut Option<Vec<f32>>, incoming: &[f32]| match slot {
        Some(existing) => {
            for (e, i) in existing.iter_mut().zip(incoming) {
                *e += i;
            }
        }
        None => *slot = Some(incoming.to_vec()),
    };

    for id in (0..n).rev() {
        let Some(g_flat) = grads[id].take() else {
            continue; // node does not influence the loss
        };
        let node = &net.nodes()[id];
        match &node.op {
            Op::Input => {
                let s = net.input_shape();
                input_grad = Some(match input_grad {
                    Some(acc) => acc.add(&Tensor3::from_vec(s.c, s.h, s.w, g_flat)),
                    None => Tensor3::from_vec(s.c, s.h, s.w, g_flat),
                });
            }
            Op::Conv(spec) => {
                let out_shape = net.value_shape(id).as_map().unwrap(); // hd-lint: allow(no-panic) -- this op produces a map by Network construction
                let mut g = Tensor3::from_vec(out_shape.c, out_shape.h, out_shape.w, g_flat);
                let tr = &trace.traces[id];
                if spec.relu {
                    g = relu_backward(&g, tr.pre_relu.as_ref().unwrap().map()); // hd-lint: allow(no-panic) -- forward() records pre_relu for every ReLU-bearing node
                }
                let lp = params.conv(id);
                let mut bn_grads = None;
                if let Some(bn) = lp.bn {
                    let (gi, gs, gb) = bn.backward(&g, tr.pre_bn.as_ref().unwrap()); // hd-lint: allow(no-panic) -- forward() records pre_bn for every BN-bearing node
                    g = gi;
                    bn_grads = Some((gs, gb));
                }
                let x = trace.traces[node.inputs[0]].out.map();
                let cfg = Conv2dCfg::new(spec.stride, spec.padding);
                let gw = conv2d_weight_grad(&g, x, (spec.kernel, spec.kernel), &cfg);
                let gb = spec.bias.then(|| conv2d_bias_grad(&g));
                let gx = conv2d_input_grad(&g, lp.w, (x.c(), x.h(), x.w()), &cfg);
                layer_grads[id] = Some(LayerGrads::Conv {
                    w: gw,
                    b: gb,
                    bn: bn_grads,
                });
                accumulate(&mut grads[node.inputs[0]], gx.data());
            }
            Op::DwConv {
                kernel,
                stride,
                relu,
                ..
            } => {
                let out_shape = net.value_shape(id).as_map().unwrap(); // hd-lint: allow(no-panic) -- this op produces a map by Network construction
                let mut g = Tensor3::from_vec(out_shape.c, out_shape.h, out_shape.w, g_flat);
                let tr = &trace.traces[id];
                if *relu {
                    g = relu_backward(&g, tr.pre_relu.as_ref().unwrap().map()); // hd-lint: allow(no-panic) -- forward() records pre_relu for every ReLU-bearing node
                }
                let lp = params.dwconv(id);
                let mut bn_grads = None;
                if let Some(bn) = lp.bn {
                    let (gi, gs, gb) = bn.backward(&g, tr.pre_bn.as_ref().unwrap()); // hd-lint: allow(no-panic) -- forward() records pre_bn for every BN-bearing node
                    g = gi;
                    bn_grads = Some((gs, gb));
                }
                let x = trace.traces[node.inputs[0]].out.map();
                let cfg = Conv2dCfg::new(*stride, hd_tensor::conv::Padding::Same);
                let gw = dwconv2d_weight_grad(&g, x, (*kernel, *kernel), &cfg);
                let gx = dwconv2d_input_grad(&g, lp.w, (x.c(), x.h(), x.w()), &cfg);
                layer_grads[id] = Some(LayerGrads::DwConv {
                    w: gw,
                    bn: bn_grads,
                });
                accumulate(&mut grads[node.inputs[0]], gx.data());
            }
            Op::Pool { factor, kind } => {
                let out_shape = net.value_shape(id).as_map().unwrap(); // hd-lint: allow(no-panic) -- this op produces a map by Network construction
                let g = Tensor3::from_vec(out_shape.c, out_shape.h, out_shape.w, g_flat);
                let x = trace.traces[node.inputs[0]].out.map();
                let gx = pool2d_backward(&g, x, *factor, *kind);
                accumulate(&mut grads[node.inputs[0]], gx.data());
            }
            Op::Add { relu } => {
                let out_shape = net.value_shape(id).as_map().unwrap(); // hd-lint: allow(no-panic) -- this op produces a map by Network construction
                let mut g = Tensor3::from_vec(out_shape.c, out_shape.h, out_shape.w, g_flat);
                if *relu {
                    let tr = &trace.traces[id];
                    g = relu_backward(&g, tr.pre_relu.as_ref().unwrap().map()); // hd-lint: allow(no-panic) -- forward() records pre_relu for every ReLU-bearing node
                }
                accumulate(&mut grads[node.inputs[0]], g.data());
                accumulate(&mut grads[node.inputs[1]], g.data());
            }
            Op::GlobalAvgPool => {
                let in_shape = net.value_shape(node.inputs[0]).as_map().unwrap(); // hd-lint: allow(no-panic) -- this op produces a map by Network construction
                let area = (in_shape.h * in_shape.w) as f32;
                let mut gx = Tensor3::zeros(in_shape.c, in_shape.h, in_shape.w);
                #[allow(clippy::needless_range_loop)] // index-parallel numeric kernel
                for c in 0..in_shape.c {
                    let share = g_flat[c] / area;
                    for y in 0..in_shape.h {
                        for x in 0..in_shape.w {
                            gx.set(c, y, x, share);
                        }
                    }
                }
                accumulate(&mut grads[node.inputs[0]], gx.data());
            }
            Op::Flatten => {
                accumulate(&mut grads[node.inputs[0]], &g_flat);
            }
            Op::Linear { relu, .. } => {
                let tr = &trace.traces[id];
                let mut g = g_flat;
                if *relu {
                    let pre = tr.pre_relu.as_ref().unwrap().vector(); // hd-lint: allow(no-panic) -- forward() records pre_relu for every ReLU-bearing node
                    for (gv, &p) in g.iter_mut().zip(pre) {
                        if p <= 0.0 {
                            *gv = 0.0;
                        }
                    }
                }
                let lp = params.linear(id);
                let x = trace.traces[node.inputs[0]].out.vector();
                let mut gw = vec![0.0f32; lp.w.len()];
                let mut gx = vec![0.0f32; lp.in_features];
                for o in 0..lp.out_features {
                    let go = g[o];
                    if go == 0.0 {
                        continue;
                    }
                    let row = &lp.w[o * lp.in_features..(o + 1) * lp.in_features];
                    let grow = &mut gw[o * lp.in_features..(o + 1) * lp.in_features];
                    for i in 0..lp.in_features {
                        grow[i] = go * x[i];
                        gx[i] += go * row[i];
                    }
                }
                layer_grads[id] = Some(LayerGrads::Linear { w: gw, b: g });
                accumulate(&mut grads[node.inputs[0]], &gx);
            }
        }
    }

    Grads {
        layers: layer_grads,
        input: input_grad.unwrap_or_else(|| {
            let s = net.input_shape();
            Tensor3::zeros(s.c, s.h, s.w)
        }),
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|l| (l - max).exp()).collect();
    // hd-lint: allow(float-reduction-order) -- slice iteration is left-to-right by the language, so this accumulation order is already fixed
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Softmax cross-entropy loss and its gradient with respect to the logits.
///
/// # Panics
///
/// Panics if `target >= logits.len()`.
pub fn cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    assert!(target < logits.len(), "target class out of range");
    let probs = softmax(logits);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    (loss, grad)
}

/// SGD with momentum and optional weight decay and pruning masks.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    velocity: Vec<Option<LayerVelocity>>,
}

#[derive(Clone, Debug)]
enum LayerVelocity {
    Conv {
        w: Vec<f32>,
        b: Vec<f32>,
        bn: (Vec<f32>, Vec<f32>),
    },
    Linear {
        w: Vec<f32>,
        b: Vec<f32>,
    },
}

impl Sgd {
    /// Creates an optimizer for the given network.
    pub fn new(net: &Network, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: vec![None; net.len()],
        }
    }

    /// Applies one gradient step, respecting an optional pruning mask
    /// (pruned weights stay exactly zero).
    pub fn step(&mut self, params: &mut Params, grads: &Grads, mask: Option<&crate::prune::Mask>) {
        for (id, lg) in grads.layers.iter().enumerate() {
            let Some(lg) = lg else { continue };
            match (&mut params.layers[id], lg) {
                (
                    Some(LayerParams::Conv { w, b, bn }),
                    LayerGrads::Conv {
                        w: gw,
                        b: gb,
                        bn: gbn,
                    },
                ) => {
                    let vel = self.velocity[id].get_or_insert_with(|| LayerVelocity::Conv {
                        w: vec![0.0; w.len()],
                        b: vec![0.0; b.as_ref().map_or(0, |b| b.len())],
                        bn: (
                            vec![0.0; bn.as_ref().map_or(0, |bn| bn.channels())],
                            vec![0.0; bn.as_ref().map_or(0, |bn| bn.channels())],
                        ),
                    });
                    let LayerVelocity::Conv {
                        w: vw,
                        b: vb,
                        bn: (vs, vsh),
                    } = vel
                    else {
                        unreachable!()
                    };
                    sgd_update(
                        w.data_mut(),
                        gw.data(),
                        vw,
                        self.lr,
                        self.momentum,
                        self.weight_decay,
                    );
                    if let (Some(b), Some(gb)) = (b.as_mut(), gb.as_ref()) {
                        sgd_update(b, gb, vb, self.lr, self.momentum, 0.0);
                    }
                    if let (Some(bn), Some((gs, gsh))) = (bn.as_mut(), gbn.as_ref()) {
                        sgd_update(bn.scale_mut(), gs, vs, self.lr, self.momentum, 0.0);
                        sgd_update(bn.shift_mut(), gsh, vsh, self.lr, self.momentum, 0.0);
                    }
                }
                (Some(LayerParams::DwConv { w, bn }), LayerGrads::DwConv { w: gw, bn: gbn }) => {
                    let vel = self.velocity[id].get_or_insert_with(|| LayerVelocity::Conv {
                        w: vec![0.0; w.len()],
                        b: Vec::new(),
                        bn: (
                            vec![0.0; bn.as_ref().map_or(0, |bn| bn.channels())],
                            vec![0.0; bn.as_ref().map_or(0, |bn| bn.channels())],
                        ),
                    });
                    let LayerVelocity::Conv {
                        w: vw,
                        bn: (vs, vsh),
                        ..
                    } = vel
                    else {
                        unreachable!()
                    };
                    sgd_update(
                        w.data_mut(),
                        gw.data(),
                        vw,
                        self.lr,
                        self.momentum,
                        self.weight_decay,
                    );
                    if let (Some(bn), Some((gs, gsh))) = (bn.as_mut(), gbn.as_ref()) {
                        sgd_update(bn.scale_mut(), gs, vs, self.lr, self.momentum, 0.0);
                        sgd_update(bn.shift_mut(), gsh, vsh, self.lr, self.momentum, 0.0);
                    }
                }
                (Some(LayerParams::Linear { w, b, .. }), LayerGrads::Linear { w: gw, b: gb }) => {
                    let vel = self.velocity[id].get_or_insert_with(|| LayerVelocity::Linear {
                        w: vec![0.0; w.len()],
                        b: vec![0.0; b.len()],
                    });
                    let LayerVelocity::Linear { w: vw, b: vb } = vel else {
                        unreachable!()
                    };
                    sgd_update(w, gw, vw, self.lr, self.momentum, self.weight_decay);
                    sgd_update(b, gb, vb, self.lr, self.momentum, 0.0);
                }
                _ => panic!("gradient/parameter kind mismatch at node {id}"), // hd-lint: allow(no-panic) -- gradients are produced from the same Params layout they update
            }
        }
        if let Some(mask) = mask {
            mask.apply(params);
        }
    }
}

fn sgd_update(p: &mut [f32], g: &[f32], v: &mut [f32], lr: f32, momentum: f32, wd: f32) {
    // Per-element gradient clipping keeps unlucky candidate architectures
    // from diverging to NaN during the automated retraining experiments.
    const CLIP: f32 = 5.0;
    for i in 0..p.len() {
        let grad = (g[i] + wd * p[i]).clamp(-CLIP, CLIP);
        v[i] = momentum * v[i] + grad;
        p[i] -= lr * v[i];
    }
}

/// Data-dependent initialization (LSUV-style): sets each batch-norm affine
/// so that post-normalization activations have zero mean and unit variance
/// on a small calibration batch, and rescales linear layers to unit output
/// deviation. Without real batch statistics (our BN is inference-mode
/// affine), deep plain CNNs barely train; this restores healthy signal
/// propagation at initialization.
pub fn normalize_init(net: &Network, params: &mut Params, samples: &[hd_tensor::Tensor3]) {
    if samples.is_empty() {
        return;
    }
    for id in 0..net.len() {
        let has_bn = match &net.nodes()[id].op {
            Op::Conv(spec) => spec.batch_norm,
            Op::DwConv { batch_norm, .. } => *batch_norm,
            _ => false,
        };
        if has_bn {
            // Per-channel stats of the pre-BN activations.
            let mut count = 0usize;
            let mut mean: Vec<f64> = Vec::new();
            let mut m2: Vec<f64> = Vec::new();
            for s in samples {
                let trace = net.forward(params, s);
                let pre = trace.traces[id]
                    .pre_bn
                    .as_ref()
                    .expect("batch_norm layers record pre_bn"); // hd-lint: allow(no-panic) -- forward() records pre_bn for every BN-bearing node
                let c = pre.c();
                if mean.is_empty() {
                    mean = vec![0.0; c];
                    m2 = vec![0.0; c];
                }
                let plane = pre.h() * pre.w();
                for ch in 0..c {
                    for v in &pre.data()[ch * plane..(ch + 1) * plane] {
                        mean[ch] += *v as f64;
                        m2[ch] += (*v as f64) * (*v as f64);
                    }
                }
                count += plane;
            }
            if count == 0 {
                continue;
            }
            let (scale, shift): (Vec<f32>, Vec<f32>) = mean
                .iter()
                .zip(&m2)
                .map(|(&s1, &s2)| {
                    let mu = s1 / count as f64;
                    let var = (s2 / count as f64 - mu * mu).max(1e-8);
                    let inv = 1.0 / var.sqrt();
                    (inv as f32, (-mu * inv) as f32)
                })
                .unzip();
            if let Some(LayerParams::Conv { bn: Some(bn), .. })
            | Some(LayerParams::DwConv { bn: Some(bn), .. }) = &mut params.layers[id]
            {
                bn.scale_mut().copy_from_slice(&scale);
                bn.shift_mut().copy_from_slice(&shift);
            }
        } else if let Some(LayerParams::Linear { .. }) = &params.layers[id] {
            // Rescale the whole layer to unit output deviation.
            let mut sum = 0.0f64;
            let mut sum2 = 0.0f64;
            let mut n = 0usize;
            for s in samples {
                let trace = net.forward(params, s);
                let out = trace.traces[id]
                    .pre_relu
                    .as_ref()
                    .map(|v| v.vector().to_vec())
                    .unwrap_or_else(|| trace.traces[id].out.vector().to_vec());
                for v in out {
                    sum += v as f64;
                    sum2 += (v as f64) * (v as f64);
                    n += 1;
                }
            }
            if n == 0 {
                continue;
            }
            let mu = sum / n as f64;
            let var = (sum2 / n as f64 - mu * mu).max(1e-8);
            let inv = (1.0 / var.sqrt()) as f32;
            if let Some(LayerParams::Linear { w, b, .. }) = &mut params.layers[id] {
                for v in w.iter_mut() {
                    *v *= inv;
                }
                for v in b.iter_mut() {
                    *v *= inv;
                }
            }
        }
    }
}

/// Configuration for [`train`].
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Epoch count.
    pub epochs: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Multiplicative learning-rate decay applied after every epoch
    /// (1.0 = constant).
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 3,
            lr: 0.005,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 1.0,
        }
    }
}

/// Trains `params` on a labelled dataset; returns per-epoch mean losses.
///
/// Pruned weights (per `mask`) remain zero throughout.
pub fn train(
    net: &Network,
    params: &mut Params,
    dataset: &[(Tensor3, usize)],
    cfg: &TrainConfig,
    mask: Option<&crate::prune::Mask>,
) -> Vec<f32> {
    let mut opt = Sgd::new(net, cfg.lr, cfg.momentum, cfg.weight_decay);
    if let Some(m) = mask {
        m.apply(params);
    }
    let mut losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        opt.lr = cfg.lr * cfg.lr_decay.powi(epoch as i32);
        let mut epoch_loss = 0.0;
        for (x, y) in dataset {
            let trace = net.forward(params, x);
            let (loss, grad) = cross_entropy(trace.logits(), *y);
            epoch_loss += loss;
            let grads = backward(net, params, &trace, &grad);
            opt.step(params, &grads, mask);
        }
        losses.push(epoch_loss / dataset.len().max(1) as f32);
    }
    losses
}

/// Accumulates `other` into `acc` (elementwise sum of all gradients).
///
/// # Panics
///
/// Panics if the two gradient sets come from different networks.
pub fn accumulate_grads(acc: &mut Grads, other: &Grads) {
    assert_eq!(
        acc.layers.len(),
        other.layers.len(),
        "gradient layout mismatch"
    );
    for (a, o) in acc.layers.iter_mut().zip(&other.layers) {
        match (a, o) {
            (None, None) => {}
            (
                Some(LayerGrads::Conv { w, b, bn }),
                Some(LayerGrads::Conv {
                    w: ow,
                    b: ob,
                    bn: obn,
                }),
            ) => {
                add_slices(w.data_mut(), ow.data());
                if let (Some(b), Some(ob)) = (b.as_mut(), ob.as_ref()) {
                    add_slices(b, ob);
                }
                if let (Some((s, sh)), Some((os, osh))) = (bn.as_mut(), obn.as_ref()) {
                    add_slices(s, os);
                    add_slices(sh, osh);
                }
            }
            (Some(LayerGrads::DwConv { w, bn }), Some(LayerGrads::DwConv { w: ow, bn: obn })) => {
                add_slices(w.data_mut(), ow.data());
                if let (Some((s, sh)), Some((os, osh))) = (bn.as_mut(), obn.as_ref()) {
                    add_slices(s, os);
                    add_slices(sh, osh);
                }
            }
            (Some(LayerGrads::Linear { w, b }), Some(LayerGrads::Linear { w: ow, b: ob })) => {
                add_slices(w, ow);
                add_slices(b, ob);
            }
            _ => panic!("gradient layout mismatch"), // hd-lint: allow(no-panic) -- gradients are produced from the same Params layout they update
        }
    }
    let scaled = other.input.clone();
    acc.input = acc.input.add(&scaled);
}

/// Scales every gradient by `factor` (e.g. `1 / batch_size`).
pub fn scale_grads(grads: &mut Grads, factor: f32) {
    for g in grads.layers.iter_mut().flatten() {
        match g {
            LayerGrads::Conv { w, b, bn } => {
                scale_slice(w.data_mut(), factor);
                if let Some(b) = b {
                    scale_slice(b, factor);
                }
                if let Some((s, sh)) = bn {
                    scale_slice(s, factor);
                    scale_slice(sh, factor);
                }
            }
            LayerGrads::DwConv { w, bn } => {
                scale_slice(w.data_mut(), factor);
                if let Some((s, sh)) = bn {
                    scale_slice(s, factor);
                    scale_slice(sh, factor);
                }
            }
            LayerGrads::Linear { w, b } => {
                scale_slice(w, factor);
                scale_slice(b, factor);
            }
        }
    }
    scale_slice(grads.input.data_mut(), factor);
}

fn add_slices(a: &mut [f32], b: &[f32]) {
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

fn scale_slice(a: &mut [f32], f: f32) {
    for x in a.iter_mut() {
        *x *= f;
    }
}

/// Mini-batch training: gradients are averaged over `batch_size` samples
/// before each optimizer step. Smoother than per-sample SGD and tolerant
/// of larger learning rates; returns per-epoch mean losses like [`train`].
pub fn train_batched(
    net: &Network,
    params: &mut Params,
    dataset: &[(hd_tensor::Tensor3, usize)],
    cfg: &TrainConfig,
    batch_size: usize,
    mask: Option<&crate::prune::Mask>,
) -> Vec<f32> {
    assert!(batch_size > 0, "batch size must be positive");
    let mut opt = Sgd::new(net, cfg.lr, cfg.momentum, cfg.weight_decay);
    if let Some(m) = mask {
        m.apply(params);
    }
    let mut losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        opt.lr = cfg.lr * cfg.lr_decay.powi(epoch as i32);
        let mut epoch_loss = 0.0;
        for batch in dataset.chunks(batch_size) {
            let mut acc: Option<Grads> = None;
            for (x, y) in batch {
                let trace = net.forward(params, x);
                let (loss, grad) = cross_entropy(trace.logits(), *y);
                epoch_loss += loss;
                let g = backward(net, params, &trace, &grad);
                match &mut acc {
                    None => acc = Some(g),
                    Some(a) => accumulate_grads(a, &g),
                }
            }
            if let Some(mut g) = acc {
                scale_grads(&mut g, 1.0 / batch.len() as f32);
                opt.step(params, &g, mask);
            }
        }
        losses.push(epoch_loss / dataset.len().max(1) as f32);
    }
    losses
}

/// Classification accuracy on a labelled dataset.
pub fn accuracy(net: &Network, params: &Params, dataset: &[(Tensor3, usize)]) -> f64 {
    if dataset.is_empty() {
        return 0.0;
    }
    let correct = dataset
        .iter()
        .filter(|(x, y)| net.forward(params, x).predicted_class() == *y)
        .count();
    correct as f64 / dataset.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net() -> Network {
        let mut b = NetworkBuilder::new(2, 6, 6);
        let x = b.input();
        let x = b.conv(x, 3, 3, 1);
        // Average pooling keeps the loss surface smooth for the numerical
        // gradient checks below (max pooling has kinks at argmax switches).
        let x = b.avg_pool(x, 2);
        let x = b.flatten(x);
        b.linear(x, 4);
        b.build()
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let (_, g) = cross_entropy(&[0.3, -0.2, 1.5], 1);
        assert!(g.iter().sum::<f32>().abs() < 1e-6);
        assert!(g[1] < 0.0);
    }

    #[test]
    fn full_network_gradients_match_numerical() {
        let net = tiny_net();
        let params = Params::init(&net, 17);
        let mut rng = StdRng::seed_from_u64(5);
        let mut x = hd_tensor::Tensor3::zeros(2, 6, 6);
        x.fill_uniform(&mut rng, -1.0, 1.0);
        let target = 2;

        let trace = net.forward(&params, &x);
        let (_, grad_logits) = cross_entropy(trace.logits(), target);
        let grads = backward(&net, &params, &trace, &grad_logits);

        // Check input gradient numerically (relevant to FGSM correctness).
        let eps = 2e-3f32;
        for idx in [0usize, 13, 35, 71] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = cross_entropy(net.forward(&params, &xp).logits(), target).0;
            let lm = cross_entropy(net.forward(&params, &xm).logits(), target).0;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.input.data()[idx];
            let tol = 2e-2f32.max(0.1 * numeric.abs());
            assert!(
                (numeric - analytic).abs() < tol,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn conv_weight_gradient_matches_numerical() {
        let net = tiny_net();
        let mut params = Params::init(&net, 23);
        let mut rng = StdRng::seed_from_u64(6);
        let mut x = hd_tensor::Tensor3::zeros(2, 6, 6);
        x.fill_uniform(&mut rng, -1.0, 1.0);
        let target = 0;

        let trace = net.forward(&params, &x);
        let (_, grad_logits) = cross_entropy(trace.logits(), target);
        let grads = backward(&net, &params, &trace, &grad_logits);
        let LayerGrads::Conv { w: gw, .. } = grads.layers[1].as_ref().unwrap() else {
            panic!("expected conv grads");
        };
        let gw = gw.clone();

        let eps = 1e-2f32;
        for idx in [0usize, 10, 26, 53] {
            let orig = params.conv_weights_mut(1).unwrap().data()[idx];
            params.conv_weights_mut(1).unwrap().data_mut()[idx] = orig + eps;
            let lp = cross_entropy(net.forward(&params, &x).logits(), target).0;
            params.conv_weights_mut(1).unwrap().data_mut()[idx] = orig - eps;
            let lm = cross_entropy(net.forward(&params, &x).logits(), target).0;
            params.conv_weights_mut(1).unwrap().data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gw.data()[idx]).abs() < 2e-2,
                "idx {idx}: numeric {numeric} vs analytic {}",
                gw.data()[idx]
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let net = tiny_net();
        let mut params = Params::init(&net, 31);
        let mut rng = StdRng::seed_from_u64(7);
        let dataset: Vec<(hd_tensor::Tensor3, usize)> = (0..16)
            .map(|i| {
                let mut t = hd_tensor::Tensor3::zeros(2, 6, 6);
                t.fill_uniform(&mut rng, 0.0, 1.0);
                // Class-correlated feature so the task is learnable.
                let class = i % 4;
                t.set(0, 0, class, 4.0);
                (t, class)
            })
            .collect();
        let losses = train(
            &net,
            &mut params,
            &dataset,
            &TrainConfig {
                epochs: 20,
                lr: 0.01,
                momentum: 0.9,
                weight_decay: 0.0,
                lr_decay: 1.0,
            },
            None,
        );
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.7),
            "loss did not drop: {losses:?}"
        );
        assert!(accuracy(&net, &params, &dataset) > 0.5);
    }

    #[test]
    fn batch_gradient_is_mean_of_sample_gradients() {
        let net = tiny_net();
        let params = Params::init(&net, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<(hd_tensor::Tensor3, usize)> = (0..3)
            .map(|i| {
                let mut t = hd_tensor::Tensor3::zeros(2, 6, 6);
                t.fill_uniform(&mut rng, -1.0, 1.0);
                (t, i % 4)
            })
            .collect();
        // Mean of per-sample gradients, built with the public helpers.
        let mut acc: Option<Grads> = None;
        for (x, y) in &samples {
            let trace = net.forward(&params, x);
            let (_, grad) = cross_entropy(trace.logits(), *y);
            let g = backward(&net, &params, &trace, &grad);
            match &mut acc {
                None => acc = Some(g),
                Some(a) => accumulate_grads(a, &g),
            }
        }
        let mut mean = acc.unwrap();
        scale_grads(&mut mean, 1.0 / samples.len() as f32);
        // Spot-check against a manual average on the conv weights.
        let manual: Vec<f32> = {
            let mut sums: Option<Vec<f32>> = None;
            for (x, y) in &samples {
                let trace = net.forward(&params, x);
                let (_, grad) = cross_entropy(trace.logits(), *y);
                let g = backward(&net, &params, &trace, &grad);
                let LayerGrads::Conv { w, .. } = g.layers[1].as_ref().unwrap() else {
                    panic!()
                };
                match &mut sums {
                    None => sums = Some(w.data().to_vec()),
                    Some(s) => {
                        for (a, b) in s.iter_mut().zip(w.data()) {
                            *a += b;
                        }
                    }
                }
            }
            sums.unwrap()
                .iter()
                .map(|v| v / samples.len() as f32)
                .collect()
        };
        let LayerGrads::Conv { w, .. } = mean.layers[1].as_ref().unwrap() else {
            panic!()
        };
        for (a, b) in w.data().iter().zip(&manual) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn batched_training_learns() {
        let net = tiny_net();
        let mut params = Params::init(&net, 31);
        let mut rng = StdRng::seed_from_u64(7);
        let dataset: Vec<(hd_tensor::Tensor3, usize)> = (0..16)
            .map(|i| {
                let mut t = hd_tensor::Tensor3::zeros(2, 6, 6);
                t.fill_uniform(&mut rng, 0.0, 1.0);
                let class = i % 4;
                t.set(0, 0, class, 4.0);
                (t, class)
            })
            .collect();
        let losses = train_batched(
            &net,
            &mut params,
            &dataset,
            &TrainConfig {
                epochs: 25,
                lr: 0.05, // batching tolerates the larger step
                momentum: 0.9,
                weight_decay: 0.0,
                lr_decay: 1.0,
            },
            4,
            None,
        );
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.7),
            "loss did not drop: {losses:?}"
        );
        assert!(accuracy(&net, &params, &dataset) > 0.5);
    }

    #[test]
    fn residual_backward_runs() {
        let mut b = NetworkBuilder::new(2, 4, 4);
        let x = b.input();
        let y = b.conv(x, 2, 3, 1);
        let z = b.add(x, y);
        let g = b.global_avg_pool(z);
        b.linear(g, 3);
        let net = b.build();
        let params = Params::init(&net, 2);
        let input = hd_tensor::Tensor3::full(2, 4, 4, 0.3);
        let trace = net.forward(&params, &input);
        let (_, gl) = cross_entropy(trace.logits(), 1);
        let grads = backward(&net, &params, &trace, &gl);
        // Input gets gradient both through the conv path and the skip path.
        assert!(grads.input.data().iter().any(|&v| v != 0.0));
    }
}
