//! Adversarial-example generation and black-box transfer evaluation.
//!
//! Implements the paper's follow-up-attack evaluation (§8.3, Figures 5–6):
//!
//! * [`fgsm`] — the Fast Gradient Sign Method (Goodfellow et al. 2015),
//! * [`bim`] — the Basic Iterative Method (Kurakin et al. 2017), the
//!   paper's attack of choice (via TorchAttacks),
//! * [`targeted_transfer_rate`] — craft *targeted* adversarial examples on
//!   a surrogate network (white box) and measure how often they fool the
//!   *victim* network into predicting the target label (black box).
//!
//! Target selection follows the paper's hardest heuristic: the victim's
//! least-likely label for each clean input.

use hd_dnn::graph::{Network, Params};
use hd_dnn::train::{backward, cross_entropy};
use hd_tensor::Tensor3;

/// Pixel-space budget expressed like the paper: epsilon out of 255.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Epsilon {
    /// Maximum per-pixel perturbation numerator (e.g. 32 for Fig. 5).
    pub over_255: f32,
}

impl Epsilon {
    /// The Figure-5 budget.
    pub fn fig5() -> Self {
        Epsilon { over_255: 32.0 }
    }

    /// The Figure-6 (imperceptible) budget.
    pub fn fig6() -> Self {
        Epsilon { over_255: 16.0 }
    }

    /// Budget in the `[0, 1]` pixel domain our tensors use.
    pub fn unit(&self) -> f32 {
        self.over_255 / 255.0
    }
}

/// Crafting configuration for [`bim`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BimConfig {
    /// Perturbation budget.
    pub epsilon: Epsilon,
    /// Per-step size in the unit pixel domain.
    pub alpha: f32,
    /// Iterations.
    pub steps: usize,
}

impl BimConfig {
    /// The paper-style default for a budget: 20 iterations with a step of
    /// `0.15 * eps` (targeted attacks need finer steps than the one-shot
    /// FGSM rule of thumb).
    pub fn for_epsilon(epsilon: Epsilon) -> Self {
        BimConfig {
            epsilon,
            alpha: epsilon.unit() * 0.15,
            steps: 20,
        }
    }
}

/// Gradient of the cross-entropy loss toward `target` with respect to the
/// input image, evaluated on `(net, params)`.
fn input_gradient(net: &Network, params: &Params, image: &Tensor3, target: usize) -> Tensor3 {
    let trace = net.forward(params, image);
    let (_, grad_logits) = cross_entropy(trace.logits(), target);
    backward(net, params, &trace, &grad_logits).input
}

/// One-step targeted FGSM: move *against* the gradient of the loss toward
/// the target class (descending the target loss).
pub fn fgsm(
    net: &Network,
    params: &Params,
    image: &Tensor3,
    target: usize,
    epsilon: Epsilon,
) -> Tensor3 {
    let grad = input_gradient(net, params, image, target);
    let eps = epsilon.unit();
    let mut adv = image.clone();
    for (v, g) in adv.data_mut().iter_mut().zip(grad.data()) {
        *v = (*v - eps * g.signum()).clamp(0.0, 1.0);
    }
    adv
}

/// Targeted BIM (iterative FGSM with per-step clipping to the epsilon ball
/// and the valid pixel range).
pub fn bim(
    net: &Network,
    params: &Params,
    image: &Tensor3,
    target: usize,
    cfg: &BimConfig,
) -> Tensor3 {
    let eps = cfg.epsilon.unit();
    let mut adv = image.clone();
    for _ in 0..cfg.steps {
        let grad = input_gradient(net, params, &adv, target);
        for i in 0..adv.data().len() {
            let stepped = adv.data()[i] - cfg.alpha * grad.data()[i].signum();
            let lo = (image.data()[i] - eps).max(0.0);
            let hi = (image.data()[i] + eps).min(1.0);
            adv.data_mut()[i] = stepped.clamp(lo, hi);
        }
    }
    adv
}

/// Momentum Iterative Method (MI-FGSM, Dong et al. 2018): BIM with an
/// L1-normalized gradient momentum accumulator. The momentum term smooths
/// per-step gradient noise and is the standard booster for *transfer*
/// attacks — useful when the surrogate only approximates the victim.
pub fn mim(
    net: &Network,
    params: &Params,
    image: &Tensor3,
    target: usize,
    cfg: &BimConfig,
    decay: f32,
) -> Tensor3 {
    let eps = cfg.epsilon.unit();
    let mut adv = image.clone();
    let mut momentum = vec![0.0f32; image.data().len()];
    for _ in 0..cfg.steps {
        let grad = input_gradient(net, params, &adv, target);
        // hd-lint: allow(float-reduction-order) -- accumulates over the gradient slice in its storage order, which is deterministic per input
        let l1: f32 = grad.data().iter().map(|v| v.abs()).sum::<f32>().max(1e-12);
        for (m, g) in momentum.iter_mut().zip(grad.data()) {
            *m = decay * *m + g / l1;
        }
        #[allow(clippy::needless_range_loop)] // index-parallel numeric kernel
        for i in 0..adv.data().len() {
            let stepped = adv.data()[i] - cfg.alpha * momentum[i].signum();
            let lo = (image.data()[i] - eps).max(0.0);
            let hi = (image.data()[i] + eps).min(1.0);
            adv.data_mut()[i] = stepped.clamp(lo, hi);
        }
    }
    adv
}

/// The victim's least-likely label for an input (paper's target heuristic).
pub fn least_likely_label(net: &Network, params: &Params, image: &Tensor3) -> usize {
    let logits = net.forward(params, image).logits().to_vec();
    logits
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Result of a transfer evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferResult {
    /// Inputs evaluated.
    pub total: usize,
    /// Adversarial examples that made the victim output the target label.
    pub hits: usize,
}

impl TransferResult {
    /// Targeted success rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// Black-box targeted transfer: craft on the surrogate, test on the victim.
///
/// For each image, the target is the *victim's* least-likely label (the
/// attacker can query labels black-box); the example is crafted white-box
/// on the surrogate with BIM and scored as a hit iff the victim then
/// predicts exactly the target.
pub fn targeted_transfer_rate(
    surrogate: (&Network, &Params),
    victim: (&Network, &Params),
    images: &[Tensor3],
    cfg: &BimConfig,
) -> TransferResult {
    let mut hits = 0;
    for image in images {
        let target = least_likely_label(victim.0, victim.1, image);
        let adv = bim(surrogate.0, surrogate.1, image, target, cfg);
        if victim.0.forward(victim.1, &adv).predicted_class() == target {
            hits += 1;
        }
    }
    TransferResult {
        total: images.len(),
        hits,
    }
}

/// Black-box *untargeted* transfer with the same crafting procedure: the
/// example still descends toward the victim's least-likely label on the
/// surrogate, but scores a hit whenever the victim's prediction flips away
/// from its clean prediction. At small model/data scales the targeted
/// metric floors near zero for every surrogate; this laxer metric still
/// resolves the architecture-similarity ordering the paper reports.
pub fn untargeted_transfer_rate(
    surrogate: (&Network, &Params),
    victim: (&Network, &Params),
    images: &[Tensor3],
    cfg: &BimConfig,
) -> TransferResult {
    let mut hits = 0;
    for image in images {
        let clean = victim.0.forward(victim.1, image).predicted_class();
        let target = least_likely_label(victim.0, victim.1, image);
        let adv = bim(surrogate.0, surrogate.1, image, target, cfg);
        if victim.0.forward(victim.1, &adv).predicted_class() != clean {
            hits += 1;
        }
    }
    TransferResult {
        total: images.len(),
        hits,
    }
}

/// White-box targeted success on a single model (upper-bound sanity line).
pub fn whitebox_success_rate(
    net: &Network,
    params: &Params,
    images: &[Tensor3],
    cfg: &BimConfig,
) -> TransferResult {
    targeted_transfer_rate((net, params), (net, params), images, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_dnn::data::SyntheticImages;
    use hd_dnn::graph::NetworkBuilder;
    use hd_dnn::train::{train, TrainConfig};

    fn trained_pair(seed: u64) -> (Network, Params, Vec<Tensor3>) {
        let gen = SyntheticImages::tiny(9);
        let train_set = gen.dataset(48, 0);
        let mut b = NetworkBuilder::new(gen.channels, gen.height, gen.width);
        let x = b.input();
        let x = b.conv(x, 8, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.flatten(x);
        b.linear(x, gen.classes);
        let net = b.build();
        let mut params = Params::init(&net, seed);
        train(
            &net,
            &mut params,
            &train_set,
            &TrainConfig {
                epochs: 12,
                lr: 0.01,
                momentum: 0.9,
                weight_decay: 0.0,
                lr_decay: 1.0,
            },
            None,
        );
        let images: Vec<Tensor3> = gen.dataset(12, 5_000).into_iter().map(|(x, _)| x).collect();
        (net, params, images)
    }

    #[test]
    fn epsilon_budgets() {
        assert!((Epsilon::fig5().unit() - 32.0 / 255.0).abs() < 1e-6);
        assert!((Epsilon::fig6().unit() - 16.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn fgsm_respects_epsilon_ball_and_pixel_range() {
        let (net, params, images) = trained_pair(1);
        let eps = Epsilon { over_255: 16.0 };
        let adv = fgsm(&net, &params, &images[0], 0, eps);
        for (a, o) in adv.data().iter().zip(images[0].data()) {
            assert!((a - o).abs() <= eps.unit() + 1e-6);
            assert!((0.0..=1.0).contains(a));
        }
    }

    #[test]
    fn bim_respects_epsilon_ball() {
        let (net, params, images) = trained_pair(2);
        let cfg = BimConfig::for_epsilon(Epsilon::fig5());
        let adv = bim(&net, &params, &images[0], 1, &cfg);
        let eps = cfg.epsilon.unit();
        for (a, o) in adv.data().iter().zip(images[0].data()) {
            assert!((a - o).abs() <= eps + 1e-5);
            assert!((0.0..=1.0).contains(a));
        }
    }

    #[test]
    fn whitebox_targeted_attack_succeeds_often() {
        let (net, params, images) = trained_pair(3);
        let cfg = BimConfig {
            epsilon: Epsilon { over_255: 64.0 },
            alpha: 64.0 / 255.0 / 4.0,
            steps: 10,
        };
        let res = whitebox_success_rate(&net, &params, &images, &cfg);
        assert!(
            res.rate() > 0.5,
            "white-box targeted rate {} too low",
            res.rate()
        );
    }

    #[test]
    fn bim_moves_loss_toward_target() {
        let (net, params, images) = trained_pair(4);
        let cfg = BimConfig::for_epsilon(Epsilon::fig5());
        let img = &images[0];
        let target = least_likely_label(&net, &params, img);
        let before = cross_entropy(net.forward(&params, img).logits(), target).0;
        let adv = bim(&net, &params, img, target, &cfg);
        let after = cross_entropy(net.forward(&params, &adv).logits(), target).0;
        assert!(
            after < before,
            "target loss did not drop: {before} -> {after}"
        );
    }

    #[test]
    fn same_architecture_transfers_better_than_wildly_different() {
        // Same-architecture surrogate (different seed) should transfer at
        // least as well as an untrained surrogate.
        let (net, params, images) = trained_pair(5);
        let (net2, params2, _) = trained_pair(6);
        let untrained = Params::init(&net2, 777);
        let cfg = BimConfig {
            epsilon: Epsilon { over_255: 64.0 },
            alpha: 64.0 / 255.0 / 4.0,
            steps: 10,
        };
        let good = targeted_transfer_rate((&net2, &params2), (&net, &params), &images, &cfg);
        let bad = targeted_transfer_rate((&net2, &untrained), (&net, &params), &images, &cfg);
        assert!(
            good.rate() >= bad.rate(),
            "trained surrogate {} < untrained {}",
            good.rate(),
            bad.rate()
        );
    }

    #[test]
    fn mim_respects_epsilon_ball_and_reduces_target_loss() {
        let (net, params, images) = trained_pair(7);
        let cfg = BimConfig::for_epsilon(Epsilon::fig5());
        let img = &images[0];
        let target = least_likely_label(&net, &params, img);
        let adv = mim(&net, &params, img, target, &cfg, 1.0);
        let eps = cfg.epsilon.unit();
        for (a, o) in adv.data().iter().zip(img.data()) {
            assert!((a - o).abs() <= eps + 1e-5);
            assert!((0.0..=1.0).contains(a));
        }
        let before = cross_entropy(net.forward(&params, img).logits(), target).0;
        let after = cross_entropy(net.forward(&params, &adv).logits(), target).0;
        assert!(
            after < before,
            "target loss did not drop: {before} -> {after}"
        );
    }

    #[test]
    fn transfer_result_rate() {
        let r = TransferResult { total: 8, hits: 2 };
        assert!((r.rate() - 0.25).abs() < 1e-12);
        assert_eq!(TransferResult { total: 0, hits: 0 }.rate(), 0.0);
    }
}
