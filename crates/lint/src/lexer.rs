//! A hand-rolled Rust lexer: just enough token structure for the rule
//! engine — identifiers, punctuation, literals, and comments with line
//! positions — in the same vendored-parser spirit as `hd_obs::json`.
//!
//! The lexer is deliberately forgiving: it never fails, and anything it
//! cannot classify becomes a single-character [`TokenKind::Punct`]. Rules
//! match short token sequences (`.` `unwrap` `(`), so a rare misparse can
//! only cost a match, never a crash or a cascade.

/// Classification of one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `as`, `fn`, `r#type`).
    Ident,
    /// Numeric literal (integers and floats, any base).
    Number,
    /// String literal (plain, raw, byte, raw-byte). Contents dropped.
    Str,
    /// Character or byte-character literal. Contents dropped.
    Char,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Any single other character (`.`, `:`, `!`, braces, operators).
    Punct,
}

/// One token with its source position (1-indexed line and column) and its
/// byte span in the original source.
#[derive(Clone, Debug)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Token text for idents and puncts; empty for literals.
    pub text: String,
    /// 1-indexed source line.
    pub line: u32,
    /// 1-indexed source column (byte offset within the line).
    pub col: u32,
    /// Byte offset of the token's first byte in the source.
    pub start: usize,
    /// Byte offset one past the token's last byte (so `src[start..end]`
    /// is the token's exact source text, literals included).
    pub end: usize,
}

/// One comment (line `//...` or block `/* ... */`) with its start line.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` markers, trimmed.
    pub text: String,
    /// 1-indexed line the comment starts on.
    pub line: u32,
}

/// The full lexing result: code tokens and comments, both in source order.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// Comments, including doc comments.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) -> (usize, usize) {
        let start = self.pos;
        while self.peek(0).map(&pred).unwrap_or(false) {
            self.bump();
        }
        (start, self.pos)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Never fails.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        let tok_start = cur.pos;
        match b {
            b if b.is_ascii_whitespace() => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let (start, end) = cur.eat_while(|b| b != b'\n');
                out.comments.push(Comment {
                    text: text_of(src, start, end)
                        .trim_start_matches('/')
                        .trim_start_matches('!')
                        .trim()
                        .to_string(),
                    line,
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: text_of(src, start, cur.pos)
                        .trim_start_matches("/*")
                        .trim_end_matches("*/")
                        .trim()
                        .to_string(),
                    line,
                });
            }
            b'r' | b'b' if starts_string(&cur) => {
                skip_string_like(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line,
                    col,
                    start: tok_start,
                    end: cur.pos,
                });
            }
            b'"' => {
                skip_plain_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line,
                    col,
                    start: tok_start,
                    end: cur.pos,
                });
            }
            b'\'' => {
                let kind = skip_char_or_lifetime(&mut cur);
                out.tokens.push(Token {
                    kind,
                    text: String::new(),
                    line,
                    col,
                    start: tok_start,
                    end: cur.pos,
                });
            }
            b if is_ident_start(b) => {
                let (start, end) = cur.eat_while(is_ident_continue);
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: text_of(src, start, end).to_string(),
                    line,
                    col,
                    start,
                    end,
                });
            }
            b if b.is_ascii_digit() => {
                let start = cur.pos;
                cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
                // Float continuation: `1.5`, `1.5e-3` — but not `0..n`.
                if cur.peek(0) == Some(b'.')
                    && cur.peek(1).map(|b| b.is_ascii_digit()) == Some(true)
                {
                    cur.bump();
                    cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
                    // Exponent sign: `1.5e-3`.
                    if cur.peek(0) == Some(b'-') || cur.peek(0) == Some(b'+') {
                        let prev = src.as_bytes().get(cur.pos.wrapping_sub(1)).copied();
                        if prev == Some(b'e') || prev == Some(b'E') {
                            cur.bump();
                            cur.eat_while(|b| b.is_ascii_digit());
                        }
                    }
                }
                let end = cur.pos;
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: text_of(src, start, end).to_string(),
                    line,
                    col,
                    start,
                    end,
                });
            }
            other => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (other as char).to_string(),
                    line,
                    col,
                    start: tok_start,
                    end: cur.pos,
                });
            }
        }
    }
    out
}

fn text_of(src: &str, start: usize, end: usize) -> &str {
    src.get(start..end).unwrap_or("")
}

/// Is the cursor (on `r` or `b`) at the start of a string-like literal,
/// rather than a plain identifier? Raw identifiers (`r#type`) return false.
fn starts_string(cur: &Cursor<'_>) -> bool {
    match (cur.peek(0), cur.peek(1)) {
        (Some(b'r'), Some(b'"')) => true,
        (Some(b'r'), Some(b'#')) => {
            // r#"..." is a raw string; r#ident is a raw identifier.
            let mut i = 1;
            while cur.peek(i) == Some(b'#') {
                i += 1;
            }
            cur.peek(i) == Some(b'"')
        }
        (Some(b'b'), Some(b'"')) | (Some(b'b'), Some(b'\'')) => true,
        (Some(b'b'), Some(b'r')) => match cur.peek(2) {
            Some(b'"') => true,
            Some(b'#') => {
                let mut i = 2;
                while cur.peek(i) == Some(b'#') {
                    i += 1;
                }
                cur.peek(i) == Some(b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Skips a string-like literal starting at `r`/`b` (raw, byte, raw-byte
/// strings and byte chars).
fn skip_string_like(cur: &mut Cursor<'_>) {
    // Consume the prefix letters.
    while matches!(cur.peek(0), Some(b'r') | Some(b'b')) {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    match cur.peek(0) {
        Some(b'"') => {
            cur.bump();
            if hashes == 0 {
                // Non-raw (b"..."): escapes active only without hashes and
                // without an `r` in the prefix — but since we no longer know
                // the prefix, treat 0-hash as escape-aware; raw strings
                // rarely contain backslash-quote sequences that would differ.
                skip_until_quote_with_escapes(cur);
            } else {
                // Raw: ends at `"` followed by `hashes` hashes.
                loop {
                    match cur.bump() {
                        None => break,
                        Some(b'"') => {
                            let mut ok = true;
                            for i in 0..hashes {
                                if cur.peek(i) != Some(b'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                for _ in 0..hashes {
                                    cur.bump();
                                }
                                break;
                            }
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        Some(b'\'') => {
            // Byte char b'x'.
            cur.bump();
            if cur.peek(0) == Some(b'\\') {
                cur.bump();
                cur.bump();
            } else {
                cur.bump();
            }
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
            }
        }
        _ => {}
    }
}

fn skip_plain_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    skip_until_quote_with_escapes(cur);
}

fn skip_until_quote_with_escapes(cur: &mut Cursor<'_>) {
    loop {
        match cur.bump() {
            None | Some(b'"') => break,
            Some(b'\\') => {
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

/// Disambiguates `'a` (lifetime) from `'x'` (char literal) and consumes it.
fn skip_char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // the opening '
    match cur.peek(0) {
        Some(b'\\') => {
            // Escaped char literal: '\n', '\'', '\u{...}'.
            cur.bump();
            loop {
                match cur.bump() {
                    None | Some(b'\'') => break,
                    Some(_) => {}
                }
            }
            TokenKind::Char
        }
        Some(_) if cur.peek(1) == Some(b'\'') => {
            cur.bump();
            cur.bump();
            TokenKind::Char
        }
        Some(b) if is_ident_start(b) => {
            cur.eat_while(is_ident_continue);
            TokenKind::Lifetime
        }
        _ => TokenKind::Punct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens_with_positions() {
        let l = lex("let x = a.unwrap();\n");
        let texts: Vec<_> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]
        );
        assert!(l.tokens.iter().all(|t| t.line == 1));
        let unwrap = &l.tokens[5];
        assert_eq!(unwrap.col, 11);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("a(); // hd-lint: allow(no-panic) -- reason\nb();");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.starts_with("hd-lint:"));
        assert!(idents("// unwrap\nx").iter().all(|t| t != "unwrap"));
    }

    #[test]
    fn block_comments_nest() {
        let l = lex("/* outer /* inner */ still */ x");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a */ real"), vec!["real"]);
        assert_eq!(l.tokens.len(), 1);
    }

    #[test]
    fn strings_hide_their_contents() {
        // None of the panic-words inside literals produce ident tokens.
        let src = r##"let a = "panic! unwrap()"; let b = r#"expect("x")"#; let c = b"panic";"##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "panic" || i == "unwrap" || i == "expect"));
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        // r#type lexes as `r` + `#` + `type`? No: starts_string rejects it,
        // so the ident path consumes `r`, then `#` punct, then `type`.
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_and_ranges() {
        let l = lex("for i in 0..10 { let f = 1.5e-3; let h = 0xFF_u32; }");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3", "0xFF_u32"]);
        // The range `..` survives as two puncts.
        let dots = l.tokens.iter().filter(|t| t.text == ".").count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn lexer_never_fails_on_garbage() {
        for src in [
            "\"unterminated",
            "'",
            "r#\"open",
            "/* open",
            "\u{1F600} emoji",
        ] {
            let _ = lex(src);
        }
    }
}
