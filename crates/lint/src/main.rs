//! `hd-lint` CLI: workspace source lints plus the static model/config
//! verifier, with text or stable-schema JSON output.
//!
//! ```text
//! hd-lint --workspace --deny            # lint the whole tree, exit 1 on violations
//! hd-lint crates/dnn/src/graph.rs       # lint specific files
//! hd-lint --workspace -o lint.json      # machine-readable report (hd-lint/v2)
//! hd-lint --symbols                     # dump the workspace symbol index
//! hd-lint --models                      # verify zoo models against accelerator presets
//! ```

use hd_lint::{find_workspace_root, lint_paths, lint_workspace, Report};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
hd-lint: static analysis for the HuffDuff workspace

USAGE:
    hd-lint [OPTIONS] [PATHS...]

OPTIONS:
    --workspace     lint every workspace .rs file (default when no PATHS given)
    --deny          exit with status 1 if any violation is found
    --models        run the static model/config verifier over the model zoo
                    x accelerator presets instead of source lints
    --symbols       print the workspace symbol index (per-crate counts plus
                    every recovered item) instead of linting
    --allows        include the accepted-suppression allowlist in text output
    -o <FILE>       also write the report as JSON (schema hd-lint/v2)
    -h, --help      print this help

PATHS are workspace-relative .rs files; the workspace root is located by
walking up from the current directory.";

struct Cli {
    workspace: bool,
    deny: bool,
    models: bool,
    symbols: bool,
    allows: bool,
    json_out: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_cli() -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        workspace: false,
        deny: false,
        models: false,
        symbols: false,
        allows: false,
        json_out: None,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--workspace" => cli.workspace = true,
            "--deny" => cli.deny = true,
            "--models" => cli.models = true,
            "--symbols" => cli.symbols = true,
            "--allows" => cli.allows = true,
            "-o" | "--output" => {
                let path = args
                    .next()
                    .ok_or_else(|| format!("{arg} requires a file path"))?;
                cli.json_out = Some(PathBuf::from(path));
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` (see --help)"));
            }
            path => cli.paths.push(PathBuf::from(path)),
        }
    }
    if cli.paths.is_empty() {
        cli.workspace = true;
    }
    Ok(Some(cli))
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hd-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if cli.models {
        return verify_models();
    }
    if cli.symbols {
        return dump_symbols();
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("hd-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!(
            "hd-lint: no workspace root (Cargo.toml + crates/) above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };

    let report = if cli.workspace && cli.paths.is_empty() {
        lint_workspace(&root)
    } else {
        lint_paths(&root, &cli.paths)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hd-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.to_text(cli.allows));
    if let Some(path) = &cli.json_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("hd-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    exit_for(&report, cli.deny)
}

fn exit_for(report: &Report, deny: bool) -> ExitCode {
    if deny && !report.is_clean() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `--symbols`: scan the workspace, build the symbol index, and print it.
fn dump_symbols() -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("hd-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!(
            "hd-lint: no workspace root (Cargo.toml + crates/) above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };
    match hd_lint::symbol_index(&root) {
        Ok(idx) => {
            print!("{}", hd_lint::symbols::render(&idx));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hd-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// `--models`: run `hd_dnn::verify` over every zoo victim under every
/// accelerator preset's limits, printing each diagnostic.
fn verify_models() -> ExitCode {
    use hd_accel::AccelConfig;
    use hd_dnn::{zoo, Params};

    type MakeNet = fn(usize) -> hd_dnn::Network;
    type MakeCfg = fn() -> AccelConfig;
    let models: [(&str, MakeNet); 4] = [
        ("vgg_s", zoo::vgg_s),
        ("resnet18", zoo::resnet18),
        ("alexnet", zoo::alexnet),
        ("mobilenet_v2", zoo::mobilenet_v2),
    ];
    let presets: [(&str, MakeCfg); 2] = [
        ("eyeriss_v2", AccelConfig::eyeriss_v2),
        ("scnn_like", AccelConfig::scnn_like),
    ];

    let mut errors = 0usize;
    let mut checked = 0usize;
    for (mname, make_net) in models {
        let net = make_net(10);
        let params = Params::init(&net, 1);
        for (pname, make_cfg) in presets {
            let cfg = make_cfg();
            let diags = hd_dnn::verify::verify(&net, Some(&params), &cfg.verify_limits());
            checked += 1;
            if diags.is_empty() {
                println!("ok   {mname} x {pname}");
            } else {
                for d in &diags {
                    println!("DIAG {mname} x {pname}: {d}");
                }
                errors += diags
                    .iter()
                    .filter(|d| d.severity == hd_dnn::verify::Severity::Error)
                    .count();
            }
        }
    }
    println!("hd-lint --models: {checked} model x preset pairs checked, {errors} error(s)");
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
