//! The intra-crate call graph: for every parsed `fn` body, the calls that
//! resolve to another function or method declared in the *same* crate
//! (cross-crate calls are out of scope — the lint runs per workspace
//! checkout and the determinism rules only need same-crate reachability).
//!
//! Resolution is name-based over the symbol index: a call site `name(...)`
//! or `.name(...)` inside crate `k` produces an edge when `(k, name)` is a
//! declared fn/method. That is deliberately approximate (no type
//! inference), but the forgiving direction: an extra edge can at worst ask
//! for one more `hd-lint: allow`, a missing edge only weakens a heuristic
//! the dynamic invariance suites back-stop anyway.

use crate::lexer::TokenKind;
use crate::parser::{Item, ItemKind};
use crate::symbols::{crate_of, FileUnit, SymbolIndex};
use std::collections::BTreeSet;

/// One resolved call edge.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CallEdge {
    /// The crate both endpoints live in.
    pub krate: String,
    /// Calling function (or method) name.
    pub caller: String,
    /// Called function (or method) name.
    pub callee: String,
    /// File of the call site.
    pub file: String,
    /// 1-indexed line of the call site.
    pub line: u32,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// All edges, deduplicated per (crate, caller, callee) pair and sorted.
    pub edges: Vec<CallEdge>,
}

impl CallGraph {
    /// Builds the graph over every analyzed file, resolving names against
    /// `idx`.
    pub fn build(files: &[FileUnit], idx: &SymbolIndex) -> CallGraph {
        let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
        let mut edges = Vec::new();
        for fu in files {
            let krate = crate_of(&fu.rel);
            for it in fu.parsed.walk() {
                if it.kind != ItemKind::Fn {
                    continue;
                }
                let Some(caller) = it.name.as_deref() else {
                    continue;
                };
                for (callee, line) in calls_in(it, fu, krate, idx) {
                    if seen.insert((krate.to_string(), caller.to_string(), callee.clone())) {
                        edges.push(CallEdge {
                            krate: krate.to_string(),
                            caller: caller.to_string(),
                            callee,
                            file: fu.rel.clone(),
                            line,
                        });
                    }
                }
            }
        }
        edges.sort();
        CallGraph { edges }
    }

    /// Number of edges (the JSON summary counter).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges were resolved.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The set of functions in `krate` from which `targets` are reachable
    /// (callers of targets, callers of those callers, ... to a fixpoint).
    /// Includes the targets themselves when they are declared in `krate`.
    pub fn reaching(&self, krate: &str, targets: &BTreeSet<String>) -> BTreeSet<String> {
        let mut reach: BTreeSet<String> = targets.clone();
        loop {
            let before = reach.len();
            for e in &self.edges {
                if e.krate == krate && reach.contains(&e.callee) {
                    reach.insert(e.caller.clone());
                }
            }
            if reach.len() == before {
                return reach;
            }
        }
    }
}

/// Call sites inside one fn body that resolve within `krate`: yields
/// `(callee, line)` pairs in source order.
fn calls_in(
    it: &Item,
    fu: &FileUnit,
    krate: &str,
    idx: &SymbolIndex,
) -> Vec<(String, u32)> {
    let Some((start, end)) = it.body else {
        return Vec::new();
    };
    let t = &fu.lexed.tokens;
    let mut out = Vec::new();
    let caller = it.name.as_deref().unwrap_or("");
    for i in start..end.min(t.len()) {
        if t[i].kind != TokenKind::Ident {
            continue;
        }
        let name = t[i].text.as_str();
        // `name(` or `name::<...>(` — a direct or method call. Skip macro
        // invocations (`name!(...)`), definitions (`fn name(`), and
        // self-recursion (a self-loop adds no reachability information).
        let next = t.get(i + 1).map(|n| n.text.as_str()).unwrap_or("");
        let is_call = next == "("
            || (next == ":"
                && t.get(i + 2).map(|n| n.text.as_str()) == Some(":")
                && t.get(i + 3).map(|n| n.text.as_str()) == Some("<"));
        if !is_call || name == caller {
            continue;
        }
        if i > start && t[i - 1].text == "fn" {
            continue;
        }
        if idx.is_fn_in(krate, name) {
            out.push((name.to_string(), t[i].line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolIndex;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let units: Vec<FileUnit> = files
            .iter()
            .map(|(rel, src)| FileUnit::analyze(rel, src))
            .collect();
        let idx = SymbolIndex::build(&units);
        CallGraph::build(&units, &idx)
    }

    #[test]
    fn direct_and_method_calls_resolve_within_the_crate() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            "fn leaf() {}\n\
             struct S;\n\
             impl S { fn step(&self) { leaf(); } }\n\
             fn run(s: &S) { s.step(); }\n",
        )]);
        let pairs: Vec<(&str, &str)> = g
            .edges
            .iter()
            .map(|e| (e.caller.as_str(), e.callee.as_str()))
            .collect();
        assert_eq!(pairs, vec![("run", "step"), ("step", "leaf")]);
    }

    #[test]
    fn cross_crate_and_unknown_calls_produce_no_edges() {
        let g = graph_of(&[
            ("crates/a/src/lib.rs", "pub fn helper() {}"),
            (
                "crates/b/src/lib.rs",
                "fn local() { helper(); println!(\"x\"); unknown_fn(); }",
            ),
        ]);
        assert!(g.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn edges_resolve_across_files_of_the_same_crate() {
        let g = graph_of(&[
            ("crates/core/src/a.rs", "pub fn observe_all() {}"),
            (
                "crates/core/src/b.rs",
                "pub fn drive() { observe_all(); }",
            ),
        ]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.edges[0].caller, "drive");
        assert_eq!(g.edges[0].callee, "observe_all");
        assert_eq!(g.edges[0].file, "crates/core/src/b.rs");
    }

    #[test]
    fn reaching_closes_over_transitive_callers() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            "fn sink() {}\nfn mid() { sink(); }\nfn top() { mid(); }\nfn unrelated() {}\n",
        )]);
        let targets: BTreeSet<String> = ["sink".to_string()].into();
        let reach = g.reaching("core", &targets);
        let names: Vec<&str> = reach.iter().map(String::as_str).collect();
        assert_eq!(names, vec!["mid", "sink", "top"]);
    }

    #[test]
    fn macro_invocations_and_recursion_are_skipped() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            "fn rec(n: u32) { if n > 0 { rec(n - 1); } assert!(n < 10); }\nfn assert() {}\n",
        )]);
        assert!(g.is_empty(), "{:?}", g.edges);
    }
}
