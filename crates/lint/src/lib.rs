//! `hd-lint`: self-contained static analysis for the HuffDuff workspace.
//!
//! Three layers:
//!
//! * **Source lints** ([`rules`]) — a hand-rolled Rust lexer ([`lexer`])
//!   plus a token-sequence rule engine enforcing the project invariants
//!   (no panics in library crates, no wall-clock reads outside `hd-obs`,
//!   no bare `thread::spawn`, no lossy `as`-casts in byte accounting, no
//!   uses of deprecated items), with `// hd-lint: allow(rule) -- reason`
//!   suppressions reported exhaustively.
//! * **Semantic analysis** ([`parser`], [`symbols`], [`callgraph`],
//!   [`semantic`]) — a forgiving item parser over the same lexer feeds a
//!   workspace symbol index and intra-crate call graph, powering the
//!   concurrency/determinism rule pack (`atomic-ordering`,
//!   `lock-discipline`, `unordered-iter`, `float-reduction-order`).
//! * **Semantic verifier** — `hd_dnn::verify`, re-driven by the binary's
//!   `--models` mode over the model zoo × accelerator presets.
//!
//! The crate is intentionally dependency-free on the lint path so it can
//! lint the workspace that builds it.

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;
pub mod symbols;

use rules::{collect_deprecated, lint_unit, Allow, DeprecatedIndex, Violation};
use semantic::Workspace;
use symbols::FileUnit;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// JSON schema identifier emitted by [`Report::to_json`].
pub const JSON_SCHEMA: &str = "hd-lint/v2";

/// Aggregated lint result over a set of files.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Named items the workspace symbol index recovered.
    pub symbols: usize,
    /// Same-crate call edges the call graph resolved.
    pub call_edges: usize,
    /// All violations, ordered by (file, line, rule, col).
    pub violations: Vec<Violation>,
    /// All accepted suppressions, ordered by (file, line).
    pub allows: Vec<Allow>,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable report; `show_allows` appends the allowlist section.
    pub fn to_text(&self, show_allows: bool) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{v}");
        }
        if show_allows && !self.allows.is_empty() {
            let _ = writeln!(out, "accepted suppressions ({}):", self.allows.len());
            for a in &self.allows {
                let _ = writeln!(out, "  {a}");
            }
        }
        let _ = writeln!(
            out,
            "hd-lint: {} file(s) scanned, {} violation(s), {} allow(s)",
            self.files_scanned,
            self.violations.len(),
            self.allows.len()
        );
        out
    }

    /// Stable-schema JSON (`hd-lint/v2`), parseable by `hd_obs::json`.
    /// Byte-stable for a given tree: inputs are sorted and the violation
    /// order is pinned to (file, line, rule, col).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(JSON_SCHEMA));
        let _ = writeln!(
            out,
            "  \"summary\": {{\"files_scanned\": {}, \"symbols\": {}, \"call_edges\": {}, \"violations\": {}, \"allows\": {}}},",
            self.files_scanned,
            self.symbols,
            self.call_edges,
            self.violations.len(),
            self.allows.len()
        );
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&v.file),
                v.line,
                v.col,
                json_str(v.rule),
                json_str(&v.message)
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
                json_str(&a.file),
                a.line,
                json_str(&a.rule),
                json_str(&a.reason)
            );
        }
        if !self.allows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Collects the workspace `.rs` scan set under `root`, skipping vendored
/// code, build output, and test/bench/fixture trees. Paths come back
/// workspace-relative with `/` separators, sorted for determinism.
pub fn scan_set(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "vendor" | "target" | ".git" | "tests" | "benches" | "fixtures"
            ) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

fn rel_str(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints every file in the workspace scan set rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let files = scan_set(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        sources.push((rel_str(rel), src));
    }
    Ok(lint_sources(&sources))
}

/// Lints specific files (workspace-relative paths under `root`), still
/// indexing deprecations across just those files.
pub fn lint_paths(root: &Path, rels: &[PathBuf]) -> std::io::Result<Report> {
    let mut sources = Vec::with_capacity(rels.len());
    for rel in rels {
        let src = std::fs::read_to_string(root.join(rel))?;
        sources.push((rel_str(rel), src));
    }
    Ok(lint_sources(&sources))
}

/// Builds just the workspace symbol index for the scan set rooted at
/// `root` (the binary's `--symbols` mode).
pub fn symbol_index(root: &Path) -> std::io::Result<symbols::SymbolIndex> {
    let files = scan_set(root)?;
    let mut units = Vec::with_capacity(files.len());
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        units.push(FileUnit::analyze(&rel_str(rel), &src));
    }
    Ok(symbols::SymbolIndex::build(&units))
}

/// Core driver over in-memory `(rel_path, source)` pairs: every file is
/// lexed and parsed once into a [`FileUnit`]; pass 1 builds the workspace
/// analysis (deprecation index, symbol index, call graph, crate-wide lock
/// order); pass 2 runs the token + semantic rule engine per file.
pub fn lint_sources(sources: &[(String, String)]) -> Report {
    let units: Vec<FileUnit> = sources
        .iter()
        .map(|(rel, src)| FileUnit::analyze(rel, src))
        .collect();
    let ws = Workspace::build(&units);
    let mut deprecated = DeprecatedIndex::default();
    for (rel, src) in sources {
        deprecated.names.extend(collect_deprecated(rel, src).names);
    }
    let mut report = Report {
        files_scanned: sources.len(),
        symbols: ws.symbols.len(),
        call_edges: ws.calls.len(),
        ..Report::default()
    };
    for unit in &units {
        let fr = lint_unit(unit, &deprecated, &ws);
        report.violations.extend(fr.violations);
        report.allows.extend(fr.allows);
    }
    // Pinned diagnostic order: path, then line, then rule, then column —
    // `lint.json` must be byte-stable across runs and platforms.
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule, a.col).cmp(&(&b.file, b.line, b.rule, b.col)));
    report
        .allows
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report
}

/// Locates the workspace root: walks up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let sources = vec![
            (
                "crates/dnn/src/a.rs".to_string(),
                "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn ok() {} // hd-lint: allow(no-panic) -- unused here\n".to_string(),
            ),
            (
                "crates/trace/src/b.rs".to_string(),
                "fn g(x: u64) -> usize {\n    // hd-lint: allow(lossy-cast) -- bounded by GLB size \"64KB\"\n    x as usize\n}\n".to_string(),
            ),
        ];
        lint_sources(&sources)
    }

    #[test]
    fn cross_file_report_is_sorted_and_counts_match() {
        let r = sample_report();
        assert_eq!(r.files_scanned, 2);
        let rules: Vec<_> = r.violations.iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec!["no-panic", "unused-allow"]);
        assert_eq!(r.allows.len(), 1);
        assert_eq!(r.allows[0].rule, "lossy-cast");
    }

    #[test]
    fn json_is_parseable_and_schema_stable() {
        let r = sample_report();
        let json = r.to_json();
        let v = hd_obs::json::Json::parse(&json).expect("hd-lint JSON must parse");
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(JSON_SCHEMA));
        let summary = v.get("summary").expect("summary object");
        assert_eq!(
            summary.get("files_scanned").and_then(|n| n.as_f64()),
            Some(2.0)
        );
        assert_eq!(
            summary.get("violations").and_then(|n| n.as_f64()),
            Some(2.0)
        );
        assert_eq!(summary.get("allows").and_then(|n| n.as_f64()), Some(1.0));
        let viols = v
            .get("violations")
            .and_then(|a| a.as_array())
            .expect("violations array");
        assert_eq!(viols.len(), 2);
        assert_eq!(
            viols[0].get("rule").and_then(|s| s.as_str()),
            Some("no-panic")
        );
        // The embedded quote in the allow reason must round-trip.
        let allows = v
            .get("allows")
            .and_then(|a| a.as_array())
            .expect("allows array");
        assert_eq!(
            allows[0].get("reason").and_then(|s| s.as_str()),
            Some("bounded by GLB size \"64KB\"")
        );
    }

    #[test]
    fn empty_report_json_has_empty_arrays() {
        let json = Report::default().to_json();
        let v = hd_obs::json::Json::parse(&json).expect("parses");
        assert_eq!(
            v.get("violations")
                .and_then(|a| a.as_array())
                .map(<[_]>::len),
            Some(0)
        );
        assert_eq!(
            v.get("allows").and_then(|a| a.as_array()).map(<[_]>::len),
            Some(0)
        );
    }

    #[test]
    fn text_report_names_file_line_rule() {
        let r = sample_report();
        let text = r.to_text(true);
        assert!(text.contains("crates/dnn/src/a.rs:1:"), "{text}");
        assert!(text.contains("[no-panic]"), "{text}");
        assert!(text.contains("accepted suppressions (1):"), "{text}");
        assert!(text.contains("2 violation(s)"), "{text}");
    }

    #[test]
    fn finds_workspace_root_from_nested_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }
}
