//! The concurrency/determinism rule pack: semantic rules that need the
//! parser, the workspace symbol index, and the intra-crate call graph —
//! not just token patterns.
//!
//! | rule | what it rejects |
//! |------|-----------------|
//! | `atomic-ordering` | `Ordering::Relaxed` in library code. Relaxed is correct only for monotone counters and advisory flags; each such site must carry an allow naming the invariant (steal counters in `hd-pool`, the `hd-obs` enable flag, the SIMD mode cache). |
//! | `lock-discipline` | a `Mutex`/`RwLock` guard held across a blocking call — `ObservationModel::observe`, `Device::try_run*`, the prober entry points, or pool job execution (directly, or through any same-crate function the call graph shows reaches one) — and inconsistent nested lock acquisition order within a crate. |
//! | `unordered-iter` | iterating a `HashMap`/`HashSet` (local, parameter, or same-crate struct field) on the determinism-critical surface (`core`, `trace`, `accel`, `obs`, `dnn`, `tensor`): iteration order is random per process, so anything it feeds — traces, observations, exports, reductions — loses bit-stability. |
//! | `float-reduction-order` | f32/f64 `.sum()`/`.product()` reductions and `+`-accumulating float `fold`s outside the sanctioned kernels (`crates/tensor/src/{gemm,csc_conv,simd}`): float addition is non-associative, so reduction order is part of the bit-identical contract. |
//!
//! All four honor the standard `// hd-lint: allow(<rule>) -- <reason>`
//! suppressions and the `#[cfg(test)]` exclusion, exactly like the token
//! rules.

use crate::callgraph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::parser::ItemKind;
use crate::rules::{rule_in_scope, test_regions, Violation};
use crate::symbols::{crate_of, FileUnit, SymbolIndex};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::RangeInclusive;

/// Calls that must never run under a held lock guard: the observation
/// boundary, the device run surface, the prober entry points.
const SENTINELS: [&str; 6] = [
    "observe",
    "try_run",
    "try_run_with",
    "try_energy_estimate",
    "probe",
    "probe_with_pool",
];

/// The analyzed workspace: symbol index, call graph, and the derived facts
/// the semantic rules consume.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Every named item, per crate.
    pub symbols: SymbolIndex,
    /// Same-crate call edges.
    pub calls: CallGraph,
    /// `(crate, fn_name)` from which a sentinel call is reachable through
    /// the crate's call graph (sentinel-calling fns included).
    blocking: BTreeSet<(String, String)>,
    /// Cross-file `lock-discipline` order findings, precomputed at build
    /// time (nested-acquisition order is a per-crate property).
    order_violations: Vec<Violation>,
}

impl Workspace {
    /// Analyzes every file once: index, call graph, blocking closure, and
    /// the crate-wide lock-order audit.
    pub fn build(files: &[FileUnit]) -> Workspace {
        let symbols = SymbolIndex::build(files);
        let calls = CallGraph::build(files, &symbols);

        // Functions that *directly* contain a blocking call, per crate.
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for fu in files {
            let krate = crate_of(&fu.rel);
            for it in fu.parsed.walk() {
                let (ItemKind::Fn, Some(name), Some((s, e))) = (it.kind, &it.name, it.body) else {
                    continue;
                };
                let t = &fu.lexed.tokens;
                let has_sentinel = (s..e.min(t.len())).any(|i| is_sentinel_call(t, i));
                if has_sentinel {
                    direct
                        .entry(krate.to_string())
                        .or_default()
                        .insert(name.clone());
                }
            }
        }
        // Close over callers: anything that reaches a blocking fn blocks.
        let mut blocking = BTreeSet::new();
        for (krate, targets) in &direct {
            for name in calls.reaching(krate, targets) {
                blocking.insert((krate.clone(), name));
            }
        }

        let order_violations = lock_order_audit(files);
        Workspace {
            symbols,
            calls,
            blocking,
            order_violations,
        }
    }

    /// Is a call to `name` inside `krate` (transitively) blocking?
    fn is_blocking(&self, krate: &str, name: &str) -> bool {
        self.blocking
            .contains(&(krate.to_string(), name.to_string()))
    }

    /// Runs every in-scope semantic rule on one file. `excluded` is the
    /// file's `#[cfg(test)]` line-range set (same exclusion as the token
    /// rules).
    pub fn check_file(
        &self,
        fu: &FileUnit,
        excluded: &[RangeInclusive<u32>],
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        if rule_in_scope("atomic-ordering", &fu.rel) {
            atomic_ordering(fu, excluded, &mut out);
        }
        if rule_in_scope("lock-discipline", &fu.rel) {
            lock_discipline(fu, excluded, self, &mut out);
            out.extend(
                self.order_violations
                    .iter()
                    .filter(|v| v.file == fu.rel)
                    .cloned(),
            );
        }
        if rule_in_scope("unordered-iter", &fu.rel) {
            unordered_iter(fu, excluded, &self.symbols, &mut out);
        }
        if rule_in_scope("float-reduction-order", &fu.rel) {
            float_reduction_order(fu, excluded, &mut out);
        }
        out
    }
}

fn in_tests(excluded: &[RangeInclusive<u32>], line: u32) -> bool {
    excluded.iter().any(|r| r.contains(&line))
}

fn text(t: &[Token], i: usize) -> &str {
    t.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// Names the enclosing fn for a diagnostic, when the parser found one.
fn in_fn(fu: &FileUnit, line: u32) -> String {
    match fu.parsed.enclosing_fn(line).and_then(|i| i.name.as_deref()) {
        Some(name) => format!(" in `fn {name}`"),
        None => String::new(),
    }
}

// --- atomic-ordering -----------------------------------------------------

fn atomic_ordering(fu: &FileUnit, excluded: &[RangeInclusive<u32>], out: &mut Vec<Violation>) {
    let t = &fu.lexed.tokens;
    for i in 0..t.len() {
        if text(t, i) == "Ordering"
            && text(t, i + 1) == ":"
            && text(t, i + 2) == ":"
            && text(t, i + 3) == "Relaxed"
            && !in_tests(excluded, t[i].line)
        {
            out.push(Violation {
                file: fu.rel.clone(),
                line: t[i].line,
                col: t[i].col,
                rule: "atomic-ordering",
                message: format!(
                    "Ordering::Relaxed{}: Relaxed orders nothing across threads; use \
                     Acquire/Release (or allow with the invariant that makes Relaxed sound)",
                    in_fn(fu, t[i].line)
                ),
            });
        }
    }
}

// --- lock-discipline -----------------------------------------------------

/// A live lock guard inside one fn body.
struct Guard {
    /// Binding name (`None` for a statement-temporary guard).
    name: Option<String>,
    /// The identifier the `.lock()`/`.read()`/`.write()` was called on —
    /// the mutex's name for the acquisition-order audit.
    mutex: String,
    /// Brace depth the guard was created at; it dies when depth drops
    /// below this.
    depth: i32,
    /// For temporaries: the guard dies at the statement's `;`.
    until_semi: bool,
    /// Line of the acquisition (for diagnostics).
    line: u32,
}

/// Does token `i` start a guard acquisition (`.lock(`, or `.read(`/
/// `.write(` in a file that mentions `RwLock`)?
fn is_acquire(t: &[Token], i: usize, has_rwlock: bool) -> bool {
    if text(t, i) != "." || text(t, i + 2) != "(" {
        return false;
    }
    match text(t, i + 1) {
        "lock" => true,
        "read" | "write" => has_rwlock,
        _ => false,
    }
}

/// Is token `i` a call that must not run under a lock — a sentinel by
/// name, `pool.map(...)`, or `.work(...)` (pool job execution)?
fn is_sentinel_call(t: &[Token], i: usize) -> bool {
    if t[i].kind != TokenKind::Ident {
        return false;
    }
    let name = t[i].text.as_str();
    if text(t, i + 1) != "(" {
        return false;
    }
    if SENTINELS.contains(&name) {
        // A declaration `fn observe(` is not a call site.
        return i == 0 || text(t, i - 1) != "fn";
    }
    // Pool job execution by its other names: `pool.map(...)` from client
    // crates, `job.work()` inside the pool itself.
    if name == "map" && i >= 2 && text(t, i - 1) == "." && text(t, i - 2) == "pool" {
        return true;
    }
    name == "work" && i >= 1 && text(t, i - 1) == "."
}

fn lock_discipline(
    fu: &FileUnit,
    excluded: &[RangeInclusive<u32>],
    ws: &Workspace,
    out: &mut Vec<Violation>,
) {
    let t = &fu.lexed.tokens;
    let krate = crate_of(&fu.rel);
    let has_rwlock = t.iter().any(|tok| tok.text == "RwLock");
    for it in fu.parsed.walk() {
        let (ItemKind::Fn, Some((start, end))) = (it.kind, it.body) else {
            continue;
        };
        if in_tests(excluded, it.line) {
            continue;
        }
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 1i32;
        let mut i = start;
        while i < end.min(t.len()) {
            match text(t, i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                ";" => guards.retain(|g| !g.until_semi),
                "drop" if text(t, i + 1) == "(" => {
                    let victim = text(t, i + 2).to_string();
                    guards.retain(|g| g.name.as_deref() != Some(victim.as_str()));
                }
                _ => {}
            }
            if is_acquire(t, i, has_rwlock) {
                let mutex = if i >= 1 && t[i - 1].kind == TokenKind::Ident {
                    t[i - 1].text.clone()
                } else {
                    "<expr>".to_string()
                };
                // A `...lock().unwrap().take()`-style chain binds the
                // chain's result, not the guard — statement temporary.
                let name = if chain_escapes_guard(t, i) {
                    None
                } else {
                    binding_name(t, start, i)
                };
                // A rebind (`q = ...lock()`) replaces the same-named guard.
                if let Some(n) = &name {
                    guards.retain(|g| g.name.as_deref() != Some(n.as_str()));
                }
                guards.push(Guard {
                    until_semi: name.is_none(),
                    name,
                    mutex,
                    depth,
                    line: t[i].line,
                });
            } else if !guards.is_empty()
                && is_sentinel_call(t, i)
                && !in_tests(excluded, t[i].line)
            {
                push_guard_violation(fu, t, i, &guards, out);
            } else if !guards.is_empty()
                && t[i].kind == TokenKind::Ident
                && text(t, i + 1) == "("
                && text(t, i.wrapping_sub(1)) != "fn"
                // Name-based resolution is only trustworthy for free calls
                // and `self.`/`pool.` method calls; an arbitrary receiver's
                // `.map(...)` is usually an iterator, not the pool.
                && (text(t, i.wrapping_sub(1)) != "."
                    || matches!(text(t, i.wrapping_sub(2)), "self" | "pool"))
                && ws.is_blocking(krate, t[i].text.as_str())
                && !SENTINELS.contains(&t[i].text.as_str())
                && !in_tests(excluded, t[i].line)
            {
                push_guard_violation(fu, t, i, &guards, out);
            }
            i += 1;
        }
    }
}

fn push_guard_violation(
    fu: &FileUnit,
    t: &[Token],
    i: usize,
    guards: &[Guard],
    out: &mut Vec<Violation>,
) {
    let g = &guards[guards.len() - 1];
    let held = g
        .name
        .as_deref()
        .map(|n| format!("guard `{n}`"))
        .unwrap_or_else(|| "a temporary guard".to_string());
    out.push(Violation {
        file: fu.rel.clone(),
        line: t[i].line,
        col: t[i].col,
        rule: "lock-discipline",
        message: format!(
            "{held} (from `{}.lock()`, line {}) is held across `{}(...)`{}; \
             drop the guard before calling into the observation/run surface",
            g.mutex,
            g.line,
            t[i].text,
            in_fn(fu, t[i].line)
        ),
    });
}

/// Does the method chain after the `.lock(...)` at token `i` continue past
/// the unwrap family (`.take()`, `.clone()`, ...)? If so the binding holds
/// the chain's result, not the guard — the guard is a statement temporary.
fn chain_escapes_guard(t: &[Token], i: usize) -> bool {
    // `i` is the `.` of `.lock(`; find the call's closing paren.
    let mut j = i + 2;
    let mut depth = 0i32;
    while j < t.len() {
        match text(t, j) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j += 1;
    while text(t, j) == "." {
        if matches!(
            text(t, j + 1),
            "unwrap" | "unwrap_or_else" | "unwrap_or_default" | "expect"
        ) && text(t, j + 2) == "("
        {
            // Part of acquiring the guard; skip the call and keep looking.
            let mut d = 0i32;
            let mut k = j + 2;
            while k < t.len() {
                match text(t, k) {
                    "(" => d += 1,
                    ")" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
            continue;
        }
        return true;
    }
    false
}

/// The `let` binding name for an acquisition at token `i`, scanning back to
/// the statement start: `let [mut] NAME = ... .lock(` or a bare rebind
/// `NAME = ... .lock(`. `None` for statement-temporaries.
fn binding_name(t: &[Token], body_start: usize, i: usize) -> Option<String> {
    let mut j = i;
    while j > body_start {
        j -= 1;
        match text(t, j) {
            ";" | "{" | "}" => break,
            "let" => {
                let mut k = j + 1;
                while matches!(text(t, k), "mut" | "(" | "Ok" | "Some" | "Err") {
                    k += 1;
                }
                return t
                    .get(k)
                    .filter(|tok| tok.kind == TokenKind::Ident)
                    .map(|tok| tok.text.clone());
            }
            _ => {}
        }
    }
    // Rebind without `let`: first two statement tokens are `NAME =`.
    let stmt_first = j + 1;
    if t.get(stmt_first).map(|tok| tok.kind) == Some(TokenKind::Ident)
        && text(t, stmt_first + 1) == "="
    {
        return Some(t[stmt_first].text.clone());
    }
    None
}

/// Per-crate nested-acquisition audit: collects every `(outer, inner)`
/// mutex pair; when a crate acquires the same two mutexes in both orders,
/// every site of the minority direction is an inconsistency.
fn lock_order_audit(files: &[FileUnit]) -> Vec<Violation> {
    // (krate, outer, inner) -> acquisition sites.
    let mut pairs: BTreeMap<(String, String, String), Vec<(String, u32, u32)>> = BTreeMap::new();
    for fu in files {
        let krate = crate_of(&fu.rel).to_string();
        let excluded = test_regions(&fu.lexed.tokens);
        let t = &fu.lexed.tokens;
        let has_rwlock = t.iter().any(|tok| tok.text == "RwLock");
        for it in fu.parsed.walk() {
            let (ItemKind::Fn, Some((start, end))) = (it.kind, it.body) else {
                continue;
            };
            if in_tests(&excluded, it.line) {
                continue;
            }
            let mut guards: Vec<Guard> = Vec::new();
            let mut depth = 1i32;
            for i in start..end.min(t.len()) {
                match text(t, i) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        guards.retain(|g| g.depth <= depth);
                    }
                    ";" => guards.retain(|g| !g.until_semi),
                    "drop" if text(t, i + 1) == "(" => {
                        let victim = text(t, i + 2).to_string();
                        guards.retain(|g| g.name.as_deref() != Some(victim.as_str()));
                    }
                    _ => {}
                }
                if is_acquire(t, i, has_rwlock) {
                    let mutex = if i >= 1 && t[i - 1].kind == TokenKind::Ident {
                        t[i - 1].text.clone()
                    } else {
                        "<expr>".to_string()
                    };
                    for g in &guards {
                        if g.mutex != mutex {
                            pairs
                                .entry((krate.clone(), g.mutex.clone(), mutex.clone()))
                                .or_default()
                                .push((fu.rel.clone(), t[i].line, t[i].col));
                        }
                    }
                    let name = if chain_escapes_guard(t, i) {
                        None
                    } else {
                        binding_name(t, start, i)
                    };
                    if let Some(n) = &name {
                        guards.retain(|g| g.name.as_deref() != Some(n.as_str()));
                    }
                    guards.push(Guard {
                        until_semi: name.is_none(),
                        name,
                        mutex,
                        depth,
                        line: t[i].line,
                    });
                }
            }
        }
    }
    let mut out = Vec::new();
    for ((krate, outer, inner), sites) in &pairs {
        let Some(rev) = pairs.get(&(krate.clone(), inner.clone(), outer.clone())) else {
            continue;
        };
        // Flag the minority direction only (ties: the lexicographically
        // later pair), so a consistent convention plus one outlier yields
        // exactly the outlier.
        let minority = sites.len() < rev.len() || (sites.len() == rev.len() && outer > inner);
        if !minority {
            continue;
        }
        for (file, line, col) in sites {
            out.push(Violation {
                file: file.clone(),
                line: *line,
                col: *col,
                rule: "lock-discipline",
                message: format!(
                    "inconsistent lock order in crate `{krate}`: `{outer}` is held while \
                     acquiring `{inner}`, but the crate elsewhere acquires `{inner}` before \
                     `{outer}` ({} site(s)); pick one order",
                    rev.len()
                ),
            });
        }
    }
    out
}

// --- unordered-iter ------------------------------------------------------

const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

fn unordered_iter(
    fu: &FileUnit,
    excluded: &[RangeInclusive<u32>],
    symbols: &SymbolIndex,
    out: &mut Vec<Violation>,
) {
    let t = &fu.lexed.tokens;
    let krate = crate_of(&fu.rel);

    // Names bound to an unordered collection in this file: `let NAME : ...
    // HashMap`, `let NAME = HashMap::new()`, `NAME : HashMap` params, plus
    // the crate's unordered struct fields from the symbol index.
    let mut names: BTreeSet<String> = symbols
        .unordered_fields
        .iter()
        .filter(|(k, _)| k == krate)
        .map(|(_, f)| f.clone())
        .collect();
    for i in 0..t.len() {
        if !matches!(text(t, i), "HashMap" | "HashSet") {
            continue;
        }
        if let Some(name) = unordered_binding(t, i) {
            names.insert(name);
        }
    }
    if names.is_empty() {
        return;
    }

    for i in 0..t.len() {
        if t[i].kind != TokenKind::Ident || !names.contains(&t[i].text) || in_tests(excluded, t[i].line)
        {
            continue;
        }
        // `NAME.iter()` / `self.NAME.keys()` / ... -- any order-revealing
        // method.
        let method_iter = text(t, i + 1) == "."
            && ITER_METHODS.contains(&text(t, i + 2))
            && text(t, i + 3) == "(";
        // `for PAT in [&][mut] NAME {`
        let mut back = i;
        while back > 0 && matches!(text(t, back - 1), "&" | "mut") {
            back -= 1;
        }
        let for_iter = back > 0 && text(t, back - 1) == "in" && text(t, i + 1) == "{";
        if method_iter || for_iter {
            out.push(Violation {
                file: fu.rel.clone(),
                line: t[i].line,
                col: t[i].col,
                rule: "unordered-iter",
                message: format!(
                    "iteration over unordered `{}`{}: HashMap/HashSet order is random per \
                     process and breaks bit-stable traces/exports; use BTreeMap/BTreeSet \
                     or sort before iterating",
                    t[i].text,
                    in_fn(fu, t[i].line)
                ),
            });
        }
    }
}

/// The binding name an unordered-type mention at token `i` declares, if
/// any: handles `let [mut] NAME : ... Hash{Map,Set}`, `let [mut] NAME =
/// Hash{Map,Set}::new/with_capacity/from`, and `NAME : Hash{Map,Set}` fn
/// parameters.
fn unordered_binding(t: &[Token], i: usize) -> Option<String> {
    // Scan back to the first annotation `:` or assignment `=` that is not
    // part of a `::` path separator; the identifier just before it is the
    // binder. Stop at statement/param boundaries.
    let mut j = i;
    let mut hops = 0;
    while j > 0 && hops < 32 {
        j -= 1;
        hops += 1;
        match text(t, j) {
            ";" | "{" | "}" | "," | "(" | ")" | "|" => return None,
            ":" => {
                if text(t, j.wrapping_sub(1)) == ":" || text(t, j + 1) == ":" {
                    continue; // `::` path separator, keep scanning
                }
                let cand = t.get(j.checked_sub(1)?)?;
                return (cand.kind == TokenKind::Ident).then(|| cand.text.clone());
            }
            "=" => {
                if text(t, j + 1) == "=" || matches!(text(t, j.wrapping_sub(1)), "=" | "!" | "<") {
                    return None; // comparison operator, not a binding
                }
                let cand = t.get(j.checked_sub(1)?)?;
                return (cand.kind == TokenKind::Ident).then(|| cand.text.clone());
            }
            _ => {}
        }
    }
    None
}

// --- float-reduction-order -----------------------------------------------

fn float_reduction_order(
    fu: &FileUnit,
    excluded: &[RangeInclusive<u32>],
    out: &mut Vec<Violation>,
) {
    let t = &fu.lexed.tokens;
    let src = fu.src.as_str();
    for i in 0..t.len() {
        if text(t, i) != "." {
            continue;
        }
        let meth = text(t, i + 1);
        if !matches!(meth, "sum" | "product" | "fold") || in_tests(excluded, t[i + 1].line) {
            continue;
        }
        let flagged = match meth {
            // `.sum::<f32>()` / turbofish, or `.sum()` in a statement that
            // names a float type (`let total: f32 = xs.iter().sum();`).
            "sum" | "product" => {
                let turbofish_float = text(t, i + 2) == ":"
                    && text(t, i + 3) == ":"
                    && text(t, i + 4) == "<"
                    && matches!(text(t, i + 5), "f32" | "f64");
                let plain = text(t, i + 2) == "(";
                turbofish_float || (plain && stmt_mentions_float(t, i))
            }
            // `.fold(0.0, |acc, v| acc + v)`: float-literal seed plus an
            // additive closure. Order-independent folds (max/min) pass.
            "fold" => {
                text(t, i + 2) == "("
                    && float_literal(t, i + 3, src)
                    && fold_args_add(t, i + 2)
            }
            _ => false,
        };
        if flagged {
            out.push(Violation {
                file: fu.rel.clone(),
                line: t[i + 1].line,
                col: t[i + 1].col,
                rule: "float-reduction-order",
                message: format!(
                    "f32/f64 `.{meth}(...)` reduction{} outside the sanctioned kernels \
                     (crates/tensor/src/{{gemm,csc_conv,simd}}): float addition is \
                     non-associative, so order is part of the bit-identical contract; \
                     accumulate in explicit index order or allow with the ordering argument",
                    in_fn(fu, t[i + 1].line)
                ),
            });
        }
    }
}

/// Does the statement containing token `i` (back to the nearest `;`, `{`,
/// or `}`) mention `f32`/`f64`?
fn stmt_mentions_float(t: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match text(t, j) {
            ";" | "{" | "}" => return false,
            "f32" | "f64" => return true,
            _ => {}
        }
    }
    false
}

/// Is token `i` a float literal (`0.0`, `1e-3`, `0f32`)? Numbers carry no
/// text, so the byte span is sliced from the source.
fn float_literal(t: &[Token], i: usize, src: &str) -> bool {
    let Some(tok) = t.get(i) else { return false };
    if tok.kind != TokenKind::Number {
        return false;
    }
    src.get(tok.start..tok.end)
        .map(|s| {
            s.contains('.')
                || s.ends_with("f32")
                || s.ends_with("f64")
                || (s.contains(['e', 'E']) && !s.starts_with("0x") && !s.starts_with("0X"))
        })
        .unwrap_or(false)
}

/// Does the `fold(` argument list opening at token `open` contain a `+`
/// (an order-sensitive accumulation) before its matching `)`?
fn fold_args_add(t: &[Token], open: usize) -> bool {
    let mut depth = 0i32;
    let mut j = open;
    while j < t.len() {
        match text(t, j) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            "+" => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::test_regions;

    fn check(rel: &str, src: &str) -> Vec<Violation> {
        let fu = FileUnit::analyze(rel, src);
        let ws = Workspace::build(std::slice::from_ref(&fu));
        let excluded = test_regions(&fu.lexed.tokens);
        ws.check_file(&fu, &excluded)
    }

    fn rules_hit(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn relaxed_ordering_flagged_with_enclosing_fn() {
        let vs = check(
            "crates/pool/src/fake.rs",
            "fn claim(n: &AtomicUsize) -> usize { n.fetch_add(1, Ordering::Relaxed) }",
        );
        assert_eq!(rules_hit(&vs), vec!["atomic-ordering"]);
        assert!(vs[0].message.contains("in `fn claim`"), "{}", vs[0].message);
    }

    #[test]
    fn acquire_release_pass_and_tests_are_exempt() {
        let vs = check(
            "crates/pool/src/fake.rs",
            "fn ok(n: &AtomicUsize) { n.store(1, Ordering::Release); let _ = n.load(Ordering::Acquire); }\n\
             #[cfg(test)]\nmod tests {\n    fn t(n: &AtomicUsize) { n.load(Ordering::Relaxed); }\n}\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn guard_held_across_observe_is_flagged() {
        let vs = check(
            "crates/core/src/fake.rs",
            "fn bad(m: &Mutex<u32>, target: &dyn ObservationModel, img: &Tensor3) {\n\
                 let g = m.lock().unwrap_or_else(|e| e.into_inner());\n\
                 let _ = target.observe(img, FullChannel);\n\
             }\n",
        );
        assert_eq!(rules_hit(&vs), vec!["lock-discipline"]);
        assert!(vs[0].message.contains("guard `g`"), "{}", vs[0].message);
    }

    #[test]
    fn dropping_or_scoping_the_guard_discharges_the_rule() {
        let vs = check(
            "crates/core/src/fake.rs",
            "fn ok(m: &Mutex<u32>, target: &dyn ObservationModel, img: &Tensor3) {\n\
                 {\n    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n    let _ = *g;\n}\n\
                 let q = m.lock().unwrap_or_else(|e| e.into_inner());\n\
                 drop(q);\n\
                 let _ = target.observe(img, FullChannel);\n\
             }\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn transitively_blocking_calls_are_caught_via_the_call_graph() {
        let vs = check(
            "crates/core/src/fake.rs",
            "fn step(target: &dyn ObservationModel, img: &Tensor3) { let _ = target.observe(img, FullChannel); }\n\
             fn bad(m: &Mutex<u32>, target: &dyn ObservationModel, img: &Tensor3) {\n\
                 let g = m.lock().unwrap_or_else(|e| e.into_inner());\n\
                 step(target, img);\n\
             }\n",
        );
        assert_eq!(rules_hit(&vs), vec!["lock-discipline"]);
        assert!(vs[0].message.contains("`step(...)`"), "{}", vs[0].message);
    }

    #[test]
    fn inconsistent_nested_lock_order_is_flagged_once_per_minority_site() {
        let vs = check(
            "crates/obs/src/fake.rs",
            "fn a(x: &M, y: &M) { let g = x.shards.lock(); let h = y.counters.lock(); }\n\
             fn b(x: &M, y: &M) { let g = x.shards.lock(); let h = y.counters.lock(); }\n\
             fn c(x: &M, y: &M) { let h = y.counters.lock(); let g = x.shards.lock(); }\n",
        );
        let order: Vec<&Violation> = vs
            .iter()
            .filter(|v| v.message.contains("inconsistent lock order"))
            .collect();
        assert_eq!(order.len(), 1, "{vs:?}");
        assert_eq!(order[0].line, 3, "the minority direction site");
    }

    #[test]
    fn hashmap_iteration_flagged_on_the_determinism_surface_only() {
        let src = "fn mode(xs: &[u64]) -> u64 {\n\
                       let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();\n\
                       for &x in xs { *counts.entry(x).or_insert(0) += 1; }\n\
                       counts.iter().max_by_key(|(_, &c)| c).map(|(&k, _)| k).unwrap_or(0)\n\
                   }\n";
        let vs = check("crates/core/src/fake.rs", src);
        assert_eq!(rules_hit(&vs), vec!["unordered-iter"]);
        assert_eq!(vs[0].line, 4);
        // Same code outside the surface (e.g. the lint crate) passes.
        assert!(check("crates/lint/src/fake.rs", src).is_empty());
    }

    #[test]
    fn hashmap_without_iteration_passes_and_btreemap_iteration_passes() {
        let vs = check(
            "crates/core/src/fake.rs",
            "fn f(xs: &[u64]) -> usize {\n\
                 let mut seen: HashMap<u64, u16> = HashMap::new();\n\
                 for &x in xs { seen.entry(x).or_insert(0); }\n\
                 let mut sorted: BTreeMap<u64, u16> = BTreeMap::new();\n\
                 for (k, v) in sorted.iter() { let _ = (k, v); }\n\
                 seen.len()\n\
             }\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn unordered_struct_field_is_tracked_across_files_of_the_crate() {
        let decl = FileUnit::analyze(
            "crates/accel/src/device.rs",
            "pub struct Dev { capacity_of: std::collections::HashMap<u64, u64> }\n",
        );
        let user = FileUnit::analyze(
            "crates/accel/src/audit.rs",
            "impl Dev { fn audit(&self) { for (a, c) in self.capacity_of.iter() { let _ = (a, c); } } }\n",
        );
        let ws = Workspace::build(&[decl, user.clone()]);
        let vs = ws.check_file(&user, &[]);
        assert_eq!(rules_hit(&vs), vec!["unordered-iter"]);
    }

    #[test]
    fn float_sums_flagged_outside_sanctioned_kernels() {
        let src = "fn softmax_denom(exps: &[f32]) -> f32 { let sum: f32 = exps.iter().sum(); sum }\n\
                   fn l1(g: &[f32]) -> f32 { g.iter().map(|v| v.abs()).sum::<f32>() }\n";
        let vs = check("crates/dnn/src/fake.rs", src);
        assert_eq!(
            rules_hit(&vs),
            vec!["float-reduction-order", "float-reduction-order"]
        );
        // The sanctioned kernel sites are exempt by scope.
        assert!(check("crates/tensor/src/gemm.rs", src).is_empty());
        assert!(check("crates/tensor/src/simd/x86.rs", src).is_empty());
    }

    #[test]
    fn integer_sums_and_order_free_folds_pass() {
        let vs = check(
            "crates/dnn/src/fake.rs",
            "fn count(xs: &[u64]) -> u64 { xs.iter().sum() }\n\
             fn maxabs(xs: &[f32]) -> f32 { xs.iter().fold(0.0f32, |m, v| m.max(v.abs())) }\n",
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn additive_float_fold_is_flagged() {
        let vs = check(
            "crates/dnn/src/fake.rs",
            "fn total(xs: &[f32]) -> f32 { xs.iter().fold(0.0f32, |acc, v| acc + v) }\n",
        );
        assert_eq!(rules_hit(&vs), vec!["float-reduction-order"]);
    }
}
