//! The rule engine: project-invariant lints over the token stream of each
//! workspace source file, plus the `// hd-lint: allow(rule) -- reason`
//! suppression syntax and its exhaustive allowlist report.
//!
//! | rule | scope | what it rejects |
//! |------|-------|-----------------|
//! | `no-panic` | library crate sources | `.unwrap()`, `.expect(...)`, `panic!` outside `#[cfg(test)]` |
//! | `no-wallclock` | library crates except `hd-obs` | `Instant::now`, `SystemTime` (nondeterminism sources) |
//! | `no-bare-spawn` | everywhere but `crates/pool` | `thread::spawn` (must use hd-pool or the scoped executor) |
//! | `lossy-cast` | trace/byte-accounting files | `as`-casts to integer types (use `hd_tensor::cast`) |
//! | `no-unsafe` | everywhere but `crates/tensor/src/simd/` | the `unsafe` keyword; inside the SIMD sanctuary it instead demands a nearby `SAFETY:` comment |
//! | `no-deprecated` | everywhere scanned | uses of items the workspace marks `#[deprecated]` |
//! | `bad-allow` | everywhere scanned | malformed `hd-lint:` comments (unknown rule, missing reason) |
//! | `unused-allow` | everywhere scanned | an allow that suppresses nothing |
//!
//! Suppression: `// hd-lint: allow(<rule>) -- <reason>` on the offending
//! line, or alone on the line above it. The reason string is mandatory and
//! every accepted allow lands in the [`Report`]'s allowlist.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::collections::BTreeSet;
use std::fmt;

/// All enforceable rule names (the two meta-rules `bad-allow` and
/// `unused-allow` guard the suppression syntax itself and cannot be
/// suppressed). The last four are the semantic concurrency/determinism
/// pack, implemented in [`crate::semantic`] on top of the item parser,
/// symbol index, and call graph.
pub const RULES: [&str; 10] = [
    "no-panic",
    "no-wallclock",
    "no-bare-spawn",
    "lossy-cast",
    "no-unsafe",
    "no-deprecated",
    "atomic-ordering",
    "lock-discipline",
    "unordered-iter",
    "float-reduction-order",
];

/// Crates whose outputs feed traces, observations, exports, or reductions:
/// the `unordered-iter` enforcement surface.
pub const UNORDERED_SURFACE: [&str; 6] = [
    "crates/core/src/",
    "crates/trace/src/",
    "crates/accel/src/",
    "crates/obs/src/",
    "crates/dnn/src/",
    "crates/tensor/src/",
];

/// The sanctioned float-accumulation sites: the kernels whose documented
/// index order *is* the reference reduction order every backend must match.
pub const FLOAT_SANCTUARIES: [&str; 3] = [
    "crates/tensor/src/gemm",
    "crates/tensor/src/csc_conv",
    "crates/tensor/src/simd/",
];

/// The one directory where `unsafe` is sanctioned: the SIMD kernels,
/// whose raw-pointer loads/stores cannot be expressed in safe Rust.
pub const UNSAFE_SANCTUARY: &str = "crates/tensor/src/simd/";

/// How many lines above an `unsafe` token the sanctuary check searches
/// for a `SAFETY:` (or `# Safety` doc-section) comment.
const SAFETY_COMMENT_WINDOW: u32 = 8;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Rule name (one of [`RULES`], `bad-allow`, or `unused-allow`).
    pub rule: &'static str,
    /// Human explanation with the offending construct.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// One accepted suppression, for the exhaustive allowlist report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line of the `hd-lint:` comment.
    pub line: u32,
    /// The suppressed rule.
    pub rule: String,
    /// The mandatory justification string.
    pub reason: String,
}

impl fmt::Display for Allow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: allow({}) -- {}",
            self.file, self.line, self.rule, self.reason
        )
    }
}

/// Lint result of one file.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Violations, in source order.
    pub violations: Vec<Violation>,
    /// Accepted allows (used ones), in source order.
    pub allows: Vec<Allow>,
}

/// Names declared `#[deprecated]` anywhere in the scanned set.
#[derive(Clone, Debug, Default)]
pub struct DeprecatedIndex {
    /// Deprecated item names, with the file that declares them (the
    /// declaring file is exempt from the usage lint for that name).
    pub names: Vec<(String, String)>,
}

/// Collects `#[deprecated]` declarations from `source` (pass 1 of the
/// `no-deprecated` rule).
pub fn collect_deprecated(rel_path: &str, source: &str) -> DeprecatedIndex {
    let lexed = lex(source);
    let t = &lexed.tokens;
    let mut idx = DeprecatedIndex::default();
    let mut i = 0usize;
    while i + 2 < t.len() {
        if text(t, i) == "#" && text(t, i + 1) == "[" && text(t, i + 2) == "deprecated" {
            let after_attr = skip_attr(t, i);
            if let Some(name) = declared_name(t, after_attr) {
                idx.names.push((name, rel_path.to_string()));
            }
            i = after_attr;
        } else {
            i += 1;
        }
    }
    idx
}

/// Lints one file's source against every in-scope rule.
///
/// `rel_path` is the workspace-relative path (with `/` separators) that
/// rule scoping keys on; `deprecated` is the workspace-wide declaration
/// index from [`collect_deprecated`] (pass an empty index to check a file
/// in isolation plus its own declarations).
///
/// Single-file convenience wrapper over [`lint_unit`]: the semantic rules
/// see a one-file workspace, so cross-file facts (struct fields from other
/// files, crate-wide lock order) are limited to this file's declarations.
pub fn lint_source(rel_path: &str, source: &str, deprecated: &DeprecatedIndex) -> FileReport {
    let unit = crate::symbols::FileUnit::analyze(rel_path, source);
    let ws = crate::semantic::Workspace::build(std::slice::from_ref(&unit));
    lint_unit(&unit, deprecated, &ws)
}

/// Lints one pre-analyzed file: the token-sequence rules, the semantic
/// pack from `ws`, then the suppression pass over the merged findings (so
/// `hd-lint: allow` works identically for both rule families).
pub fn lint_unit(
    unit: &crate::symbols::FileUnit,
    deprecated: &DeprecatedIndex,
    ws: &crate::semantic::Workspace,
) -> FileReport {
    let rel_path = unit.rel.as_str();
    let lexed = &unit.lexed;
    let t = &lexed.tokens;
    let excluded = test_regions(t);
    let mut raw: Vec<Violation> = Vec::new();

    let vio = |line: u32, col: u32, rule: &'static str, message: String| Violation {
        file: rel_path.to_string(),
        line,
        col,
        rule,
        message,
    };

    // --- Token-sequence rules. ---
    for i in 0..t.len() {
        let in_tests = excluded.iter().any(|r| r.contains(&t[i].line));
        if in_tests {
            continue;
        }
        if rule_in_scope("no-panic", rel_path) {
            if text(t, i) == "."
                && matches!(text(t, i + 1), "unwrap" | "expect")
                && text(t, i + 2) == "("
            {
                let tok = &t[i + 1];
                raw.push(vio(
                    tok.line,
                    tok.col,
                    "no-panic",
                    format!(
                        ".{}() in library code; return a typed error or document an allow",
                        tok.text
                    ),
                ));
            }
            if text(t, i) == "panic" && text(t, i + 1) == "!" {
                raw.push(vio(
                    t[i].line,
                    t[i].col,
                    "no-panic",
                    "panic! in library code; return a typed error or document an allow".to_string(),
                ));
            }
        }
        if rule_in_scope("no-wallclock", rel_path) {
            if text(t, i) == "Instant"
                && text(t, i + 1) == ":"
                && text(t, i + 2) == ":"
                && text(t, i + 3) == "now"
            {
                raw.push(vio(
                    t[i].line,
                    t[i].col,
                    "no-wallclock",
                    "Instant::now() outside hd-obs; use hd_obs::monotonic_us()".to_string(),
                ));
            }
            if text(t, i) == "SystemTime" {
                raw.push(vio(
                    t[i].line,
                    t[i].col,
                    "no-wallclock",
                    "SystemTime outside hd-obs; wall-clock reads break determinism".to_string(),
                ));
            }
        }
        if rule_in_scope("no-bare-spawn", rel_path)
            && text(t, i) == "thread"
            && text(t, i + 1) == ":"
            && text(t, i + 2) == ":"
            && text(t, i + 3) == "spawn"
        {
            raw.push(vio(
                t[i].line,
                t[i].col,
                "no-bare-spawn",
                "bare thread::spawn; use the hd-pool worker pool (or std::thread::scope)"
                    .to_string(),
            ));
        }
        if rule_in_scope("lossy-cast", rel_path)
            && text(t, i) == "as"
            && t.get(i + 1).map(|n| n.kind) == Some(TokenKind::Ident)
            && is_int_type(text(t, i + 1))
        {
            raw.push(vio(
                t[i].line,
                t[i].col,
                "lossy-cast",
                format!(
                    "`as {}` in byte-accounting code; use hd_tensor::cast or From/try_from",
                    text(t, i + 1)
                ),
            ));
        }
        if text(t, i) == "unsafe" {
            if rule_in_scope("no-unsafe", rel_path) {
                raw.push(vio(
                    t[i].line,
                    t[i].col,
                    "no-unsafe",
                    format!(
                        "`unsafe` outside {UNSAFE_SANCTUARY}; move the kernel there or document an allow"
                    ),
                ));
            } else if rel_path.starts_with(UNSAFE_SANCTUARY)
                && !has_safety_comment(&lexed.comments, t[i].line)
            {
                raw.push(vio(
                    t[i].line,
                    t[i].col,
                    "no-unsafe",
                    format!(
                        "`unsafe` in the SIMD sanctuary without a `SAFETY:` comment within \
                         {SAFETY_COMMENT_WINDOW} lines above"
                    ),
                ));
            }
        }
        if rule_in_scope("no-deprecated", rel_path) && t[i].kind == TokenKind::Ident {
            for (name, decl_file) in &deprecated.names {
                if t[i].text == *name && decl_file != rel_path {
                    raw.push(vio(
                        t[i].line,
                        t[i].col,
                        "no-deprecated",
                        format!("use of deprecated item `{name}` (declared in {decl_file})"),
                    ));
                }
            }
        }
    }

    // --- Semantic rules (the concurrency/determinism pack). ---
    raw.extend(ws.check_file(unit, &excluded));

    // --- Suppression comments. ---
    let token_lines: BTreeSet<u32> = t.iter().map(|t| t.line).collect();
    let mut allows: Vec<(Allow, u32, bool)> = Vec::new(); // (allow, target line, used)
    for c in &lexed.comments {
        match parse_allow(c) {
            AllowParse::NotAnAllow => {}
            AllowParse::Malformed(msg) => raw.push(vio(c.line, 1, "bad-allow", msg)),
            AllowParse::Allow { rule, reason } => {
                // Applies to its own line when the comment trails code,
                // otherwise to the next line that holds any code token.
                let target = if token_lines.contains(&c.line) {
                    c.line
                } else {
                    token_lines
                        .range(c.line + 1..)
                        .next()
                        .copied()
                        .unwrap_or(c.line)
                };
                allows.push((
                    Allow {
                        file: rel_path.to_string(),
                        line: c.line,
                        rule,
                        reason,
                    },
                    target,
                    false,
                ));
            }
        }
    }

    // --- Apply suppressions. ---
    let mut violations = Vec::new();
    for v in raw {
        let mut suppressed = false;
        for (a, target, used) in allows.iter_mut() {
            if a.rule == v.rule && *target == v.line {
                *used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            violations.push(v);
        }
    }
    let mut report = FileReport::default();
    for (a, _, used) in allows {
        if used {
            report.allows.push(a);
        } else {
            violations.push(Violation {
                file: a.file,
                line: a.line,
                col: 1,
                rule: "unused-allow",
                message: format!("allow({}) suppresses nothing; remove it", a.rule),
            });
        }
    }
    violations.sort_by_key(|v| (v.line, v.col));
    report.violations = violations;
    report
}

enum AllowParse {
    NotAnAllow,
    Malformed(String),
    Allow { rule: String, reason: String },
}

/// Parses `hd-lint: allow(<rule>) -- <reason>` comments. Anything starting
/// with `hd-lint:` that does not match exactly is a `bad-allow` violation,
/// so typos fail loudly instead of silently not suppressing.
fn parse_allow(c: &Comment) -> AllowParse {
    let Some(body) = c.text.strip_prefix("hd-lint:") else {
        return AllowParse::NotAnAllow;
    };
    let body = body.trim();
    let Some(rest) = body.strip_prefix("allow(") else {
        return AllowParse::Malformed(format!(
            "unrecognized hd-lint directive `{body}`; expected `allow(<rule>) -- <reason>`"
        ));
    };
    let Some(close) = rest.find(')') else {
        return AllowParse::Malformed("allow( without closing parenthesis".to_string());
    };
    let rule = rest[..close].trim();
    if !RULES.contains(&rule) {
        return AllowParse::Malformed(format!(
            "allow({rule}) names an unknown rule; known rules: {}",
            RULES.join(", ")
        ));
    }
    let tail = rest[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return AllowParse::Malformed(
            "allow() without a reason; append `-- <why this is sound>`".to_string(),
        );
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return AllowParse::Malformed(
            "allow() with an empty reason; justify the suppression".to_string(),
        );
    }
    AllowParse::Allow {
        rule: rule.to_string(),
        reason: reason.to_string(),
    }
}

/// Is there a `SAFETY:` comment (or a `# Safety` doc section line) on
/// `line` or within [`SAFETY_COMMENT_WINDOW`] lines above it?
fn has_safety_comment(comments: &[Comment], line: u32) -> bool {
    let lo = line.saturating_sub(SAFETY_COMMENT_WINDOW);
    comments.iter().any(|c| {
        (lo..=line).contains(&c.line)
            && (c.text.starts_with("SAFETY:") || c.text.starts_with("# Safety"))
    })
}

fn text(t: &[Token], i: usize) -> &str {
    t.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

fn is_int_type(s: &str) -> bool {
    matches!(
        s,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
    )
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]` items.
pub(crate) fn test_regions(t: &[Token]) -> Vec<std::ops::RangeInclusive<u32>> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 1 < t.len() {
        if text(t, i) == "#" && text(t, i + 1) == "[" {
            let end_attr = skip_attr(t, i);
            if is_test_attr(t, i + 2, end_attr) {
                let start_line = t[i].line;
                let end = item_end(t, end_attr);
                let end_line = t
                    .get(end.saturating_sub(1))
                    .map(|t| t.line)
                    .unwrap_or(start_line);
                regions.push(start_line..=end_line);
                i = end;
                continue;
            }
            i = end_attr;
        } else {
            i += 1;
        }
    }
    regions
}

/// Does the attribute body starting at `from` (just past `#[`) mark a test
/// item — `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`, `#[should_panic]`?
fn is_test_attr(t: &[Token], from: usize, end: usize) -> bool {
    match text(t, from) {
        "test" | "should_panic" => true,
        "cfg" => (from..end).any(|j| text(t, j) == "test"),
        _ => false,
    }
}

/// Index just past the `]` closing the attribute opening at `i` (`#`).
fn skip_attr(t: &[Token], i: usize) -> usize {
    let mut j = i + 2; // past `#` `[`
    let mut depth = 1i32;
    while j < t.len() && depth > 0 {
        match text(t, j) {
            "[" => depth += 1,
            "]" => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index just past the item that starts at `i` (further attributes, then
/// either a `;`-terminated declaration or a braced body).
fn item_end(t: &[Token], mut i: usize) -> usize {
    // Skip stacked attributes.
    while text(t, i) == "#" && text(t, i + 1) == "[" {
        i = skip_attr(t, i);
    }
    let mut depth = 0i32;
    while i < t.len() {
        match text(t, i) {
            "{" => {
                // Consume the balanced body; the item ends with it.
                let mut bd = 1i32;
                i += 1;
                while i < t.len() && bd > 0 {
                    match text(t, i) {
                        "{" => bd += 1,
                        "}" => bd -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// The name an attribute at `after_attr` declares: handles `fn`/`struct`/
/// `enum`/`mod`/`trait`/`type`/`const`/`static` items and `pub use path as
/// NAME;` re-exports.
fn declared_name(t: &[Token], after_attr: usize) -> Option<String> {
    let mut i = after_attr;
    while text(t, i) == "#" && text(t, i + 1) == "[" {
        i = skip_attr(t, i);
    }
    let stop = item_end(t, after_attr).min(i + 64);
    let mut saw_use = false;
    let mut last_as: Option<usize> = None;
    let mut last_ident: Option<usize> = None;
    for j in i..stop {
        match text(t, j) {
            "use" => saw_use = true,
            "as" => last_as = Some(j),
            "fn" | "struct" | "enum" | "mod" | "trait" | "type" | "const" | "static"
                if !saw_use =>
            {
                return t.get(j + 1).map(|n| n.text.clone());
            }
            ";" => break,
            _ => {
                if t.get(j).map(|t| t.kind) == Some(TokenKind::Ident) {
                    last_ident = Some(j);
                }
            }
        }
    }
    if saw_use {
        let at = last_as.map(|j| j + 1).or(last_ident)?;
        return t.get(at).map(|n| n.text.clone());
    }
    None
}

/// Is `rule` enforced on the file at workspace-relative `rel` path?
///
/// * Binaries (`main.rs`, `src/bin/`), `examples/`, and the `crates/bench`
///   harness are exempt from the library-code rules.
/// * `crates/obs` is the one crate allowed to read the wall clock.
/// * `lossy-cast` is scoped to the trace/byte-accounting surface where a
///   truncation silently corrupts measurements.
pub fn rule_in_scope(rule: &str, rel: &str) -> bool {
    let library = is_library_source(rel);
    match rule {
        "no-panic" => library,
        "no-wallclock" => library && !rel.starts_with("crates/obs/"),
        // `crates/pool` is the one sanctioned spawn site: it owns the
        // persistent worker pool every other crate is expected to use.
        "no-bare-spawn" => !rel.starts_with("crates/pool/src/"),
        "lossy-cast" => {
            rel.starts_with("crates/trace/src/")
                || rel.starts_with("crates/accel/src/")
                || rel == "crates/tensor/src/sparse.rs"
                || rel == "crates/tensor/src/cast.rs"
        }
        // The SIMD kernels are the one sanctioned `unsafe` site; there the
        // rule mutates into a SAFETY-comment obligation (see `lint_source`).
        "no-unsafe" => !rel.starts_with(UNSAFE_SANCTUARY),
        "no-deprecated" => true,
        // --- the semantic concurrency/determinism pack ---
        "atomic-ordering" | "lock-discipline" => library,
        "unordered-iter" => library && UNORDERED_SURFACE.iter().any(|p| rel.starts_with(p)),
        "float-reduction-order" => {
            library && !FLOAT_SANCTUARIES.iter().any(|p| rel.starts_with(p))
        }
        _ => false,
    }
}

/// Library-crate source files: every `crates/*/src/` tree except the bench
/// harness, plus the root crate's `src/` — minus binary entry points.
fn is_library_source(rel: &str) -> bool {
    if rel.ends_with("/main.rs") || rel.contains("/bin/") {
        return false;
    }
    if rel.starts_with("crates/bench/")
        || rel.starts_with("examples/")
        || rel.starts_with("vendor/")
    {
        return false;
    }
    (rel.starts_with("crates/") && rel.contains("/src/")) || rel.starts_with("src/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> FileReport {
        let dep = collect_deprecated("crates/dnn/src/fake.rs", src);
        lint_source("crates/dnn/src/fake.rs", src, &dep)
    }

    fn rules_hit(r: &FileReport) -> Vec<&'static str> {
        r.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_expect_panic_flagged_in_library_code() {
        let r = lint_lib("fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g() { panic!(\"no\") }\nfn h(x: Option<u8>) { x.expect(\"y\"); }");
        assert_eq!(rules_hit(&r), vec!["no-panic", "no-panic", "no-panic"]);
        assert_eq!(r.violations[0].line, 1);
        assert_eq!(r.violations[1].line, 2);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); panic!(); }\n}";
        let r = lint_lib(src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn binaries_and_examples_are_exempt_from_no_panic() {
        let dep = DeprecatedIndex::default();
        for path in [
            "examples/steal_vgg.rs",
            "src/bin/huffduff.rs",
            "crates/lint/src/main.rs",
            "crates/bench/src/lib.rs",
        ] {
            let r = lint_source(path, "fn main() { None::<u8>.unwrap(); }", &dep);
            assert!(r.violations.is_empty(), "{path}: {:?}", r.violations);
        }
    }

    #[test]
    fn wallclock_flagged_outside_obs_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let dep = DeprecatedIndex::default();
        assert_eq!(
            rules_hit(&lint_source("crates/core/src/x.rs", src, &dep)),
            vec!["no-wallclock"]
        );
        assert!(lint_source("crates/obs/src/registry.rs", src, &dep)
            .violations
            .is_empty());
    }

    #[test]
    fn bare_spawn_flagged_everywhere_but_the_pool() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let dep = DeprecatedIndex::default();
        let r = lint_source("examples/x.rs", src, &dep);
        assert_eq!(rules_hit(&r), vec!["no-bare-spawn"]);
        // The worker-pool crate is the sanctioned spawn site.
        let pool = lint_source("crates/pool/src/lib.rs", src, &dep);
        assert!(pool.violations.is_empty());
    }

    #[test]
    fn unsafe_flagged_everywhere_but_the_simd_sanctuary() {
        let src = "fn f(p: *const f32) -> f32 { unsafe { *p } }";
        let dep = DeprecatedIndex::default();
        for path in [
            "crates/dnn/src/graph.rs",
            "crates/pool/src/lib.rs",
            "examples/steal_vgg.rs",
        ] {
            let r = lint_source(path, src, &dep);
            assert_eq!(rules_hit(&r), vec!["no-unsafe"], "{path}");
        }
        // Inside the sanctuary a SAFETY: comment discharges the rule...
        let safe = "fn f(p: *const f32) -> f32 {\n    // SAFETY: caller keeps p valid\n    unsafe { *p }\n}";
        let r = lint_source("crates/tensor/src/simd/x86.rs", safe, &dep);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // ...a `# Safety` doc section counts for `unsafe fn` items...
        let doc = "/// # Safety\n/// p must be valid.\npub unsafe fn f(p: *const f32) -> f32 {\n    // SAFETY: see above\n    unsafe { *p }\n}";
        let r = lint_source("crates/tensor/src/simd/neon.rs", doc, &dep);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // ...and a bare unsafe block there is still a violation.
        let bare = "fn f(p: *const f32) -> f32 { unsafe { *p } }";
        let r = lint_source("crates/tensor/src/simd/mod.rs", bare, &dep);
        assert_eq!(rules_hit(&r), vec!["no-unsafe"]);
        assert!(r.violations[0].message.contains("SAFETY"));
    }

    #[test]
    fn unsafe_allow_suppresses_with_reason() {
        let src = "unsafe impl Send for P {} // hd-lint: allow(no-unsafe) -- raw ptr only crosses with the pool fence";
        let dep = DeprecatedIndex::default();
        let r = lint_source("crates/pool/src/lib.rs", src, &dep);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.allows.len(), 1);
        assert_eq!(r.allows[0].rule, "no-unsafe");
    }

    #[test]
    fn lossy_cast_scoped_to_accounting_files() {
        let src = "fn f(x: u64) -> usize { x as usize }";
        let dep = DeprecatedIndex::default();
        let r = lint_source("crates/trace/src/lib.rs", src, &dep);
        assert_eq!(rules_hit(&r), vec!["lossy-cast"]);
        // Same code elsewhere is fine (e.g. tensor indexing math).
        assert!(lint_source("crates/dnn/src/graph.rs", src, &dep)
            .violations
            .is_empty());
        // Casting *to* floats is never an integer-width hazard.
        let float = lint_source(
            "crates/trace/src/lib.rs",
            "fn f(x: u64) -> f64 { x as f64 }",
            &dep,
        );
        assert!(float.violations.is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_reported() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // hd-lint: allow(no-panic) -- checked by caller invariant\n    x.unwrap()\n}";
        let r = lint_lib(src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.allows.len(), 1);
        assert_eq!(r.allows[0].rule, "no-panic");
        assert_eq!(r.allows[0].reason, "checked by caller invariant");
    }

    #[test]
    fn trailing_allow_applies_to_its_own_line() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // hd-lint: allow(no-panic) -- infallible here";
        let r = lint_lib(src);
        assert!(r.violations.is_empty());
        assert_eq!(r.allows.len(), 1);
    }

    #[test]
    fn malformed_allow_is_a_violation() {
        for (src, needle) in [
            (
                "// hd-lint: allow(no-such-rule) -- x\nfn f() {}",
                "unknown rule",
            ),
            (
                "// hd-lint: allow(no-panic)\nfn f() { None::<u8>.unwrap(); }",
                "without a reason",
            ),
            ("// hd-lint: deny(no-panic) -- x\nfn f() {}", "unrecognized"),
        ] {
            let r = lint_lib(src);
            assert!(
                r.violations
                    .iter()
                    .any(|v| v.rule == "bad-allow" && v.message.contains(needle)),
                "{src}: {:?}",
                r.violations
            );
        }
    }

    #[test]
    fn unused_allow_is_a_violation() {
        let r = lint_lib("// hd-lint: allow(no-panic) -- stale\nfn f() {}");
        assert_eq!(rules_hit(&r), vec!["unused-allow"]);
        assert!(r.allows.is_empty());
    }

    #[test]
    fn deprecated_declaration_and_use_detected() {
        let decl = "#[deprecated(since = \"0.1.0\", note = \"renamed\")]\npub use boundary_obs as observability;";
        let idx = collect_deprecated("crates/core/src/lib.rs", decl);
        assert_eq!(
            idx.names,
            vec![(
                "observability".to_string(),
                "crates/core/src/lib.rs".to_string()
            )]
        );
        // A use in another file is flagged; the declaring file is exempt.
        let user = "fn f() { huffduff_core::observability::emit(); }";
        let r = lint_source("crates/trace/src/lib.rs", user, &idx);
        assert_eq!(rules_hit(&r), vec!["no-deprecated"]);
        let self_use = lint_source("crates/core/src/lib.rs", decl, &idx);
        assert!(self_use.violations.is_empty());
    }

    #[test]
    fn deprecated_fn_name_detected() {
        let decl = "#[deprecated]\npub fn old_api() {}";
        let idx = collect_deprecated("crates/dnn/src/a.rs", decl);
        assert_eq!(idx.names[0].0, "old_api");
    }

    #[test]
    fn strings_and_comments_never_trigger_rules() {
        let r = lint_lib("fn f() { let s = \"call .unwrap() and panic!\"; } // panic! unwrap()");
        assert!(r.violations.is_empty());
    }

    #[test]
    fn violation_display_names_file_line_and_rule() {
        let r = lint_lib("fn f(x: Option<u8>) -> u8 { x.unwrap() }");
        let line = r.violations[0].to_string();
        assert!(line.starts_with("crates/dnn/src/fake.rs:1:"), "{line}");
        assert!(line.contains("[no-panic]"), "{line}");
    }
}
