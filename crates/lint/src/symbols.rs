//! The workspace symbol index: every named item the parser recovers, keyed
//! by the crate its file belongs to (derived from the workspace-relative
//! path), plus derived lookup tables the semantic rules need — the set of
//! function/method names per crate (for call-graph resolution) and the set
//! of struct fields declared with an unordered map/set type (so
//! `unordered-iter` can follow a `HashMap` field across files within the
//! same crate).

use crate::lexer::{lex, Lexed, TokenKind};
use crate::parser::{parse_tokens, Item, ItemKind, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// One source file, lexed and parsed once, shared by every analysis pass.
#[derive(Clone, Debug)]
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The original source (tokens carry byte spans into it).
    pub src: String,
    /// Lex result: tokens + comments.
    pub lexed: Lexed,
    /// Parse result: the item tree.
    pub parsed: ParsedFile,
}

impl FileUnit {
    /// Lexes and parses `src` once.
    pub fn analyze(rel: &str, src: &str) -> FileUnit {
        let lexed = lex(src);
        let parsed = parse_tokens(&lexed.tokens);
        FileUnit {
            rel: rel.to_string(),
            src: src.to_string(),
            lexed,
            parsed,
        }
    }
}

/// The crate a workspace-relative path belongs to: `crates/<name>/...` maps
/// to `<name>`, the root crate's `src/` maps to `huffduff`, everything else
/// (examples, top-level tests) to its first path component.
pub fn crate_of(rel: &str) -> &str {
    if let Some(rest) = rel.strip_prefix("crates/") {
        return rest.split('/').next().unwrap_or(rest);
    }
    if rel.starts_with("src/") || !rel.contains('/') {
        return "huffduff";
    }
    rel.split('/').next().unwrap_or(rel)
}

/// One indexed symbol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// The crate the declaring file belongs to.
    pub krate: String,
    /// Declared name.
    pub name: String,
    /// Item kind.
    pub kind: ItemKind,
    /// Declaring file (workspace-relative).
    pub file: String,
    /// 1-indexed declaration line.
    pub line: u32,
    /// For associated items: the impl self-type or trait name.
    pub parent: Option<String>,
}

/// The workspace-wide symbol index.
#[derive(Clone, Debug, Default)]
pub struct SymbolIndex {
    /// Every named symbol, in (crate, file, line) order.
    pub symbols: Vec<Symbol>,
    /// `(crate, fn_name)` for every function/method — the call-graph
    /// resolution table.
    pub fns: BTreeSet<(String, String)>,
    /// `(crate, field_name)` for struct fields whose declared type mentions
    /// `HashMap`/`HashSet` — followed by the `unordered-iter` rule.
    pub unordered_fields: BTreeSet<(String, String)>,
}

impl SymbolIndex {
    /// Builds the index over every analyzed file.
    pub fn build(files: &[FileUnit]) -> SymbolIndex {
        let mut idx = SymbolIndex::default();
        for fu in files {
            let krate = crate_of(&fu.rel).to_string();
            collect_items(&fu.parsed.items, &krate, fu, None, &mut idx);
        }
        idx.symbols
            .sort_by(|a, b| (&a.krate, &a.file, a.line).cmp(&(&b.krate, &b.file, b.line)));
        idx
    }

    /// Is `name` a function or method declared in `krate`?
    pub fn is_fn_in(&self, krate: &str, name: &str) -> bool {
        self.fns
            .contains(&(krate.to_string(), name.to_string()))
    }

    /// Number of indexed symbols (the JSON summary counter).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Per-crate symbol counts, sorted by crate name (for `--symbols`).
    pub fn per_crate(&self) -> BTreeMap<&str, usize> {
        let mut out = BTreeMap::new();
        for s in &self.symbols {
            *out.entry(s.krate.as_str()).or_insert(0) += 1;
        }
        out
    }
}

fn collect_items(
    items: &[Item],
    krate: &str,
    fu: &FileUnit,
    parent: Option<&str>,
    idx: &mut SymbolIndex,
) {
    for it in items {
        if let Some(name) = &it.name {
            idx.symbols.push(Symbol {
                krate: krate.to_string(),
                name: name.clone(),
                kind: it.kind,
                file: fu.rel.clone(),
                line: it.line,
                parent: parent.map(str::to_string),
            });
            if it.kind == ItemKind::Fn {
                idx.fns.insert((krate.to_string(), name.clone()));
            }
            if it.kind == ItemKind::Struct {
                for field in unordered_fields_of(it, fu) {
                    idx.unordered_fields.insert((krate.to_string(), field));
                }
            }
        }
        let next_parent = match it.kind {
            // Methods hang off the impl self-type (or the trait name).
            ItemKind::Impl => it.name.as_deref().or(it.trait_name.as_deref()),
            ItemKind::Trait => it.name.as_deref(),
            _ => parent,
        };
        collect_items(&it.children, krate, fu, next_parent, idx);
    }
}

/// Field names in a struct body declared with a `HashMap`/`HashSet` type:
/// scans `name : ... HashMap ... ,` entries in the body token range.
fn unordered_fields_of(it: &Item, fu: &FileUnit) -> Vec<String> {
    let Some((body_start, body_end)) = it.body else {
        return Vec::new();
    };
    let t = &fu.lexed.tokens;
    let mut out = Vec::new();
    let mut i = body_start;
    while i < body_end.min(t.len()) {
        // A field entry: `ident :` at angle-depth 0, value type up to the
        // `,` at depth 0 (or the body end).
        if t[i].kind == TokenKind::Ident && i + 1 < body_end && t[i + 1].text == ":" {
            let name = t[i].text.clone();
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut unordered = false;
            while j < body_end.min(t.len()) {
                match t[j].text.as_str() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "," if depth <= 0 => break,
                    "HashMap" | "HashSet" => unordered = true,
                    _ => {}
                }
                j += 1;
            }
            if unordered {
                out.push(name);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Renders the human-readable symbol listing (the binary's `--symbols`
/// mode): per-crate counts, then every symbol as `crate file:line kind
/// [parent::]name`.
pub fn render(idx: &SymbolIndex) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (krate, n) in idx.per_crate() {
        let _ = writeln!(out, "{krate}: {n} symbol(s)");
    }
    for s in &idx.symbols {
        let parent = s
            .parent
            .as_deref()
            .map(|p| format!("{p}::"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  {} {}:{} {:?} {parent}{}",
            s.krate, s.file, s.line, s.kind, s.name
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_workspace_layout() {
        assert_eq!(crate_of("crates/pool/src/lib.rs"), "pool");
        assert_eq!(crate_of("crates/core/src/channel.rs"), "core");
        assert_eq!(crate_of("src/main.rs"), "huffduff");
        assert_eq!(crate_of("examples/steal_vgg.rs"), "examples");
    }

    #[test]
    fn index_records_fns_methods_and_parents() {
        let fu = FileUnit::analyze(
            "crates/core/src/x.rs",
            "pub fn free() {}\n\
             pub struct S;\n\
             impl S {\n    pub fn method(&self) {}\n}\n\
             impl Display for S {\n    fn fmt(&self) {}\n}\n",
        );
        let idx = SymbolIndex::build(&[fu]);
        assert!(idx.is_fn_in("core", "free"));
        assert!(idx.is_fn_in("core", "method"));
        assert!(idx.is_fn_in("core", "fmt"));
        assert!(!idx.is_fn_in("pool", "free"), "crate-scoped");
        let method = idx
            .symbols
            .iter()
            .find(|s| s.name == "method")
            .expect("indexed");
        assert_eq!(method.parent.as_deref(), Some("S"));
    }

    #[test]
    fn unordered_struct_fields_are_recorded_per_crate() {
        let fu = FileUnit::analyze(
            "crates/trace/src/t.rs",
            "pub struct Cache {\n\
                 pub capacity_of: std::collections::HashMap<u64, u64>,\n\
                 pub names: Vec<String>,\n\
                 seen: HashSet<u32>,\n\
             }\n",
        );
        let idx = SymbolIndex::build(&[fu]);
        let fields: Vec<&str> = idx
            .unordered_fields
            .iter()
            .map(|(_, f)| f.as_str())
            .collect();
        assert_eq!(fields, vec!["capacity_of", "seen"]);
        assert!(idx
            .unordered_fields
            .iter()
            .all(|(k, _)| k == "trace"));
    }

    #[test]
    fn per_crate_counts_are_sorted_and_render_is_stable() {
        let a = FileUnit::analyze("crates/b/src/lib.rs", "pub fn one() {}");
        let b = FileUnit::analyze("crates/a/src/lib.rs", "pub fn two() {}\npub struct T;");
        let idx = SymbolIndex::build(&[a, b]);
        let counts: Vec<(&str, usize)> = idx.per_crate().into_iter().collect();
        assert_eq!(counts, vec![("a", 2), ("b", 1)]);
        let text = render(&idx);
        assert!(text.contains("a: 2 symbol(s)"), "{text}");
        assert!(text.contains("crates/b/src/lib.rs:1"), "{text}");
    }
}
