//! A lightweight recursive-descent *item* parser over the [`crate::lexer`]
//! token stream: functions, type definitions, impl blocks (with their
//! methods), trait definitions, modules, `use` trees, constants, and
//! macro invocations — each with its attributes and its exact byte span in
//! the original source.
//!
//! Like the lexer it is built on, the parser is deliberately **forgiving**:
//! it never fails and never panics. Anything it cannot classify is consumed
//! as an [`ItemKind::Other`] item (skipped to the next `;` or past one
//! balanced `{...}` body), so a rare misparse costs one item's structure,
//! never a cascade or a crash. This is enough structure for the semantic
//! rule pack ([`crate::semantic`]): rules need to know *which function* a
//! token lives in, what a file declares, and where bodies start and end —
//! not full expression trees.
//!
//! Spans are **byte offsets** into the source and round-trip by
//! construction: `&src[item.span.start..item.span.end]` is exactly the
//! text the item was parsed from (property-tested in
//! `crates/lint/tests/parser_props.rs`).

use crate::lexer::{lex, Token, TokenKind};

/// Half-open byte range `[start, end)` in the original source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the item's first token.
    pub start: usize,
    /// Byte offset one past the item's last token.
    pub end: usize,
}

impl Span {
    /// The spanned source slice, when the span lies on char boundaries
    /// (always true for spans produced by the parser).
    pub fn slice<'s>(&self, src: &'s str) -> Option<&'s str> {
        src.get(self.start..self.end)
    }
}

/// What kind of item was parsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn name(...) { ... }` (free function, method, or trait fn).
    Fn,
    /// `struct Name ...`
    Struct,
    /// `enum Name { ... }`
    Enum,
    /// `union Name { ... }`
    Union,
    /// `trait Name { ... }` — children are the trait items.
    Trait,
    /// `impl Type { ... }` / `impl Trait for Type { ... }` — children are
    /// the associated items.
    Impl,
    /// `mod name { ... }` or `mod name;` — children are the body items.
    Mod,
    /// `use path::{...};`
    Use,
    /// `extern crate name;`
    ExternCrate,
    /// `const NAME: T = ...;`
    Const,
    /// `static NAME: T = ...;`
    Static,
    /// `type Name = ...;`
    TypeAlias,
    /// `macro_rules! name { ... }` or an item-position `name!(...)`.
    Macro,
    /// Anything the parser could not classify (consumed forgivingly).
    Other,
}

/// One parsed item.
#[derive(Clone, Debug)]
pub struct Item {
    /// The item's kind.
    pub kind: ItemKind,
    /// Declared name: the fn/type/mod/const name, the self-type path
    /// segment for impls, the alias (or last segment) for `use`.
    pub name: Option<String>,
    /// For `impl Trait for Type`, the trait path's last segment.
    pub trait_name: Option<String>,
    /// Exact byte span in the source (attributes included).
    pub span: Span,
    /// 1-indexed line the item starts on (its first attribute).
    pub line: u32,
    /// 1-indexed line the item ends on.
    pub end_line: u32,
    /// First path segment of each attribute (`cfg`, `derive`,
    /// `deprecated`, `test`, ...), in source order.
    pub attrs: Vec<String>,
    /// Token-index range (exclusive) of the braced body's interior, when
    /// the item has one — indices into the token slice the file was
    /// parsed from.
    pub body: Option<(usize, usize)>,
    /// Nested items: mod bodies, impl/trait associated items.
    pub children: Vec<Item>,
}

impl Item {
    /// Does this item (or an ancestor attribute set) carry `#[attr]`?
    pub fn has_attr(&self, attr: &str) -> bool {
        self.attrs.iter().any(|a| a == attr)
    }
}

/// The parse result of one source file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl ParsedFile {
    /// Depth-first walk over all items, outer items before their children.
    pub fn walk(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        fn rec<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
            for it in items {
                out.push(it);
                rec(&it.children, out);
            }
        }
        rec(&self.items, &mut out);
        out
    }

    /// The innermost `fn` item whose line range contains `line`, if any.
    pub fn enclosing_fn(&self, line: u32) -> Option<&Item> {
        let mut best: Option<&Item> = None;
        for it in self.walk() {
            if it.kind == ItemKind::Fn && it.line <= line && line <= it.end_line {
                let better = match best {
                    None => true,
                    // Innermost = latest start among containers.
                    Some(b) => it.line >= b.line,
                };
                if better {
                    best = Some(it);
                }
            }
        }
        best
    }
}

/// Parses `src` into items (lexes internally). Never fails.
pub fn parse(src: &str) -> ParsedFile {
    parse_tokens(&lex(src).tokens)
}

/// Parses an already-lexed token slice into items. Body token ranges index
/// into `tokens`. Never fails.
pub fn parse_tokens(tokens: &[Token]) -> ParsedFile {
    let mut p = Parser {
        t: tokens,
        pos: 0,
        lim: tokens.len(),
    };
    ParsedFile {
        items: p.items(usize::MAX),
    }
}

/// Keywords that can begin (or modify) an item; used to recover cleanly
/// from unparseable stretches.
const MODIFIERS: [&str; 5] = ["pub", "default", "unsafe", "async", "auto"];

struct Parser<'t> {
    t: &'t [Token],
    pos: usize,
    /// Hard token limit: while parsing the interior of a braced parent,
    /// `lim` is the index of the parent's closing `}` so no child scan —
    /// however confused by garbage — can consume past it (which would
    /// produce child spans escaping the parent span).
    lim: usize,
}

impl<'t> Parser<'t> {
    fn text(&self, at: usize) -> &str {
        if at >= self.lim {
            return "";
        }
        self.t.get(at).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn kind(&self, at: usize) -> Option<TokenKind> {
        if at >= self.lim {
            return None;
        }
        self.t.get(at).map(|t| t.kind)
    }

    fn eof(&self) -> bool {
        self.pos >= self.lim.min(self.t.len())
    }

    /// Parses items until `}` (when nested) or EOF; `stop` is the index of
    /// the closing brace's matching region (use `usize::MAX` at top level).
    fn items(&mut self, stop: usize) -> Vec<Item> {
        let mut out = Vec::new();
        while !self.eof() && self.pos < stop {
            if self.text(self.pos) == "}" {
                break;
            }
            let before = self.pos;
            if let Some(item) = self.item() {
                out.push(item);
            }
            if self.pos == before {
                // Forgiving: never spin on a token we cannot start from.
                self.pos += 1;
            }
        }
        out
    }

    /// Parses one item starting at the current position, or returns `None`
    /// (without consuming) when the position cannot start an item.
    fn item(&mut self) -> Option<Item> {
        let start_idx = self.pos;
        let mut attrs = Vec::new();

        // Leading attributes: `#[...]` and inner `#![...]`.
        while self.text(self.pos) == "#" {
            let mut j = self.pos + 1;
            if self.text(j) == "!" {
                j += 1;
            }
            if self.text(j) != "[" {
                break;
            }
            if let Some(name) = self.t.get(j + 1) {
                if name.kind == TokenKind::Ident {
                    attrs.push(name.text.clone());
                }
            }
            self.pos = self.skip_balanced(j, "[", "]");
        }

        // Visibility and item modifiers (any order, all optional).
        loop {
            match self.text(self.pos) {
                "pub" => {
                    self.pos += 1;
                    if self.text(self.pos) == "(" {
                        self.pos = self.skip_balanced(self.pos, "(", ")");
                    }
                }
                "default" | "unsafe" | "async" | "auto" => self.pos += 1,
                "extern" => {
                    if self.text(self.pos + 1) == "crate" {
                        // `extern crate name;`
                        self.pos += 2;
                        let name = self.ident_here();
                        self.scan_to_semi();
                        return Some(self.finish(
                            start_idx,
                            ItemKind::ExternCrate,
                            name,
                            None,
                            attrs,
                            None,
                            Vec::new(),
                        ));
                    }
                    self.pos += 1;
                    if self.kind(self.pos) == Some(TokenKind::Str) {
                        self.pos += 1;
                    }
                    if self.text(self.pos) == "{" {
                        // Foreign block `extern "C" { ... }`: opaque.
                        let body = self.brace_body();
                        return Some(self.finish(
                            start_idx,
                            ItemKind::Other,
                            None,
                            None,
                            attrs,
                            body,
                            Vec::new(),
                        ));
                    }
                }
                "const" => {
                    // `const fn` is a modifier; `const NAME` is an item.
                    if self.text(self.pos + 1) == "fn"
                        || MODIFIERS.contains(&self.text(self.pos + 1))
                        || self.text(self.pos + 1) == "extern"
                    {
                        self.pos += 1;
                    } else {
                        self.pos += 1;
                        let name = self.ident_here();
                        self.scan_to_semi();
                        return Some(self.finish(
                            start_idx,
                            ItemKind::Const,
                            name,
                            None,
                            attrs,
                            None,
                            Vec::new(),
                        ));
                    }
                }
                _ => break,
            }
        }

        match self.text(self.pos) {
            "fn" => {
                self.pos += 1;
                let name = self.ident_here();
                let body = self.signature_then_body();
                Some(self.finish(start_idx, ItemKind::Fn, name, None, attrs, body, Vec::new()))
            }
            kw @ ("struct" | "enum" | "union") => {
                let kind = match kw {
                    "struct" => ItemKind::Struct,
                    "enum" => ItemKind::Enum,
                    _ => ItemKind::Union,
                };
                self.pos += 1;
                let name = self.ident_here();
                let body = self.signature_then_body();
                Some(self.finish(start_idx, kind, name, None, attrs, body, Vec::new()))
            }
            "trait" => {
                self.pos += 1;
                let name = self.ident_here();
                let (body, children) = self.braced_items();
                Some(self.finish(start_idx, ItemKind::Trait, name, None, attrs, body, children))
            }
            "impl" => {
                self.pos += 1;
                let (name, trait_name) = self.impl_header();
                let (body, children) = self.braced_items();
                Some(self.finish(start_idx, ItemKind::Impl, name, trait_name, attrs, body, children))
            }
            "mod" => {
                self.pos += 1;
                let name = self.ident_here();
                if self.text(self.pos) == ";" {
                    self.pos += 1;
                    return Some(self.finish(
                        start_idx,
                        ItemKind::Mod,
                        name,
                        None,
                        attrs,
                        None,
                        Vec::new(),
                    ));
                }
                let (body, children) = self.braced_items();
                Some(self.finish(start_idx, ItemKind::Mod, name, None, attrs, body, children))
            }
            "use" => {
                self.pos += 1;
                let name = self.use_name();
                Some(self.finish(start_idx, ItemKind::Use, name, None, attrs, None, Vec::new()))
            }
            "static" => {
                self.pos += 1;
                if self.text(self.pos) == "mut" {
                    self.pos += 1;
                }
                let name = self.ident_here();
                self.scan_to_semi();
                Some(self.finish(start_idx, ItemKind::Static, name, None, attrs, None, Vec::new()))
            }
            "type" => {
                self.pos += 1;
                let name = self.ident_here();
                self.scan_to_semi();
                Some(self.finish(
                    start_idx,
                    ItemKind::TypeAlias,
                    name,
                    None,
                    attrs,
                    None,
                    Vec::new(),
                ))
            }
            "macro_rules" => {
                self.pos += 1; // `macro_rules`
                if self.text(self.pos) == "!" {
                    self.pos += 1;
                }
                let name = self.ident_here();
                let body = self.brace_body();
                Some(self.finish(start_idx, ItemKind::Macro, name, None, attrs, body, Vec::new()))
            }
            _ => {
                // Item-position macro invocation: `name!(...)` / `name! { ... }`.
                if self.kind(self.pos) == Some(TokenKind::Ident) && self.text(self.pos + 1) == "!" {
                    let name = self.ident_here();
                    self.pos += 1; // `!`
                    let body = match self.text(self.pos) {
                        "{" => self.brace_body(),
                        "(" => {
                            self.pos = self.skip_balanced(self.pos, "(", ")");
                            if self.text(self.pos) == ";" {
                                self.pos += 1;
                            }
                            None
                        }
                        "[" => {
                            self.pos = self.skip_balanced(self.pos, "[", "]");
                            if self.text(self.pos) == ";" {
                                self.pos += 1;
                            }
                            None
                        }
                        _ => None,
                    };
                    return Some(self.finish(
                        start_idx,
                        ItemKind::Macro,
                        name,
                        None,
                        attrs,
                        body,
                        Vec::new(),
                    ));
                }
                if self.pos > start_idx {
                    // We consumed attributes/modifiers but found no item
                    // keyword: recover as Other so the span stays honest.
                    self.scan_to_semi_or_body();
                    return Some(self.finish(
                        start_idx,
                        ItemKind::Other,
                        None,
                        None,
                        attrs,
                        None,
                        Vec::new(),
                    ));
                }
                None
            }
        }
    }

    /// The identifier at the current position, consumed; `None` when the
    /// next token is not an identifier (forgiving).
    fn ident_here(&mut self) -> Option<String> {
        match self.t.get(self.pos) {
            Some(t) if t.kind == TokenKind::Ident => {
                self.pos += 1;
                Some(t.text.clone())
            }
            _ => None,
        }
    }

    /// Skips a signature (generics, params, return type, where clause) up
    /// to its `{` body or terminating `;`, then consumes the body if
    /// present. Returns the body's interior token range.
    fn signature_then_body(&mut self) -> Option<(usize, usize)> {
        let mut depth = 0i32;
        while !self.eof() {
            match self.text(self.pos) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => return self.brace_body(),
                ";" if depth <= 0 => {
                    self.pos += 1;
                    return None;
                }
                _ => {}
            }
            self.pos += 1;
        }
        None
    }

    /// Consumes a `{ ... }` starting at the current position (if present)
    /// and returns the interior token-index range.
    fn brace_body(&mut self) -> Option<(usize, usize)> {
        if self.text(self.pos) != "{" {
            return None;
        }
        let open = self.pos;
        self.pos = self.skip_balanced(open, "{", "}");
        // Interior excludes both braces; `pos` sits just past the `}`.
        Some((open + 1, self.pos.saturating_sub(1)))
    }

    /// Like [`Parser::signature_then_body`], but parses the body interior
    /// as nested items (for traits, impls, and modules).
    fn braced_items(&mut self) -> (Option<(usize, usize)>, Vec<Item>) {
        // Scan the header up to `{` or `;`.
        let mut depth = 0i32;
        while !self.eof() {
            match self.text(self.pos) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => break,
                ";" if depth <= 0 => {
                    self.pos += 1;
                    return (None, Vec::new());
                }
                _ => {}
            }
            self.pos += 1;
        }
        if self.text(self.pos) != "{" {
            return (None, Vec::new());
        }
        let open = self.pos;
        let close = self.skip_balanced(open, "{", "}"); // index just past `}`
        self.pos = open + 1;
        // Children parse under a clamped limit: nothing inside the body can
        // scan past the parent's closing brace.
        let saved_lim = self.lim;
        self.lim = close.saturating_sub(1).min(saved_lim);
        let children = self.items(close.saturating_sub(1));
        self.lim = saved_lim;
        self.pos = close;
        (Some((open + 1, close.saturating_sub(1))), children)
    }

    /// Extracts `(self_type, trait_name)` from an impl header, consuming
    /// tokens up to (not including) the `{` or `;`.
    fn impl_header(&mut self) -> (Option<String>, Option<String>) {
        let mut depth = 0i32;
        let mut last_ident: Option<String> = None;
        let mut trait_name: Option<String> = None;
        while !self.eof() {
            let txt = self.text(self.pos);
            match txt {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | ";" if depth <= 0 => break,
                "for" if depth <= 0 => {
                    trait_name = last_ident.take();
                }
                "where" if depth <= 0 => {
                    // Type path is complete; keep scanning to the brace.
                }
                _ => {
                    if self.kind(self.pos) == Some(TokenKind::Ident)
                        && !matches!(txt, "dyn" | "mut" | "as")
                    {
                        last_ident = Some(txt.to_string());
                    }
                }
            }
            self.pos += 1;
        }
        (last_ident, trait_name)
    }

    /// The declared name of a `use` item: the alias after the last `as`,
    /// else the last path segment; consumes through the `;`.
    fn use_name(&mut self) -> Option<String> {
        let mut brace = 0i32;
        let mut last_as: Option<String> = None;
        let mut last_ident: Option<String> = None;
        while !self.eof() {
            let txt = self.text(self.pos);
            match txt {
                "{" => brace += 1,
                "}" => brace -= 1,
                ";" if brace <= 0 => {
                    self.pos += 1;
                    break;
                }
                "as" => {
                    if let Some(t) = self.t.get(self.pos + 1) {
                        if t.kind == TokenKind::Ident {
                            last_as = Some(t.text.clone());
                        }
                    }
                }
                _ => {
                    if self.kind(self.pos) == Some(TokenKind::Ident) && txt != "as" {
                        last_ident = Some(txt.to_string());
                    }
                }
            }
            self.pos += 1;
        }
        last_as.or(last_ident)
    }

    /// Consumes through the next `;` at bracket depth 0 (for declaration
    /// items whose initializer may contain braces, e.g. `const X: [u8; 2]
    /// = { ... };`).
    fn scan_to_semi(&mut self) {
        let mut depth = 0i32;
        while !self.eof() {
            match self.text(self.pos) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    self.pos = self.skip_balanced(self.pos, "{", "}");
                    continue;
                }
                ";" if depth <= 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Forgiving recovery: consume to the next `;` at depth 0, or through
    /// one balanced `{...}` body, whichever comes first.
    fn scan_to_semi_or_body(&mut self) {
        let mut depth = 0i32;
        while !self.eof() {
            match self.text(self.pos) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => {
                    self.pos = self.skip_balanced(self.pos, "{", "}");
                    return;
                }
                ";" if depth <= 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Index just past the token matching the `open` at index `at`.
    fn skip_balanced(&self, at: usize, open: &str, close: &str) -> usize {
        let mut j = at;
        let mut depth = 0i32;
        while j < self.lim.min(self.t.len()) {
            let txt = self.text(j);
            if txt == open {
                depth += 1;
            } else if txt == close {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        j
    }

    /// Builds the item with its span from `start_idx` to the last consumed
    /// token.
    #[allow(clippy::too_many_arguments)] // internal constructor, one call site per item kind
    fn finish(
        &self,
        start_idx: usize,
        kind: ItemKind,
        name: Option<String>,
        trait_name: Option<String>,
        attrs: Vec<String>,
        body: Option<(usize, usize)>,
        children: Vec<Item>,
    ) -> Item {
        let first = self.t.get(start_idx);
        let last = self.t.get(self.pos.saturating_sub(1)).or(first);
        Item {
            kind,
            name,
            trait_name,
            span: Span {
                start: first.map(|t| t.start).unwrap_or(0),
                end: last.map(|t| t.end).unwrap_or(0),
            },
            line: first.map(|t| t.line).unwrap_or(1),
            end_line: last.map(|t| t.line).unwrap_or(1),
            attrs,
            body,
            children,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(items: &[Item]) -> Vec<(&str, ItemKind)> {
        items
            .iter()
            .map(|i| (i.name.as_deref().unwrap_or("?"), i.kind))
            .collect()
    }

    #[test]
    fn top_level_items_with_names_and_kinds() {
        let src = "use std::sync::Mutex;\n\
                   pub struct Foo { x: u32 }\n\
                   pub enum E { A, B }\n\
                   const LIMIT: usize = 4;\n\
                   static COUNT: u64 = 0;\n\
                   pub type Alias = Vec<u8>;\n\
                   pub fn run(x: u32) -> u32 { x + 1 }\n";
        let p = parse(src);
        assert_eq!(
            names(&p.items),
            vec![
                ("Mutex", ItemKind::Use),
                ("Foo", ItemKind::Struct),
                ("E", ItemKind::Enum),
                ("LIMIT", ItemKind::Const),
                ("COUNT", ItemKind::Static),
                ("Alias", ItemKind::TypeAlias),
                ("run", ItemKind::Fn),
            ]
        );
    }

    #[test]
    fn spans_round_trip_to_source_slices() {
        let src = "fn a() { 1 + 1; }\n\npub struct B;\n\nfn c(x: &str) -> usize { x.len() }\n";
        let p = parse(src);
        let slices: Vec<&str> = p
            .items
            .iter()
            .map(|i| i.span.slice(src).expect("span on char boundary"))
            .collect();
        assert_eq!(
            slices,
            vec![
                "fn a() { 1 + 1; }",
                "pub struct B;",
                "fn c(x: &str) -> usize { x.len() }"
            ]
        );
    }

    #[test]
    fn impl_blocks_carry_type_trait_and_methods() {
        let src = "impl Display for Report<'_> {\n\
                       fn fmt(&self, f: &mut Formatter) -> Result { Ok(()) }\n\
                   }\n\
                   impl Report<'_> {\n\
                       pub fn new() -> Self { Report {} }\n\
                       fn helper(&self) {}\n\
                   }\n";
        let p = parse(src);
        assert_eq!(p.items.len(), 2);
        let ti = &p.items[0];
        assert_eq!(ti.kind, ItemKind::Impl);
        assert_eq!(ti.trait_name.as_deref(), Some("Display"));
        assert_eq!(ti.name.as_deref(), Some("Report"));
        assert_eq!(names(&ti.children), vec![("fmt", ItemKind::Fn)]);
        let ii = &p.items[1];
        assert_eq!(ii.trait_name, None);
        assert_eq!(ii.name.as_deref(), Some("Report"));
        assert_eq!(
            names(&ii.children),
            vec![("new", ItemKind::Fn), ("helper", ItemKind::Fn)]
        );
    }

    #[test]
    fn modules_nest_and_attrs_are_recorded() {
        let src = "#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() { assert!(true); }\n}\n";
        let p = parse(src);
        assert_eq!(p.items.len(), 1);
        let m = &p.items[0];
        assert_eq!(m.kind, ItemKind::Mod);
        assert_eq!(m.name.as_deref(), Some("tests"));
        assert!(m.has_attr("cfg"));
        assert_eq!(m.children.len(), 2);
        let t = &m.children[1];
        assert_eq!(t.kind, ItemKind::Fn);
        assert!(t.has_attr("test"));
    }

    #[test]
    fn traits_with_default_bodies_and_signatures() {
        let src = "pub trait Model: Sync {\n\
                       fn shape(&self) -> Shape3;\n\
                       fn observe(&self, x: &T) -> R { self.shape(); todo!() }\n\
                   }\n";
        let p = parse(src);
        let t = &p.items[0];
        assert_eq!(t.kind, ItemKind::Trait);
        assert_eq!(t.name.as_deref(), Some("Model"));
        assert_eq!(t.children.len(), 2);
        assert_eq!(t.children[0].body, None, "signature has no body");
        assert!(t.children[1].body.is_some(), "default body recorded");
    }

    #[test]
    fn const_fn_and_modifiers_parse_as_fns() {
        let src = "pub const fn k() -> usize { 4 }\n\
                   pub unsafe fn u(p: *const u8) -> u8 { *p }\n\
                   pub async fn a() {}\n\
                   extern \"C\" fn c() {}\n";
        let p = parse(src);
        let kinds: Vec<ItemKind> = p.items.iter().map(|i| i.kind).collect();
        assert_eq!(kinds, vec![ItemKind::Fn; 4]);
        assert_eq!(p.items[0].name.as_deref(), Some("k"));
    }

    #[test]
    fn macro_invocations_and_macro_rules() {
        let src = "macro_rules! gen { () => {}; }\nthread_local! { static X: u8 = 0; }\n";
        let p = parse(src);
        assert_eq!(
            names(&p.items),
            vec![("gen", ItemKind::Macro), ("thread_local", ItemKind::Macro)]
        );
    }

    #[test]
    fn enclosing_fn_finds_the_innermost_function() {
        let src = "fn outer() {\n    let x = 1;\n}\n\nmod m {\n    fn inner() {\n        let y = 2;\n    }\n}\n";
        let p = parse(src);
        assert_eq!(
            p.enclosing_fn(2).map(|i| i.name.as_deref()),
            Some(Some("outer"))
        );
        assert_eq!(
            p.enclosing_fn(7).map(|i| i.name.as_deref()),
            Some(Some("inner"))
        );
        assert!(p.enclosing_fn(4).is_none(), "blank line between items");
    }

    #[test]
    fn use_aliases_prefer_the_as_name() {
        let p = parse("pub use crate::boundary_obs as observability;\nuse std::collections::{BTreeMap, BTreeSet};\n");
        assert_eq!(p.items[0].name.as_deref(), Some("observability"));
        // Grouped imports keep the last segment (good enough for the index).
        assert_eq!(p.items[1].kind, ItemKind::Use);
    }

    #[test]
    fn parser_never_panics_on_garbage() {
        for src in [
            "",
            "}}}}",
            "fn",
            "fn (",
            "impl {",
            "struct ;;;",
            "#[cfg(",
            "pub pub pub",
            "fn f( { ) }",
            "trait T { fn",
            "\u{1F600} fn g() {}",
            "macro_rules!",
            "extern \"C\" {",
        ] {
            let _ = parse(src);
        }
    }

    #[test]
    fn forgiving_recovery_keeps_later_items() {
        // An unparseable stretch must not swallow the following fn.
        let src = "gibberish tokens ; fn real() {}\n";
        let p = parse(src);
        assert!(p
            .items
            .iter()
            .any(|i| i.kind == ItemKind::Fn && i.name.as_deref() == Some("real")));
    }
}
