//! End-to-end tests of the `hd-lint` binary: seeded violation fixtures are
//! materialized as throwaway mini-workspaces under the target tmpdir, and
//! the real binary (via `CARGO_BIN_EXE_hd-lint`) must flag each one by
//! file, line, and rule — and exit zero on a clean tree.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Creates a throwaway workspace (Cargo.toml + crates/) with the given
/// `(relative path, contents)` files.
fn mk_ws(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clear stale fixture workspace");
    }
    std::fs::create_dir_all(root.join("crates")).expect("mkdir crates");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    for (rel, contents) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("mkdir fixture dir");
        std::fs::write(path, contents).expect("write fixture file");
    }
    root
}

fn run_lint(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hd-lint"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn hd-lint")
}

/// The six seeded violation fixtures, one per rule family plus the two
/// suppression meta-rules.
fn seeded_workspace() -> PathBuf {
    mk_ws(
        "seeded-violations",
        &[
            (
                "crates/core/src/panics.rs",
                "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\npub fn g(x: Option<u8>) -> u8 {\n    x.expect(\"present\")\n}\npub fn h() {\n    panic!(\"boom\");\n}\n",
            ),
            (
                "crates/core/src/clock.rs",
                "pub fn now() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
            ),
            (
                "crates/core/src/spawn.rs",
                "pub fn go() {\n    std::thread::spawn(|| {});\n}\n",
            ),
            (
                "crates/trace/src/casts.rs",
                "pub fn narrow(x: u64) -> usize {\n    x as usize\n}\n",
            ),
            (
                "crates/core/src/dep.rs",
                "#[deprecated(note = \"gone\")]\npub fn old_thing() {}\n",
            ),
            (
                "crates/core/src/use_dep.rs",
                "pub fn call() {\n    crate::dep::old_thing();\n}\n",
            ),
            (
                "crates/core/src/badallow.rs",
                "// hd-lint: allow(no-panic)\npub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n// hd-lint: allow(no-wallclock) -- stale suppression\npub fn g() {}\n",
            ),
            (
                "crates/core/src/relaxed.rs",
                "use std::sync::atomic::{AtomicUsize, Ordering};\npub fn bump(c: &AtomicUsize) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n",
            ),
            (
                "crates/core/src/guards.rs",
                "use std::sync::Mutex;\npub fn held(m: &Mutex<u32>, dev: &Dev) {\n    let g = m.lock().unwrap();\n    dev.observe(&[*g]);\n}\n",
            ),
            (
                "crates/core/src/iters.rs",
                "use std::collections::HashMap;\npub fn dump(m: &HashMap<u32, u32>) {\n    for (k, v) in m.iter() {\n        println!(\"{k} {v}\");\n    }\n}\n",
            ),
            (
                "crates/core/src/floats.rs",
                "pub fn total(xs: &[f32]) -> f32 {\n    xs.iter().sum::<f32>()\n}\n",
            ),
        ],
    )
}

#[test]
fn deny_exits_nonzero_and_names_each_seeded_violation() {
    let ws = seeded_workspace();
    let out = run_lint(&ws, &["--workspace", "--deny"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded violations must fail --deny: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Each seeded violation is named by file:line and rule.
    for (site, rule) in [
        ("crates/core/src/panics.rs:2:", "[no-panic]"),
        ("crates/core/src/panics.rs:5:", "[no-panic]"),
        ("crates/core/src/panics.rs:8:", "[no-panic]"),
        ("crates/core/src/clock.rs:2:", "[no-wallclock]"),
        ("crates/core/src/spawn.rs:2:", "[no-bare-spawn]"),
        ("crates/trace/src/casts.rs:2:", "[lossy-cast]"),
        ("crates/core/src/use_dep.rs:2:", "[no-deprecated]"),
        ("crates/core/src/badallow.rs:1:", "[bad-allow]"),
        ("crates/core/src/badallow.rs:5:", "[unused-allow]"),
        ("crates/core/src/relaxed.rs:3:", "[atomic-ordering]"),
        ("crates/core/src/guards.rs:4:", "[lock-discipline]"),
        ("crates/core/src/iters.rs:3:", "[unordered-iter]"),
        ("crates/core/src/floats.rs:2:", "[float-reduction-order]"),
    ] {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(site))
            .unwrap_or_else(|| panic!("no violation reported at {site}\n{stdout}"));
        assert!(line.contains(rule), "wrong rule at {site}: {line}");
    }
}

#[test]
fn clean_tree_exits_zero_under_deny() {
    let ws = mk_ws(
        "clean-tree",
        &[(
            "crates/core/src/lib.rs",
            "pub fn add(a: u64, b: u64) -> u64 {\n    a + b\n}\n",
        )],
    );
    let out = run_lint(&ws, &["--workspace", "--deny"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean tree must pass: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn without_deny_violations_report_but_exit_zero() {
    let ws = mk_ws(
        "seeded-violations-nodeny",
        &[(
            "crates/core/src/panics.rs",
            "pub fn h() {\n    panic!(\"boom\");\n}\n",
        )],
    );
    let out = run_lint(&ws, &["--workspace"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("[no-panic]"));
}

#[test]
fn explicit_paths_scan_only_those_files() {
    let ws = mk_ws(
        "paths-mode",
        &[
            (
                "crates/core/src/bad.rs",
                "pub fn f() {\n    panic!(\"x\");\n}\n",
            ),
            (
                "crates/core/src/alsobad.rs",
                "pub fn g(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
            ),
        ],
    );
    let out = run_lint(&ws, &["crates/core/src/bad.rs", "--deny"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/core/src/bad.rs:2:"), "{stdout}");
    assert!(!stdout.contains("alsobad"), "{stdout}");
    assert!(stdout.contains("1 file(s) scanned"), "{stdout}");
}

#[test]
fn json_output_is_parseable_with_stable_schema() {
    let ws = mk_ws(
        "json-out",
        &[(
            "crates/core/src/lib.rs",
            "pub fn f(x: Option<u8>) -> u8 {\n    // hd-lint: allow(no-panic) -- fixture justification\n    x.unwrap()\n}\npub fn g() {\n    panic!(\"boom\");\n}\n",
        )],
    );
    let out = run_lint(&ws, &["--workspace", "-o", "lint.json"]);
    assert_eq!(out.status.code(), Some(0));
    let raw = std::fs::read_to_string(ws.join("lint.json")).expect("lint.json written");
    let v = hd_obs::json::Json::parse(&raw).expect("lint.json parses");
    assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some("hd-lint/v2"));
    let summary = v.get("summary").expect("summary");
    assert_eq!(
        summary.get("violations").and_then(|n| n.as_f64()),
        Some(1.0)
    );
    assert_eq!(summary.get("allows").and_then(|n| n.as_f64()), Some(1.0));
    // v2 summary: the symbol index saw both fns; the call graph is present.
    assert_eq!(summary.get("symbols").and_then(|n| n.as_f64()), Some(2.0));
    assert!(summary.get("call_edges").and_then(|n| n.as_f64()).is_some());
    let viols = v
        .get("violations")
        .and_then(|a| a.as_array())
        .expect("violations array");
    assert_eq!(
        viols[0].get("rule").and_then(|s| s.as_str()),
        Some("no-panic")
    );
    assert_eq!(
        viols[0].get("file").and_then(|s| s.as_str()),
        Some("crates/core/src/lib.rs")
    );
    let allows = v.get("allows").and_then(|a| a.as_array()).expect("allows");
    assert_eq!(
        allows[0].get("reason").and_then(|s| s.as_str()),
        Some("fixture justification")
    );
}

#[test]
fn unknown_flag_exits_two() {
    let ws = mk_ws(
        "unknown-flag",
        &[("crates/core/src/lib.rs", "pub fn f() {}\n")],
    );
    let out = run_lint(&ws, &["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn real_workspace_is_lint_clean() {
    // The tree that builds this crate must pass its own linter — the same
    // invariant CI enforces with `hd-lint --workspace --deny`.
    let root = hd_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = hd_lint::lint_workspace(&root).expect("scan workspace");
    assert!(report.files_scanned > 50, "scan set suspiciously small");
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{}",
        report.to_text(false)
    );
    // Every accepted suppression carries a non-empty reason (the rule
    // engine enforces this per-comment; this pins the workspace total).
    assert!(report.allows.iter().all(|a| !a.reason.is_empty()));
}

#[test]
fn models_mode_verifies_zoo_against_presets() {
    let ws = mk_ws(
        "models-mode",
        &[("crates/core/src/lib.rs", "pub fn f() {}\n")],
    );
    let out = run_lint(&ws, &["--models"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "zoo models must verify under preset limits: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("8 model x preset pairs checked"),
        "{stdout}"
    );
    assert!(stdout.contains("0 error(s)"), "{stdout}");
}
