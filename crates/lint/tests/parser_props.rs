//! Property tests for the forgiving item parser: on *any* input — valid
//! Rust, token soup, or raw garbage — it must return without panicking,
//! and every span it hands out must round-trip cleanly into the source.
//!
//! These pin the two contracts every downstream pass (symbol index, call
//! graph, semantic rules) silently depends on:
//!
//! 1. **Totality** — `parse` is a total function of the input string.
//! 2. **Span fidelity** — each item's byte span lies on char boundaries,
//!    nests inside its parent's span, and slices back to source text that
//!    contains the item's declared name.

use hd_lint::parser::{parse, Item, ItemKind};
use proptest::prelude::*;

/// Rust-flavored token soup: realistic keywords, punctuation, idents, and
/// literals glued together in random order — far denser in parser edge
/// cases than uniformly random strings.
fn token_soup() -> impl Strategy<Value = String> {
    let frag = prop_oneof![
        Just("fn".to_string()),
        Just("struct".to_string()),
        Just("enum".to_string()),
        Just("impl".to_string()),
        Just("trait".to_string()),
        Just("mod".to_string()),
        Just("use".to_string()),
        Just("pub".to_string()),
        Just("pub(crate)".to_string()),
        Just("const".to_string()),
        Just("static".to_string()),
        Just("unsafe".to_string()),
        Just("async".to_string()),
        Just("extern".to_string()),
        Just("for".to_string()),
        Just("where".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("<".to_string()),
        Just(">".to_string()),
        Just(";".to_string()),
        Just(",".to_string()),
        Just("->".to_string()),
        Just("::".to_string()),
        Just("#[derive(Debug)]".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("#![allow(dead_code)]".to_string()),
        Just("\"str lit\"".to_string()),
        Just("'c'".to_string()),
        Just("// comment".to_string()),
        Just("/* block */".to_string()),
        Just("\n".to_string()),
        (0u32..10_000).prop_map(|n| format!("id{n}")),
        (0u32..1_000_000).prop_map(|n| n.to_string()),
    ];
    prop::collection::vec(frag, 0..80).prop_map(|v| v.join(" "))
}

/// Recursively checks span invariants for `it` and its children.
fn check_spans(it: &Item, src: &str) {
    assert!(
        it.span.start <= it.span.end && it.span.end <= src.len(),
        "span {:?} out of bounds (len {})",
        it.span,
        src.len()
    );
    let slice = it
        .span
        .slice(src)
        .unwrap_or_else(|| panic!("span {:?} not on char boundaries", it.span));
    if let Some(name) = &it.name {
        // Macros resolve their name before the span's `!`; everything else
        // declares the name inside its own span.
        if it.kind != ItemKind::Macro {
            assert!(
                slice.contains(name.as_str()),
                "item `{name}` missing from its own slice: {slice:?}"
            );
        }
    }
    for child in &it.children {
        assert!(
            it.span.start <= child.span.start && child.span.end <= it.span.end,
            "child span {:?} escapes parent {:?}",
            child.span,
            it.span
        );
        check_spans(child, src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_strings(src in any::<String>()) {
        let parsed = parse(&src);
        // Walking and line queries must also be total.
        let _ = parsed.walk().len();
        let _ = parsed.enclosing_fn(1);
    }

    #[test]
    fn parser_never_panics_on_token_soup(src in token_soup()) {
        let parsed = parse(&src);
        let _ = parsed.walk().len();
    }

    #[test]
    fn spans_round_trip_to_source_slices(src in token_soup()) {
        let parsed = parse(&src);
        for it in &parsed.items {
            check_spans(it, &src);
        }
    }

    #[test]
    fn top_level_spans_are_ordered_and_disjoint(src in token_soup()) {
        let parsed = parse(&src);
        for w in parsed.items.windows(2) {
            prop_assert!(
                w[0].span.end <= w[1].span.start,
                "top-level items overlap: {:?} then {:?}",
                w[0].span,
                w[1].span
            );
        }
    }
}
