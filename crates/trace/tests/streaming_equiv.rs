//! Differential suite: the incremental [`StreamingAnalyzer`] must produce
//! a `TraceAnalysis` byte-identical to buffering the full trace and
//! calling [`hd_trace::analyze`] — on the pinned golden-trace fixture, on
//! device runs over randomly pruned networks, and on both probe regimes
//! (dense images and sparse stripes). It must also retain strictly fewer
//! events than the buffered path on any multi-layer run.

use hd_accel::{AccelConfig, Device, Trace, TraceSink};
use hd_dnn::graph::{NetworkBuilder, Params};
use hd_tensor::Tensor3;
use hd_trace::{analyze, StreamingAnalyzer};
use proptest::prelude::*;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/golden_trace.txt"
);

/// Replays a buffered trace through the streaming sink.
fn stream_trace(trace: &Trace) -> StreamingAnalyzer {
    let mut s = StreamingAnalyzer::new();
    for &e in &trace.events {
        s.event(e);
    }
    s
}

/// Extracts the CSV trace sections (`== trace NAME ==` blocks) from the
/// golden fixture.
fn fixture_traces() -> Vec<(String, Trace)> {
    let text = std::fs::read_to_string(FIXTURE).expect("golden fixture present");
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    let mut csv = String::new();
    for line in text.lines().chain(std::iter::once("== end ==")) {
        if let Some(rest) = line.strip_prefix("== ") {
            if let Some(n) = name.take() {
                let trace = Trace::from_csv(csv.as_bytes()).expect("fixture CSV parses");
                out.push((n, trace));
                csv.clear();
            }
            if let Some(n) = rest.strip_suffix(" ==") {
                if let Some(t) = n.strip_prefix("trace ") {
                    name = Some(t.to_string());
                }
            }
        } else if name.is_some() {
            csv.push_str(line);
            csv.push('\n');
        }
    }
    out
}

#[test]
fn golden_fixture_traces_analyze_identically() {
    let traces = fixture_traces();
    assert_eq!(traces.len(), 2, "dense + impulse sections expected");
    for (name, trace) in traces {
        let buffered = analyze(&trace).expect("fixture trace analyzes");
        let sink = stream_trace(&trace);
        assert!(
            sink.peak_pending_reads() < trace.len(),
            "{name}: streaming must retain fewer events than the trace"
        );
        let streamed = sink.finish().expect("streaming analysis succeeds");
        assert_eq!(buffered, streamed, "trace {name} diverged");
    }
}

#[test]
fn device_streaming_run_matches_buffered_run() {
    let mut b = NetworkBuilder::new(3, 12, 12);
    let x = b.input();
    let x = b.conv(x, 6, 5, 1);
    let x = b.max_pool(x, 2);
    let x = b.conv(x, 9, 3, 2);
    let x = b.global_avg_pool(x);
    b.linear(x, 4);
    let net = b.build();
    let mut params = Params::init(&net, 20230813);
    let profile = hd_dnn::prune::paper_profile(&net);
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 0x60_1D);
    let dev = Device::new(net, params, AccelConfig::eyeriss_v2());

    let mut img = Tensor3::zeros(3, 12, 12);
    img.set(0, 0, 3, -1.0);
    img.set(1, 6, 6, 1.0);

    // Buffered: materialize the trace, then analyze.
    let trace = dev.run(&img);
    let buffered = analyze(&trace).unwrap();
    // Streaming: analyze while the device emits.
    let mut sink = StreamingAnalyzer::new();
    dev.try_run_with(&img, &mut sink).unwrap();
    assert!(sink.peak_pending_reads() < trace.len());
    assert_eq!(sink.finish().unwrap(), buffered);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming == buffered on device traces of random pruned networks,
    /// across seeds, geometries, sparsity levels, and probe regimes.
    #[test]
    fn streaming_equals_buffered_on_random_pruned_networks(
        seed in 0u64..1000,
        k1 in 3usize..9,
        kernel in prop_oneof![Just(1usize), Just(3usize), Just(5usize)],
        stride in 1usize..3,
        with_pool in prop_oneof![Just(false), Just(true)],
        sparsity_pct in 0u64..95,
        stripe_col in 0usize..12,
    ) {
        let mut b = NetworkBuilder::new(2, 12, 12);
        let x = b.input();
        let x = b.conv(x, k1, kernel, stride);
        let x = if with_pool { b.max_pool(x, 2) } else { x };
        let x = b.conv(x, 4, 3, 1);
        let x = b.global_avg_pool(x);
        b.linear(x, 3);
        let net = b.build();
        let mut params = Params::init(&net, seed);
        let profile = hd_dnn::prune::SparsityProfile {
            targets: net
                .weighted_nodes()
                .iter()
                .map(|&id| (id, sparsity_pct as f64 / 100.0))
                .collect(),
        };
        hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, seed ^ 0xBEEF);
        let dev = Device::new(net, params, AccelConfig::eyeriss_v2());

        let mut dense = Tensor3::zeros(2, 12, 12);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        dense.fill_uniform(&mut rng, 0.05, 1.0);
        let mut stripe = Tensor3::zeros(2, 12, 12);
        for y in 0..12 {
            stripe.set(0, y, stripe_col, 1.0);
        }

        for img in [&dense, &stripe] {
            let trace = dev.run(img);
            let buffered = analyze(&trace).unwrap();
            let mut sink = StreamingAnalyzer::new();
            dev.try_run_with(img, &mut sink).unwrap();
            prop_assert!(sink.peak_pending_reads() < trace.len());
            prop_assert_eq!(sink.finish().unwrap(), buffered);
        }
    }
}
