//! Incremental trace analysis over a live event stream.
//!
//! [`StreamingAnalyzer`] is a [`TraceSink`]: it folds each bus event into
//! running tensor/footprint/encode-window state as `Device::try_run_with`
//! emits it, instead of materializing the full `Vec<TraceEvent>` that
//! [`crate::analyze`] consumes. On the phase-ordered traces a device
//! produces, [`StreamingAnalyzer::finish`] returns a [`TraceAnalysis`]
//! byte-identical to buffering the trace and calling [`crate::analyze`]
//! (asserted by the differential suite in `tests/streaming_equiv.rs`).
//!
//! # Memory
//!
//! The buffered path retains every event of the run (~`O(bursts)`); the
//! streaming path retains the tensor/layer summaries (`O(layers)`) plus
//! the reads of the **currently open** layer window only — the reads are
//! dropped as soon as the next tensor's first write closes the window.
//! [`StreamingAnalyzer::peak_pending_reads`] reports the high-water mark
//! for comparison.
//!
//! # Contract
//!
//! The equivalence with [`crate::analyze`] relies on two properties every
//! causal device trace has (and that the [`TraceSink`] contract states):
//!
//! * tensors' write phases do not interleave — each tensor is written by
//!   one chronological run of address-adjacent bursts, and distinct
//!   tensors occupy disjoint address regions,
//! * no read targets an address range before it has been written, except
//!   read-only (weight) regions that are never written at all.
//!
//! Out-of-order timestamps are detected exactly as in the buffered path
//! and reported by [`StreamingAnalyzer::finish`].

use crate::{merged_len, AnalyzeTraceError, LayerObs, TensorId, TensorObs, TraceAnalysis};
use hd_accel::{AccessKind, TraceEvent, TraceSink};

/// Per-layer read summary accumulated when the layer's window closes.
struct PartialLayer {
    inputs: Vec<TensorId>,
    weight_bytes: u64,
    input_bytes: u64,
}

/// Incremental analyzer: feed it every event of one device run (it is a
/// [`TraceSink`]), then call [`StreamingAnalyzer::finish`].
///
/// ```
/// use hd_accel::{AccelConfig, Device};
/// use hd_dnn::graph::{NetworkBuilder, Params};
/// use hd_tensor::Tensor3;
///
/// let mut b = NetworkBuilder::new(1, 8, 8);
/// let x = b.input();
/// b.conv(x, 4, 3, 1);
/// let net = b.build();
/// let device = Device::new(net.clone(), Params::init(&net, 0), AccelConfig::eyeriss_v2());
///
/// let mut sink = hd_trace::StreamingAnalyzer::new();
/// device.try_run_with(&Tensor3::full(1, 8, 8, 0.5), &mut sink).unwrap();
/// let analysis = sink.finish()?;
/// assert_eq!(analysis.layers.len(), 1);
/// # Ok::<(), hd_trace::AnalyzeTraceError>(())
/// ```
#[derive(Default)]
pub struct StreamingAnalyzer {
    /// Tensors in first-write (= arrival) order; the last one is the
    /// currently open write stream.
    tensors: Vec<TensorObs>,
    /// Reads of the open layer window, `(time_ps, addr_lo, addr_hi)`.
    pending_reads: Vec<(u64, u64, u64)>,
    /// Read summaries of closed windows, one per produced tensor after
    /// the first.
    layers: Vec<PartialLayer>,
    last_time_ps: u64,
    saw_event: bool,
    unsorted: bool,
    peak_pending: usize,
}

impl StreamingAnalyzer {
    /// A fresh analyzer for one device run.
    pub fn new() -> Self {
        StreamingAnalyzer::default()
    }

    /// High-water mark of reads retained at any point so far — the
    /// streaming path's event-retention peak (the buffered path retains
    /// the whole trace).
    pub fn peak_pending_reads(&self) -> usize {
        self.peak_pending
    }

    /// Closes the layer window ending at `window_hi` (the first write of
    /// a newly opened tensor): attributes the buffered reads that fall in
    /// `[previous tensor's last write, window_hi)` and drops the rest.
    fn close_window(&mut self, window_hi: u64) {
        // Reads at exactly `window_hi` belong to the *next* window (the
        // buffered analyzer's windows are half-open on the right).
        let mut drained = Vec::new();
        self.pending_reads.retain(|&r| {
            if r.0 < window_hi {
                drained.push(r);
                false
            } else {
                true
            }
        });
        let Some(prev) = self.tensors.last() else {
            // Reads before the first write fall in no window.
            return;
        };
        let window_lo = prev.last_write_ps;
        let mut inputs: Vec<TensorId> = Vec::new();
        let mut weight_ranges: Vec<(u64, u64)> = Vec::new();
        let mut input_ranges: Vec<(u64, u64)> = Vec::new();
        for (time, lo, hi) in drained {
            if time < window_lo {
                continue; // mid-writeback read: outside every window
            }
            match self.tensors.iter().position(|t| contains(t, lo)) {
                Some(src) => {
                    input_ranges.push((lo, hi));
                    if !inputs.contains(&src) {
                        inputs.push(src);
                    }
                }
                None => weight_ranges.push((lo, hi)),
            }
        }
        self.layers.push(PartialLayer {
            inputs,
            weight_bytes: merged_len(&mut weight_ranges),
            input_bytes: merged_len(&mut input_ranges),
        });
    }

    /// Consumes the stream, returning the same analysis the buffered
    /// [`crate::analyze`] would produce for this run's trace.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeTraceError`] for empty or out-of-order streams —
    /// the same errors, with the same precedence, as the buffered path.
    pub fn finish(self) -> Result<TraceAnalysis, AnalyzeTraceError> {
        if self.unsorted {
            return Err(AnalyzeTraceError::UnsortedEvents);
        }
        if self.tensors.is_empty() {
            return Err(AnalyzeTraceError::NoWrites);
        }
        let tensors = self.tensors;
        let layers = self
            .layers
            .into_iter()
            .enumerate()
            .map(|(index, p)| LayerObs {
                index,
                inputs: p.inputs,
                output: index + 1,
                weight_bytes: p.weight_bytes,
                input_bytes: p.input_bytes,
                output_bytes: tensors[index + 1].bytes,
                encode_window_ps: tensors[index + 1].encode_window_ps(),
            })
            .collect();
        Ok(TraceAnalysis { tensors, layers })
    }
}

fn contains(t: &TensorObs, addr: u64) -> bool {
    addr >= t.addr_lo && addr < t.addr_hi
}

/// Whether a write burst extends the open tensor (address-adjacent or
/// overlapping — the same merge condition the buffered clustering uses).
fn extends(t: &TensorObs, addr: u64, bytes: u64) -> bool {
    addr <= t.addr_hi && addr + bytes >= t.addr_lo
}

impl TraceSink for StreamingAnalyzer {
    fn event(&mut self, e: TraceEvent) {
        if self.saw_event && e.time_ps < self.last_time_ps {
            self.unsorted = true;
        }
        self.saw_event = true;
        self.last_time_ps = self.last_time_ps.max(e.time_ps);
        match e.kind {
            AccessKind::Read => {
                self.pending_reads
                    .push((e.time_ps, e.addr, e.addr + e.bytes));
                self.peak_pending = self.peak_pending.max(self.pending_reads.len());
            }
            AccessKind::Write => {
                match self.tensors.last_mut() {
                    Some(open) if extends(open, e.addr, e.bytes) => {
                        open.addr_lo = open.addr_lo.min(e.addr);
                        open.addr_hi = open.addr_hi.max(e.addr + e.bytes);
                        open.bytes = open.addr_hi - open.addr_lo;
                        open.first_write_ps = open.first_write_ps.min(e.time_ps);
                        open.last_write_ps = open.last_write_ps.max(e.time_ps);
                    }
                    _ => {
                        // A write outside the open tensor starts the next
                        // one; its first write closes the previous layer's
                        // read window.
                        self.close_window(e.time_ps);
                        self.tensors.push(TensorObs {
                            addr_lo: e.addr,
                            addr_hi: e.addr + e.bytes,
                            bytes: e.bytes,
                            first_write_ps: e.time_ps,
                            last_write_ps: e.time_ps,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use hd_accel::Trace;

    fn stream(trace: &Trace) -> StreamingAnalyzer {
        let mut s = StreamingAnalyzer::new();
        for &e in &trace.events {
            s.event(e);
        }
        s
    }

    #[test]
    fn empty_stream_is_no_writes() {
        assert_eq!(
            StreamingAnalyzer::new().finish(),
            Err(AnalyzeTraceError::NoWrites)
        );
    }

    #[test]
    fn unsorted_stream_is_detected() {
        let mut s = StreamingAnalyzer::new();
        s.event(TraceEvent {
            time_ps: 10,
            addr: 0,
            kind: AccessKind::Write,
            bytes: 64,
        });
        s.event(TraceEvent {
            time_ps: 5,
            addr: 0x10_000,
            kind: AccessKind::Write,
            bytes: 64,
        });
        assert_eq!(s.finish(), Err(AnalyzeTraceError::UnsortedEvents));
    }

    #[test]
    fn matches_buffered_analyze_on_a_synthetic_trace() {
        // input tensor, weight read, input read, output tensor.
        let t = Trace {
            events: vec![
                TraceEvent {
                    time_ps: 0,
                    addr: 0x8000,
                    kind: AccessKind::Write,
                    bytes: 64,
                },
                TraceEvent {
                    time_ps: 10,
                    addr: 0x8040,
                    kind: AccessKind::Write,
                    bytes: 64,
                },
                TraceEvent {
                    time_ps: 100,
                    addr: 0x1000,
                    kind: AccessKind::Read,
                    bytes: 32,
                },
                TraceEvent {
                    time_ps: 120,
                    addr: 0x8000,
                    kind: AccessKind::Read,
                    bytes: 128,
                },
                TraceEvent {
                    time_ps: 200,
                    addr: 0x9000_0000,
                    kind: AccessKind::Write,
                    bytes: 96,
                },
            ],
        };
        let buffered = analyze(&t).unwrap();
        let streamed = stream(&t).finish().unwrap();
        assert_eq!(buffered, streamed);
        assert_eq!(streamed.layers[0].weight_bytes, 32);
        assert_eq!(streamed.layers[0].input_bytes, 128);
        assert_eq!(streamed.layers[0].inputs, vec![0]);
    }

    #[test]
    fn pending_reads_are_bounded_by_one_window() {
        let mut events = vec![TraceEvent {
            time_ps: 0,
            addr: 0x8000,
            kind: AccessKind::Write,
            bytes: 64,
        }];
        // Three layers, two reads each.
        for l in 0..3u64 {
            for r in 0..2u64 {
                events.push(TraceEvent {
                    time_ps: 100 * l + 10 + r,
                    addr: 0x1000 + 0x100 * l,
                    kind: AccessKind::Read,
                    bytes: 8,
                });
            }
            events.push(TraceEvent {
                time_ps: 100 * l + 50,
                addr: 0x9_0000 * (l + 1),
                kind: AccessKind::Write,
                bytes: 16,
            });
        }
        let t = Trace { events };
        let mut s = StreamingAnalyzer::new();
        for &e in &t.events {
            s.event(e);
        }
        assert_eq!(s.peak_pending_reads(), 2, "windows must drain");
        assert_eq!(s.finish().unwrap(), analyze(&t).unwrap());
    }

    #[test]
    fn read_at_window_boundary_goes_to_the_next_layer() {
        // A read whose timestamp equals the next tensor's first write must
        // be attributed exactly as the buffered half-open window does.
        let t = Trace {
            events: vec![
                TraceEvent {
                    time_ps: 0,
                    addr: 0x8000,
                    kind: AccessKind::Write,
                    bytes: 64,
                },
                TraceEvent {
                    time_ps: 50,
                    addr: 0x8000,
                    kind: AccessKind::Read,
                    bytes: 64,
                },
                TraceEvent {
                    time_ps: 50,
                    addr: 0x9_0000,
                    kind: AccessKind::Write,
                    bytes: 32,
                },
                TraceEvent {
                    time_ps: 80,
                    addr: 0x8000,
                    kind: AccessKind::Read,
                    bytes: 64,
                },
                TraceEvent {
                    time_ps: 90,
                    addr: 0xA_0000,
                    kind: AccessKind::Write,
                    bytes: 32,
                },
            ],
        };
        assert_eq!(stream(&t).finish().unwrap(), analyze(&t).unwrap());
    }
}
