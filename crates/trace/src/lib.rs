//! Attacker-side DRAM trace analysis.
//!
//! Consumes only the bus events a physical probe yields ([`hd_accel::Trace`])
//! and reconstructs, per the read-after-write reasoning of the paper (§3.2):
//!
//! * the set of **tensors** resident in DRAM (clusters of written addresses),
//! * the **layer sequence** and its **dataflow graph** (which tensors each
//!   layer reads, which it writes),
//! * per-layer **footprints**: weight bytes (read-only addresses), input
//!   bytes, output bytes — lower bounds on the corresponding tensor sizes
//!   when compression is in play (Eqs. 8–10),
//! * per-layer **encode windows** (last output write minus first output
//!   write) — the timing side channel of §7.2.
//!
//! Nothing here touches the victim network or its weights; the analyzer is
//! string-and-sealing-wax the attacker could really build.

mod streaming;

pub use streaming::StreamingAnalyzer;

use hd_accel::{AccessKind, Trace};
use std::fmt;

/// Index into [`TraceAnalysis::tensors`].
pub type TensorId = usize;

/// A tensor inferred from clustered write bursts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TensorObs {
    /// Lowest byte address.
    pub addr_lo: u64,
    /// One past the highest byte address.
    pub addr_hi: u64,
    /// Distinct bytes written (the tensor's transfer footprint).
    pub bytes: u64,
    /// Time of the first write burst.
    pub first_write_ps: u64,
    /// Time of the last write burst.
    pub last_write_ps: u64,
}

impl TensorObs {
    /// The §7.2 observable: last write minus first write.
    pub fn encode_window_ps(&self) -> u64 {
        self.last_write_ps - self.first_write_ps
    }

    fn contains(&self, addr: u64) -> bool {
        addr >= self.addr_lo && addr < self.addr_hi
    }
}

/// One inferred layer execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerObs {
    /// Execution order (0 = first layer after host input DMA).
    pub index: usize,
    /// Activation tensors read by this layer (RAW dependencies).
    pub inputs: Vec<TensorId>,
    /// The tensor this layer wrote.
    pub output: TensorId,
    /// Bytes read from read-only (never-written) addresses: the compressed
    /// weight footprint, `size(W)`.
    pub weight_bytes: u64,
    /// Bytes read from previously written tensors: `size(I)` (summed over
    /// all input tensors).
    pub input_bytes: u64,
    /// Bytes written: `size(O)`.
    pub output_bytes: u64,
    /// Output encode window in picoseconds (timing side channel).
    pub encode_window_ps: u64,
}

/// Result of analyzing one inference trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceAnalysis {
    /// All tensors, in order of first write. Index 0 is the host-written
    /// network input.
    pub tensors: Vec<TensorObs>,
    /// Layers in execution order. `layers[i].output == i + 1` by
    /// construction (tensor 0 is the input).
    pub layers: Vec<LayerObs>,
}

/// Error analyzing a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnalyzeTraceError {
    /// The trace contains no write events, so no tensors can be identified.
    NoWrites,
    /// The trace events are not in chronological order.
    UnsortedEvents,
}

impl fmt::Display for AnalyzeTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeTraceError::NoWrites => write!(f, "trace contains no write events"),
            AnalyzeTraceError::UnsortedEvents => write!(f, "trace events are not sorted by time"),
        }
    }
}

impl std::error::Error for AnalyzeTraceError {}

/// Analyzes a bus trace into tensors, layers, and dataflow.
///
/// # Errors
///
/// Returns [`AnalyzeTraceError`] for empty or malformed traces.
///
/// # Examples
///
/// ```
/// use hd_accel::{AccelConfig, Device};
/// use hd_dnn::graph::{NetworkBuilder, Params};
/// use hd_tensor::Tensor3;
///
/// let mut b = NetworkBuilder::new(1, 8, 8);
/// let x = b.input();
/// b.conv(x, 4, 3, 1);
/// let net = b.build();
/// let device = Device::new(net.clone(), Params::init(&net, 0), AccelConfig::eyeriss_v2());
/// let trace = device.run(&Tensor3::full(1, 8, 8, 0.5));
///
/// let analysis = hd_trace::analyze(&trace)?;
/// assert_eq!(analysis.layers.len(), 1);
/// assert!(analysis.layers[0].weight_bytes > 0);
/// # Ok::<(), hd_trace::AnalyzeTraceError>(())
/// ```
pub fn analyze(trace: &Trace) -> Result<TraceAnalysis, AnalyzeTraceError> {
    if trace.events.windows(2).any(|w| w[0].time_ps > w[1].time_ps) {
        return Err(AnalyzeTraceError::UnsortedEvents);
    }

    // --- Step 1: cluster write bursts into tensors by address adjacency. ---
    let mut writes: Vec<(u64, u64, u64)> = trace
        .events
        .iter()
        .filter(|e| e.kind == AccessKind::Write)
        .map(|e| (e.addr, e.bytes, e.time_ps))
        .collect();
    if writes.is_empty() {
        return Err(AnalyzeTraceError::NoWrites);
    }
    writes.sort_by_key(|&(addr, _, _)| addr);

    let mut tensors: Vec<TensorObs> = Vec::new();
    for (addr, bytes, time) in writes {
        match tensors.last_mut() {
            Some(t) if addr <= t.addr_hi => {
                t.addr_hi = t.addr_hi.max(addr + bytes);
                t.bytes = t.addr_hi - t.addr_lo;
                t.first_write_ps = t.first_write_ps.min(time);
                t.last_write_ps = t.last_write_ps.max(time);
            }
            _ => tensors.push(TensorObs {
                addr_lo: addr,
                addr_hi: addr + bytes,
                bytes,
                first_write_ps: time,
                last_write_ps: time,
            }),
        }
    }
    // Order tensors by production time.
    tensors.sort_by_key(|t| t.first_write_ps);

    // --- Step 2: assign reads to the layer producing the next tensor. ---
    // Layer i produces tensor i+1; its read phase spans from tensor i's last
    // write to tensor i+1's first write.
    let mut layers: Vec<LayerObs> = Vec::new();
    for out_id in 1..tensors.len() {
        let window_lo = tensors[out_id - 1].last_write_ps;
        let window_hi = tensors[out_id].first_write_ps;
        let mut inputs: Vec<TensorId> = Vec::new();
        // Footprints are *distinct addresses*, not transfer sums: a tiled
        // accelerator re-reads tensors (paper §3.2: "possibly more than
        // once"), but each address still names one tensor byte. Collect
        // intervals and merge.
        let mut weight_ranges: Vec<(u64, u64)> = Vec::new();
        let mut input_ranges: Vec<(u64, u64)> = Vec::new();
        for e in &trace.events {
            if e.kind != AccessKind::Read || e.time_ps < window_lo || e.time_ps >= window_hi {
                continue;
            }
            match tensors.iter().position(|t| t.contains(e.addr)) {
                Some(src) => {
                    input_ranges.push((e.addr, e.addr + e.bytes));
                    if !inputs.contains(&src) {
                        inputs.push(src);
                    }
                }
                None => weight_ranges.push((e.addr, e.addr + e.bytes)),
            }
        }
        let weight_bytes = merged_len(&mut weight_ranges);
        let input_bytes = merged_len(&mut input_ranges);
        layers.push(LayerObs {
            index: out_id - 1,
            inputs,
            output: out_id,
            weight_bytes,
            input_bytes,
            output_bytes: tensors[out_id].bytes,
            encode_window_ps: tensors[out_id].encode_window_ps(),
        });
    }

    Ok(TraceAnalysis { tensors, layers })
}

/// Analyzes a trace from a device that *reuses* DRAM buffers: each write
/// creates a new version of its addresses (paper footnote 4, the SSA
/// analogy), so tensors are identified by **write streams in time** —
/// maximal runs of chronologically consecutive, address-contiguous write
/// bursts — and each read is attributed to the most recent version
/// covering its address.
///
/// On traces from non-reusing devices this agrees with [`analyze`].
///
/// # Errors
///
/// Returns [`AnalyzeTraceError`] for empty or malformed traces.
pub fn analyze_versioned(trace: &Trace) -> Result<TraceAnalysis, AnalyzeTraceError> {
    if trace.events.windows(2).any(|w| w[0].time_ps > w[1].time_ps) {
        return Err(AnalyzeTraceError::UnsortedEvents);
    }

    // --- Step 1: tensors = chronological write streams. ---
    let mut tensors: Vec<TensorObs> = Vec::new();
    let mut open: Option<TensorObs> = None;
    for e in &trace.events {
        if e.kind != AccessKind::Write {
            // Any interleaved read ends the current stream (layer phases
            // never interleave reads inside a tensor's writeback).
            if let Some(t) = open.take() {
                tensors.push(t);
            }
            continue;
        }
        match &mut open {
            Some(t) if e.addr == t.addr_hi => {
                t.addr_hi += e.bytes;
                t.bytes = t.addr_hi - t.addr_lo;
                t.last_write_ps = e.time_ps;
            }
            Some(t) => {
                let next = TensorObs {
                    addr_lo: e.addr,
                    addr_hi: e.addr + e.bytes,
                    bytes: e.bytes,
                    first_write_ps: e.time_ps,
                    last_write_ps: e.time_ps,
                };
                tensors.push(std::mem::replace(t, next));
            }
            None => {
                open = Some(TensorObs {
                    addr_lo: e.addr,
                    addr_hi: e.addr + e.bytes,
                    bytes: e.bytes,
                    first_write_ps: e.time_ps,
                    last_write_ps: e.time_ps,
                });
            }
        }
    }
    if let Some(t) = open.take() {
        tensors.push(t);
    }
    if tensors.is_empty() {
        return Err(AnalyzeTraceError::NoWrites);
    }

    // --- Step 2: attribute reads to the latest covering version. ---
    let mut layers: Vec<LayerObs> = Vec::new();
    for out_id in 1..tensors.len() {
        let window_lo = tensors[out_id - 1].last_write_ps;
        let window_hi = tensors[out_id].first_write_ps;
        let mut inputs: Vec<TensorId> = Vec::new();
        let mut weight_ranges: Vec<(u64, u64)> = Vec::new();
        let mut input_ranges: Vec<(u64, u64)> = Vec::new();
        for e in &trace.events {
            if e.kind != AccessKind::Read || e.time_ps < window_lo || e.time_ps >= window_hi {
                continue;
            }
            // Latest version written before this read that covers the addr.
            let src = tensors
                .iter()
                .enumerate()
                .filter(|(_, t)| t.contains(e.addr) && t.last_write_ps <= e.time_ps)
                .max_by_key(|(_, t)| t.last_write_ps)
                .map(|(i, _)| i);
            match src {
                Some(src) => {
                    input_ranges.push((e.addr, e.addr + e.bytes));
                    if !inputs.contains(&src) {
                        inputs.push(src);
                    }
                }
                None => weight_ranges.push((e.addr, e.addr + e.bytes)),
            }
        }
        layers.push(LayerObs {
            index: out_id - 1,
            inputs,
            output: out_id,
            weight_bytes: merged_len(&mut weight_ranges),
            input_bytes: merged_len(&mut input_ranges),
            output_bytes: tensors[out_id].bytes,
            encode_window_ps: tensors[out_id].encode_window_ps(),
        });
    }

    Ok(TraceAnalysis { tensors, layers })
}

/// Total length of a set of byte intervals after merging overlaps.
pub(crate) fn merged_len(ranges: &mut [(u64, u64)]) -> u64 {
    if ranges.is_empty() {
        return 0;
    }
    ranges.sort_unstable();
    let mut total = 0u64;
    let (mut lo, mut hi) = ranges[0];
    for &(a, b) in ranges[1..].iter() {
        if a <= hi {
            hi = hi.max(b);
        } else {
            total += hi - lo;
            (lo, hi) = (a, b);
        }
    }
    total + (hi - lo)
}

impl TraceAnalysis {
    /// The network-input tensor (host DMA, first written).
    pub fn input_tensor(&self) -> &TensorObs {
        &self.tensors[0]
    }

    /// Output transfer bytes per layer, in execution order. This is the
    /// quantity whose *equality across probes* reveals nnz equality (the
    /// codec is monotone in nnz), which drives the boundary-effect prober.
    pub fn output_bytes_per_layer(&self) -> Vec<u64> {
        self.layers.iter().map(|l| l.output_bytes).collect()
    }

    /// Encode windows per layer, in execution order (timing channel).
    pub fn encode_windows_per_layer(&self) -> Vec<u64> {
        self.layers.iter().map(|l| l.encode_window_ps).collect()
    }

    /// Layers that read weights (conv/linear as opposed to pool/add/GAP).
    pub fn weighted_layers(&self) -> Vec<usize> {
        self.layers
            .iter()
            .filter(|l| l.weight_bytes > 0)
            .map(|l| l.index)
            .collect()
    }

    /// Renders a compact report of the recovered dataflow.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "input tensor: {} bytes\n",
            self.input_tensor().bytes
        ));
        for l in &self.layers {
            s.push_str(&format!(
                "layer {:>2}: in={:?} W={:>8}B I={:>8}B O={:>8}B window={}ps\n",
                l.index,
                l.inputs,
                l.weight_bytes,
                l.input_bytes,
                l.output_bytes,
                l.encode_window_ps
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hd_accel::{AccelConfig, Device, TraceEvent};
    use hd_dnn::graph::{NetworkBuilder, Params};
    use hd_tensor::Tensor3;

    fn chain_device() -> Device {
        let mut b = NetworkBuilder::new(2, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.max_pool(x, 2);
        let x = b.conv(x, 6, 3, 1);
        let x = b.global_avg_pool(x);
        b.linear(x, 3);
        let net = b.build();
        Device::new(
            net.clone(),
            Params::init(&net, 42),
            AccelConfig::eyeriss_v2(),
        )
    }

    #[test]
    fn empty_trace_is_error() {
        assert_eq!(analyze(&Trace::default()), Err(AnalyzeTraceError::NoWrites));
    }

    #[test]
    fn unsorted_trace_is_error() {
        let t = Trace {
            events: vec![
                TraceEvent {
                    time_ps: 10,
                    addr: 0,
                    kind: AccessKind::Write,
                    bytes: 64,
                },
                TraceEvent {
                    time_ps: 5,
                    addr: 64,
                    kind: AccessKind::Write,
                    bytes: 64,
                },
            ],
        };
        assert_eq!(analyze(&t), Err(AnalyzeTraceError::UnsortedEvents));
    }

    #[test]
    fn recovers_layer_count_of_chain() {
        let dev = chain_device();
        let trace = dev.run(&Tensor3::full(2, 8, 8, 0.5));
        let a = analyze(&trace).unwrap();
        // conv, pool, conv, gap, linear = 5 layers (flatten is aliased away).
        assert_eq!(a.layers.len(), 5);
    }

    #[test]
    fn chain_dataflow_is_linear() {
        let dev = chain_device();
        let trace = dev.run(&Tensor3::full(2, 8, 8, 0.5));
        let a = analyze(&trace).unwrap();
        for l in &a.layers {
            assert_eq!(
                l.inputs,
                vec![l.output - 1],
                "layer {} not a chain",
                l.index
            );
        }
    }

    #[test]
    fn weighted_layers_identified() {
        let dev = chain_device();
        let trace = dev.run(&Tensor3::full(2, 8, 8, 0.5));
        let a = analyze(&trace).unwrap();
        // conv(0), conv(2), linear(4) carry weights; pool(1), gap(3) do not.
        assert_eq!(a.weighted_layers(), vec![0, 2, 4]);
    }

    #[test]
    fn residual_dataflow_recovered() {
        let mut b = NetworkBuilder::new(2, 6, 6);
        let x = b.input();
        let y = b.conv(x, 2, 3, 1);
        let z = b.add(x, y);
        b.global_avg_pool(z);
        let net = b.build();
        let dev = Device::new(
            net.clone(),
            Params::init(&net, 3),
            AccelConfig::eyeriss_v2(),
        );
        let trace = dev.run(&Tensor3::full(2, 6, 6, 0.4));
        let a = analyze(&trace).unwrap();
        // The add layer reads both the input tensor (0) and the conv output (1).
        let add_layer = &a.layers[1];
        assert_eq!(add_layer.inputs.len(), 2);
        assert!(add_layer.inputs.contains(&0));
        assert!(add_layer.inputs.contains(&1));
    }

    #[test]
    fn weight_footprint_tracks_pruning() {
        let mut b = NetworkBuilder::new(2, 8, 8);
        let x = b.input();
        b.conv(x, 8, 3, 1);
        let net = b.build();
        let dense_params = Params::init(&net, 1);
        let mut sparse_params = dense_params.clone();
        let profile = hd_dnn::prune::SparsityProfile {
            targets: vec![(1, 0.9)],
        };
        hd_dnn::prune::apply_sparsity_profile(&net, &mut sparse_params, &profile, 5);

        let img = Tensor3::full(2, 8, 8, 0.5);
        let dense_trace =
            Device::new(net.clone(), dense_params, AccelConfig::eyeriss_v2()).run(&img);
        let sparse_trace =
            Device::new(net.clone(), sparse_params, AccelConfig::eyeriss_v2()).run(&img);
        let dense_w = analyze(&dense_trace).unwrap().layers[0].weight_bytes;
        let sparse_w = analyze(&sparse_trace).unwrap().layers[0].weight_bytes;
        assert!(
            (sparse_w as f64) < dense_w as f64 * 0.5,
            "sparse weights should transfer far less: {sparse_w} vs {dense_w}"
        );
    }

    #[test]
    fn output_bytes_lower_bound_tensor_size() {
        // Eq. 9: p*q*k / pool >= size(O). Check against the oracle.
        let dev = chain_device();
        let img = Tensor3::full(2, 8, 8, 0.5);
        let trace = dev.run(&img);
        let a = analyze(&trace).unwrap();
        let oracle = dev.oracle();
        let fwd = oracle.net.forward(oracle.params, &img);
        // Layer 0 output: conv node 1, 4x8x8 elements at 1 byte each.
        let dense_elems = fwd.value(1).flat().len() as u64;
        assert!(a.layers[0].output_bytes <= dense_elems + dense_elems / 8 + 8);
    }

    #[test]
    fn encode_windows_positive_for_multi_burst_layers() {
        let dev = chain_device();
        let trace = dev.run(&Tensor3::full(2, 8, 8, 0.5));
        let a = analyze(&trace).unwrap();
        for l in &a.layers {
            // Tensors spanning more than one burst have a measurable window;
            // single-burst tensors legitimately collapse to zero.
            if l.output_bytes > dev.config().burst_bytes {
                assert!(l.encode_window_ps > 0, "layer {} window", l.index);
            }
        }
        // The first conv output (4x8x8) definitely spans several bursts.
        assert!(a.layers[0].output_bytes > dev.config().burst_bytes);
    }

    #[test]
    fn report_is_nonempty() {
        let dev = chain_device();
        let trace = dev.run(&Tensor3::full(2, 8, 8, 0.5));
        let a = analyze(&trace).unwrap();
        let r = a.report();
        assert!(r.contains("layer"));
        assert!(r.contains("input tensor"));
    }
}

#[cfg(test)]
mod versioned_tests {
    use super::*;
    use hd_accel::{AccelConfig, Device};
    use hd_dnn::graph::{NetworkBuilder, Params};
    use hd_tensor::Tensor3;

    fn chain_net() -> (hd_dnn::graph::Network, Params) {
        let mut b = NetworkBuilder::new(2, 8, 8);
        let x = b.input();
        let x = b.conv(x, 4, 3, 1);
        let x = b.conv(x, 4, 3, 1);
        let x = b.conv(x, 4, 3, 1);
        b.conv(x, 4, 3, 1);
        let net = b.build();
        let params = Params::init(&net, 42);
        (net, params)
    }

    #[test]
    fn versioned_matches_plain_on_fresh_alloc_traces() {
        let (net, params) = chain_net();
        let dev = Device::new(net, params, AccelConfig::eyeriss_v2());
        let trace = dev.run(&Tensor3::full(2, 8, 8, 0.5));
        let plain = analyze(&trace).unwrap();
        let versioned = analyze_versioned(&trace).unwrap();
        assert_eq!(plain.layers.len(), versioned.layers.len());
        for (a, b) in plain.layers.iter().zip(&versioned.layers) {
            assert_eq!(a.weight_bytes, b.weight_bytes);
            assert_eq!(a.output_bytes, b.output_bytes);
            assert_eq!(a.inputs, b.inputs);
        }
    }

    #[test]
    fn versioned_handles_buffer_reuse() {
        let (net, params) = chain_net();
        let mut cfg = AccelConfig::eyeriss_v2();
        cfg.reuse_activations = true;
        let reuse_dev = Device::new(net.clone(), params.clone(), cfg);
        let fresh_dev = Device::new(net, params, AccelConfig::eyeriss_v2());
        let img = Tensor3::full(2, 8, 8, 0.5);

        let reuse_trace = reuse_dev.run(&img);
        let fresh_trace = fresh_dev.run(&img);

        // The reuse device really recycles addresses: fewer distinct
        // address ranges are touched.
        let distinct = |t: &hd_accel::Trace| {
            t.events
                .iter()
                .filter(|e| e.kind == AccessKind::Write)
                .map(|e| e.addr)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert!(distinct(&reuse_trace) < distinct(&fresh_trace));

        // Versioned analysis on the reuse trace reconstructs the same
        // per-layer footprints and chain dataflow as the fresh device.
        let a = analyze_versioned(&reuse_trace).unwrap();
        let b = analyze(&fresh_trace).unwrap();
        assert_eq!(a.layers.len(), b.layers.len());
        for (x, y) in a.layers.iter().zip(&b.layers) {
            assert_eq!(x.weight_bytes, y.weight_bytes, "layer {}", x.index);
            assert_eq!(x.output_bytes, y.output_bytes, "layer {}", x.index);
            assert_eq!(x.inputs.len(), y.inputs.len());
        }
    }
}
