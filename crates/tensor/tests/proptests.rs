//! Property-based tests for tensor kernels and transfer codecs.

use hd_tensor::conv::{conv2d, conv_out_dim, Conv2dCfg, Padding};
use hd_tensor::pool::{pool2d, PoolKind};
use hd_tensor::{CompressionScheme, Tensor3, Tensor4};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_tensor(seed: u64, c: usize, h: usize, w: usize) -> Tensor3 {
    let mut t = Tensor3::zeros(c, h, w);
    let mut rng = StdRng::seed_from_u64(seed);
    t.fill_uniform(&mut rng, -1.0, 1.0);
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Convolution is linear in the input: conv(a+b) == conv(a) + conv(b)
    /// for bias-free kernels (up to fp tolerance).
    #[test]
    fn conv_is_linear(seed in 0u64..500, kernel in prop_oneof![Just(1usize), Just(3usize)]) {
        let a = random_tensor(seed, 2, 6, 6);
        let b = random_tensor(seed ^ 0xABCD, 2, 6, 6);
        let mut w = Tensor4::zeros(3, 2, kernel, kernel);
        let mut rng = StdRng::seed_from_u64(seed ^ 7);
        w.init_he(&mut rng);
        let cfg = Conv2dCfg::new(1, Padding::Same);
        let lhs = conv2d(&a.add(&b), &w, None, &cfg);
        let rhs = conv2d(&a, &w, None, &cfg).add(&conv2d(&b, &w, None, &cfg));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    /// Output dims honor the Same/Valid formulas for every input size.
    #[test]
    fn conv_out_dims_formulas(input in 1usize..64, kernel in 1usize..8, stride in 1usize..4) {
        let same = conv_out_dim(input, kernel, stride, Padding::Same);
        prop_assert_eq!(same, input.div_ceil(stride));
        let valid = conv_out_dim(input, kernel, stride, Padding::Valid);
        if input >= kernel {
            prop_assert_eq!(valid, (input - kernel) / stride + 1);
        } else {
            prop_assert_eq!(valid, 0);
        }
    }

    /// Max pooling never decreases any surviving value and never creates
    /// non-zeros out of zeros.
    #[test]
    fn max_pool_bounds(seed in 0u64..500, factor in 2usize..4) {
        let x = random_tensor(seed, 2, 9, 9);
        let y = pool2d(&x, factor, PoolKind::Max);
        let max_in = x.data().iter().cloned().fold(f32::MIN, f32::max);
        for &v in y.data() {
            prop_assert!(v <= max_in);
        }
        let zeros = Tensor3::zeros(2, 9, 9);
        prop_assert_eq!(pool2d(&zeros, factor, PoolKind::Max).nnz(), 0);
    }

    /// Every codec's encoded size is at least the information floor
    /// (can't beat storing the nnz payload) and the bitmap codec never
    /// exceeds dense + bitmap overhead.
    #[test]
    fn codec_size_bounds(seed in 0u64..500, len in 8usize..256, density in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = Tensor3::zeros(1, 1, len);
        v.fill_uniform(&mut rng, -1.0, 1.0);
        let keep = (len as f64 * density) as usize;
        for x in v.data_mut().iter_mut().skip(keep) {
            *x = 0.0;
        }
        let values = v.data();
        let nnz = hd_tensor::nnz(values) as u64;
        for scheme in [
            CompressionScheme::Bitmap,
            CompressionScheme::RunLength { run_bits: 5 },
            CompressionScheme::Csc { offset_bits: 12 },
        ] {
            let e = scheme.encoded_size(values, 8);
            prop_assert!(e.bytes >= nnz, "{scheme}: {} < nnz {}", e.bytes, nnz);
        }
        let bitmap = CompressionScheme::Bitmap.encoded_size(values, 8);
        prop_assert!(bitmap.bytes <= (len as u64) + len.div_ceil(8) as u64 + 1);
    }

    /// Stride-s convolution of a stride-1 output subsamples consistently:
    /// out_s[p][q] == out_1[p*s][q*s] for Same padding when the padding
    /// alignment matches (kernel 1 guarantees it).
    #[test]
    fn pointwise_stride_subsamples(seed in 0u64..300, stride in 2usize..4) {
        let x = random_tensor(seed, 2, 8, 8);
        let mut w = Tensor4::zeros(2, 2, 1, 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        w.init_he(&mut rng);
        let full = conv2d(&x, &w, None, &Conv2dCfg::new(1, Padding::Same));
        let sub = conv2d(&x, &w, None, &Conv2dCfg::new(stride, Padding::Same));
        for c in 0..sub.c() {
            for p in 0..sub.h() {
                for q in 0..sub.w() {
                    let a = sub.at(c, p, q);
                    let b = full.at(c, p * stride, q * stride);
                    prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
                }
            }
        }
    }
}
