//! Differential tests between the `Direct`, `Im2colGemm`, and `SparseCsc`
//! convolution backends: random shapes, strides, paddings, bias on/off, and
//! pruned weights, plus the edge cases that historically break im2col
//! implementations (1x1 kernels, stride > kernel, inputs smaller than the
//! kernel, zero-dimensional `Valid` outputs).
//!
//! `SparseCsc` replays Direct's tap order exactly, so it is held to the
//! stronger standard: bit-identical to `Direct` on *every* case here, not
//! just the integer-valued ones.

use hd_tensor::conv::{
    conv2d, conv2d_weight_grad, conv_out_dim, BackendPolicy, Conv2dCfg, ConvBackend, Padding,
};
use hd_tensor::{Tensor3, Tensor4};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dense strictly-positive tensor: keeps `conv2d` off the shared
/// sparse-input scatter path so both dense backends actually run.
fn dense_tensor(seed: u64, c: usize, h: usize, w: usize) -> Tensor3 {
    let mut t = Tensor3::zeros(c, h, w);
    let mut rng = StdRng::seed_from_u64(seed);
    t.fill_uniform(&mut rng, 0.05, 1.0);
    t
}

fn random_weights(seed: u64, k: usize, c: usize, kernel: usize) -> Tensor4 {
    let mut w = Tensor4::zeros(k, c, kernel, kernel);
    w.init_he(&mut StdRng::seed_from_u64(seed));
    w
}

/// Runs the same convolution on all three backends. The CSC result must be
/// bit-identical to Direct (same tap order by construction); the pair
/// returned is left for the caller's Direct-vs-GEMM tolerance check.
fn run_both(
    x: &Tensor3,
    w: &Tensor4,
    bias: Option<&[f32]>,
    stride: usize,
    padding: Padding,
) -> (Tensor3, Tensor3) {
    let run = |backend| {
        conv2d(
            x,
            w,
            bias,
            &Conv2dCfg::new(stride, padding).with_backend(backend),
        )
    };
    let direct = run(ConvBackend::Direct);
    let gemm = run(ConvBackend::Im2colGemm);
    let sparse = run(ConvBackend::SparseCsc);
    assert_eq!(direct.shape(), gemm.shape(), "backend shapes diverge");
    assert_eq!(direct.shape(), sparse.shape(), "backend shapes diverge");
    for (a, b) in direct.data().iter().zip(sparse.data()) {
        assert!(
            a.to_bits() == b.to_bits(),
            "SparseCsc not bit-identical to Direct: {a} vs {b}"
        );
    }
    (direct, gemm)
}

fn assert_close(direct: &[f32], gemm: &[f32]) {
    for (a, b) in direct.iter().zip(gemm) {
        assert!((a - b).abs() <= 1e-4 * (1.0 + a.abs()), "{a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random shape/stride/padding/bias sweep: outputs agree within 1e-4.
    #[test]
    fn backends_agree_on_random_convs(
        seed in 0u64..10_000,
        in_c in 1usize..4,
        out_c in 1usize..6,
        h in 3usize..10,
        w in 3usize..10,
        kernel in 1usize..5,
        stride in 1usize..4,
        padding in prop_oneof![Just(Padding::Same), Just(Padding::Valid)],
        with_bias in 0u32..2,
    ) {
        let x = dense_tensor(seed, in_c, h, w);
        let wt = random_weights(seed ^ 0xBEEF, out_c, in_c, kernel);
        let bias: Option<Vec<f32>> = (with_bias == 1).then(|| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xB1A5);
            (0..out_c).map(|_| rng.gen_range(-1.0..1.0)).collect()
        });
        let (direct, gemm) = run_both(&x, &wt, bias.as_deref(), stride, padding);
        assert_close(direct.data(), gemm.data());
    }

    /// Pruned weights (random per-element and whole-filter pruning):
    /// the GEMM path's tap/row skipping must not change any output.
    #[test]
    fn backends_agree_on_pruned_weights(
        seed in 0u64..10_000,
        kernel in prop_oneof![Just(1usize), Just(3usize), Just(5usize)],
        stride in 1usize..3,
        keep_percent in 5u32..60,
    ) {
        let x = dense_tensor(seed, 3, 9, 9);
        let mut wt = random_weights(seed ^ 0xF00D, 6, 3, kernel);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E);
        for v in wt.data_mut().iter_mut() {
            if rng.gen_range(0u32..100) >= keep_percent {
                *v = 0.0;
            }
        }
        // Zero an entire output filter so the row-skip path triggers too.
        let per_filter = wt.len() / 6;
        for i in 0..per_filter {
            wt.data_mut()[2 * per_filter + i] = 0.0;
        }
        let (direct, gemm) = run_both(&x, &wt, Some(&[0.5, -0.5, 0.25, 0.0, 1.0, -1.0]), stride, Padding::Same);
        assert_close(direct.data(), gemm.data());
    }

    /// Integer-valued inputs and weights: every product and sum is exactly
    /// representable, so the backends must agree bit-for-bit.
    #[test]
    fn backends_exact_on_integer_inputs(
        seed in 0u64..10_000,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in prop_oneof![Just(Padding::Same), Just(Padding::Valid)],
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor3::zeros(2, 7, 7);
        for v in x.data_mut().iter_mut() {
            *v = rng.gen_range(1u32..5) as f32; // dense, integral
        }
        let mut wt = Tensor4::zeros(4, 2, kernel, kernel);
        for v in wt.data_mut().iter_mut() {
            *v = rng.gen_range(0u32..5) as f32 - 2.0; // integral, with zeros
        }
        let bias = [1.0f32, -2.0, 0.0, 3.0];
        let (direct, gemm) = run_both(&x, &wt, Some(&bias), stride, padding);
        for (a, b) in direct.data().iter().zip(gemm.data()) {
            prop_assert!(a.to_bits() == b.to_bits(), "{a} vs {b} not exact");
        }
    }

    /// Stripe inputs (one nonzero column, the prober's probe shape) with
    /// pruned weights: the regime the CSC backend exists for. The auto-routed
    /// CSC result must match the dense reference loop bit-for-bit, and agree
    /// with a GEMM run whose policy pins it onto the dense path.
    #[test]
    fn backends_agree_on_stripe_inputs_and_pruned_weights(
        seed in 0u64..10_000,
        col in 0usize..9,
        kernel in prop_oneof![Just(1usize), Just(3usize), Just(5usize)],
        stride in 1usize..3,
        keep_percent in 5u32..40,
        with_bias in 0u32..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor3::zeros(3, 9, 9);
        for c in 0..3 {
            for y in 0..9 {
                x.set(c, y, col, rng.gen_range(-1.0f32..1.0));
            }
        }
        let mut wt = random_weights(seed ^ 0x57A1, 6, 3, kernel);
        for v in wt.data_mut().iter_mut() {
            if rng.gen_range(0u32..100) >= keep_percent {
                *v = 0.0;
            }
        }
        let bias: Option<Vec<f32>> = (with_bias == 1).then(|| {
            (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
        });
        // Sparse stripe ⇒ the default cfg auto-routes onto the CSC kernel.
        let fast = conv2d(&x, &wt, bias.as_deref(), &Conv2dCfg::new(stride, Padding::Same));
        let reference = hd_tensor::conv::conv2d_reference(
            &x, &wt, bias.as_deref(), &Conv2dCfg::new(stride, Padding::Same));
        prop_assert_eq!(fast.data(), reference.data(), "CSC must match the reference bit-for-bit");
        // Zeroed thresholds pin GEMM onto the dense path despite the sparse input.
        let dense_only = BackendPolicy {
            input_density_threshold: 0,
            weight_density_threshold: 0,
            auto_sparse: false,
        };
        let gemm = conv2d(&x, &wt, bias.as_deref(),
            &Conv2dCfg::new(stride, Padding::Same)
                .with_backend(ConvBackend::Im2colGemm)
                .with_policy(dense_only));
        assert_close(reference.data(), gemm.data());
    }

    /// N:M-patterned weights (per-M-group along the input-channel axis at
    /// every fixed (k, r, s), keep the top-N magnitudes): the structured
    /// zero pattern the sparse-victim matrix deploys. All three backends
    /// must agree, and SparseCsc stays bit-identical to Direct.
    #[test]
    fn backends_agree_on_nm_patterned_weights(
        seed in 0u64..10_000,
        n in 1usize..3,
        kernel in prop_oneof![Just(1usize), Just(3usize)],
        stride in 1usize..3,
        with_bias in 0u32..2,
    ) {
        let m = 4usize;
        let in_c = 8usize;
        let out_c = 5usize;
        let x = dense_tensor(seed, in_c, 9, 9);
        let mut wt = random_weights(seed ^ 0x24AA, out_c, in_c, kernel);
        // Impose the N:M pattern: zero everything but the top-N of each
        // M-group along C.
        for k in 0..out_c {
            for r in 0..kernel {
                for s in 0..kernel {
                    for c0 in (0..in_c).step_by(m) {
                        let mut group: Vec<usize> = (c0..(c0 + m).min(in_c))
                            .map(|c| wt.index(k, c, r, s))
                            .collect();
                        group.sort_by(|&a, &b| {
                            wt.data()[b].abs().total_cmp(&wt.data()[a].abs())
                        });
                        for &i in group.iter().skip(n) {
                            wt.data_mut()[i] = 0.0;
                        }
                    }
                }
            }
        }
        let bias: Option<Vec<f32>> = (with_bias == 1).then(|| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xB1A5);
            (0..out_c).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
        });
        let (direct, gemm) = run_both(&x, &wt, bias.as_deref(), stride, Padding::Same);
        assert_close(direct.data(), gemm.data());
    }

    /// Channel-removed weights (the structured-pruning shapes): slicing
    /// output filters with `select_k` and input channels with `select_c`
    /// yields odd K/C combinations the backends rarely see; they must
    /// agree on all of them, with the sliced input channels removed from
    /// the image too.
    #[test]
    fn backends_agree_on_channel_removed_weights(
        seed in 0u64..10_000,
        kernel in prop_oneof![Just(1usize), Just(3usize), Just(5usize)],
        stride in 1usize..3,
        keep_k in 1usize..6,
        keep_c in 1usize..5,
    ) {
        let (out_c, in_c) = (6usize, 5usize);
        let wt = random_weights(seed ^ 0x5E1E, out_c, in_c, kernel);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0C0);
        let mut k_mask = vec![false; out_c];
        let mut c_mask = vec![false; in_c];
        for _ in 0..keep_k {
            k_mask[rng.gen_range(0..out_c)] = true;
        }
        for _ in 0..keep_c {
            c_mask[rng.gen_range(0..in_c)] = true;
        }
        // Always keep at least one of each axis.
        k_mask[0] = true;
        c_mask[0] = true;
        let wt = wt.select_k(&k_mask).select_c(&c_mask);
        let full = dense_tensor(seed, in_c, 8, 8);
        let mut x = Tensor3::zeros(wt.c(), 8, 8);
        let mut dst = 0;
        for (c, &keep) in c_mask.iter().enumerate() {
            if keep {
                for y in 0..8 {
                    for xx in 0..8 {
                        x.set(dst, y, xx, full.at(c, y, xx));
                    }
                }
                dst += 1;
            }
        }
        let (direct, gemm) = run_both(&x, &wt, None, stride, Padding::Same);
        assert_close(direct.data(), gemm.data());
    }

    /// The weight-gradient GEMM agrees with the direct loop; `SparseCsc`
    /// dispatches weight gradients to the GEMM path bit-for-bit.
    #[test]
    fn weight_grad_backends_agree(
        seed in 0u64..10_000,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in prop_oneof![Just(Padding::Same), Just(Padding::Valid)],
    ) {
        let x = dense_tensor(seed, 2, 8, 8);
        let oh = conv_out_dim(8, kernel, stride, padding);
        if oh > 0 {
            let g = dense_tensor(seed ^ 0x6AD, 3, oh, oh);
            let direct = conv2d_weight_grad(&g, &x, (kernel, kernel),
                &Conv2dCfg::new(stride, padding).with_backend(ConvBackend::Direct));
            let gemm = conv2d_weight_grad(&g, &x, (kernel, kernel),
                &Conv2dCfg::new(stride, padding).with_backend(ConvBackend::Im2colGemm));
            let sparse = conv2d_weight_grad(&g, &x, (kernel, kernel),
                &Conv2dCfg::new(stride, padding).with_backend(ConvBackend::SparseCsc));
            assert_close(direct.data(), gemm.data());
            prop_assert_eq!(gemm.data(), sparse.data(), "SparseCsc grad must reuse the GEMM path");
        }
    }
}

// ---- Edge cases the property sweep surfaced, pinned as unit tests ----

#[test]
fn one_by_one_kernel_all_strides() {
    let x = dense_tensor(1, 3, 6, 6);
    let w = random_weights(2, 5, 3, 1);
    for stride in 1..=3 {
        for padding in [Padding::Same, Padding::Valid] {
            let (direct, gemm) = run_both(&x, &w, None, stride, padding);
            assert_close(direct.data(), gemm.data());
        }
    }
}

#[test]
fn stride_larger_than_kernel() {
    let x = dense_tensor(3, 2, 9, 9);
    let w = random_weights(4, 3, 2, 2);
    for padding in [Padding::Same, Padding::Valid] {
        let (direct, gemm) = run_both(&x, &w, Some(&[0.5, -0.5, 0.0]), 3, padding);
        assert_close(direct.data(), gemm.data());
    }
}

#[test]
fn input_smaller_than_kernel_same_padding() {
    // 2x2 input under a 5x5 kernel: every patch is mostly padding.
    let x = dense_tensor(5, 1, 2, 2);
    let w = random_weights(6, 2, 1, 5);
    let (direct, gemm) = run_both(&x, &w, Some(&[1.0, 2.0]), 1, Padding::Same);
    assert_eq!((gemm.h(), gemm.w()), (2, 2));
    assert_close(direct.data(), gemm.data());
}

#[test]
fn input_smaller_than_kernel_valid_is_empty() {
    // Valid padding cannot place the kernel at all: 0-dim output.
    let x = dense_tensor(7, 2, 3, 3);
    let w = random_weights(8, 3, 2, 4);
    let (direct, gemm) = run_both(&x, &w, None, 1, Padding::Valid);
    assert_eq!((direct.h(), direct.w()), (0, 0));
    assert_eq!((gemm.h(), gemm.w()), (0, 0));
}

#[test]
fn single_pixel_output_valid() {
    // Kernel exactly covers the input: one output pixel.
    let x = dense_tensor(9, 2, 3, 3);
    let w = random_weights(10, 4, 2, 3);
    let (direct, gemm) = run_both(&x, &w, Some(&[0.1, 0.2, 0.3, 0.4]), 1, Padding::Valid);
    assert_eq!((gemm.h(), gemm.w()), (1, 1));
    assert_close(direct.data(), gemm.data());
}
