//! Differential tests between the vector (`AVX2`/`NEON`) and scalar SIMD
//! paths, and between the INT8 convolution and its reference loop.
//!
//! The SIMD contract is *bit-identity*: per output element, both dispatch
//! modes perform the same f32 additions in the same order (no FMA, lane
//! width only changes how many independent elements advance together).
//! These tests force each mode with [`simd::set_enabled`] and compare
//! outputs bit-for-bit — on hosts without AVX2/NEON both runs take the
//! scalar path and the tests degrade to self-consistency checks.

use hd_tensor::conv::{conv2d, Conv2dCfg, ConvBackend, Padding};
use hd_tensor::gemm::{gemm, GemmBlocking};
use hd_tensor::qconv::{qconv2d, qconv2d_reference, QConvParams};
use hd_tensor::simd;
use hd_tensor::{QTensor3, QTensor4, QuantParams, Tensor3, Tensor4};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// [`simd::set_enabled`] flips a process-wide mode; tests in this binary
/// run concurrently, so every mode-flipping section serializes here.
static SIMD_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once on the vector path and once on the scalar path,
/// restoring vector dispatch afterwards.
fn both_paths<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = SIMD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    simd::set_enabled(true);
    let vector = f();
    simd::set_enabled(false);
    let scalar = f();
    simd::set_enabled(true);
    (vector, scalar)
}

fn random_tensor3(seed: u64, c: usize, h: usize, w: usize) -> Tensor3 {
    let mut t = Tensor3::zeros(c, h, w);
    t.fill_uniform(&mut StdRng::seed_from_u64(seed), -1.0, 1.0);
    t
}

fn pruned_weights(seed: u64, k: usize, c: usize, kernel: usize, keep_percent: u32) -> Tensor4 {
    let mut w = Tensor4::zeros(k, c, kernel, kernel);
    let mut rng = StdRng::seed_from_u64(seed);
    w.init_he(&mut rng);
    for v in w.data_mut().iter_mut() {
        if rng.gen_range(0u32..100) >= keep_percent {
            *v = 0.0;
        }
    }
    w
}

/// INT8 workload: affine input quantization (exact zero point), symmetric
/// per-output-channel weights, output range calibrated from the f32 conv.
fn quantized_workload(x: &Tensor3, w: &Tensor4, cfg: &Conv2dCfg) -> (QTensor3, QConvParams) {
    let (lo, hi) = x
        .data()
        .iter()
        .fold((0.0f32, 0.0f32), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let in_qp = QuantParams::from_range(lo, hi);
    let qx = QTensor3::quantize(x, in_qp);
    let qw = QTensor4::quantize(w);
    let f32_out = conv2d(x, w, None, cfg);
    let (olo, ohi) = f32_out
        .data()
        .iter()
        .fold((0.0f32, 0.0f32), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let out_qp = QuantParams::from_range(olo, ohi);
    let multipliers = qw
        .scales()
        .iter()
        .map(|sw| in_qp.scale * sw / out_qp.scale)
        .collect();
    let params = QConvParams {
        weight: qw,
        bias_q: vec![0; w.k()],
        multipliers,
        out_qp,
    };
    (qx, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The GEMM kernel produces the same bytes on both dispatch modes for
    /// random dimensions, including edge tiles (`m % MR`, `n % NR`) and
    /// non-default cache blockings.
    #[test]
    fn gemm_simd_matches_scalar_bitwise(
        seed in 0u64..10_000,
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..30,
        custom_blocking in 0u32..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // A tiny blocking forces many partial panels; the default mostly
        // runs one block. Both must agree with each other bit-for-bit.
        let blk = if custom_blocking == 1 {
            GemmBlocking::new(simd::MR, 8, simd::NR).expect("valid blocking")
        } else {
            GemmBlocking::default()
        };
        let (vector, scalar) = both_paths(|| {
            let mut c = vec![0.0f32; m * n];
            gemm(m, n, k, &a, k, &b, n, &mut c, n, &blk);
            c
        });
        for (x, y) in vector.iter().zip(&scalar) {
            prop_assert!(x.to_bits() == y.to_bits(), "{x} vs {y} diverge");
        }
    }

    /// Leading dimensions larger than the row length (strided views) pack
    /// through `pack_a`'s edge paths; both modes must still agree exactly.
    #[test]
    fn gemm_strided_views_match_bitwise(
        seed in 0u64..10_000,
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..16,
        lda_pad in 0usize..5,
        ldb_pad in 0usize..5,
        ldc_pad in 0usize..5,
    ) {
        let (lda, ldb, ldc) = (k + lda_pad, n + ldb_pad, n + ldc_pad);
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * lda).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..k * ldb).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let (vector, scalar) = both_paths(|| {
            let mut c = vec![0.0f32; m * ldc];
            gemm(m, n, k, &a, lda, &b, ldb, &mut c, ldc, &GemmBlocking::default());
            c
        });
        for (x, y) in vector.iter().zip(&scalar) {
            prop_assert!(x.to_bits() == y.to_bits(), "{x} vs {y} diverge");
        }
    }

    /// Every convolution backend is bit-identical across dispatch modes on
    /// random shapes, strides, and pruned weights. This covers the GEMM
    /// micro-kernel (Im2colGemm), the CSC scatter (`axpy_nonzero`), and
    /// the Direct inner loop in one sweep.
    #[test]
    fn conv_backends_bit_identical_across_simd_modes(
        seed in 0u64..10_000,
        in_c in 1usize..4,
        out_c in 1usize..6,
        hw in 4usize..10,
        kernel in prop_oneof![Just(1usize), Just(3usize), Just(5usize)],
        stride in 1usize..3,
        keep_percent in 10u32..80,
        backend in prop_oneof![
            Just(ConvBackend::Direct),
            Just(ConvBackend::Im2colGemm),
            Just(ConvBackend::SparseCsc),
        ],
    ) {
        let x = random_tensor3(seed, in_c, hw, hw);
        let w = pruned_weights(seed ^ 0x51D, out_c, in_c, kernel, keep_percent);
        let cfg = Conv2dCfg::new(stride, Padding::Same).with_backend(backend);
        let (vector, scalar) = both_paths(|| conv2d(&x, &w, None, &cfg));
        prop_assert_eq!(vector.shape(), scalar.shape());
        for (a, b) in vector.data().iter().zip(scalar.data()) {
            prop_assert!(a.to_bits() == b.to_bits(), "{a} vs {b} diverge ({backend:?})");
        }
    }

    /// Stripe inputs (the prober's probe shape) route onto the sparse
    /// scatter path; its masked lane blend must not flip a single bit.
    #[test]
    fn sparse_scatter_bit_identical_across_simd_modes(
        seed in 0u64..10_000,
        col in 0usize..9,
        kernel in prop_oneof![Just(3usize), Just(5usize)],
        keep_percent in 5u32..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor3::zeros(3, 9, 9);
        for c in 0..3 {
            for y in 0..9 {
                x.set(c, y, col, rng.gen_range(-1.0f32..1.0));
            }
        }
        let w = pruned_weights(seed ^ 0xCA7, 6, 3, kernel, keep_percent);
        let cfg = Conv2dCfg::new(1, Padding::Same);
        let (vector, scalar) = both_paths(|| conv2d(&x, &w, None, &cfg));
        for (a, b) in vector.data().iter().zip(scalar.data()) {
            prop_assert!(a.to_bits() == b.to_bits(), "{a} vs {b} diverge on stripe");
        }
    }

    /// The INT8 fast path (`qconv2d`) agrees with the reference loop
    /// exactly — integer accumulation leaves no tolerance to hide behind —
    /// and both dispatch modes produce the same bytes.
    #[test]
    fn qconv_matches_reference_exactly(
        seed in 0u64..10_000,
        in_c in 1usize..4,
        out_c in 1usize..5,
        hw in 4usize..9,
        kernel in prop_oneof![Just(1usize), Just(3usize)],
        stride in 1usize..3,
        keep_percent in 10u32..90,
    ) {
        let x = random_tensor3(seed, in_c, hw, hw);
        let w = pruned_weights(seed ^ 0x1A7E, out_c, in_c, kernel, keep_percent);
        let cfg = Conv2dCfg::new(stride, Padding::Same);
        let (qx, params) = quantized_workload(&x, &w, &cfg);
        let reference = qconv2d_reference(&qx, &params, &cfg);
        let (vector, scalar) = both_paths(|| qconv2d(&qx, &params, &cfg));
        prop_assert_eq!(vector.data(), scalar.data(), "INT8 SIMD modes diverge");
        prop_assert_eq!(vector.shape(), reference.shape());
        prop_assert_eq!(vector.data(), reference.data(), "qconv2d diverges from reference");
    }
}
