//! Cache-blocked single-precision GEMM for the im2col convolution backend.
//!
//! Classic three-level blocking (Goto/BLIS style): the `n` dimension is
//! split into `nc`-wide slabs, the shared `k` dimension into `kc`-deep
//! panels, and the `m` dimension into `mc`-tall blocks. Each A block and B
//! panel is repacked into contiguous micro-panels ([`MR`]- and [`NR`]-wide
//! strips) so the register-tiled micro-kernel streams both operands
//! sequentially from L1/L2 instead of striding through the source matrices.
//!
//! # Determinism contract
//!
//! [`gemm`] *accumulates into* `C` and visits the shared dimension in
//! strictly ascending order for every output element: `kc` panels are
//! processed in order, and inside the micro-kernel the accumulators are
//! loaded from `C`, updated with `j = 0, 1, 2, …` in sequence, then stored
//! back. Each `C[i][j]` therefore receives exactly the floating-point
//! addition sequence of the naive triple loop
//!
//! ```text
//! for p in 0..k { c[i][j] += a[i][p] * b[p][j]; }
//! ```
//!
//! regardless of the blocking parameters. The conv backends rely on this to
//! produce results bit-identical to the direct loop nest (which makes the
//! simulator's DRAM traces and encode timings backend-invariant).

pub use crate::simd::{MR, NR};

/// Cache-blocking parameters. The defaults target a ~32 KiB L1 / ~512 KiB
/// L2 budget: one packed B panel (`kc x nc` f32) stays L2-resident while
/// `kc x MR` A strips stream through L1.
///
/// Construct custom blockings with [`GemmBlocking::new`], which rejects
/// parameters the packing layout cannot honor (`mc < MR`, `kc == 0`,
/// `nc < NR`). The fields stay public for struct-literal construction in
/// const contexts; [`gemm`] re-validates and panics on an invalid literal
/// rather than silently clamping it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GemmBlocking {
    /// Block height of A (rows of C computed per packed A block).
    pub mc: usize,
    /// Panel depth along the shared dimension.
    pub kc: usize,
    /// Slab width of B (columns of C per packed B panel).
    pub nc: usize,
}

/// Invalid [`GemmBlocking`] parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockingError {
    /// `mc` is smaller than the micro-tile height [`MR`].
    McBelowTile {
        /// Rejected value.
        got: usize,
    },
    /// `kc` is zero — no panel depth to accumulate over.
    KcZero,
    /// `nc` is smaller than the micro-tile width [`NR`].
    NcBelowTile {
        /// Rejected value.
        got: usize,
    },
}

impl std::fmt::Display for BlockingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockingError::McBelowTile { got } => {
                write!(f, "mc = {got} is below the micro-tile height {MR}")
            }
            BlockingError::KcZero => write!(f, "kc must be nonzero"),
            BlockingError::NcBelowTile { got } => {
                write!(f, "nc = {got} is below the micro-tile width {NR}")
            }
        }
    }
}

impl std::error::Error for BlockingError {}

impl GemmBlocking {
    /// Validating constructor: the packing layout needs at least one full
    /// micro-tile per block (`mc >= MR`, `nc >= NR`) and a nonzero panel
    /// depth.
    pub fn new(mc: usize, kc: usize, nc: usize) -> Result<Self, BlockingError> {
        let blk = GemmBlocking { mc, kc, nc };
        blk.validate()?;
        Ok(blk)
    }

    /// Checks the invariants [`GemmBlocking::new`] enforces.
    pub fn validate(&self) -> Result<(), BlockingError> {
        if self.mc < MR {
            return Err(BlockingError::McBelowTile { got: self.mc });
        }
        if self.kc == 0 {
            return Err(BlockingError::KcZero);
        }
        if self.nc < NR {
            return Err(BlockingError::NcBelowTile { got: self.nc });
        }
        Ok(())
    }
}

impl Default for GemmBlocking {
    fn default() -> Self {
        GemmBlocking {
            mc: 64,
            kc: 256,
            nc: 512,
        }
    }
}

/// `C += A * B` on row-major slices with explicit leading dimensions.
///
/// * `a`: `m x k`, row stride `lda`,
/// * `b`: `k x n`, row stride `ldb`,
/// * `c`: `m x n`, row stride `ldc` — read-modify-written.
///
/// Callers initialize `C` (zeros, or a bias broadcast) before the call; see
/// the module docs for the accumulation-order guarantee.
///
/// # Panics
///
/// Panics if a slice is too short for its dimensions, a leading dimension
/// is smaller than the logical row width, or `blk` fails
/// [`GemmBlocking::validate`] (struct literals bypass the validating
/// constructor; clamping them silently would hide the config bug).
#[allow(clippy::too_many_arguments)] // standard BLAS sgemm-style signature
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    blk: &GemmBlocking,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(
        lda >= k && ldb >= n && ldc >= n,
        "leading dimension too small"
    );
    assert!(a.len() >= (m - 1) * lda + k, "A slice too short");
    assert!(c.len() >= (m - 1) * ldc + n, "C slice too short");
    if k == 0 {
        return;
    }
    assert!(b.len() >= (k - 1) * ldb + n, "B slice too short");
    assert!(
        blk.validate().is_ok(),
        "invalid GEMM blocking {blk:?}: mc >= {MR}, kc >= 1, nc >= {NR} required"
    );
    let (mc, kc, nc) = (blk.mc, blk.kc, blk.nc);

    // Packing buffers, reused across panels.
    let mut packed_a = vec![0.0f32; mc.div_ceil(MR) * MR * kc];
    let mut packed_b = vec![0.0f32; nc.div_ceil(NR) * NR * kc];

    for jc in (0..n).step_by(nc) {
        let ncb = nc.min(n - jc);
        // Ascending `pc` keeps the per-element accumulation order sequential.
        for pc in (0..k).step_by(kc) {
            let kcb = kc.min(k - pc);
            pack_b(&mut packed_b, b, ldb, pc, jc, kcb, ncb);
            for ic in (0..m).step_by(mc) {
                let mcb = mc.min(m - ic);
                pack_a(&mut packed_a, a, lda, ic, pc, mcb, kcb);
                for jr in (0..ncb).step_by(NR) {
                    let nrb = NR.min(ncb - jr);
                    let b_strip = &packed_b[(jr / NR) * NR * kcb..][..NR * kcb];
                    for ir in (0..mcb).step_by(MR) {
                        let mrb = MR.min(mcb - ir);
                        let a_strip = &packed_a[(ir / MR) * MR * kcb..][..MR * kcb];
                        let c_off = (ic + ir) * ldc + jc + jr;
                        micro_kernel(kcb, a_strip, b_strip, &mut c[c_off..], ldc, mrb, nrb);
                    }
                }
            }
        }
    }
}

/// Packs `a[ic..ic+mcb][pc..pc+kcb]` into `MR`-row strips: strip `s` holds
/// `kcb` groups of `MR` column-interleaved values (zero-padded past `mcb`).
fn pack_a(dst: &mut [f32], a: &[f32], lda: usize, ic: usize, pc: usize, mcb: usize, kcb: usize) {
    for ir in (0..mcb).step_by(MR) {
        let strip = &mut dst[(ir / MR) * MR * kcb..][..MR * kcb];
        let rows = MR.min(mcb - ir);
        // Hoisted row slices keep the transpose loop free of index
        // arithmetic and bounds checks (rows past `mcb` pack as zeros).
        let mut row: [&[f32]; MR] = [&[]; MR];
        for (i, r) in row.iter_mut().enumerate().take(rows) {
            *r = &a[(ic + ir + i) * lda + pc..][..kcb];
        }
        if rows == MR {
            for (j, g) in strip.chunks_exact_mut(MR).enumerate() {
                for (gi, r) in g.iter_mut().zip(&row) {
                    *gi = r[j];
                }
            }
        } else {
            for (j, g) in strip.chunks_exact_mut(MR).enumerate() {
                for (i, gi) in g.iter_mut().enumerate() {
                    *gi = if i < rows { row[i][j] } else { 0.0 };
                }
            }
        }
    }
}

/// Packs `b[pc..pc+kcb][jc..jc+ncb]` into `NR`-column strips: strip `s`
/// holds `kcb` rows of `NR` contiguous values (zero-padded past `ncb`).
fn pack_b(dst: &mut [f32], b: &[f32], ldb: usize, pc: usize, jc: usize, kcb: usize, ncb: usize) {
    for jr in (0..ncb).step_by(NR) {
        let strip = &mut dst[(jr / NR) * NR * kcb..][..NR * kcb];
        let cols = NR.min(ncb - jr);
        for j in 0..kcb {
            let src = &b[(pc + j) * ldb + jc + jr..][..cols];
            let g = &mut strip[j * NR..j * NR + NR];
            g[..cols].copy_from_slice(src);
            for gi in &mut g[cols..] {
                *gi = 0.0;
            }
        }
    }
}

/// `MR x NR` register tile: loads the C tile, accumulates `kcb` rank-1
/// updates in ascending `j`, stores back. `mrb`/`nrb` mask the edge tiles.
/// Dispatches to the runtime-selected vector or scalar kernel; both are
/// bit-identical by the [`crate::simd`] contract.
#[inline]
fn micro_kernel(
    kcb: usize,
    a_strip: &[f32],
    b_strip: &[f32],
    c: &mut [f32],
    ldc: usize,
    mrb: usize,
    nrb: usize,
) {
    crate::simd::gemm_micro(kcb, a_strip, b_strip, c, ldc, mrb, nrb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Naive accumulating reference with the same per-element j order.
    fn gemm_ref(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn random(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn matches_reference_bitwise_across_shapes() {
        // Shapes straddling every blocking edge: sub-tile, exact-tile,
        // multi-panel in each dimension.
        let blk = GemmBlocking {
            mc: 8,
            kc: 16,
            nc: 24,
        };
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 16),
            (9, 17, 33),
            (16, 24, 16),
            (21, 50, 40),
        ] {
            let a = random(m * k, 1 + m as u64);
            let b = random(k * n, 2 + n as u64);
            let mut c = random(m * n, 3 + k as u64);
            let mut c_ref = c.clone();
            gemm(m, n, k, &a, k, &b, n, &mut c, n, &blk);
            gemm_ref(m, n, k, &a, &b, &mut c_ref);
            for (idx, (x, y)) in c.iter().zip(&c_ref).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "({m},{n},{k}) idx {idx}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn respects_leading_dimensions() {
        // Operate on an interior window of larger buffers.
        let (m, n, k) = (5, 6, 7);
        let (lda, ldb, ldc) = (k + 3, n + 2, n + 5);
        let mut rng = StdRng::seed_from_u64(9);
        let a: Vec<f32> = (0..m * lda).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * ldb).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut c = vec![0.0f32; m * ldc];
        gemm(
            m,
            n,
            k,
            &a,
            lda,
            &b,
            ldb,
            &mut c,
            ldc,
            &GemmBlocking::default(),
        );
        for i in 0..m {
            for j in 0..n {
                let mut want = 0.0f32;
                for p in 0..k {
                    want += a[i * lda + p] * b[p * ldb + j];
                }
                let got = c[i * ldc + j];
                assert!(got.to_bits() == want.to_bits(), "{got} vs {want}");
            }
            // Padding columns beyond n must be untouched.
            for j in n..ldc {
                assert_eq!(c[i * ldc + j], 0.0);
            }
        }
    }

    #[test]
    fn accumulates_into_existing_c() {
        let (m, n, k) = (2, 3, 2);
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![1.0, 0.0, 1.0, 0.0, 1.0, 1.0];
        let mut c = vec![10.0; m * n];
        gemm(m, n, k, &a, k, &b, n, &mut c, n, &GemmBlocking::default());
        assert_eq!(c, vec![11.0, 12.0, 13.0, 13.0, 14.0, 17.0]);
    }

    #[test]
    fn zero_k_is_identity() {
        let mut c = vec![1.0, 2.0];
        gemm(1, 2, 0, &[], 0, &[], 2, &mut c, 2, &GemmBlocking::default());
        assert_eq!(c, vec![1.0, 2.0]);
    }

    #[test]
    fn blocking_constructor_rejects_sub_tile_parameters() {
        // Regression: these used to be silently clamped to (MR, 1, NR)
        // inside gemm(), hiding the caller's config bug.
        assert_eq!(
            GemmBlocking::new(MR - 1, 16, 24),
            Err(BlockingError::McBelowTile { got: MR - 1 })
        );
        assert_eq!(GemmBlocking::new(8, 0, 24), Err(BlockingError::KcZero));
        assert_eq!(
            GemmBlocking::new(8, 16, NR - 2),
            Err(BlockingError::NcBelowTile { got: NR - 2 })
        );
        let ok = GemmBlocking::new(MR, 1, NR).expect("minimal blocking is valid");
        assert_eq!((ok.mc, ok.kc, ok.nc), (MR, 1, NR));
        assert!(GemmBlocking::default().validate().is_ok());
        // Errors render through Display for ConfigError-style reporting.
        assert!(BlockingError::KcZero.to_string().contains("kc"));
    }

    #[test]
    #[should_panic(expected = "invalid GEMM blocking")]
    fn gemm_panics_on_invalid_blocking_literal() {
        let blk = GemmBlocking {
            mc: 1,
            kc: 0,
            nc: 1,
        };
        let mut c = vec![0.0f32; 4];
        gemm(2, 2, 2, &[1.0; 4], 2, &[1.0; 4], 2, &mut c, 2, &blk);
    }
}
