//! Tensor substrate for the HuffDuff reproduction.
//!
//! Provides the dense tensor types and numeric kernels used by the victim
//! CNN (`hd-dnn`) and the sparse transfer encodings used by the
//! accelerator simulator (`hd-accel`):
//!
//! * [`Tensor3`] — a single-sample activation map in `C x H x W` layout,
//! * [`Tensor4`] — a convolution weight tensor in `K x C x R x S` layout,
//! * [`conv`], [`pool`], [`norm`] — forward kernels; dense convolutions can
//!   run on a direct loop nest or the [`im2col`] + blocked-[`gemm`] backend
//!   (selected via [`ConvBackend`], bit-identical by construction),
//! * [`sparse`] — bitmap / run-length / CSC transfer codecs that determine
//!   exactly how many bytes cross the DRAM bus for a given tensor.
//!
//! All kernels are deterministic; the GEMM backend keeps CIFAR-scale probe
//! campaigns fast without perturbing a single output bit.
//!
//! # Examples
//!
//! ```
//! use hd_tensor::{Tensor3, Tensor4, conv::{conv2d, Conv2dCfg, Padding}};
//!
//! let input = Tensor3::zeros(3, 8, 8);
//! let weight = Tensor4::zeros(16, 3, 3, 3);
//! let out = conv2d(&input, &weight, None, &Conv2dCfg::new(1, Padding::Same));
//! assert_eq!((out.c(), out.h(), out.w()), (16, 8, 8));
//! ```

pub mod cast;
pub mod colspan;
pub mod conv;
pub mod csc_conv;
pub mod dwconv;
pub mod gemm;
pub mod huffman;
pub mod im2col;
pub mod norm;
pub mod pool;
pub mod qconv;
pub mod qtensor;
pub mod shape;
pub mod simd;
pub mod sparse;
pub mod tensor;

pub use colspan::ColSpan;
pub use conv::{BackendPolicy, ConvBackend};
pub use csc_conv::CscWeights;
pub use im2col::{gemm_call_dims, GemmShape};
pub use qtensor::{QTensor3, QTensor4, QuantParams};
pub use shape::Shape3;
pub use sparse::{CompressionScheme, EncodedSize};
pub use tensor::{Tensor3, Tensor4};

/// Tolerance below which an activation value counts as zero for nnz purposes.
///
/// The accelerator's post-processing unit quantizes activations before
/// compressing them, so exact floating-point zero testing is appropriate for
/// post-ReLU values; a small epsilon guards against `-0.0` and denormals.
pub const ZERO_EPS: f32 = 1e-12;

/// Counts the non-zero entries of a slice under [`ZERO_EPS`].
pub fn nnz(values: &[f32]) -> usize {
    values.iter().filter(|v| v.abs() > ZERO_EPS).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nnz_ignores_negative_zero_and_denormals() {
        assert_eq!(nnz(&[0.0, -0.0, 1e-30, 1.0, -2.0]), 2);
    }

    #[test]
    fn nnz_empty() {
        assert_eq!(nnz(&[]), 0);
    }
}
