//! Depthwise 2-D convolution (one filter per channel, `groups == channels`).
//!
//! Needed for the MobileNetV2 baselines used in the paper's Figures 5 and 6.
//! Weights are stored as a [`Tensor4`] with `k == channels` and `c == 1`.

use crate::conv::{conv_out_dim, same_pad, Conv2dCfg, Padding};
use crate::{Tensor3, Tensor4};

/// Depthwise convolution: `out[c, p, q] = sum_{r,s} in[c, ...] * w[c, 0, r, s]`.
///
/// # Panics
///
/// Panics if the weight tensor is not depthwise-shaped (`c() != 1`) or its
/// `k()` does not match the input channel count.
///
/// # Examples
///
/// ```
/// use hd_tensor::{Tensor3, Tensor4};
/// use hd_tensor::conv::{Conv2dCfg, Padding};
/// use hd_tensor::dwconv::dwconv2d;
///
/// let x = Tensor3::full(2, 3, 3, 1.0);
/// let w = Tensor4::from_vec(2, 1, 1, 1, vec![2.0, 3.0]);
/// let y = dwconv2d(&x, &w, &Conv2dCfg::new(1, Padding::Same));
/// assert_eq!(y.at(0, 0, 0), 2.0);
/// assert_eq!(y.at(1, 0, 0), 3.0);
/// ```
pub fn dwconv2d(input: &Tensor3, weight: &Tensor4, cfg: &Conv2dCfg) -> Tensor3 {
    assert_eq!(weight.c(), 1, "depthwise weights must have c == 1");
    assert_eq!(
        weight.k(),
        input.c(),
        "depthwise weights must have one filter per input channel"
    );
    assert!(cfg.stride > 0, "stride must be positive");

    let out_h = conv_out_dim(input.h(), weight.r(), cfg.stride, cfg.padding);
    let out_w = conv_out_dim(input.w(), weight.s(), cfg.stride, cfg.padding);
    let (pad_y, pad_x) = match cfg.padding {
        Padding::Same => (
            same_pad(input.h(), weight.r(), cfg.stride),
            same_pad(input.w(), weight.s(), cfg.stride),
        ),
        Padding::Valid => (0, 0),
    };

    let mut out = Tensor3::zeros(input.c(), out_h, out_w);
    for c in 0..input.c() {
        for p in 0..out_h {
            for q in 0..out_w {
                let mut acc = 0.0;
                for r in 0..weight.r() {
                    let iy = (p * cfg.stride + r) as isize - pad_y as isize;
                    if iy < 0 || iy >= input.h() as isize {
                        continue;
                    }
                    for s in 0..weight.s() {
                        let ix = (q * cfg.stride + s) as isize - pad_x as isize;
                        if ix < 0 || ix >= input.w() as isize {
                            continue;
                        }
                        let wv = weight.at(c, 0, r, s);
                        if wv == 0.0 {
                            continue;
                        }
                        acc += wv * input.at(c, iy as usize, ix as usize);
                    }
                }
                out.set(c, p, q, acc);
            }
        }
    }
    out
}

/// Gradient of [`dwconv2d`] with respect to its input.
pub fn dwconv2d_input_grad(
    grad_out: &Tensor3,
    weight: &Tensor4,
    input_shape: (usize, usize, usize),
    cfg: &Conv2dCfg,
) -> Tensor3 {
    let (in_c, in_h, in_w) = input_shape;
    assert_eq!(grad_out.c(), in_c, "depthwise grad channel mismatch");
    let (pad_y, pad_x) = match cfg.padding {
        Padding::Same => (
            same_pad(in_h, weight.r(), cfg.stride),
            same_pad(in_w, weight.s(), cfg.stride),
        ),
        Padding::Valid => (0, 0),
    };
    let mut grad_in = Tensor3::zeros(in_c, in_h, in_w);
    for c in 0..in_c {
        for p in 0..grad_out.h() {
            for q in 0..grad_out.w() {
                let g = grad_out.at(c, p, q);
                if g == 0.0 {
                    continue;
                }
                for r in 0..weight.r() {
                    let iy = (p * cfg.stride + r) as isize - pad_y as isize;
                    if iy < 0 || iy >= in_h as isize {
                        continue;
                    }
                    for s in 0..weight.s() {
                        let ix = (q * cfg.stride + s) as isize - pad_x as isize;
                        if ix < 0 || ix >= in_w as isize {
                            continue;
                        }
                        let idx = grad_in.shape().index(c, iy as usize, ix as usize);
                        grad_in.data_mut()[idx] += g * weight.at(c, 0, r, s);
                    }
                }
            }
        }
    }
    grad_in
}

/// Gradient of [`dwconv2d`] with respect to its weights.
pub fn dwconv2d_weight_grad(
    grad_out: &Tensor3,
    input: &Tensor3,
    kernel: (usize, usize),
    cfg: &Conv2dCfg,
) -> Tensor4 {
    let (kr, ks) = kernel;
    let (pad_y, pad_x) = match cfg.padding {
        Padding::Same => (
            same_pad(input.h(), kr, cfg.stride),
            same_pad(input.w(), ks, cfg.stride),
        ),
        Padding::Valid => (0, 0),
    };
    let mut grad_w = Tensor4::zeros(input.c(), 1, kr, ks);
    for c in 0..input.c() {
        for p in 0..grad_out.h() {
            for q in 0..grad_out.w() {
                let g = grad_out.at(c, p, q);
                if g == 0.0 {
                    continue;
                }
                for r in 0..kr {
                    let iy = (p * cfg.stride + r) as isize - pad_y as isize;
                    if iy < 0 || iy >= input.h() as isize {
                        continue;
                    }
                    for s in 0..ks {
                        let ix = (q * cfg.stride + s) as isize - pad_x as isize;
                        if ix < 0 || ix >= input.w() as isize {
                            continue;
                        }
                        let idx = grad_w.index(c, 0, r, s);
                        grad_w.data_mut()[idx] += g * input.at(c, iy as usize, ix as usize);
                    }
                }
            }
        }
    }
    grad_w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(stride: usize) -> Conv2dCfg {
        Conv2dCfg::new(stride, Padding::Same)
    }

    #[test]
    fn channels_stay_independent() {
        let mut x = Tensor3::zeros(2, 3, 3);
        x.set(0, 1, 1, 1.0);
        x.set(1, 1, 1, 1.0);
        let mut w = Tensor4::zeros(2, 1, 3, 3);
        w.set(0, 0, 1, 1, 5.0);
        w.set(1, 0, 1, 1, -7.0);
        let y = dwconv2d(&x, &w, &cfg(1));
        assert_eq!(y.at(0, 1, 1), 5.0);
        assert_eq!(y.at(1, 1, 1), -7.0);
        assert_eq!(y.nnz(), 2);
    }

    #[test]
    fn stride_two() {
        let x = Tensor3::full(1, 4, 4, 1.0);
        let w = Tensor4::from_vec(1, 1, 1, 1, vec![3.0]);
        let y = dwconv2d(&x, &w, &cfg(2));
        assert_eq!((y.h(), y.w()), (2, 2));
        assert!(y.data().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn input_grad_matches_numerical() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let mut x = Tensor3::zeros(2, 4, 4);
        x.fill_uniform(&mut rng, -1.0, 1.0);
        let mut w = Tensor4::zeros(2, 1, 3, 3);
        w.init_he(&mut rng);
        let c = cfg(1);
        let out = dwconv2d(&x, &w, &c);
        let grad_out = Tensor3::full(out.c(), out.h(), out.w(), 1.0);
        let analytic = dwconv2d_input_grad(&grad_out, &w, (2, 4, 4), &c);
        let eps = 1e-3f32;
        for idx in [0usize, 5, 16, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp: f32 = dwconv2d(&xp, &w, &c).data().iter().sum();
            let fm: f32 = dwconv2d(&xm, &w, &c).data().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - analytic.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn weight_grad_matches_numerical() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(12);
        let mut x = Tensor3::zeros(1, 4, 4);
        x.fill_uniform(&mut rng, -1.0, 1.0);
        let mut w = Tensor4::zeros(1, 1, 3, 3);
        w.init_he(&mut rng);
        let c = cfg(1);
        let out = dwconv2d(&x, &w, &c);
        let grad_out = Tensor3::full(out.c(), out.h(), out.w(), 1.0);
        let analytic = dwconv2d_weight_grad(&grad_out, &x, (3, 3), &c);
        let eps = 1e-3f32;
        for idx in 0..9 {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fp: f32 = dwconv2d(&x, &wp, &c).data().iter().sum();
            let fm: f32 = dwconv2d(&x, &wm, &c).data().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - analytic.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "depthwise weights")]
    fn non_depthwise_weights_panic() {
        let x = Tensor3::zeros(2, 3, 3);
        let w = Tensor4::zeros(2, 2, 3, 3);
        let _ = dwconv2d(&x, &w, &cfg(1));
    }
}
