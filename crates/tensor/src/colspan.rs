//! Nonzero-column interval tracking for stripe-probe inference.
//!
//! Every HuffDuff probe image is a vertical stripe: exactly one nonzero
//! column. After `L` conv/pool layers the stripe's receptive field is still a
//! narrow contiguous band of columns, so a forward pass that knows the band
//! can skip the (unchanged) rest of each activation map. [`ColSpan`] is the
//! half-open column interval `[lo, hi)` that carries that knowledge through
//! the network:
//!
//! * [`ColSpan::conv`] widens the interval by the kernel footprint (the exact
//!   set of output columns whose input window intersects the interval),
//! * [`ColSpan::pool`] divides it by the pooling factor,
//! * [`ColSpan::union`] merges the intervals of residual-add operands,
//! * element-wise ops (ReLU, batch-norm, bias) keep the interval unchanged —
//!   the interval tracks where the activation may *differ from the
//!   zero-input baseline*, and column-local element-wise ops map equal
//!   inputs to equal outputs.
//!
//! The interval is conservative (a superset of the truly-dirty columns), so
//! consumers may recompute more than strictly necessary but never less.

use crate::Tensor3;

/// Half-open interval `[lo, hi)` of activation-map columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ColSpan {
    lo: usize,
    hi: usize,
}

impl ColSpan {
    /// The empty interval.
    pub fn empty() -> Self {
        ColSpan { lo: 0, hi: 0 }
    }

    /// Interval `[lo, hi)`; collapses to [`ColSpan::empty`] when `lo >= hi`.
    pub fn new(lo: usize, hi: usize) -> Self {
        if lo >= hi {
            ColSpan::empty()
        } else {
            ColSpan { lo, hi }
        }
    }

    /// The full width of a `w`-column map.
    pub fn full(w: usize) -> Self {
        ColSpan::new(0, w)
    }

    /// Tight interval covering every column of `t` holding a nonzero value.
    ///
    /// Uses the exact `!= 0.0` test of the conv kernels (not the transfer
    /// codecs' epsilon), so a column carrying only denormals still counts —
    /// anything the kernels would multiply by must stay inside the span.
    pub fn of_tensor(t: &Tensor3) -> Self {
        let (h, w) = (t.h(), t.w());
        if w == 0 {
            return ColSpan::empty();
        }
        let mut lo = w;
        let mut hi = 0;
        for row in t.data().chunks_exact(w) {
            if let Some((first, last)) = crate::sparse::nonzero_bounds(row) {
                lo = lo.min(first);
                hi = hi.max(last + 1);
            }
        }
        let _ = h;
        ColSpan::new(lo, hi)
    }

    /// Whether no column is covered.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// First covered column (meaningless when empty).
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// One past the last covered column.
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Number of covered columns.
    pub fn width(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether `col` lies inside the interval.
    pub fn contains(&self, col: usize) -> bool {
        self.lo <= col && col < self.hi
    }

    /// Smallest interval covering both operands (for residual adds).
    pub fn union(self, other: ColSpan) -> ColSpan {
        match (self.is_empty(), other.is_empty()) {
            (true, _) => other,
            (_, true) => self,
            _ => ColSpan::new(self.lo.min(other.lo), self.hi.max(other.hi)),
        }
    }

    /// Clamps the interval to a `w`-column map.
    pub fn clamp(self, w: usize) -> ColSpan {
        ColSpan::new(self.lo.min(w), self.hi.min(w))
    }

    /// Output columns of a convolution whose input window touches `self`.
    ///
    /// A kernel with `s_taps` horizontal taps, stride `stride` and left
    /// padding `pad_x` reads input columns `q*stride - pad_x ..=
    /// q*stride - pad_x + s_taps - 1` for output column `q`; the result is
    /// exactly the `q` range (clamped to `out_w`) for which that window
    /// intersects `[lo, hi)`.
    pub fn conv(self, s_taps: usize, stride: usize, pad_x: usize, out_w: usize) -> ColSpan {
        assert!(stride > 0, "stride must be positive");
        assert!(s_taps > 0, "kernel must have at least one tap");
        if self.is_empty() || out_w == 0 {
            return ColSpan::empty();
        }
        // q*stride - pad_x <= hi-1  and  q*stride - pad_x + s_taps - 1 >= lo.
        let q_lo = {
            let num = self.lo as isize + pad_x as isize - (s_taps as isize - 1);
            if num <= 0 {
                0
            } else {
                (num as usize).div_ceil(stride)
            }
        };
        let q_hi = (self.hi - 1 + pad_x) / stride + 1;
        ColSpan::new(q_lo, q_hi).clamp(out_w)
    }

    /// Output columns of a non-overlapping `factor`-pool touching `self`.
    pub fn pool(self, factor: usize, out_w: usize) -> ColSpan {
        assert!(factor > 0, "pool factor must be positive");
        if self.is_empty() {
            return ColSpan::empty();
        }
        ColSpan::new(self.lo / factor, (self.hi - 1) / factor + 1).clamp(out_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_tensor_finds_tight_bounds() {
        let mut t = Tensor3::zeros(2, 4, 9);
        t.set(0, 1, 3, 1.0);
        t.set(1, 3, 6, -2.0);
        let s = ColSpan::of_tensor(&t);
        assert_eq!((s.lo(), s.hi()), (3, 7));
        assert_eq!(s.width(), 4);
    }

    #[test]
    fn of_tensor_zero_map_is_empty() {
        assert!(ColSpan::of_tensor(&Tensor3::zeros(3, 5, 5)).is_empty());
        assert!(ColSpan::of_tensor(&Tensor3::zeros(1, 2, 0)).is_empty());
    }

    #[test]
    fn conv_same_padding_widens_by_kernel_radius() {
        // 3-tap kernel, stride 1, pad 1: column 5 reaches outputs 4..=6.
        let s = ColSpan::new(5, 6).conv(3, 1, 1, 12);
        assert_eq!((s.lo(), s.hi()), (4, 7));
    }

    #[test]
    fn conv_valid_padding_shifts_left() {
        // 3-tap kernel, no padding: column 5 reaches outputs 3..=5.
        let s = ColSpan::new(5, 6).conv(3, 1, 0, 10);
        assert_eq!((s.lo(), s.hi()), (3, 6));
    }

    #[test]
    fn conv_stride_two_downsamples() {
        // W=12, S=3, stride 2, same pad 0: x=5 is read only by q=2.
        let s = ColSpan::new(5, 6).conv(3, 2, 0, 6);
        assert_eq!((s.lo(), s.hi()), (2, 3));
    }

    #[test]
    fn conv_clamps_to_output_width() {
        let s = ColSpan::new(0, 12).conv(5, 1, 2, 12);
        assert_eq!((s.lo(), s.hi()), (0, 12));
        let left_edge = ColSpan::new(0, 1).conv(5, 1, 2, 12);
        assert_eq!((left_edge.lo(), left_edge.hi()), (0, 3));
    }

    #[test]
    fn conv_matches_bruteforce_enumeration() {
        // Exhaustively check the interval against the kernels' own window
        // arithmetic over small shapes, strides, and paddings.
        for w in 1..10usize {
            for s_taps in 1..5usize {
                for stride in 1..4usize {
                    for pad in 0..s_taps {
                        let out_w = (w + pad).div_ceil(stride).max(1);
                        for lo in 0..w {
                            for hi in lo + 1..=w {
                                let span = ColSpan::new(lo, hi).conv(s_taps, stride, pad, out_w);
                                for q in 0..out_w {
                                    let touches = (0..s_taps).any(|t| {
                                        let x = q as isize * stride as isize + t as isize
                                            - pad as isize;
                                        x >= 0 && (x as usize) >= lo && (x as usize) < hi
                                    });
                                    assert_eq!(
                                        span.contains(q),
                                        touches,
                                        "w={w} S={s_taps} stride={stride} pad={pad} \
                                         [{lo},{hi}) q={q}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pool_divides_and_drops_partial_tail() {
        let s = ColSpan::new(4, 7).pool(2, 3);
        assert_eq!((s.lo(), s.hi()), (2, 3)); // column 6 is in the dropped tail for out_w=3
        let s = ColSpan::new(5, 6).pool(2, 8);
        assert_eq!((s.lo(), s.hi()), (2, 3));
    }

    #[test]
    fn union_and_empty_identities() {
        let a = ColSpan::new(2, 4);
        let b = ColSpan::new(7, 9);
        assert_eq!(a.union(b), ColSpan::new(2, 9));
        assert_eq!(a.union(ColSpan::empty()), a);
        assert_eq!(ColSpan::empty().union(b), b);
        assert!(ColSpan::new(3, 3).is_empty());
    }
}
