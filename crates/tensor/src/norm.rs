//! Per-channel affine normalization (inference-mode batch norm) and ReLU.
//!
//! The paper models a "conv layer" as the composition CONV -> BatchNorm ->
//! ReLU (§5.2); at inference time batch norm is a per-channel affine
//! transform `y = gamma' * x + beta'`, which is what we implement here.

use crate::Tensor3;

/// Per-channel affine parameters: `y[c] = scale[c] * x[c] + shift[c]`.
///
/// # Examples
///
/// ```
/// use hd_tensor::{Tensor3, norm::Affine};
///
/// let bn = Affine::new(vec![2.0], vec![1.0]);
/// let x = Tensor3::from_vec(1, 1, 2, vec![3.0, -1.0]);
/// assert_eq!(bn.apply(&x).data(), &[7.0, -1.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Affine {
    scale: Vec<f32>,
    shift: Vec<f32>,
}

impl Affine {
    /// Creates the transform.
    ///
    /// # Panics
    ///
    /// Panics if the two parameter vectors have different lengths.
    pub fn new(scale: Vec<f32>, shift: Vec<f32>) -> Self {
        assert_eq!(scale.len(), shift.len(), "scale/shift length mismatch");
        Affine { scale, shift }
    }

    /// Identity transform over `channels` channels.
    pub fn identity(channels: usize) -> Self {
        Affine {
            scale: vec![1.0; channels],
            shift: vec![0.0; channels],
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.scale.len()
    }

    /// Per-channel scale.
    pub fn scale(&self) -> &[f32] {
        &self.scale
    }

    /// Per-channel shift.
    pub fn shift(&self) -> &[f32] {
        &self.shift
    }

    /// Mutable per-channel scale.
    pub fn scale_mut(&mut self) -> &mut [f32] {
        &mut self.scale
    }

    /// Mutable per-channel shift.
    pub fn shift_mut(&mut self) -> &mut [f32] {
        &mut self.shift
    }

    /// Applies the transform.
    ///
    /// # Panics
    ///
    /// Panics if the tensor channel count does not match.
    pub fn apply(&self, x: &Tensor3) -> Tensor3 {
        assert_eq!(x.c(), self.scale.len(), "channel mismatch in affine");
        let mut out = x.clone();
        self.apply_inplace(&mut out);
        out
    }

    /// Applies the transform in place.
    pub fn apply_inplace(&self, x: &mut Tensor3) {
        assert_eq!(x.c(), self.scale.len(), "channel mismatch in affine");
        let plane = x.h() * x.w();
        for c in 0..self.scale.len() {
            let (s, b) = (self.scale[c], self.shift[c]);
            for v in &mut x.data_mut()[c * plane..(c + 1) * plane] {
                *v = s * *v + b;
            }
        }
    }

    /// Backward pass: returns (grad wrt input, grad wrt scale, grad wrt shift).
    pub fn backward(&self, grad_out: &Tensor3, input: &Tensor3) -> (Tensor3, Vec<f32>, Vec<f32>) {
        let plane = input.h() * input.w();
        let mut grad_in = grad_out.clone();
        let mut grad_scale = vec![0.0; self.scale.len()];
        let mut grad_shift = vec![0.0; self.shift.len()];
        for c in 0..self.scale.len() {
            let s = self.scale[c];
            for i in 0..plane {
                let idx = c * plane + i;
                let g = grad_out.data()[idx];
                grad_scale[c] += g * input.data()[idx];
                grad_shift[c] += g;
                grad_in.data_mut()[idx] = g * s;
            }
        }
        (grad_in, grad_scale, grad_shift)
    }
}

/// ReLU forward.
pub fn relu(x: &Tensor3) -> Tensor3 {
    let mut out = x.clone();
    out.relu_inplace();
    out
}

/// ReLU backward: passes gradient only where the *pre-activation* input was
/// positive.
pub fn relu_backward(grad_out: &Tensor3, pre_activation: &Tensor3) -> Tensor3 {
    let mut grad_in = grad_out.clone();
    for (g, &x) in grad_in.data_mut().iter_mut().zip(pre_activation.data()) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let x = Tensor3::from_vec(2, 1, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(Affine::identity(2).apply(&x), x);
    }

    #[test]
    fn per_channel_parameters() {
        let x = Tensor3::from_vec(2, 1, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let bn = Affine::new(vec![10.0, -1.0], vec![0.5, 0.0]);
        assert_eq!(bn.apply(&x).data(), &[10.5, 20.5, -3.0, -4.0]);
    }

    #[test]
    fn relu_and_backward() {
        let pre = Tensor3::from_vec(1, 1, 4, vec![-1.0, 0.0, 2.0, 3.0]);
        let g = Tensor3::from_vec(1, 1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let gi = relu_backward(&g, &pre);
        assert_eq!(gi.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn affine_backward_matches_numerical() {
        let x = Tensor3::from_vec(1, 1, 3, vec![0.5, -1.5, 2.0]);
        let bn = Affine::new(vec![3.0], vec![-0.5]);
        let g = Tensor3::from_vec(1, 1, 3, vec![1.0, 1.0, 1.0]);
        let (gi, gs, gb) = bn.backward(&g, &x);
        assert_eq!(gi.data(), &[3.0, 3.0, 3.0]);
        assert_eq!(gs, vec![0.5 - 1.5 + 2.0]);
        assert_eq!(gb, vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let x = Tensor3::zeros(3, 1, 1);
        let _ = Affine::identity(2).apply(&x);
    }
}
