//! Checked integer conversions for trace and byte accounting.
//!
//! DRAM trace sizes mix `usize` (in-memory geometry) with `u64` (byte
//! counters that must not wrap on 32-bit hosts). Bare `as`-casts between
//! the two silently truncate; these helpers make every such boundary
//! explicit and are the only sanctioned conversion path in byte-accounting
//! code (enforced by the `lossy-cast` rule in `hd-lint`).

/// Widens an in-memory element count or geometry product to a `u64` byte
/// counter. Lossless on every supported target (`usize` is at most 64 bits).
#[inline]
pub fn usize_to_u64(n: usize) -> u64 {
    // hd-lint: allow(lossy-cast) -- the sanctioned widening primitive; usize is <= 64 bits on all supported targets
    n as u64
}

/// Narrows a byte counter back to an addressable `usize`, or `None` if the
/// value does not fit the host's address width.
#[inline]
pub fn u64_to_usize(n: u64) -> Option<usize> {
    usize::try_from(n).ok()
}

/// Rounds a non-negative model estimate (e.g. expected encoded bytes) to a
/// `u64` counter. Relies on Rust's saturating float-to-int `as` semantics:
/// NaN maps to 0, negatives clamp to 0, overflow clamps to `u64::MAX`.
#[inline]
pub fn f64_round_to_u64(x: f64) -> u64 {
    // hd-lint: allow(lossy-cast) -- saturating float->int cast is the documented contract here
    x.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_roundtrips() {
        for n in [0usize, 1, 4096, usize::MAX] {
            assert_eq!(u64_to_usize(usize_to_u64(n)), Some(n));
        }
    }

    #[test]
    fn narrowing_rejects_oversized_on_any_width() {
        // On 64-bit hosts everything fits; the contract is Option either way.
        if usize::BITS < 64 {
            assert_eq!(u64_to_usize(u64::MAX), None);
        } else {
            assert_eq!(u64_to_usize(u64::MAX), Some(usize::MAX));
        }
    }

    #[test]
    fn float_rounding_saturates() {
        assert_eq!(f64_round_to_u64(3.4), 3);
        assert_eq!(f64_round_to_u64(3.5), 4);
        assert_eq!(f64_round_to_u64(-1.0), 0);
        assert_eq!(f64_round_to_u64(f64::NAN), 0);
        assert_eq!(f64_round_to_u64(f64::INFINITY), u64::MAX);
    }
}
