//! im2col lowering: convolution as a cache-blocked GEMM.
//!
//! The convolution `out[k, p, q] = Σ_{c,r,s} w[k,c,r,s] · x[c, p·σ+r−pad,
//! q·σ+s−pad]` is a matrix product once the input is unrolled into a patch
//! matrix: `A` is the filter bank flattened to `K x (C·R·S)`, `B` gathers
//! one input patch per output pixel into `(C·R·S) x (P·Q)`, and `C = A·B`
//! lands directly in the `K x P x Q` output layout. [`crate::gemm`] then
//! supplies the cache blocking and the register-tiled micro-kernel.
//!
//! Two sparse-weight reductions shrink the GEMM before it runs:
//!
//! * **tap skipping** — a *tap* `(c, r, s)` whose weight column is zero in
//!   every filter contributes nothing; its patch-matrix row is never
//!   gathered (structured pruning often zeroes whole kernel positions),
//! * **filter-row skipping** — an output channel whose filter is entirely
//!   pruned is excluded from `A`, and its output plane is just the bias.
//!
//! Both reductions drop exactly the terms the direct loop nest skips, so
//! the result stays bit-identical to [`crate::conv::conv2d`]'s direct
//! backend (see the determinism contract in [`crate::gemm`]).

use crate::conv::{conv_out_dim, same_pad, Conv2dCfg, Padding};
use crate::gemm::{gemm, GemmBlocking};
use crate::{Tensor3, Tensor4};

/// Resolved spatial geometry of one convolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Output height `P`.
    pub out_h: usize,
    /// Output width `Q`.
    pub out_w: usize,
    /// Top zero-padding.
    pub pad_y: usize,
    /// Left zero-padding.
    pub pad_x: usize,
    /// Symmetric stride.
    pub stride: usize,
}

impl ConvGeom {
    /// Geometry for an `in_h x in_w` input under `kernel = (kr, ks)`.
    pub fn of(in_h: usize, in_w: usize, kr: usize, ks: usize, cfg: &Conv2dCfg) -> Self {
        let (pad_y, pad_x) = match cfg.padding {
            Padding::Same => (
                same_pad(in_h, kr, cfg.stride),
                same_pad(in_w, ks, cfg.stride),
            ),
            Padding::Valid => (0, 0),
        };
        ConvGeom {
            out_h: conv_out_dim(in_h, kr, cfg.stride, cfg.padding),
            out_w: conv_out_dim(in_w, ks, cfg.stride, cfg.padding),
            pad_y,
            pad_x,
            stride: cfg.stride,
        }
    }

    /// Output pixel count `P·Q`.
    pub fn out_len(&self) -> usize {
        self.out_h * self.out_w
    }
}

/// Dimensions of the single GEMM call one im2col convolution issues:
/// `C (m x n) = A (m x k) · B (k x n)`.
///
/// These are exactly the values a Cache-Telepathy-style attacker recovers
/// by watching the BLAS library's block iteration counts (Yan et al.):
/// `m` counts live filter rows (`= K` unless whole filters are pruned),
/// `k` counts live taps (`<= C·R·S`), and `n` is the output pixel count
/// `P·Q` — a pure function of input size, kernel, stride, and padding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Live filter rows (output channels with at least one nonzero weight).
    pub m: usize,
    /// Live taps (shared dimension, `<= C·R·S`).
    pub k: usize,
    /// Output pixels `P·Q`.
    pub n: usize,
}

/// The GEMM dimensions [`conv2d_im2col_gemm`] would use for this layer, or
/// `None` when it issues no GEMM at all (empty output, fully pruned
/// weights). Must mirror that function's early-outs exactly — the
/// differential test below holds the two in lockstep.
pub fn gemm_call_dims(
    in_h: usize,
    in_w: usize,
    weight: &Tensor4,
    cfg: &Conv2dCfg,
) -> Option<GemmShape> {
    let geom = ConvGeom::of(in_h, in_w, weight.r(), weight.s(), cfg);
    let n = geom.out_len();
    if n == 0 {
        return None;
    }
    let taps = nonzero_taps(weight);
    if taps.is_empty() {
        return None;
    }
    let m = (0..weight.k())
        .filter(|&k| taps.iter().any(|&(c, r, s)| weight.at(k, c, r, s) != 0.0))
        .count();
    if m == 0 {
        return None;
    }
    Some(GemmShape {
        m,
        k: taps.len(),
        n,
    })
}

/// Taps `(c, r, s)` in ascending lexicographic order whose weight column is
/// non-zero in at least one filter — the patch-matrix rows worth gathering.
pub fn nonzero_taps(weight: &Tensor4) -> Vec<(usize, usize, usize)> {
    let mut taps = Vec::with_capacity(weight.c() * weight.r() * weight.s());
    for c in 0..weight.c() {
        for r in 0..weight.r() {
            for s in 0..weight.s() {
                if (0..weight.k()).any(|k| weight.at(k, c, r, s) != 0.0) {
                    taps.push((c, r, s));
                }
            }
        }
    }
    taps
}

/// Every tap `(c, r, s)` of a `C x R x S` filter in lexicographic order.
pub fn all_taps(c: usize, r: usize, s: usize) -> Vec<(usize, usize, usize)> {
    let mut taps = Vec::with_capacity(c * r * s);
    for ci in 0..c {
        for ri in 0..r {
            for si in 0..s {
                taps.push((ci, ri, si));
            }
        }
    }
    taps
}

/// Gathers the patch matrix: row `j` holds, for tap `taps[j] = (c, r, s)`,
/// the (zero-padded) input value under that tap for every output pixel in
/// row-major `(p, q)` order. Shape: `taps.len() x geom.out_len()`.
pub fn im2col(input: &Tensor3, geom: &ConvGeom, taps: &[(usize, usize, usize)]) -> Vec<f32> {
    let n = geom.out_len();
    let mut mat = vec![0.0f32; taps.len() * n];
    for (j, &(c, r, s)) in taps.iter().enumerate() {
        let row = &mut mat[j * n..(j + 1) * n];
        gather_tap(input, geom, c, r, s, |off, v| row[off] = v);
    }
    mat
}

/// Transposed gather for the weight-gradient GEMM: element `[n][j]` of the
/// `geom.out_len() x taps.len()` result is the input value under tap `j` at
/// output pixel `n`.
pub fn im2col_transposed(
    input: &Tensor3,
    geom: &ConvGeom,
    taps: &[(usize, usize, usize)],
) -> Vec<f32> {
    let j_total = taps.len();
    let mut mat = vec![0.0f32; geom.out_len() * j_total];
    for (j, &(c, r, s)) in taps.iter().enumerate() {
        gather_tap(input, geom, c, r, s, |off, v| mat[off * j_total + j] = v);
    }
    mat
}

/// Visits every in-bounds output pixel of one tap, calling `sink(p*Q + q,
/// value)`. Out-of-bounds (padding) pixels are left to the caller's
/// zero-initialized buffer.
fn gather_tap(
    input: &Tensor3,
    geom: &ConvGeom,
    c: usize,
    r: usize,
    s: usize,
    mut sink: impl FnMut(usize, f32),
) {
    let (h, w) = (input.h() as isize, input.w() as isize);
    let stride = geom.stride as isize;
    // Valid q range: 0 <= q*stride + s - pad_x < w.
    let dx = s as isize - geom.pad_x as isize;
    let q_lo = if dx < 0 {
        (-dx + stride - 1) / stride
    } else {
        0
    } as usize;
    let q_hi = if w <= dx {
        0
    } else {
        (geom.out_w as isize).min((w - dx - 1) / stride + 1) as usize
    };
    if q_lo >= q_hi {
        return;
    }
    let dy = r as isize - geom.pad_y as isize;
    for p in 0..geom.out_h {
        let iy = p as isize * stride + dy;
        if iy < 0 || iy >= h {
            continue;
        }
        let base = p * geom.out_w;
        for q in q_lo..q_hi {
            let ix = (q as isize * stride + dx) as usize;
            sink(base + q, input.at(c, iy as usize, ix));
        }
    }
}

/// im2col + blocked-GEMM convolution. Semantics (and, by the accumulation
/// order contract, bit patterns) match the direct backend of
/// [`crate::conv::conv2d`].
pub fn conv2d_im2col_gemm(
    input: &Tensor3,
    weight: &Tensor4,
    bias: Option<&[f32]>,
    cfg: &Conv2dCfg,
) -> Tensor3 {
    let geom = ConvGeom::of(input.h(), input.w(), weight.r(), weight.s(), cfg);
    let (kk, n) = (weight.k(), geom.out_len());
    let mut out = Tensor3::zeros(kk, geom.out_h, geom.out_w);
    if n == 0 {
        return out;
    }
    if let Some(b) = bias {
        for (k, &bk) in b.iter().enumerate() {
            if bk != 0.0 {
                out.data_mut()[k * n..(k + 1) * n].fill(bk);
            }
        }
    }

    // Sparse-weight reductions: gather only live taps, compute only live
    // filter rows.
    let taps = nonzero_taps(weight);
    if taps.is_empty() {
        return out; // fully pruned: output is the bias broadcast
    }
    let rows: Vec<usize> = (0..kk)
        .filter(|&k| taps.iter().any(|&(c, r, s)| weight.at(k, c, r, s) != 0.0))
        .collect();
    if rows.is_empty() {
        return out;
    }

    let j_total = taps.len();
    let bmat = im2col(input, &geom, &taps);
    let mut amat = vec![0.0f32; rows.len() * j_total];
    for (i, &k) in rows.iter().enumerate() {
        for (j, &(c, r, s)) in taps.iter().enumerate() {
            amat[i * j_total + j] = weight.at(k, c, r, s);
        }
    }

    let blk = GemmBlocking::default();
    if rows.len() == kk {
        gemm(
            kk,
            n,
            j_total,
            &amat,
            j_total,
            &bmat,
            n,
            out.data_mut(),
            n,
            &blk,
        );
    } else {
        // Row-compacted GEMM into a scratch C, scattered back per filter.
        let mut cmat = vec![0.0f32; rows.len() * n];
        for (i, &k) in rows.iter().enumerate() {
            cmat[i * n..(i + 1) * n].copy_from_slice(&out.data()[k * n..(k + 1) * n]);
        }
        gemm(
            rows.len(),
            n,
            j_total,
            &amat,
            j_total,
            &bmat,
            n,
            &mut cmat,
            n,
            &blk,
        );
        for (i, &k) in rows.iter().enumerate() {
            out.data_mut()[k * n..(k + 1) * n].copy_from_slice(&cmat[i * n..(i + 1) * n]);
        }
    }
    out
}

/// Weight gradient via GEMM: `dW (K x CRS) = dOut (K x PQ) · Patchesᵀ (PQ x
/// CRS)`. Bit-identical to the direct loop of
/// [`crate::conv::conv2d_weight_grad`] (the shared dimension is walked in
/// ascending `(p, q)` order on both paths).
pub fn conv2d_weight_grad_gemm(
    grad_out: &Tensor3,
    input: &Tensor3,
    kernel: (usize, usize),
    cfg: &Conv2dCfg,
) -> Tensor4 {
    let (kr, ks) = kernel;
    let kk = grad_out.c();
    let mut grad_w = Tensor4::zeros(kk, input.c(), kr, ks);
    let geom = ConvGeom {
        out_h: grad_out.h(),
        out_w: grad_out.w(),
        pad_y: match cfg.padding {
            Padding::Same => same_pad(input.h(), kr, cfg.stride),
            Padding::Valid => 0,
        },
        pad_x: match cfg.padding {
            Padding::Same => same_pad(input.w(), ks, cfg.stride),
            Padding::Valid => 0,
        },
        stride: cfg.stride,
    };
    let pq = geom.out_len();
    let j_total = input.c() * kr * ks;
    if pq == 0 || j_total == 0 || kk == 0 {
        return grad_w;
    }
    // Gradients flow to every weight slot (pruned ones included — masking
    // is the trainer's job), so the gather uses all taps.
    let taps = all_taps(input.c(), kr, ks);
    let bt = im2col_transposed(input, &geom, &taps);
    gemm(
        kk,
        j_total,
        pq,
        grad_out.data(),
        pq,
        &bt,
        j_total,
        grad_w.data_mut(),
        j_total,
        &GemmBlocking::default(),
    );
    grad_w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d, ConvBackend};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(stride: usize, padding: Padding, backend: ConvBackend) -> Conv2dCfg {
        Conv2dCfg::new(stride, padding).with_backend(backend)
    }

    fn dense_input(seed: u64, c: usize, h: usize, w: usize) -> Tensor3 {
        let mut x = Tensor3::zeros(c, h, w);
        let mut rng = StdRng::seed_from_u64(seed);
        x.fill_uniform(&mut rng, 0.1, 1.0); // fully dense: no scatter path
        x
    }

    #[test]
    fn matches_direct_bitwise_dense() {
        let x = dense_input(5, 3, 9, 9);
        let mut w = Tensor4::zeros(5, 3, 3, 3);
        w.init_he(&mut StdRng::seed_from_u64(6));
        let bias = [0.5f32, -0.25, 0.0, 1.5, -1.0];
        for (stride, padding) in [
            (1, Padding::Same),
            (2, Padding::Same),
            (3, Padding::Same),
            (1, Padding::Valid),
            (2, Padding::Valid),
        ] {
            let direct = conv2d(
                &x,
                &w,
                Some(&bias),
                &cfg(stride, padding, ConvBackend::Direct),
            );
            let gemm = conv2d_im2col_gemm(
                &x,
                &w,
                Some(&bias),
                &cfg(stride, padding, ConvBackend::Im2colGemm),
            );
            assert_eq!(direct.shape(), gemm.shape());
            for (a, b) in direct.data().iter().zip(gemm.data()) {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{a} vs {b} ({stride}, {padding:?})"
                );
            }
        }
    }

    #[test]
    fn tap_and_row_skipping_match_direct() {
        let x = dense_input(11, 4, 7, 7);
        let mut w = Tensor4::zeros(6, 4, 3, 3);
        w.init_he(&mut StdRng::seed_from_u64(12));
        // Zero a whole tap column (c=1, r=0, s=2) and a whole filter (k=3).
        for k in 0..6 {
            w.set(k, 1, 0, 2, 0.0);
        }
        for i in 0..w.len() / 6 {
            let idx = 3 * (w.len() / 6) + i;
            w.data_mut()[idx] = 0.0;
        }
        assert_eq!(nonzero_taps(&w).len(), 4 * 9 - 1);
        let bias = [0.1f32; 6];
        let c = cfg(1, Padding::Same, ConvBackend::Direct);
        let direct = conv2d(&x, &w, Some(&bias), &c);
        let gemm = conv2d_im2col_gemm(&x, &w, Some(&bias), &c);
        for (a, b) in direct.data().iter().zip(gemm.data()) {
            assert!(a.to_bits() == b.to_bits(), "{a} vs {b}");
        }
        // The pruned filter's plane is exactly the bias.
        let n = direct.h() * direct.w();
        assert!(gemm.data()[3 * n..4 * n].iter().all(|&v| v == 0.1));
    }

    #[test]
    fn fully_pruned_weights_yield_bias_broadcast() {
        let x = dense_input(2, 2, 5, 5);
        let w = Tensor4::zeros(3, 2, 3, 3);
        let c = cfg(1, Padding::Same, ConvBackend::Im2colGemm);
        let y = conv2d_im2col_gemm(&x, &w, Some(&[1.0, 0.0, -2.0]), &c);
        assert!(y.data()[0..25].iter().all(|&v| v == 1.0));
        assert!(y.data()[25..50].iter().all(|&v| v == 0.0));
        assert!(y.data()[50..75].iter().all(|&v| v == -2.0));
    }

    #[test]
    fn zero_output_dims() {
        // Valid padding with input smaller than the kernel: 0-dim output.
        let x = dense_input(3, 1, 2, 2);
        let mut w = Tensor4::zeros(2, 1, 3, 3);
        w.init_he(&mut StdRng::seed_from_u64(1));
        let y = conv2d_im2col_gemm(
            &x,
            &w,
            None,
            &cfg(1, Padding::Valid, ConvBackend::Im2colGemm),
        );
        assert_eq!((y.c(), y.h(), y.w()), (2, 0, 0));
    }

    #[test]
    fn weight_grad_matches_direct_bitwise() {
        use crate::conv::conv2d_weight_grad;
        let x = dense_input(21, 3, 8, 8);
        for (stride, padding) in [(1, Padding::Same), (2, Padding::Same), (1, Padding::Valid)] {
            let c_direct = cfg(stride, padding, ConvBackend::Direct);
            let g_h = conv_out_dim(8, 3, stride, padding);
            let g = dense_input(22, 4, g_h, g_h);
            let direct = conv2d_weight_grad(&g, &x, (3, 3), &c_direct);
            let viagemm = conv2d_weight_grad_gemm(&g, &x, (3, 3), &c_direct);
            for (a, b) in direct.data().iter().zip(viagemm.data()) {
                assert!(a.to_bits() == b.to_bits(), "{a} vs {b}");
            }
        }
    }

    /// Differential test: `gemm_call_dims` must agree with the shapes
    /// `conv2d_im2col_gemm` actually hands to [`crate::gemm::gemm`] for
    /// dense, tap-pruned, row-pruned, fully-pruned, and zero-output cases.
    #[test]
    fn gemm_call_dims_mirror_the_real_gemm() {
        let c1 = cfg(1, Padding::Same, ConvBackend::Im2colGemm);

        // Dense: m = K, k = C·R·S, n = H·W under Same/stride-1.
        let mut w = Tensor4::zeros(5, 3, 3, 3);
        w.init_he(&mut StdRng::seed_from_u64(2));
        let g = gemm_call_dims(9, 7, &w, &c1).expect("dense conv issues a GEMM");
        assert_eq!(g, GemmShape { m: 5, k: 27, n: 63 });

        // Tap + row pruning shrink m and k exactly like the kernel does.
        for k in 0..5 {
            w.set(k, 1, 0, 2, 0.0); // kill tap (1, 0, 2)
        }
        let plane = w.len() / 5;
        for i in 0..plane {
            w.data_mut()[3 * plane + i] = 0.0; // kill filter k=3
        }
        let g = gemm_call_dims(9, 7, &w, &c1).expect("pruned conv still issues a GEMM");
        assert_eq!(g, GemmShape { m: 4, k: 26, n: 63 });

        // Stride shrinks n only: ceil(9/2)·ceil(7/2) = 5·4.
        let c2 = cfg(2, Padding::Same, ConvBackend::Im2colGemm);
        let g2 = gemm_call_dims(9, 7, &w, &c2).expect("strided conv issues a GEMM");
        assert_eq!((g2.m, g2.k, g2.n), (g.m, g.k, 20));

        // Fully pruned: conv2d_im2col_gemm returns before the GEMM.
        let dead = Tensor4::zeros(3, 2, 3, 3);
        assert_eq!(gemm_call_dims(5, 5, &dead, &c1), None);

        // Zero-dim output (Valid padding, input smaller than kernel).
        let mut w2 = Tensor4::zeros(2, 1, 3, 3);
        w2.init_he(&mut StdRng::seed_from_u64(3));
        let valid = cfg(1, Padding::Valid, ConvBackend::Im2colGemm);
        assert_eq!(gemm_call_dims(2, 2, &w2, &valid), None);
    }

    #[test]
    fn geom_matches_conv_out_dim() {
        let c = cfg(2, Padding::Same, ConvBackend::Im2colGemm);
        let g = ConvGeom::of(9, 7, 3, 3, &c);
        assert_eq!(g.out_h, conv_out_dim(9, 3, 2, Padding::Same));
        assert_eq!(g.out_w, conv_out_dim(7, 3, 2, Padding::Same));
    }
}
