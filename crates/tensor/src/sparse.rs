//! Sparse transfer encodings.
//!
//! A two-sided sparse accelerator compresses every tensor it moves across
//! the DRAM bus by eliding zeros. The *encoded size in bytes* is exactly the
//! quantity the attacker observes on the bus, so these codecs are the load-
//! bearing piece of the side channel: they map (values, element width) to a
//! transfer volume, and — crucially for the prober — the volume is a strictly
//! monotone function of the non-zero count for a fixed tensor size.

use crate::cast;
use std::fmt;

/// How a tensor is compressed for off-chip transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompressionScheme {
    /// No compression: every element is transferred.
    Dense,
    /// One presence bit per element plus packed non-zero values
    /// (Cnvlutin / SCNN-style zero-free format with an occupancy bitmap).
    Bitmap,
    /// Run-length encoding of zero gaps: each non-zero is stored with a
    /// fixed-width zero-run prefix (Eyeriss-style RLC with `run_bits`-bit
    /// runs; a saturated run emits a padding zero value).
    RunLength {
        /// Bits used to encode the preceding zero-run length.
        run_bits: u8,
    },
    /// Compressed sparse columns per channel: per-channel non-zero counts
    /// (32-bit) plus (offset, value) pairs with `offset_bits` offsets.
    Csc {
        /// Bits for the intra-channel coordinate offset.
        offset_bits: u8,
    },
    /// Canonical Huffman coding over `quant_bits`-quantized values
    /// (Deep-Compression-style). Size depends on the whole value
    /// distribution, yet still tracks nnz closely on pruned tensors.
    Huffman {
        /// Quantizer width in bits.
        quant_bits: u8,
    },
}

impl CompressionScheme {
    /// The Eyeriss-v2-like default used by the paper's victim device.
    pub fn device_default() -> Self {
        CompressionScheme::Bitmap
    }

    /// Encoded size for `values` with `elem_bits`-wide payload elements.
    ///
    /// The result is rounded up to whole bytes, since the bus transfers
    /// bytes. For [`CompressionScheme::Csc`] the caller provides the
    /// channel granulation via [`CompressionScheme::encoded_size_channels`];
    /// this method treats the whole tensor as one channel.
    pub fn encoded_size(&self, values: &[f32], elem_bits: u32) -> EncodedSize {
        self.encoded_size_channels(values, values.len().max(1), elem_bits)
    }

    /// Encoded size where `values` is partitioned into channels of
    /// `channel_len` elements (the last channel may be ragged).
    ///
    /// # Panics
    ///
    /// Panics if `channel_len == 0` or `elem_bits == 0`.
    pub fn encoded_size_channels(
        &self,
        values: &[f32],
        channel_len: usize,
        elem_bits: u32,
    ) -> EncodedSize {
        assert!(channel_len > 0, "channel length must be positive");
        assert!(elem_bits > 0, "element width must be positive");
        let nnz = crate::nnz(values);
        let total = values.len();
        let bits = match self {
            CompressionScheme::Dense => cast::usize_to_u64(total) * u64::from(elem_bits),
            CompressionScheme::Bitmap => {
                cast::usize_to_u64(total) + cast::usize_to_u64(nnz) * u64::from(elem_bits)
            }
            CompressionScheme::RunLength { run_bits } => {
                let max_run = (1u64 << run_bits) - 1;
                let mut symbols: u64 = 0;
                let mut run: u64 = 0;
                for &v in values {
                    if v.abs() <= crate::ZERO_EPS {
                        run += 1;
                        if run > max_run {
                            symbols += 1; // saturated run emits a padding zero
                            run = 0;
                        }
                    } else {
                        symbols += 1;
                        run = 0;
                    }
                }
                if run > 0 {
                    symbols += 1; // trailing zero run needs a terminator symbol
                }
                symbols * (u64::from(*run_bits) + u64::from(elem_bits))
            }
            CompressionScheme::Csc { offset_bits } => {
                let channels = cast::usize_to_u64(total.div_ceil(channel_len));
                channels * 32
                    + cast::usize_to_u64(nnz) * (u64::from(*offset_bits) + u64::from(elem_bits))
            }
            CompressionScheme::Huffman { quant_bits } => {
                return EncodedSize {
                    bytes: crate::huffman::huffman_encoded_bytes(values, u32::from(*quant_bits)),
                    nnz,
                    total,
                };
            }
        };
        EncodedSize {
            bytes: bits.div_ceil(8),
            nnz,
            total,
        }
    }

    /// Inverts [`encoded_size`](Self::encoded_size) back to a non-zero count,
    /// given the (known) total element count. This is what the attacker does
    /// with an observed transfer volume.
    ///
    /// Returns `None` for schemes whose size is not an invertible function of
    /// nnz alone (run-length encoding depends on zero placement).
    pub fn nnz_from_bytes(&self, bytes: u64, total: usize, elem_bits: u32) -> Option<usize> {
        match self {
            CompressionScheme::Dense => None,
            CompressionScheme::Bitmap => {
                let bits = bytes * 8;
                let payload = bits.checked_sub(cast::usize_to_u64(total))?;
                cast::u64_to_usize(payload / u64::from(elem_bits))
            }
            CompressionScheme::RunLength { .. } | CompressionScheme::Huffman { .. } => None,
            CompressionScheme::Csc { offset_bits } => {
                // Caller must use the same single-channel convention.
                let bits = bytes * 8;
                let payload = bits.checked_sub(32)?;
                cast::u64_to_usize(payload / (u64::from(*offset_bits) + u64::from(elem_bits)))
            }
        }
    }
}

impl fmt::Display for CompressionScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressionScheme::Dense => write!(f, "dense"),
            CompressionScheme::Bitmap => write!(f, "bitmap"),
            CompressionScheme::RunLength { run_bits } => write!(f, "rle{run_bits}"),
            CompressionScheme::Csc { offset_bits } => write!(f, "csc{offset_bits}"),
            CompressionScheme::Huffman { quant_bits } => write!(f, "huffman{quant_bits}"),
        }
    }
}

/// Positions of the first and last nonzero values in `row`, if any.
///
/// This is the on-the-fly columns-of-nonzeros encoding used by the sparse
/// conv path: [`crate::ColSpan::of_tensor`] folds the per-row bounds into a
/// tensor-wide dirty-column interval. Unlike the transfer codecs above, it
/// uses the compute kernels' exact `!= 0.0` zero test (not [`crate::ZERO_EPS`])
/// so no operand a kernel would multiply is ever dropped from the span.
pub fn nonzero_bounds(row: &[f32]) -> Option<(usize, usize)> {
    let first = row.iter().position(|&v| v != 0.0)?;
    let last = row.iter().rposition(|&v| v != 0.0)?;
    Some((first, last))
}

/// Result of encoding a tensor for transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EncodedSize {
    /// Bytes that cross the bus.
    pub bytes: u64,
    /// Non-zero elements in the tensor.
    pub nnz: usize,
    /// Total elements in the tensor.
    pub total: usize,
}

impl EncodedSize {
    /// Compression ratio (dense bytes / encoded bytes) for 8-bit elements.
    pub fn ratio(&self, elem_bits: u32) -> f64 {
        let dense = (cast::usize_to_u64(self.total) * u64::from(elem_bits)).div_ceil(8);
        dense as f64 / self.bytes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_size_is_total() {
        let v = vec![0.0, 1.0, 0.0, 2.0];
        let e = CompressionScheme::Dense.encoded_size(&v, 8);
        assert_eq!(e.bytes, 4);
        assert_eq!(e.nnz, 2);
    }

    #[test]
    fn bitmap_size() {
        // 16 elements, 3 non-zero, 8-bit: 16 bits bitmap + 24 bits payload = 5 bytes.
        let mut v = vec![0.0; 16];
        v[1] = 1.0;
        v[7] = -2.0;
        v[15] = 3.0;
        let e = CompressionScheme::Bitmap.encoded_size(&v, 8);
        assert_eq!(e.bytes, 5);
    }

    #[test]
    fn bitmap_roundtrip_nnz() {
        let scheme = CompressionScheme::Bitmap;
        for nnz in [0usize, 1, 5, 64] {
            let mut v = vec![0.0f32; 64];
            for x in v.iter_mut().take(nnz) {
                *x = 1.0;
            }
            let e = scheme.encoded_size(&v, 8);
            // Bitmap sizes are byte-rounded, so allow the recovered nnz to
            // absorb the rounding slack of < 8 bits / 8 bits-per-elem = 1.
            let rec = scheme.nnz_from_bytes(e.bytes, 64, 8).unwrap();
            assert!(rec >= nnz && rec <= nnz + 1, "nnz {nnz} recovered {rec}");
        }
    }

    #[test]
    fn bitmap_monotone_in_nnz() {
        let scheme = CompressionScheme::Bitmap;
        let mut prev = 0;
        for nnz in 0..=32 {
            let mut v = vec![0.0f32; 32];
            for x in v.iter_mut().take(nnz) {
                *x = 1.0;
            }
            let b = scheme.encoded_size(&v, 8).bytes;
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn rle_counts_runs() {
        // run_bits = 2 -> max run 3.
        let scheme = CompressionScheme::RunLength { run_bits: 2 };
        // [0,0,0,0,0, 1]: run of 5 = saturate(3)+pad, then run 1 + value -> 2 symbols.
        let v = [0.0, 0.0, 0.0, 0.0, 0.0, 1.0];
        let e = scheme.encoded_size(&v, 8);
        assert_eq!(e.bytes, (2 * 10u64).div_ceil(8));
    }

    #[test]
    fn rle_trailing_zeros_terminated() {
        let scheme = CompressionScheme::RunLength { run_bits: 4 };
        let v = [1.0, 0.0, 0.0];
        let e = scheme.encoded_size(&v, 8);
        // one value symbol + one terminator symbol
        assert_eq!(e.bytes, (2 * 12u64).div_ceil(8));
    }

    #[test]
    fn csc_channel_headers() {
        let scheme = CompressionScheme::Csc { offset_bits: 4 };
        let v = vec![0.0f32; 32];
        let e = scheme.encoded_size_channels(&v, 16, 8);
        // 2 channels x 32-bit headers, no payload.
        assert_eq!(e.bytes, 8);
    }

    #[test]
    fn all_zero_tensor_compresses_well() {
        let v = vec![0.0f32; 1024];
        let bitmap = CompressionScheme::Bitmap.encoded_size(&v, 8);
        assert_eq!(bitmap.bytes, 128); // bitmap only
        assert!(bitmap.ratio(8) > 7.9);
    }

    #[test]
    fn display_names() {
        assert_eq!(CompressionScheme::Bitmap.to_string(), "bitmap");
        assert_eq!(
            CompressionScheme::RunLength { run_bits: 5 }.to_string(),
            "rle5"
        );
    }

    #[test]
    #[should_panic(expected = "element width")]
    fn zero_elem_bits_panics() {
        let _ = CompressionScheme::Dense.encoded_size(&[1.0], 0);
    }

    #[test]
    fn nonzero_bounds_finds_extremes() {
        assert_eq!(nonzero_bounds(&[0.0, 1.0, 0.0, -2.0, 0.0]), Some((1, 3)));
        assert_eq!(nonzero_bounds(&[3.0]), Some((0, 0)));
        assert_eq!(nonzero_bounds(&[0.0, 0.0]), None);
        assert_eq!(nonzero_bounds(&[]), None);
        // Exact test: denormals count, negative zero does not.
        assert_eq!(nonzero_bounds(&[-0.0, 1e-40]), Some((1, 1)));
    }
}
