//! Dense tensor types.

use crate::shape::Shape3;
use rand::Rng;
use std::fmt;

/// A single-sample activation tensor in `C x H x W` (channel-major) layout.
///
/// # Examples
///
/// ```
/// use hd_tensor::Tensor3;
///
/// let mut t = Tensor3::zeros(1, 2, 2);
/// t.set(0, 1, 1, 3.0);
/// assert_eq!(t.at(0, 1, 1), 3.0);
/// assert_eq!(t.nnz(), 1);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor3 {
    shape: Shape3,
    data: Vec<f32>,
}

impl Tensor3 {
    /// All-zero tensor of the given shape.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        let shape = Shape3::new(c, h, w);
        Tensor3 {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Constant-filled tensor.
    pub fn full(c: usize, h: usize, w: usize, value: f32) -> Self {
        let shape = Shape3::new(c, h, w);
        Tensor3 {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Builds a tensor from a flat `C x H x W` buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != c * h * w`.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        let shape = Shape3::new(c, h, w);
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer does not match shape {shape}"
        );
        Tensor3 { shape, data }
    }

    /// Fills every element from the provided RNG using `U(lo, hi)`.
    pub fn fill_uniform<R: Rng>(&mut self, rng: &mut R, lo: f32, hi: f32) {
        for v in &mut self.data {
            *v = rng.gen_range(lo..hi);
        }
    }

    /// Shape accessor.
    pub fn shape(&self) -> Shape3 {
        self.shape
    }

    /// Channel count.
    pub fn c(&self) -> usize {
        self.shape.c
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.shape.h
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.shape.w
    }

    /// Flat read-only view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element read.
    #[inline]
    pub fn at(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.shape.index(c, y, x)]
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let idx = self.shape.index(c, y, x);
        self.data[idx] = v;
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        crate::nnz(&self.data)
    }

    /// Fraction of elements that are zero.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / self.data.len() as f64
    }

    /// Elementwise sum with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor3) -> Tensor3 {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor3 {
            shape: self.shape,
            data,
        }
    }

    /// Applies ReLU in place.
    pub fn relu_inplace(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }
}

impl fmt::Debug for Tensor3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor3({}, nnz={})", self.shape, self.nnz())
    }
}

/// A convolution weight tensor in `K x C x R x S` layout
/// (output channels x input channels x kernel height x kernel width).
///
/// # Examples
///
/// ```
/// use hd_tensor::Tensor4;
///
/// let w = Tensor4::zeros(8, 3, 3, 3);
/// assert_eq!(w.len(), 8 * 3 * 3 * 3);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor4 {
    k: usize,
    c: usize,
    r: usize,
    s: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// All-zero weight tensor.
    pub fn zeros(k: usize, c: usize, r: usize, s: usize) -> Self {
        Tensor4 {
            k,
            c,
            r,
            s,
            data: vec![0.0; k * c * r * s],
        }
    }

    /// Builds a weight tensor from a flat `K x C x R x S` buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer size does not match the dimensions.
    pub fn from_vec(k: usize, c: usize, r: usize, s: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            k * c * r * s,
            "buffer does not match weight shape"
        );
        Tensor4 { k, c, r, s, data }
    }

    /// He-normal initialization (appropriate for ReLU networks).
    pub fn init_he<R: Rng>(&mut self, rng: &mut R) {
        let fan_in = (self.c * self.r * self.s).max(1);
        let std = (2.0 / fan_in as f32).sqrt();
        for v in &mut self.data {
            *v = gaussian(rng) * std;
        }
    }

    /// Output channel count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Input channel count.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Kernel height.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Kernel width.
    pub fn s(&self) -> usize {
        self.s
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Flat index of `(k, c, r, s)`.
    #[inline]
    pub fn index(&self, k: usize, c: usize, r: usize, s: usize) -> usize {
        debug_assert!(k < self.k && c < self.c && r < self.r && s < self.s);
        ((k * self.c + c) * self.r + r) * self.s + s
    }

    /// Element read.
    #[inline]
    pub fn at(&self, k: usize, c: usize, r: usize, s: usize) -> f32 {
        self.data[self.index(k, c, r, s)]
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, k: usize, c: usize, r: usize, s: usize, v: f32) {
        let idx = self.index(k, c, r, s);
        self.data[idx] = v;
    }

    /// Copies the output channels (`K` axis) selected by `keep` into a new
    /// tensor, preserving their original order. Used by structured channel
    /// pruning to physically remove whole filters.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.k()`.
    pub fn select_k(&self, keep: &[bool]) -> Tensor4 {
        assert_eq!(keep.len(), self.k, "keep mask length must equal K");
        let new_k = keep.iter().filter(|&&b| b).count();
        let filter = self.c * self.r * self.s;
        let mut data = Vec::with_capacity(new_k * filter);
        for (k, &kept) in keep.iter().enumerate() {
            if kept {
                data.extend_from_slice(&self.data[k * filter..(k + 1) * filter]);
            }
        }
        Tensor4 {
            k: new_k,
            c: self.c,
            r: self.r,
            s: self.s,
            data,
        }
    }

    /// Copies the input channels (`C` axis) selected by `keep` into a new
    /// tensor, preserving their original order. Used by structured channel
    /// pruning to shrink consumers of a channel-removed producer.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.c()`.
    pub fn select_c(&self, keep: &[bool]) -> Tensor4 {
        assert_eq!(keep.len(), self.c, "keep mask length must equal C");
        let new_c = keep.iter().filter(|&&b| b).count();
        let plane = self.r * self.s;
        let mut data = Vec::with_capacity(self.k * new_c * plane);
        for k in 0..self.k {
            for (c, &kept) in keep.iter().enumerate() {
                if kept {
                    let start = (k * self.c + c) * plane;
                    data.extend_from_slice(&self.data[start..start + plane]);
                }
            }
        }
        Tensor4 {
            k: self.k,
            c: new_c,
            r: self.r,
            s: self.s,
            data,
        }
    }

    /// Number of non-zero weights.
    pub fn nnz(&self) -> usize {
        crate::nnz(&self.data)
    }

    /// Fraction of weights that are zero (the paper's "sparsity" / pruned
    /// fraction, `beta`).
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / self.data.len() as f64
    }
}

impl fmt::Debug for Tensor4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor4({}x{}x{}x{}, nnz={})",
            self.k,
            self.c,
            self.r,
            self.s,
            self.nnz()
        )
    }
}

/// Samples a standard normal via Box-Muller from any [`Rng`].
pub fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        if g.is_finite() {
            return g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_set() {
        let mut t = Tensor3::zeros(2, 3, 4);
        assert_eq!(t.nnz(), 0);
        t.set(1, 2, 3, -1.5);
        assert_eq!(t.at(1, 2, 3), -1.5);
        assert_eq!(t.nnz(), 1);
        assert!((t.sparsity() - 23.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn relu_inplace() {
        let mut t = Tensor3::from_vec(1, 1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        t.relu_inplace();
        assert_eq!(t.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn add_matches_elementwise() {
        let a = Tensor3::from_vec(1, 1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor3::from_vec(1, 1, 3, vec![10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor3::zeros(1, 1, 3);
        let b = Tensor3::zeros(1, 3, 1);
        let _ = a.add(&b);
    }

    #[test]
    fn tensor4_indexing() {
        let mut w = Tensor4::zeros(2, 3, 3, 3);
        w.set(1, 2, 2, 2, 9.0);
        assert_eq!(w.at(1, 2, 2, 2), 9.0);
        assert_eq!(w.index(1, 2, 2, 2), w.len() - 1);
    }

    #[test]
    fn he_init_statistics() {
        let mut w = Tensor4::zeros(64, 16, 3, 3);
        let mut rng = StdRng::seed_from_u64(7);
        w.init_he(&mut rng);
        let mean: f32 = w.data().iter().sum::<f32>() / w.len() as f32;
        let var: f32 = w
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / w.len() as f32;
        let expected = 2.0 / (16.0 * 9.0);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - expected).abs() / expected < 0.2,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    #[should_panic(expected = "buffer does not match")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor3::from_vec(1, 2, 2, vec![0.0; 5]);
    }

    #[test]
    fn select_k_keeps_filters_in_order() {
        let mut w = Tensor4::zeros(3, 2, 2, 2);
        for (i, v) in w.data_mut().iter_mut().enumerate() {
            *v = i as f32;
        }
        let kept = w.select_k(&[true, false, true]);
        assert_eq!((kept.k(), kept.c(), kept.r(), kept.s()), (2, 2, 2, 2));
        // Filter 0 unchanged, filter 1 is the old filter 2.
        assert_eq!(kept.at(0, 0, 0, 0), w.at(0, 0, 0, 0));
        assert_eq!(kept.at(1, 1, 1, 1), w.at(2, 1, 1, 1));
    }

    #[test]
    fn select_c_keeps_input_channels_in_order() {
        let mut w = Tensor4::zeros(2, 3, 2, 2);
        for (i, v) in w.data_mut().iter_mut().enumerate() {
            *v = i as f32;
        }
        let kept = w.select_c(&[false, true, true]);
        assert_eq!((kept.k(), kept.c(), kept.r(), kept.s()), (2, 2, 2, 2));
        for k in 0..2 {
            for (new_c, old_c) in [(0usize, 1usize), (1, 2)] {
                for r in 0..2 {
                    for s in 0..2 {
                        assert_eq!(kept.at(k, new_c, r, s), w.at(k, old_c, r, s));
                    }
                }
            }
        }
    }

    #[test]
    fn select_all_is_identity_select_none_is_empty() {
        let mut w = Tensor4::zeros(2, 2, 3, 3);
        w.init_he(&mut StdRng::seed_from_u64(3));
        assert_eq!(w.select_k(&[true, true]).data(), w.data());
        assert_eq!(w.select_c(&[true, true]).data(), w.data());
        assert_eq!(w.select_k(&[false, false]).k(), 0);
        assert_eq!(w.select_c(&[false, false]).len(), 0);
    }

    #[test]
    #[should_panic(expected = "keep mask length")]
    fn select_k_wrong_len_panics() {
        let _ = Tensor4::zeros(2, 2, 1, 1).select_k(&[true]);
    }
}
