//! Canonical Huffman coding over quantized tensor values.
//!
//! Deep Compression (Han et al. 2016) finishes its pipeline with Huffman
//! coding of the quantized weights; several accelerator proposals transfer
//! Huffman-coded tensors. For the side channel this codec is the
//! interesting extreme: the transfer size depends on the whole *value
//! distribution*, not just nnz — yet zero dominates pruned tensors so
//! heavily that the size still tracks nnz closely (see the codec
//! ablation).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A built Huffman code: bit length per symbol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HuffmanCode {
    /// `lengths[symbol]` = code length in bits (0 if the symbol is absent).
    lengths: Vec<u8>,
}

impl HuffmanCode {
    /// Builds an optimal prefix code for the given symbol frequencies.
    ///
    /// Absent symbols (frequency 0) get length 0. A single-symbol alphabet
    /// gets length 1 (one bit per occurrence).
    pub fn from_frequencies(freqs: &[u64]) -> HuffmanCode {
        let mut lengths = vec![0u8; freqs.len()];
        let present: Vec<usize> = freqs
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(i, _)| i)
            .collect();
        match present.len() {
            0 => {}
            1 => lengths[present[0]] = 1,
            _ => {
                // Standard two-queue-free heap construction over (weight,
                // node). Leaves carry a symbol list to assign depths.
                #[derive(PartialEq, Eq)]
                struct Node {
                    weight: u64,
                    symbols: Vec<(usize, u8)>, // (symbol, current depth)
                }
                impl Ord for Node {
                    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                        self.weight.cmp(&other.weight)
                    }
                }
                impl PartialOrd for Node {
                    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                        Some(self.cmp(other))
                    }
                }
                let mut heap: BinaryHeap<Reverse<Node>> = present
                    .iter()
                    .map(|&s| {
                        Reverse(Node {
                            weight: freqs[s],
                            symbols: vec![(s, 0)],
                        })
                    })
                    .collect();
                while heap.len() > 1 {
                    let (Some(Reverse(a)), Some(Reverse(b))) = (heap.pop(), heap.pop()) else {
                        break; // len > 1 guarantees both pops succeed
                    };
                    let mut symbols = a.symbols;
                    symbols.extend(b.symbols);
                    for (_, d) in &mut symbols {
                        *d += 1;
                    }
                    heap.push(Reverse(Node {
                        weight: a.weight + b.weight,
                        symbols,
                    }));
                }
                if let Some(Reverse(root)) = heap.pop() {
                    for (s, d) in root.symbols {
                        lengths[s] = d;
                    }
                }
            }
        }
        HuffmanCode { lengths }
    }

    /// Code length of a symbol in bits.
    pub fn length(&self, symbol: usize) -> u8 {
        self.lengths.get(symbol).copied().unwrap_or(0)
    }

    /// Total encoded payload size in bits for the given frequencies.
    pub fn payload_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.lengths)
            .map(|(&f, &l)| f * l as u64)
            .sum()
    }

    /// Kraft sum numerator over 2^16 (must be <= 2^16 for a valid code).
    pub fn kraft_numerator(&self) -> u64 {
        self.lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (16 - l.min(16) as u64))
            .sum()
    }
}

/// Quantizes values to `bits`-wide symbols (symmetric uniform quantizer
/// over the observed range) and returns the per-symbol histogram.
pub fn quantize_histogram(values: &[f32], bits: u32) -> Vec<u64> {
    let symbols = 1usize << bits;
    let mut freqs = vec![0u64; symbols];
    let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs == 0.0 {
        freqs[0] = values.len() as u64;
        return freqs;
    }
    let half = (symbols / 2) as f32;
    for &v in values {
        let q = ((v / max_abs) * (half - 1.0)).round() as i64 + half as i64;
        let q = q.clamp(0, symbols as i64 - 1) as usize;
        freqs[q] += 1;
    }
    freqs
}

/// Huffman-coded transfer size in bytes for a tensor: payload plus a
/// canonical code table (one byte of code length per present symbol plus
/// a `symbols`-bit presence bitmap).
pub fn huffman_encoded_bytes(values: &[f32], quant_bits: u32) -> u64 {
    let freqs = quantize_histogram(values, quant_bits);
    let code = HuffmanCode::from_frequencies(&freqs);
    let payload = code.payload_bits(&freqs);
    let present = freqs.iter().filter(|&&f| f > 0).count() as u64;
    let table_bits = (1u64 << quant_bits) + present * 8;
    (payload + table_bits).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros at 8-bit quantization: Huffman ~1.1 bits/elem vs 8.
        let mut v = vec![0.0f32; 900];
        v.extend((0..100).map(|i| (i as f32 - 50.0) / 50.0));
        let bytes = huffman_encoded_bytes(&v, 8);
        assert!(bytes < 1000 / 2, "encoded {bytes}B for 1000 elems");
    }

    #[test]
    fn uniform_distribution_approaches_entropy() {
        // All 16 symbols equally likely at 4-bit quantization: ~4 bits/elem.
        let v: Vec<f32> = (0..1600).map(|i| (i % 16) as f32 / 8.0 - 1.0).collect();
        let freqs = quantize_histogram(&v, 4);
        let code = HuffmanCode::from_frequencies(&freqs);
        let bits = code.payload_bits(&freqs);
        let per_elem = bits as f64 / v.len() as f64;
        assert!((3.5..=5.0).contains(&per_elem), "{per_elem} bits/elem");
    }

    #[test]
    fn kraft_inequality_holds() {
        for seed in 0..5u64 {
            let freqs: Vec<u64> = (0..32).map(|i| (i * seed + 1) % 97 + 1).collect();
            let code = HuffmanCode::from_frequencies(&freqs);
            assert!(
                code.kraft_numerator() <= 1 << 16,
                "Kraft violated for seed {seed}"
            );
        }
    }

    #[test]
    fn optimality_vs_fixed_width_on_skewed_input() {
        let mut freqs = vec![0u64; 16];
        freqs[0] = 1000;
        freqs[1] = 10;
        freqs[2] = 10;
        let code = HuffmanCode::from_frequencies(&freqs);
        let bits = code.payload_bits(&freqs);
        let fixed = 1020 * 4;
        assert!(bits < fixed / 2, "huffman {bits} vs fixed {fixed}");
        // The dominant symbol gets the shortest code.
        assert!(code.length(0) <= code.length(1));
    }

    #[test]
    fn single_symbol_alphabet() {
        let freqs = vec![0, 42, 0];
        let code = HuffmanCode::from_frequencies(&freqs);
        assert_eq!(code.length(1), 1);
        assert_eq!(code.payload_bits(&freqs), 42);
    }

    #[test]
    fn empty_and_all_zero() {
        let code = HuffmanCode::from_frequencies(&[]);
        assert_eq!(code.payload_bits(&[]), 0);
        let bytes = huffman_encoded_bytes(&vec![0.0f32; 64], 8);
        // One symbol (zero), 1 bit each + table.
        assert!(bytes < 64, "all-zero encodes tiny, got {bytes}");
    }

    #[test]
    fn size_tracks_nnz_on_pruned_tensors() {
        // The property the attack cares about: for pruned tensors, the
        // Huffman size grows with nnz.
        let mk = |nnz: usize| {
            let mut v = vec![0.0f32; 1024];
            for (i, x) in v.iter_mut().take(nnz).enumerate() {
                *x = ((i % 13) as f32 - 6.0) / 6.0;
            }
            huffman_encoded_bytes(&v, 8)
        };
        let sizes: Vec<u64> = [32, 64, 128, 256, 512].iter().map(|&n| mk(n)).collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "sizes not increasing: {sizes:?}");
        }
    }

    #[test]
    fn quantizer_histogram_total() {
        let v: Vec<f32> = (0..100).map(|i| i as f32 / 100.0 - 0.5).collect();
        let freqs = quantize_histogram(&v, 6);
        assert_eq!(freqs.iter().sum::<u64>(), 100);
    }
}
