//! INT8 quantized tensor types for the post-training-quantized forward
//! path.
//!
//! Activations use affine per-tensor quantization whose zero point is
//! always exactly representable (`quantize(0.0) == zero_point`, and
//! `dequantize(zero_point) == 0.0` bit-exactly), so the accelerator's
//! zero-skipping datapath and nnz accounting see the same zeros in INT8
//! as in f32. Weights use symmetric per-output-channel quantization
//! (`zero_point == 0`), which keeps a pruned weight's quantized value at
//! exactly 0 and lets the i32 accumulator math skip the cross-term
//! corrections of the general affine product.

use crate::Shape3;
use crate::{Tensor3, Tensor4};

/// Affine i8 quantization parameters: `real = (q - zero_point) * scale`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantParams {
    /// Step size between adjacent quantized values.
    pub scale: f32,
    /// Quantized value representing real 0.0; always in `[-128, 127]`.
    pub zero_point: i32,
}

impl QuantParams {
    /// Parameters covering the calibrated real range `[lo, hi]` with the
    /// full i8 range. The range is first widened to include 0.0 so the
    /// zero point is exact; a degenerate (empty) range quantizes
    /// everything to the zero point with unit scale.
    pub fn from_range(lo: f32, hi: f32) -> QuantParams {
        let lo = lo.min(0.0);
        let hi = hi.max(0.0);
        let span = hi - lo;
        if !span.is_finite() || span <= f32::EPSILON {
            return QuantParams {
                scale: 1.0,
                zero_point: 0,
            };
        }
        let scale = span / 255.0;
        let zero_point = (-128.0 - lo / scale).round().clamp(-128.0, 127.0) as i32;
        QuantParams { scale, zero_point }
    }

    /// Symmetric parameters for a weight range `[-maxabs, maxabs]`
    /// (`zero_point == 0`).
    pub fn symmetric(maxabs: f32) -> QuantParams {
        let scale = if maxabs > 0.0 { maxabs / 127.0 } else { 1.0 };
        QuantParams {
            scale,
            zero_point: 0,
        }
    }

    /// Quantizes a real value (round-to-nearest, saturating).
    #[inline]
    pub fn quantize(&self, v: f32) -> i8 {
        let q = self.zero_point as f32 + (v / self.scale).round();
        q.clamp(-128.0, 127.0) as i8
    }

    /// Dequantizes back to f32. `dequantize(zero_point) == 0.0` exactly.
    #[inline]
    pub fn dequantize(&self, q: i8) -> f32 {
        (q as i32 - self.zero_point) as f32 * self.scale
    }
}

/// An i8 activation map in `C x H x W` layout with per-tensor
/// [`QuantParams`].
#[derive(Clone, Debug)]
pub struct QTensor3 {
    shape: Shape3,
    data: Vec<i8>,
    /// Quantization parameters shared by every element.
    pub qp: QuantParams,
}

impl QTensor3 {
    /// Quantizes a real-valued map under `qp`.
    pub fn quantize(t: &Tensor3, qp: QuantParams) -> QTensor3 {
        QTensor3 {
            shape: t.shape(),
            data: t.data().iter().map(|&v| qp.quantize(v)).collect(),
            qp,
        }
    }

    /// Builds a map directly from quantized values.
    pub fn from_raw(c: usize, h: usize, w: usize, data: Vec<i8>, qp: QuantParams) -> QTensor3 {
        let shape = Shape3::new(c, h, w);
        assert_eq!(data.len(), shape.len(), "data length must match shape");
        QTensor3 { shape, data, qp }
    }

    /// Shape descriptor.
    pub fn shape(&self) -> Shape3 {
        self.shape
    }

    /// Channels.
    pub fn c(&self) -> usize {
        self.shape.c
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.shape.h
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.shape.w
    }

    /// Raw quantized values.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Elements different from the zero point (the INT8 notion of nnz —
    /// exactly the elements that dequantize to a nonzero real).
    pub fn nnz(&self) -> usize {
        let zp = self.zero_point_i8();
        self.data.iter().filter(|&&q| q != zp).count()
    }

    /// The zero point narrowed to i8 (always in range by construction).
    pub fn zero_point_i8(&self) -> i8 {
        self.qp.zero_point.clamp(-128, 127) as i8
    }

    /// Dequantizes to an f32 map. Zero-point elements become exact 0.0.
    pub fn dequantize(&self) -> Tensor3 {
        let mut out = Tensor3::zeros(self.c(), self.h(), self.w());
        for (dst, &q) in out.data_mut().iter_mut().zip(&self.data) {
            *dst = self.qp.dequantize(q);
        }
        out
    }
}

/// An i8 weight tensor in `K x C x R x S` layout with symmetric
/// per-output-channel scales (`zero_point == 0` for every channel).
#[derive(Clone, Debug)]
pub struct QTensor4 {
    k: usize,
    c: usize,
    r: usize,
    s: usize,
    data: Vec<i8>,
    /// Per-output-channel scale (`real = q * scales[k]`).
    scales: Vec<f32>,
}

impl QTensor4 {
    /// Per-output-channel symmetric quantization of a real weight tensor.
    /// Pruned (exactly-zero) weights quantize to exactly 0.
    pub fn quantize(w: &Tensor4) -> QTensor4 {
        let (k, c, r, s) = (w.k(), w.c(), w.r(), w.s());
        let per = c * r * s;
        let mut scales = Vec::with_capacity(k);
        let mut data = Vec::with_capacity(k * per);
        for ko in 0..k {
            let plane = &w.data()[ko * per..(ko + 1) * per];
            let maxabs = plane.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let qp = QuantParams::symmetric(maxabs);
            scales.push(qp.scale);
            data.extend(plane.iter().map(|&v| qp.quantize(v)));
        }
        QTensor4 {
            k,
            c,
            r,
            s,
            data,
            scales,
        }
    }

    /// Output channels.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Input channels.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Kernel rows.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Kernel columns.
    pub fn s(&self) -> usize {
        self.s
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw quantized values.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-output-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Quantized value at `(k, c, r, s)`.
    #[inline]
    pub fn at(&self, k: usize, c: usize, r: usize, s: usize) -> i8 {
        self.data[((k * self.c + c) * self.r + r) * self.s + s]
    }

    /// Nonzero quantized weights (pruned weights stay exactly 0).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&q| q != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zero_point_is_exact_both_ways() {
        for (lo, hi) in [(-1.0f32, 1.0f32), (0.0, 6.0), (-3.0, 0.5), (0.0, 0.0)] {
            let qp = QuantParams::from_range(lo, hi);
            assert_eq!(qp.quantize(0.0) as i32, qp.zero_point, "({lo},{hi})");
            let zp = qp.zero_point.clamp(-128, 127) as i8;
            assert_eq!(qp.dequantize(zp).to_bits(), 0.0f32.to_bits());
            assert!((-128..=127).contains(&qp.zero_point));
        }
    }

    #[test]
    fn quantize_roundtrip_error_bounded_by_half_step() {
        let qp = QuantParams::from_range(-2.0, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let v = rng.gen_range(-2.0..2.0);
            let err = (qp.dequantize(qp.quantize(v)) - v).abs();
            assert!(err <= qp.scale * 0.5 + 1e-6, "v={v} err={err}");
        }
    }

    #[test]
    fn saturation_clamps_to_i8_range() {
        let qp = QuantParams::from_range(-1.0, 1.0);
        assert_eq!(qp.quantize(100.0), 127);
        assert_eq!(qp.quantize(-100.0), -128);
    }

    #[test]
    fn weight_quantization_is_symmetric_and_preserves_pruning() {
        let mut w = Tensor4::zeros(3, 2, 3, 3);
        w.init_he(&mut StdRng::seed_from_u64(8));
        for (i, v) in w.data_mut().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let q = QTensor4::quantize(&w);
        assert_eq!(q.scales().len(), 3);
        // Every pruned f32 weight is exactly 0 in INT8, and vice versa
        // (symmetric zp=0 quantization cannot move zeros off zero; small
        // nonzero weights may round to 0, which only increases sparsity).
        for (qv, &fv) in q.data().iter().zip(w.data()) {
            if fv == 0.0 {
                assert_eq!(*qv, 0);
            }
        }
        assert!(q.nnz() <= w.nnz());
        // Largest-magnitude weight per channel hits ±127.
        for k in 0..3 {
            let per = 2 * 3 * 3;
            let maxq = q.data()[k * per..(k + 1) * per]
                .iter()
                .map(|&v| (v as i32).abs())
                .max()
                .expect("non-empty plane");
            assert_eq!(maxq, 127, "channel {k}");
        }
    }

    #[test]
    fn qtensor3_nnz_matches_dequantized_nnz() {
        let mut t = Tensor3::zeros(2, 4, 4);
        t.fill_uniform(&mut StdRng::seed_from_u64(3), -1.0, 1.0);
        for v in t.data_mut().iter_mut().take(10) {
            *v = 0.0;
        }
        let qp = QuantParams::from_range(-1.0, 1.0);
        let q = QTensor3::quantize(&t, qp);
        assert_eq!(q.nnz(), q.dequantize().nnz());
    }
}
