//! Runtime-dispatched SIMD kernels for the convolution hot loops.
//!
//! The three f32 conv backends (blocked GEMM, CSC scatter, direct loop
//! nest) and the INT8 quantized path all bottom out in a handful of small
//! kernels defined here. Each kernel has two implementations with
//! *identical per-lane semantics*:
//!
//! * a portable scalar fallback ([`scalar`]) written over the explicit
//!   lane types [`scalar::f32x8`] / [`scalar::i32x8`], and
//! * a hand-vectorized `std::arch` version (AVX2 on x86_64 in [`x86`],
//!   NEON on aarch64 in [`neon`]) selected at runtime.
//!
//! # Bit-identity contract
//!
//! The vector kernels vectorize **across output elements only** (the NR
//! register columns of a GEMM tile, or a contiguous run of output-x
//! positions) and use separate multiply + add — never FMA. Each output
//! element therefore receives exactly the same f32 additions in exactly
//! the same order on both paths, and the golden traces recorded before
//! this module existed still pass byte-identically. Zero-skipping is
//! reproduced lanewise with a compare + blend: a lane whose activation is
//! zero keeps its accumulator bits (an unconditional `acc + w*0.0` could
//! flip a `-0.0` accumulator to `+0.0`).
//!
//! # Dispatch
//!
//! The active mode is decided once, at first use, from the host ISA
//! (`is_x86_feature_detected!("avx2")`; NEON is baseline on aarch64) and
//! the `HD_SIMD` environment variable (`HD_SIMD=0` forces the scalar
//! fallback so CI can exercise it on any host). Tests and benches can
//! flip the mode in-process with [`set_enabled`] — safe precisely
//! because both paths are bit-identical.
//!
//! This module is the only place in the workspace where `unsafe` is
//! sanctioned (enforced by the `no-unsafe` hd-lint rule); every unsafe
//! block carries a `SAFETY:` comment discharging its obligations.

pub mod scalar;

#[cfg(target_arch = "aarch64")]
pub mod neon;
#[cfg(target_arch = "x86_64")]
pub mod x86;

/// Rows of one GEMM micro-tile (shared with [`crate::gemm`]).
pub const MR: usize = 4;
/// Columns of one GEMM micro-tile: two 8-lane strips per row, so each
/// broadcast of an A value is amortized over twice the output columns.
/// (Widening the tile never changes results — per output element the
/// `j` accumulation order is untouched.)
pub const NR: usize = 16;

use std::sync::atomic::{AtomicU8, Ordering};

const MODE_UNINIT: u8 = 0;
const MODE_SCALAR: u8 = 1;
const MODE_VECTOR: u8 = 2;

/// Cached dispatch decision (one relaxed load on the hot path).
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

/// Whether the host ISA has the vector extensions the kernels target
/// (AVX2 on x86_64, NEON on aarch64). Independent of [`enabled`]: bench
/// artifacts use this to annotate scalar-only hosts honestly.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        std::arch::is_aarch64_feature_detected!("neon")
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

fn detect() -> u8 {
    let forced_off = std::env::var("HD_SIMD").is_ok_and(|v| v == "0");
    if !forced_off && simd_available() {
        MODE_VECTOR
    } else {
        MODE_SCALAR
    }
}

#[inline]
fn mode() -> u8 {
    // hd-lint: allow(atomic-ordering) -- single-word dispatch cache; a racy re-detect recomputes the same value (detect() is pure)
    let m = MODE.load(Ordering::Relaxed);
    if m != MODE_UNINIT {
        return m;
    }
    let m = detect();
    // hd-lint: allow(atomic-ordering) -- idempotent cache fill; both SIMD paths are bit-identical, so a stale mode is harmless
    MODE.store(m, Ordering::Relaxed);
    m
}

/// Whether the vector kernels are currently active.
pub fn enabled() -> bool {
    mode() == MODE_VECTOR
}

/// Forces the dispatch mode in-process (differential tests, the
/// SIMD-off bench rows). Enabling on a host without the required ISA is
/// a no-op. Safe to flip at any time: both paths are bit-identical, so
/// concurrent readers cannot observe a numeric difference.
pub fn set_enabled(enabled: bool) {
    let m = if enabled && simd_available() {
        MODE_VECTOR
    } else {
        MODE_SCALAR
    };
    // hd-lint: allow(atomic-ordering) -- mode flip needs no barrier: scalar and vector kernels are bit-identical by construction
    MODE.store(m, Ordering::Relaxed);
}

/// Name of the instruction set the active kernels use.
pub fn active_isa() -> &'static str {
    if !enabled() {
        return "scalar";
    }
    #[cfg(target_arch = "x86_64")]
    {
        "avx2"
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon"
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "scalar"
    }
}

/// `MR x NR` GEMM register tile: loads the C tile, accumulates `kcb`
/// rank-1 updates in ascending `j` with separate mul + add, stores back.
/// `a_strip`/`b_strip` are the packed strips of [`crate::gemm`];
/// `mrb`/`nrb` mask the edge tiles. Edge tiles (`nrb < NR`) always take
/// the scalar path — the vector kernel loads full NR-lane rows of C.
#[inline]
pub fn gemm_micro(
    kcb: usize,
    a_strip: &[f32],
    b_strip: &[f32],
    c: &mut [f32],
    ldc: usize,
    mrb: usize,
    nrb: usize,
) {
    assert!(
        (1..=MR).contains(&mrb) && (1..=NR).contains(&nrb),
        "tile mask out of range"
    );
    assert!(
        a_strip.len() >= kcb * MR && b_strip.len() >= kcb * NR,
        "packed strip too short"
    );
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    if nrb == NR && mode() == MODE_VECTOR {
        assert!(
            c.len() >= (mrb - 1) * ldc + NR,
            "C tile rows must hold NR lanes"
        );
        // SAFETY: the required ISA was verified by `detect()` (or
        // `set_enabled`) before MODE_VECTOR could be observed, and the
        // asserts above establish the slice bounds the kernel reads and
        // writes through raw pointers.
        #[cfg(target_arch = "x86_64")]
        unsafe {
            x86::gemm_micro_avx2(kcb, a_strip, b_strip, c, ldc, mrb)
        };
        // SAFETY: as above — NEON presence verified, bounds asserted.
        #[cfg(target_arch = "aarch64")]
        unsafe {
            neon::gemm_micro_neon(kcb, a_strip, b_strip, c, ldc, mrb)
        };
        return;
    }
    scalar::gemm_micro(kcb, a_strip, b_strip, c, ldc, mrb, nrb);
}

/// Masked accumulate over a contiguous run of output elements:
/// `acc[i] += w * x[i]` for every lane where `x[i] != 0.0`, preserving
/// the accumulator bits elsewhere — the vectorized form of the kernels'
/// activation zero-skipping. `acc` and `x` must have equal length.
#[inline]
pub fn axpy_nonzero(acc: &mut [f32], x: &[f32], w: f32) {
    assert_eq!(acc.len(), x.len(), "axpy operand length mismatch");
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    if mode() == MODE_VECTOR {
        // SAFETY: ISA presence verified before MODE_VECTOR was stored;
        // equal slice lengths asserted above bound every pointer access.
        #[cfg(target_arch = "x86_64")]
        unsafe {
            x86::axpy_nonzero_avx2(acc, x, w)
        };
        // SAFETY: as above.
        #[cfg(target_arch = "aarch64")]
        unsafe {
            neon::axpy_nonzero_neon(acc, x, w)
        };
        return;
    }
    scalar::axpy_nonzero(acc, x, w);
}

/// Unmasked i32 accumulate over a contiguous run: `acc[i] += w * x[i]`.
/// Integer arithmetic is exact, so the quantized kernels need no
/// zero-mask to stay bit-identical across paths. `acc` and `x` must have
/// equal length; products and sums must not overflow `i32` (the
/// quantized conv bounds its accumulators well below `i32::MAX`).
#[inline]
pub fn qaxpy(acc: &mut [i32], x: &[i32], w: i32) {
    assert_eq!(acc.len(), x.len(), "qaxpy operand length mismatch");
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    if mode() == MODE_VECTOR {
        // SAFETY: ISA presence verified before MODE_VECTOR was stored;
        // equal slice lengths asserted above bound every pointer access.
        #[cfg(target_arch = "x86_64")]
        unsafe {
            x86::qaxpy_avx2(acc, x, w)
        };
        // SAFETY: as above.
        #[cfg(target_arch = "aarch64")]
        unsafe {
            neon::qaxpy_neon(acc, x, w)
        };
        return;
    }
    scalar::qaxpy(acc, x, w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    0.0
                } else {
                    rng.gen_range(-2.0..2.0)
                }
            })
            .collect()
    }

    /// Runs `f` once with the vector kernels and once with the scalar
    /// fallback, restoring the detected mode afterwards.
    fn both_paths(mut f: impl FnMut(bool)) {
        for vector in [false, true] {
            set_enabled(vector);
            f(vector && simd_available());
        }
        MODE.store(MODE_UNINIT, Ordering::Relaxed);
    }

    #[test]
    fn gemm_micro_paths_bit_identical() {
        let mut rng = StdRng::seed_from_u64(7);
        for kcb in [0usize, 1, 3, 17] {
            for (mrb, nrb) in [(4, 8), (4, 5), (2, 8), (1, 1)] {
                let a: Vec<f32> = random(kcb * MR, 10 + kcb as u64);
                let b: Vec<f32> = random(kcb * NR, 20 + kcb as u64);
                let ldc = rng.gen_range(NR..2 * NR);
                let c0: Vec<f32> = random(MR * ldc, 30 + kcb as u64);
                let mut outs: Vec<Vec<f32>> = Vec::new();
                both_paths(|_| {
                    let mut c = c0.clone();
                    gemm_micro(kcb, &a, &b, &mut c, ldc, mrb, nrb);
                    outs.push(c);
                });
                let bits = |v: &Vec<f32>| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&outs[0]),
                    bits(&outs[1]),
                    "kcb={kcb} mrb={mrb} nrb={nrb}"
                );
            }
        }
    }

    #[test]
    fn axpy_paths_bit_identical_and_preserve_zero_lanes() {
        for n in [0usize, 1, 7, 8, 9, 31, 64] {
            let x = random(n, n as u64);
            let acc0: Vec<f32> = random(n, 100 + n as u64);
            let mut outs: Vec<Vec<f32>> = Vec::new();
            both_paths(|_| {
                let mut acc = acc0.clone();
                axpy_nonzero(&mut acc, &x, 0.75);
                outs.push(acc);
            });
            let bits = |v: &Vec<f32>| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&outs[0]), bits(&outs[1]), "n={n}");
            // Lanes with a zero activation keep their exact bits.
            for i in 0..n {
                if x[i] == 0.0 {
                    assert_eq!(outs[1][i].to_bits(), acc0[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn axpy_preserves_negative_zero_accumulator() {
        let mut acc = vec![-0.0f32; 8];
        let x = vec![0.0f32; 8];
        both_paths(|_| {
            axpy_nonzero(&mut acc, &x, 1.0);
            for a in &acc {
                assert_eq!(a.to_bits(), (-0.0f32).to_bits(), "-0.0 flipped");
            }
        });
    }

    #[test]
    fn qaxpy_paths_identical() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [0usize, 1, 8, 13, 40] {
            let x: Vec<i32> = (0..n).map(|_| rng.gen_range(-255..=255)).collect();
            let acc0: Vec<i32> = (0..n).map(|_| rng.gen_range(-10_000..10_000)).collect();
            let mut outs: Vec<Vec<i32>> = Vec::new();
            both_paths(|_| {
                let mut acc = acc0.clone();
                qaxpy(&mut acc, &x, -113);
                outs.push(acc);
            });
            assert_eq!(outs[0], outs[1], "n={n}");
            for i in 0..n {
                assert_eq!(outs[0][i], acc0[i] + (-113) * x[i]);
            }
        }
    }

    #[test]
    fn hd_simd_env_forces_scalar() {
        // `detect()` is pure given the env; exercise it directly rather
        // than mutating the process environment (other tests race on it).
        assert_eq!(
            detect() == MODE_VECTOR,
            simd_available() && !std::env::var("HD_SIMD").is_ok_and(|v| v == "0")
        );
        set_enabled(false);
        assert!(!enabled());
        assert_eq!(active_isa(), "scalar");
        set_enabled(true);
        assert_eq!(enabled(), simd_available());
        MODE.store(MODE_UNINIT, Ordering::Relaxed);
    }
}
