//! Portable scalar fallback for the [`super`] kernels.
//!
//! Written over explicit-width lane types ([`f32x8`], [`i32x8`]) whose
//! operations are plain per-lane scalar expressions — the semantic
//! specification the `std::arch` kernels must match lane for lane. This
//! path is what `HD_SIMD=0` (and any host without AVX2/NEON) runs, so it
//! is kept allocation-free and auto-vectorizer-friendly but never relies
//! on vectorization for correctness.

use super::{MR, NR};

/// Eight f32 lanes with per-lane scalar semantics.
#[allow(non_camel_case_types)] // lane types follow the f32x8 convention
#[derive(Clone, Copy, Debug)]
pub struct f32x8(pub [f32; 8]);

impl f32x8 {
    /// Broadcasts `v` to all lanes.
    #[inline]
    pub fn splat(v: f32) -> Self {
        f32x8([v; 8])
    }

    /// Loads eight lanes from the front of `s`.
    #[inline]
    pub fn load(s: &[f32]) -> Self {
        let mut lanes = [0.0f32; 8];
        lanes.copy_from_slice(&s[..8]);
        f32x8(lanes)
    }

    /// Stores the lanes to the front of `d`.
    #[inline]
    pub fn store(self, d: &mut [f32]) {
        d[..8].copy_from_slice(&self.0);
    }

    /// Lanewise multiply.
    #[inline]
    #[allow(clippy::should_implement_trait)] // named method, not an operator: lane math stays grep-able
    pub fn mul(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(&o.0) {
            *a *= b;
        }
        f32x8(r)
    }

    /// Lanewise add (separate from [`Self::mul`]: no fused multiply-add).
    #[inline]
    #[allow(clippy::should_implement_trait)] // named method, not an operator: lane math stays grep-able
    pub fn add(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(&o.0) {
            *a += b;
        }
        f32x8(r)
    }

    /// Per lane: `self` where `mask_src != 0.0`, else `fallback` — the
    /// zero-skipping blend (`!=` is true for NaN, matching the scalar
    /// kernels' `if x != 0.0` test).
    #[inline]
    pub fn blend_nonzero(self, fallback: Self, mask_src: Self) -> Self {
        let mut r = fallback.0;
        for ((dst, &taken), &m) in r.iter_mut().zip(&self.0).zip(&mask_src.0) {
            if m != 0.0 {
                *dst = taken;
            }
        }
        f32x8(r)
    }
}

/// Eight i32 lanes with per-lane scalar semantics.
#[allow(non_camel_case_types)] // lane types follow the i32x8 convention
#[derive(Clone, Copy, Debug)]
pub struct i32x8(pub [i32; 8]);

impl i32x8 {
    /// Broadcasts `v` to all lanes.
    #[inline]
    pub fn splat(v: i32) -> Self {
        i32x8([v; 8])
    }

    /// Loads eight lanes from the front of `s`.
    #[inline]
    pub fn load(s: &[i32]) -> Self {
        let mut lanes = [0i32; 8];
        lanes.copy_from_slice(&s[..8]);
        i32x8(lanes)
    }

    /// Stores the lanes to the front of `d`.
    #[inline]
    pub fn store(self, d: &mut [i32]) {
        d[..8].copy_from_slice(&self.0);
    }

    /// Lanewise multiply (must not overflow).
    #[inline]
    #[allow(clippy::should_implement_trait)] // named method, not an operator: lane math stays grep-able
    pub fn mul(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(&o.0) {
            *a = a.wrapping_mul(*b);
        }
        i32x8(r)
    }

    /// Lanewise add (must not overflow).
    #[inline]
    #[allow(clippy::should_implement_trait)] // named method, not an operator: lane math stays grep-able
    pub fn add(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(&o.0) {
            *a = a.wrapping_add(*b);
        }
        i32x8(r)
    }
}

/// Scalar `MR x NR` register tile: load C, accumulate ascending `j`,
/// store back. The tile is processed in 8-lane column chunks so the live
/// accumulator set fits a 128-bit register file — per output element the
/// `j` accumulation order is identical either way, so chunking cannot
/// change a single bit.
pub fn gemm_micro(
    kcb: usize,
    a_strip: &[f32],
    b_strip: &[f32],
    c: &mut [f32],
    ldc: usize,
    mrb: usize,
    nrb: usize,
) {
    let mut j0 = 0;
    while j0 < nrb {
        let w = 8.min(nrb - j0);
        let mut acc = [[0.0f32; 8]; MR];
        for (i, row) in acc.iter_mut().enumerate().take(mrb) {
            row[..w].copy_from_slice(&c[i * ldc + j0..i * ldc + j0 + w]);
        }
        if w == 8 {
            // Fixed-width hot path: full 8-lane chunks of a tile.
            for j in 0..kcb {
                let av = &a_strip[j * MR..j * MR + MR];
                let bv = &b_strip[j * NR + j0..j * NR + j0 + 8];
                for (i, row) in acc.iter_mut().enumerate() {
                    let ai = av[i];
                    for (x, bj) in row.iter_mut().zip(bv) {
                        *x += ai * bj;
                    }
                }
            }
        } else {
            for j in 0..kcb {
                let av = &a_strip[j * MR..j * MR + MR];
                let bv = &b_strip[j * NR + j0..j * NR + j0 + w];
                for (i, row) in acc.iter_mut().enumerate() {
                    let ai = av[i];
                    for (x, bj) in row[..w].iter_mut().zip(bv) {
                        *x += ai * bj;
                    }
                }
            }
        }
        for (i, row) in acc.iter().enumerate().take(mrb) {
            c[i * ldc + j0..i * ldc + j0 + w].copy_from_slice(&row[..w]);
        }
        j0 += w;
    }
}

/// Scalar masked accumulate: `acc[i] += w * x[i]` where `x[i] != 0.0`.
/// The lane-typed body and the remainder loop evaluate the exact same
/// per-element expression.
pub fn axpy_nonzero(acc: &mut [f32], x: &[f32], w: f32) {
    let wv = f32x8::splat(w);
    let mut chunks = acc.chunks_exact_mut(8);
    let mut xchunks = x.chunks_exact(8);
    for (a8, x8) in (&mut chunks).zip(&mut xchunks) {
        let av = f32x8::load(a8);
        let xv = f32x8::load(x8);
        av.add(wv.mul(xv)).blend_nonzero(av, xv).store(a8);
    }
    for (a, &xv) in chunks.into_remainder().iter_mut().zip(xchunks.remainder()) {
        if xv != 0.0 {
            *a += w * xv;
        }
    }
}

/// Scalar unmasked i32 accumulate: `acc[i] += w * x[i]`.
pub fn qaxpy(acc: &mut [i32], x: &[i32], w: i32) {
    let wv = i32x8::splat(w);
    let mut chunks = acc.chunks_exact_mut(8);
    let mut xchunks = x.chunks_exact(8);
    for (a8, x8) in (&mut chunks).zip(&mut xchunks) {
        let av = i32x8::load(a8);
        let xv = i32x8::load(x8);
        av.add(wv.mul(xv)).store(a8);
    }
    for (a, &xv) in chunks.into_remainder().iter_mut().zip(xchunks.remainder()) {
        *a = a.wrapping_add(w.wrapping_mul(xv));
    }
}
