//! AVX2 implementations of the [`super`] kernels.
//!
//! Every function is an `unsafe fn` gated on `target_feature(avx2)`;
//! the dispatcher in `super` verifies AVX2 with
//! `is_x86_feature_detected!` and asserts the slice bounds before
//! calling in. Per-lane semantics match [`super::scalar`] exactly:
//! separate `mul` + `add` (no FMA), and zero-skipping as a compare +
//! blend so untouched accumulator lanes keep their bits.

use super::{MR, NR};
use core::arch::x86_64::*;

/// `MR x NR` register tile over full-width (`nrb == NR`) C rows.
///
/// # Safety
///
/// Requires AVX2. `a_strip` must hold `kcb * MR` values, `b_strip`
/// `kcb * NR`, and `c` must hold `NR` values at each of the `mrb`
/// (`1..=MR`) row offsets `i * ldc`.
#[target_feature(enable = "avx2")]
pub unsafe fn gemm_micro_avx2(
    kcb: usize,
    a_strip: &[f32],
    b_strip: &[f32],
    c: &mut [f32],
    ldc: usize,
    mrb: usize,
) {
    // SAFETY: caller guarantees the bounds spelled out above; every
    // pointer below stays inside those ranges.
    unsafe {
        // NR = 16: two 8-lane strips per C row, so one A broadcast feeds
        // two multiplies (8 accumulator registers + 2 B + 1 broadcast).
        let mut lo = [_mm256_setzero_ps(); MR];
        let mut hi = [_mm256_setzero_ps(); MR];
        for i in 0..mrb {
            lo[i] = _mm256_loadu_ps(c.as_ptr().add(i * ldc));
            hi[i] = _mm256_loadu_ps(c.as_ptr().add(i * ldc + 8));
        }
        for j in 0..kcb {
            let b_lo = _mm256_loadu_ps(b_strip.as_ptr().add(j * NR));
            let b_hi = _mm256_loadu_ps(b_strip.as_ptr().add(j * NR + 8));
            for i in 0..mrb {
                let av = _mm256_set1_ps(*a_strip.get_unchecked(j * MR + i));
                // Separate mul + add: bit-identical to the scalar tile.
                lo[i] = _mm256_add_ps(lo[i], _mm256_mul_ps(av, b_lo));
                hi[i] = _mm256_add_ps(hi[i], _mm256_mul_ps(av, b_hi));
            }
        }
        for i in 0..mrb {
            _mm256_storeu_ps(c.as_mut_ptr().add(i * ldc), lo[i]);
            _mm256_storeu_ps(c.as_mut_ptr().add(i * ldc + 8), hi[i]);
        }
    }
}

/// Masked accumulate: `acc[i] += w * x[i]` where `x[i] != 0.0`.
///
/// # Safety
///
/// Requires AVX2. `acc` and `x` must have equal length.
#[target_feature(enable = "avx2")]
pub unsafe fn axpy_nonzero_avx2(acc: &mut [f32], x: &[f32], w: f32) {
    // SAFETY: caller guarantees equal lengths; `i + 8 <= n` bounds every
    // vector access and the remainder loop uses checked indices below n.
    unsafe {
        let n = acc.len();
        let wv = _mm256_set1_ps(w);
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let av = _mm256_loadu_ps(acc.as_ptr().add(i));
            let sum = _mm256_add_ps(av, _mm256_mul_ps(wv, xv));
            // NEQ_UQ is true for NaN lanes, matching scalar `x != 0.0`.
            let mask = _mm256_cmp_ps::<_CMP_NEQ_UQ>(xv, zero);
            _mm256_storeu_ps(acc.as_mut_ptr().add(i), _mm256_blendv_ps(av, sum, mask));
            i += 8;
        }
        while i < n {
            let xi = *x.get_unchecked(i);
            if xi != 0.0 {
                *acc.get_unchecked_mut(i) += w * xi;
            }
            i += 1;
        }
    }
}

/// Unmasked i32 accumulate: `acc[i] += w * x[i]` (no overflow by caller
/// contract; wrapping on both paths keeps them identical regardless).
///
/// # Safety
///
/// Requires AVX2. `acc` and `x` must have equal length.
#[target_feature(enable = "avx2")]
pub unsafe fn qaxpy_avx2(acc: &mut [i32], x: &[i32], w: i32) {
    // SAFETY: caller guarantees equal lengths; `i + 8 <= n` bounds every
    // vector access and the remainder loop uses checked indices below n.
    unsafe {
        let n = acc.len();
        let wv = _mm256_set1_epi32(w);
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_si256(x.as_ptr().add(i) as *const __m256i);
            let av = _mm256_loadu_si256(acc.as_ptr().add(i) as *const __m256i);
            let sum = _mm256_add_epi32(av, _mm256_mullo_epi32(wv, xv));
            _mm256_storeu_si256(acc.as_mut_ptr().add(i) as *mut __m256i, sum);
            i += 8;
        }
        while i < n {
            let xi = *x.get_unchecked(i);
            let ai = *acc.get_unchecked(i);
            *acc.get_unchecked_mut(i) = ai.wrapping_add(w.wrapping_mul(xi));
            i += 1;
        }
    }
}
