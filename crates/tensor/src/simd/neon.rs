//! NEON implementations of the [`super`] kernels (aarch64).
//!
//! NEON registers are 128-bit, so each 8-lane kernel step uses a pair of
//! `float32x4_t`/`int32x4_t` halves. Per-lane semantics match
//! [`super::scalar`] exactly: separate `mul` + `add` (no `vfmaq`), and
//! zero-skipping as a compare + bit-select so untouched accumulator
//! lanes keep their bits.

use super::{MR, NR};
use core::arch::aarch64::*;

/// `MR x NR` register tile over full-width (`nrb == NR`) C rows.
///
/// # Safety
///
/// Requires NEON (baseline on aarch64). `a_strip` must hold `kcb * MR`
/// values, `b_strip` `kcb * NR`, and `c` must hold `NR` values at each
/// of the `mrb` (`1..=MR`) row offsets `i * ldc`.
pub unsafe fn gemm_micro_neon(
    kcb: usize,
    a_strip: &[f32],
    b_strip: &[f32],
    c: &mut [f32],
    ldc: usize,
    mrb: usize,
) {
    // SAFETY: caller guarantees the bounds spelled out above; every
    // pointer below stays inside those ranges.
    unsafe {
        // NR = 16: four 4-lane quarters per C row (16 accumulator
        // registers + 4 B + 1 broadcast of the 32 q-registers).
        let mut acc = [[vdupq_n_f32(0.0); 4]; MR];
        for i in 0..mrb {
            for (q, quarter) in acc[i].iter_mut().enumerate() {
                *quarter = vld1q_f32(c.as_ptr().add(i * ldc + 4 * q));
            }
        }
        for j in 0..kcb {
            let mut bq = [vdupq_n_f32(0.0); 4];
            for (q, quarter) in bq.iter_mut().enumerate() {
                *quarter = vld1q_f32(b_strip.as_ptr().add(j * NR + 4 * q));
            }
            for i in 0..mrb {
                let av = vdupq_n_f32(*a_strip.get_unchecked(j * MR + i));
                for (quarter, b) in acc[i].iter_mut().zip(&bq) {
                    // Separate mul + add: bit-identical to the scalar tile.
                    *quarter = vaddq_f32(*quarter, vmulq_f32(av, *b));
                }
            }
        }
        for i in 0..mrb {
            for (q, quarter) in acc[i].iter().enumerate() {
                vst1q_f32(c.as_mut_ptr().add(i * ldc + 4 * q), *quarter);
            }
        }
    }
}

/// Masked accumulate: `acc[i] += w * x[i]` where `x[i] != 0.0`.
///
/// # Safety
///
/// Requires NEON. `acc` and `x` must have equal length.
pub unsafe fn axpy_nonzero_neon(acc: &mut [f32], x: &[f32], w: f32) {
    // SAFETY: caller guarantees equal lengths; `i + 4 <= n` bounds every
    // vector access and the remainder loop uses checked indices below n.
    unsafe {
        let n = acc.len();
        let wv = vdupq_n_f32(w);
        let zero = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 4 <= n {
            let xv = vld1q_f32(x.as_ptr().add(i));
            let av = vld1q_f32(acc.as_ptr().add(i));
            let sum = vaddq_f32(av, vmulq_f32(wv, xv));
            // `x != 0.0` per lane: NaN compares not-equal, matching the
            // scalar test, because vceqq is false for NaN.
            let mask = vmvnq_u32(vceqq_f32(xv, zero));
            vst1q_f32(acc.as_mut_ptr().add(i), vbslq_f32(mask, sum, av));
            i += 4;
        }
        while i < n {
            let xi = *x.get_unchecked(i);
            if xi != 0.0 {
                *acc.get_unchecked_mut(i) += w * xi;
            }
            i += 1;
        }
    }
}

/// Unmasked i32 accumulate: `acc[i] += w * x[i]` (no overflow by caller
/// contract; wrapping on both paths keeps them identical regardless).
///
/// # Safety
///
/// Requires NEON. `acc` and `x` must have equal length.
pub unsafe fn qaxpy_neon(acc: &mut [i32], x: &[i32], w: i32) {
    // SAFETY: caller guarantees equal lengths; `i + 4 <= n` bounds every
    // vector access and the remainder loop uses checked indices below n.
    unsafe {
        let n = acc.len();
        let wv = vdupq_n_s32(w);
        let mut i = 0;
        while i + 4 <= n {
            let xv = vld1q_s32(x.as_ptr().add(i));
            let av = vld1q_s32(acc.as_ptr().add(i));
            vst1q_s32(acc.as_mut_ptr().add(i), vaddq_s32(av, vmulq_s32(wv, xv)));
            i += 4;
        }
        while i < n {
            let xi = *x.get_unchecked(i);
            let ai = *acc.get_unchecked(i);
            *acc.get_unchecked_mut(i) = ai.wrapping_add(w.wrapping_mul(xi));
            i += 1;
        }
    }
}
