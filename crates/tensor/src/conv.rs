//! 2-D convolution kernels.
//!
//! The victim accelerators in the paper execute standard CNN convolutions
//! with symmetric square kernels, "same" zero padding being the common case
//! (paper §9.1). We implement both `Same` and `Valid` so the defence and
//! ablation studies can vary the padding mode.

use crate::{Tensor3, Tensor4};

/// Padding mode for [`conv2d`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Padding {
    /// Zero padding chosen so the output spatial size is `ceil(in/stride)`.
    Same,
    /// No padding; the kernel never leaves the input.
    Valid,
}

/// Compute backend used by [`conv2d`] once the shared sparse-input CSC fast
/// path has declined the inference.
///
/// All backends are bit-identical (see the accumulation-order contracts in
/// [`crate::gemm`] and [`crate::csc_conv`]), so traces and timings derived
/// from the outputs do not depend on this choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ConvBackend {
    /// Naive zero-skipping loop nest (the original reference kernel).
    Direct,
    /// im2col lowering + cache-blocked GEMM ([`crate::im2col`]).
    #[default]
    Im2colGemm,
    /// Input-stationary sparse × sparse scatter over CSC-compacted weights
    /// ([`crate::csc_conv`]); devices additionally cache the weight
    /// compaction and track nonzero-column intervals across layers.
    SparseCsc,
}

impl ConvBackend {
    /// Parses a CLI-style backend name (`direct` / `gemm` / `sparse`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "direct" => Some(ConvBackend::Direct),
            "gemm" | "im2col" | "im2col-gemm" => Some(ConvBackend::Im2colGemm),
            "sparse" | "csc" | "sparse-csc" => Some(ConvBackend::SparseCsc),
            _ => None,
        }
    }
}

impl std::fmt::Display for ConvBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ConvBackend::Direct => "direct",
            ConvBackend::Im2colGemm => "gemm",
            ConvBackend::SparseCsc => "sparse",
        })
    }
}

/// Density thresholds steering [`conv2d`]'s kernel dispatch.
///
/// Thresholds are expressed in permille (tenths of a percent) rather than
/// `f32` so the policy — and [`Conv2dCfg`] embedding it — stays `Eq + Hash`.
/// The defaults reproduce the historical dispatch exactly: 125‰ = 12.5%,
/// and `nnz * 1000 < len * 125` reduces to the old `nnz * 8 < len` test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BackendPolicy {
    /// Input nnz-density (permille) below which every backend takes the
    /// input-stationary CSC scatter path (probe images, deep post-ReLU maps).
    pub input_density_threshold: u16,
    /// Weight nnz-density (permille) below which the dense backends switch
    /// to the compacted-tap kernel (heavily pruned victim layers).
    pub weight_density_threshold: u16,
    /// Whether a device may auto-upgrade sparse-input inferences to
    /// [`ConvBackend::SparseCsc`] (cached weight compaction + colspan
    /// interval tracking across layers).
    pub auto_sparse: bool,
}

impl Default for BackendPolicy {
    fn default() -> Self {
        BackendPolicy {
            input_density_threshold: 125,
            weight_density_threshold: 125,
            auto_sparse: true,
        }
    }
}

impl BackendPolicy {
    /// Whether an input map with `nnz` nonzeros out of `len` is sparse
    /// enough for the CSC scatter path.
    pub fn input_is_sparse(&self, nnz: usize, len: usize) -> bool {
        (nnz as u64) * 1000 < (len as u64) * self.input_density_threshold as u64
    }

    /// Whether a weight tensor with `nnz` nonzeros out of `len` is sparse
    /// enough for the compacted-tap kernel.
    pub fn weight_is_sparse(&self, nnz: usize, len: usize) -> bool {
        (nnz as u64) * 1000 < (len as u64) * self.weight_density_threshold as u64
    }
}

/// Convolution hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Conv2dCfg {
    /// Symmetric stride in both spatial dimensions.
    pub stride: usize,
    /// Padding mode.
    pub padding: Padding,
    /// Compute backend (does not affect results, only speed).
    pub backend: ConvBackend,
    /// Density thresholds for the sparsity-aware dispatch.
    pub policy: BackendPolicy,
}

impl Conv2dCfg {
    /// Config with the default backend and dispatch policy.
    pub fn new(stride: usize, padding: Padding) -> Self {
        Conv2dCfg {
            stride,
            padding,
            backend: ConvBackend::default(),
            policy: BackendPolicy::default(),
        }
    }

    /// Returns the config with `backend` selected.
    pub fn with_backend(mut self, backend: ConvBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Returns the config with `policy` as its dispatch policy.
    pub fn with_policy(mut self, policy: BackendPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl Default for Conv2dCfg {
    fn default() -> Self {
        Conv2dCfg::new(1, Padding::Same)
    }
}

/// Output spatial size of a convolution along one dimension.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, padding: Padding) -> usize {
    match padding {
        Padding::Same => input.div_ceil(stride),
        Padding::Valid => {
            if input < kernel {
                0
            } else {
                (input - kernel) / stride + 1
            }
        }
    }
}

/// Left/top zero-padding amount for `Same` padding.
pub fn same_pad(input: usize, kernel: usize, stride: usize) -> usize {
    let out = input.div_ceil(stride);
    let total = ((out - 1) * stride + kernel).saturating_sub(input);
    total / 2
}

/// Direct 2-D convolution: `out[k, p, q] = sum_{c,r,s} in[c, p*stride+r-pad, q*stride+s-pad] * w[k,c,r,s] (+ bias[k])`.
///
/// Zero-valued weights and activations are skipped, mirroring the
/// zero-skipping datapath of a two-sided sparse accelerator; the numeric
/// result is identical to the dense computation.
///
/// # Panics
///
/// Panics if the weight input-channel count does not match the input tensor,
/// or if `stride == 0`.
///
/// # Examples
///
/// ```
/// use hd_tensor::{Tensor3, Tensor4};
/// use hd_tensor::conv::{conv2d, Conv2dCfg, Padding};
///
/// // 1x1 identity kernel leaves the input unchanged.
/// let x = Tensor3::from_vec(1, 1, 3, vec![1.0, 2.0, 3.0]);
/// let w = Tensor4::from_vec(1, 1, 1, 1, vec![1.0]);
/// let y = conv2d(&x, &w, None, &Conv2dCfg::new(1, Padding::Same));
/// assert_eq!(y.data(), x.data());
/// ```
pub fn conv2d(input: &Tensor3, weight: &Tensor4, bias: Option<&[f32]>, cfg: &Conv2dCfg) -> Tensor3 {
    assert!(cfg.stride > 0, "stride must be positive");
    assert_eq!(
        input.c(),
        weight.c(),
        "input channels {} do not match weight channels {}",
        input.c(),
        weight.c()
    );
    if let Some(b) = bias {
        assert_eq!(
            b.len(),
            weight.k(),
            "bias length must equal output channels"
        );
    }

    // Probe images and post-ReLU activations of pruned networks are mostly
    // zero; scattering from the non-zero inputs is then far cheaper than
    // either dense backend. Shared by all backends so the choice below
    // cannot regress sparse probe inferences. The SparseCsc backend takes
    // this kernel unconditionally — that is what it is.
    let nnz = input.nnz();
    if cfg.backend == ConvBackend::SparseCsc || cfg.policy.input_is_sparse(nnz, input.shape().len())
    {
        return crate::csc_conv::conv2d_sparse_csc(input, weight, bias, cfg);
    }

    // Extremely pruned weights (paper victims sit near 99% sparsity):
    // iterating only the surviving taps costs `out_pixels x nnz(W)`, which
    // beats even the blocked GEMM (whose cost stays near-dense once most
    // tap positions are live in *some* filter). Shared by both dense
    // backends.
    let weight_nnz = weight.nnz();
    if cfg.policy.weight_is_sparse(weight_nnz, weight.len()) {
        return conv2d_sparse_weights(input, weight, bias, cfg);
    }

    if cfg.backend == ConvBackend::Im2colGemm {
        return crate::im2col::conv2d_im2col_gemm(input, weight, bias, cfg);
    }

    // Moderately pruned weights, direct backend only: GEMM handles this
    // density range faster, but the reference loop still skips zeros.
    if weight_nnz * 3 < weight.len() {
        return conv2d_sparse_weights(input, weight, bias, cfg);
    }

    if cfg.stride == 1 {
        return conv2d_direct_rowwise(input, weight, bias, cfg);
    }
    conv2d_reference(input, weight, bias, cfg)
}

/// Stride-1 direct kernel accumulating whole output rows: for each
/// `(k, p)` the accumulator row starts at the bias and every surviving
/// weight tap contributes one masked [`crate::simd::axpy_nonzero`] over
/// the valid output-x run. Per output element the additions happen in
/// ascending `(c, r, s)` order with the same zero-skipping tests as
/// [`conv2d_reference`], so the result is bit-identical on both the
/// vector and scalar dispatch paths.
fn conv2d_direct_rowwise(
    input: &Tensor3,
    weight: &Tensor4,
    bias: Option<&[f32]>,
    cfg: &Conv2dCfg,
) -> Tensor3 {
    debug_assert_eq!(cfg.stride, 1);
    let out_h = conv_out_dim(input.h(), weight.r(), 1, cfg.padding);
    let out_w = conv_out_dim(input.w(), weight.s(), 1, cfg.padding);
    let (pad_y, pad_x) = match cfg.padding {
        Padding::Same => (
            same_pad(input.h(), weight.r(), 1),
            same_pad(input.w(), weight.s(), 1),
        ),
        Padding::Valid => (0, 0),
    };
    let (in_h, in_w) = (input.h(), input.w());
    let in_data = input.data();
    let mut out = Tensor3::zeros(weight.k(), out_h, out_w);
    let out_data = out.data_mut();
    for k in 0..weight.k() {
        let b = bias.map_or(0.0, |b| b[k]);
        for p in 0..out_h {
            let acc_row = &mut out_data[(k * out_h + p) * out_w..][..out_w];
            acc_row.fill(b);
            for c in 0..input.c() {
                for r in 0..weight.r() {
                    let iy = (p + r) as isize - pad_y as isize;
                    if iy < 0 || iy >= in_h as isize {
                        continue;
                    }
                    let in_row = &in_data[(c * in_h + iy as usize) * in_w..][..in_w];
                    for s in 0..weight.s() {
                        let wv = weight.at(k, c, r, s);
                        if wv == 0.0 {
                            continue; // weight zero-skipping
                        }
                        // Valid output-x range: 0 <= q + s - pad_x < in_w.
                        let q_lo = pad_x.saturating_sub(s);
                        let q_hi = (in_w + pad_x).saturating_sub(s).min(out_w);
                        if q_lo >= q_hi {
                            continue;
                        }
                        let x_lo = q_lo + s - pad_x;
                        crate::simd::axpy_nonzero(
                            &mut acc_row[q_lo..q_hi],
                            &in_row[x_lo..x_lo + (q_hi - q_lo)],
                            wv,
                        );
                    }
                }
            }
        }
    }
    out
}

/// The reference dense loop nest, with no dispatch: always computes
/// `out[k, p, q] = bias[k] + sum taps in ascending (c, r, s) order`. Every
/// other kernel in the crate is tested bit-identical against this one.
pub fn conv2d_reference(
    input: &Tensor3,
    weight: &Tensor4,
    bias: Option<&[f32]>,
    cfg: &Conv2dCfg,
) -> Tensor3 {
    let out_h = conv_out_dim(input.h(), weight.r(), cfg.stride, cfg.padding);
    let out_w = conv_out_dim(input.w(), weight.s(), cfg.stride, cfg.padding);
    let (pad_y, pad_x) = match cfg.padding {
        Padding::Same => (
            same_pad(input.h(), weight.r(), cfg.stride),
            same_pad(input.w(), weight.s(), cfg.stride),
        ),
        Padding::Valid => (0, 0),
    };

    let mut out = Tensor3::zeros(weight.k(), out_h, out_w);
    for k in 0..weight.k() {
        let b = bias.map_or(0.0, |b| b[k]);
        for p in 0..out_h {
            for q in 0..out_w {
                let mut acc = b;
                for c in 0..input.c() {
                    for r in 0..weight.r() {
                        let iy = (p * cfg.stride + r) as isize - pad_y as isize;
                        if iy < 0 || iy >= input.h() as isize {
                            continue;
                        }
                        for s in 0..weight.s() {
                            let ix = (q * cfg.stride + s) as isize - pad_x as isize;
                            if ix < 0 || ix >= input.w() as isize {
                                continue;
                            }
                            let wv = weight.at(k, c, r, s);
                            if wv == 0.0 {
                                continue; // weight zero-skipping
                            }
                            let xv = input.at(c, iy as usize, ix as usize);
                            if xv == 0.0 {
                                continue; // activation zero-skipping
                            }
                            acc += wv * xv;
                        }
                    }
                }
                out.set(k, p, q, acc);
            }
        }
    }
    out
}

/// Weight-stationary convolution over a compacted non-zero tap list:
/// cost is `out_pixels x nnz(W)` instead of `out_pixels x |W|`.
fn conv2d_sparse_weights(
    input: &Tensor3,
    weight: &Tensor4,
    bias: Option<&[f32]>,
    cfg: &Conv2dCfg,
) -> Tensor3 {
    let out_h = conv_out_dim(input.h(), weight.r(), cfg.stride, cfg.padding);
    let out_w = conv_out_dim(input.w(), weight.s(), cfg.stride, cfg.padding);
    let (pad_y, pad_x) = match cfg.padding {
        Padding::Same => (
            same_pad(input.h(), weight.r(), cfg.stride),
            same_pad(input.w(), weight.s(), cfg.stride),
        ),
        Padding::Valid => (0, 0),
    };

    // Compact tap list per output channel.
    let mut taps: Vec<Vec<(usize, usize, usize, f32)>> = vec![Vec::new(); weight.k()];
    #[allow(clippy::needless_range_loop)] // index-parallel numeric kernel
    for k in 0..weight.k() {
        for c in 0..weight.c() {
            for r in 0..weight.r() {
                for s in 0..weight.s() {
                    let wv = weight.at(k, c, r, s);
                    if wv != 0.0 {
                        taps[k].push((c, r, s, wv));
                    }
                }
            }
        }
    }

    let mut out = Tensor3::zeros(weight.k(), out_h, out_w);
    for k in 0..weight.k() {
        let b = bias.map_or(0.0, |b| b[k]);
        for p in 0..out_h {
            for q in 0..out_w {
                let mut acc = b;
                for &(c, r, s, wv) in &taps[k] {
                    let iy = (p * cfg.stride + r) as isize - pad_y as isize;
                    let ix = (q * cfg.stride + s) as isize - pad_x as isize;
                    if iy < 0 || iy >= input.h() as isize || ix < 0 || ix >= input.w() as isize {
                        continue;
                    }
                    let xv = input.at(c, iy as usize, ix as usize);
                    if xv != 0.0 {
                        acc += wv * xv;
                    }
                }
                out.set(k, p, q, acc);
            }
        }
    }
    out
}

/// Gradient of a convolution with respect to its input (a.k.a. transposed
/// convolution of the upstream gradient with the flipped kernel). Used by the
/// training engine and by FGSM/BIM input-gradient computation.
pub fn conv2d_input_grad(
    grad_out: &Tensor3,
    weight: &Tensor4,
    input_shape: (usize, usize, usize),
    cfg: &Conv2dCfg,
) -> Tensor3 {
    let (in_c, in_h, in_w) = input_shape;
    assert_eq!(grad_out.c(), weight.k(), "grad channels must equal K");
    let (pad_y, pad_x) = match cfg.padding {
        Padding::Same => (
            same_pad(in_h, weight.r(), cfg.stride),
            same_pad(in_w, weight.s(), cfg.stride),
        ),
        Padding::Valid => (0, 0),
    };

    let mut grad_in = Tensor3::zeros(in_c, in_h, in_w);
    for k in 0..weight.k() {
        for p in 0..grad_out.h() {
            for q in 0..grad_out.w() {
                let g = grad_out.at(k, p, q);
                if g == 0.0 {
                    continue;
                }
                for c in 0..in_c {
                    for r in 0..weight.r() {
                        let iy = (p * cfg.stride + r) as isize - pad_y as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        for s in 0..weight.s() {
                            let ix = (q * cfg.stride + s) as isize - pad_x as isize;
                            if ix < 0 || ix >= in_w as isize {
                                continue;
                            }
                            let wv = weight.at(k, c, r, s);
                            if wv == 0.0 {
                                continue;
                            }
                            let idx = grad_in.shape().index(c, iy as usize, ix as usize);
                            grad_in.data_mut()[idx] += g * wv;
                        }
                    }
                }
            }
        }
    }
    grad_in
}

/// Gradient of a convolution with respect to its weights.
pub fn conv2d_weight_grad(
    grad_out: &Tensor3,
    input: &Tensor3,
    kernel: (usize, usize),
    cfg: &Conv2dCfg,
) -> Tensor4 {
    if cfg.backend != ConvBackend::Direct {
        return crate::im2col::conv2d_weight_grad_gemm(grad_out, input, kernel, cfg);
    }
    let (kr, ks) = kernel;
    let (pad_y, pad_x) = match cfg.padding {
        Padding::Same => (
            same_pad(input.h(), kr, cfg.stride),
            same_pad(input.w(), ks, cfg.stride),
        ),
        Padding::Valid => (0, 0),
    };
    let mut grad_w = Tensor4::zeros(grad_out.c(), input.c(), kr, ks);
    for k in 0..grad_out.c() {
        for p in 0..grad_out.h() {
            for q in 0..grad_out.w() {
                let g = grad_out.at(k, p, q);
                if g == 0.0 {
                    continue;
                }
                for c in 0..input.c() {
                    for r in 0..kr {
                        let iy = (p * cfg.stride + r) as isize - pad_y as isize;
                        if iy < 0 || iy >= input.h() as isize {
                            continue;
                        }
                        for s in 0..ks {
                            let ix = (q * cfg.stride + s) as isize - pad_x as isize;
                            if ix < 0 || ix >= input.w() as isize {
                                continue;
                            }
                            let xv = input.at(c, iy as usize, ix as usize);
                            if xv == 0.0 {
                                continue;
                            }
                            let idx = grad_w.index(k, c, r, s);
                            grad_w.data_mut()[idx] += g * xv;
                        }
                    }
                }
            }
        }
    }
    grad_w
}

/// Gradient of a convolution with respect to its bias.
pub fn conv2d_bias_grad(grad_out: &Tensor3) -> Vec<f32> {
    let mut grad_b = vec![0.0; grad_out.c()];
    #[allow(clippy::needless_range_loop)] // index-parallel numeric kernel
    for k in 0..grad_out.c() {
        for p in 0..grad_out.h() {
            for q in 0..grad_out.w() {
                grad_b[k] += grad_out.at(k, p, q);
            }
        }
    }
    grad_b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(stride: usize, padding: Padding) -> Conv2dCfg {
        Conv2dCfg::new(stride, padding)
    }

    #[test]
    fn out_dims() {
        assert_eq!(conv_out_dim(32, 3, 1, Padding::Same), 32);
        assert_eq!(conv_out_dim(32, 3, 2, Padding::Same), 16);
        assert_eq!(conv_out_dim(32, 3, 1, Padding::Valid), 30);
        assert_eq!(conv_out_dim(2, 3, 1, Padding::Valid), 0);
        assert_eq!(conv_out_dim(33, 3, 2, Padding::Same), 17);
    }

    #[test]
    fn paper_fig2_boundary_effect() {
        // Fig. 2: filter [3,4,5] over 5-element inputs with same padding.
        // Impulse at position 0 -> only 2 non-zeros; positions 1 and 2 -> 3.
        let w = Tensor4::from_vec(1, 1, 1, 3, vec![3.0, 4.0, 5.0]);
        let mk = |pos: usize| {
            let mut x = Tensor3::zeros(1, 1, 5);
            x.set(0, 0, pos, 1.0);
            conv2d(&x, &w, None, &cfg(1, Padding::Same))
        };
        assert_eq!(mk(0).data(), &[4.0, 3.0, 0.0, 0.0, 0.0]);
        assert_eq!(mk(1).data(), &[5.0, 4.0, 3.0, 0.0, 0.0]);
        assert_eq!(mk(2).data(), &[0.0, 5.0, 4.0, 3.0, 0.0]);
        assert_eq!(mk(0).nnz(), 2);
        assert_eq!(mk(1).nnz(), 3);
        assert_eq!(mk(2).nnz(), 3);
    }

    #[test]
    fn bias_shifts_everything() {
        let w = Tensor4::from_vec(1, 1, 1, 3, vec![3.0, 4.0, 5.0]);
        let mut x = Tensor3::zeros(1, 1, 5);
        x.set(0, 0, 1, 1.0);
        let y = conv2d(&x, &w, Some(&[2.0]), &cfg(1, Padding::Same));
        assert_eq!(y.data(), &[7.0, 6.0, 5.0, 2.0, 2.0]);
        assert_eq!(y.nnz(), 5); // bias obscures the boundary effect (paper 5.2)
    }

    #[test]
    fn negative_probe_restores_observability() {
        // Paper 5.2: with probe -1 and bias +2, ReLU re-creates distinct nnz.
        let w = Tensor4::from_vec(1, 1, 1, 3, vec![3.0, 4.0, 5.0]);
        let mk = |pos: usize| {
            let mut x = Tensor3::zeros(1, 1, 5);
            x.set(0, 0, pos, -1.0);
            let mut y = conv2d(&x, &w, Some(&[2.0]), &cfg(1, Padding::Same));
            y.relu_inplace();
            y.nnz()
        };
        assert_eq!(mk(0), 3);
        assert_eq!(mk(1), 2);
        assert_eq!(mk(2), 2);
    }

    #[test]
    fn stride_two_downsamples() {
        let w = Tensor4::from_vec(1, 1, 1, 1, vec![1.0]);
        let x = Tensor3::from_vec(1, 1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv2d(&x, &w, None, &cfg(2, Padding::Same));
        assert_eq!(y.data(), &[1.0, 3.0]);
    }

    #[test]
    fn multi_channel_accumulates() {
        let x = Tensor3::from_vec(2, 1, 1, vec![2.0, 3.0]);
        let w = Tensor4::from_vec(1, 2, 1, 1, vec![10.0, 100.0]);
        let y = conv2d(&x, &w, None, &cfg(1, Padding::Same));
        assert_eq!(y.data(), &[320.0]);
    }

    #[test]
    fn valid_padding_shrinks() {
        let x = Tensor3::full(1, 4, 4, 1.0);
        let w = Tensor4::from_vec(1, 1, 3, 3, vec![1.0; 9]);
        let y = conv2d(&x, &w, None, &cfg(1, Padding::Valid));
        assert_eq!((y.h(), y.w()), (2, 2));
        assert!(y.data().iter().all(|&v| v == 9.0));
    }

    #[test]
    fn input_grad_matches_numerical() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = Tensor3::zeros(2, 5, 5);
        x.fill_uniform(&mut rng, -1.0, 1.0);
        let mut w = Tensor4::zeros(3, 2, 3, 3);
        w.init_he(&mut rng);
        let c = cfg(1, Padding::Same);

        // Loss = sum of outputs; grad_out = ones.
        let out = conv2d(&x, &w, None, &c);
        let grad_out = Tensor3::full(out.c(), out.h(), out.w(), 1.0);
        let analytic = conv2d_input_grad(&grad_out, &w, (2, 5, 5), &c);

        let eps = 1e-3f32;
        for idx in [0usize, 7, 24, 30, 49] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp: f32 = conv2d(&xp, &w, None, &c).data().iter().sum();
            let fm: f32 = conv2d(&xm, &w, None, &c).data().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 1e-2,
                "idx {idx}: numeric {numeric} analytic {}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn weight_grad_matches_numerical() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(4);
        let mut x = Tensor3::zeros(1, 4, 4);
        x.fill_uniform(&mut rng, -1.0, 1.0);
        let mut w = Tensor4::zeros(2, 1, 3, 3);
        w.init_he(&mut rng);
        let c = cfg(1, Padding::Same);

        let out = conv2d(&x, &w, None, &c);
        let grad_out = Tensor3::full(out.c(), out.h(), out.w(), 1.0);
        let analytic = conv2d_weight_grad(&grad_out, &x, (3, 3), &c);

        let eps = 1e-3f32;
        for idx in [0usize, 4, 9, 17] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fp: f32 = conv2d(&x, &wp, None, &c).data().iter().sum();
            let fm: f32 = conv2d(&x, &wm, None, &c).data().iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - analytic.data()[idx]).abs() < 1e-2,
                "idx {idx}: numeric {numeric} analytic {}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn bias_grad_is_output_sum_per_channel() {
        let g = Tensor3::from_vec(2, 1, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(conv2d_bias_grad(&g), vec![3.0, 7.0]);
    }

    #[test]
    fn sparse_weight_path_matches_direct() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(91);
        let mut x = Tensor3::zeros(3, 7, 7);
        x.fill_uniform(&mut rng, -1.0, 1.0);
        let mut w = Tensor4::zeros(4, 3, 3, 3);
        w.init_he(&mut rng);
        // Prune 80% so the sparse-weight path triggers inside conv2d.
        for (i, v) in w.data_mut().iter_mut().enumerate() {
            if i % 5 != 0 {
                *v = 0.0;
            }
        }
        for (stride, padding) in [(1, Padding::Same), (2, Padding::Same), (1, Padding::Valid)] {
            let c = cfg(stride, padding);
            let fast = conv2d(&x, &w, Some(&[0.5, -0.5, 0.0, 1.0]), &c);
            let direct = conv2d_sparse_weights(&x, &w, Some(&[0.5, -0.5, 0.0, 1.0]), &c);
            assert_eq!(fast.shape(), direct.shape());
            for (a, b) in fast.data().iter().zip(direct.data()) {
                assert!((a - b).abs() <= 1e-5 * (1.0 + a.abs()), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn csc_path_matches_reference_on_sparse_input() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        let mut w = Tensor4::zeros(4, 3, 3, 3);
        w.init_he(&mut rng);
        for (stride, padding) in [
            (1, Padding::Same),
            (2, Padding::Same),
            (1, Padding::Valid),
            (2, Padding::Valid),
        ] {
            // Sparse input triggers the CSC scatter path inside conv2d...
            let mut sparse = Tensor3::zeros(3, 9, 9);
            sparse.set(0, 4, 0, 1.5);
            sparse.set(1, 0, 8, -2.0);
            sparse.set(2, 8, 4, 0.5);
            let c = cfg(stride, padding);
            let fast = conv2d(&sparse, &w, Some(&[0.1, 0.2, 0.3, 0.4]), &c);
            let reference = conv2d_reference(&sparse, &w, Some(&[0.1, 0.2, 0.3, 0.4]), &c);
            // ...and must agree with the reference loop bit-for-bit.
            assert_eq!(fast.shape(), reference.shape());
            assert_eq!(fast.data(), reference.data());
            // A dense input through the explicit CSC entry point must too.
            let mut dense = sparse.clone();
            for (i, v) in dense.data_mut().iter_mut().enumerate() {
                *v += (i % 7) as f32 * 0.25; // make it dense
            }
            let scattered = crate::csc_conv::conv2d_sparse_csc(&dense, &w, None, &c);
            assert_eq!(
                conv2d_reference(&dense, &w, None, &c).data(),
                scattered.data()
            );
        }
    }

    #[test]
    fn backend_policy_defaults_reproduce_historical_dispatch() {
        // 125‰ == 12.5%: exactly the old `nnz * 8 < len` routing tests.
        let p = BackendPolicy::default();
        assert_eq!(p.input_density_threshold, 125);
        assert_eq!(p.weight_density_threshold, 125);
        assert!(p.auto_sparse);
        for len in [1usize, 7, 8, 64, 1000, 12 * 12 * 3] {
            for nnz in 0..=len {
                assert_eq!(p.input_is_sparse(nnz, len), nnz * 8 < len, "{nnz}/{len}");
                assert_eq!(p.weight_is_sparse(nnz, len), nnz * 8 < len, "{nnz}/{len}");
            }
        }
    }

    #[test]
    fn backend_parse_and_display_roundtrip() {
        for (name, backend) in [
            ("direct", ConvBackend::Direct),
            ("gemm", ConvBackend::Im2colGemm),
            ("sparse", ConvBackend::SparseCsc),
        ] {
            assert_eq!(ConvBackend::parse(name), Some(backend));
            assert_eq!(backend.to_string(), name);
        }
        assert_eq!(ConvBackend::parse("csc"), Some(ConvBackend::SparseCsc));
        assert_eq!(ConvBackend::parse("nope"), None);
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn channel_mismatch_panics() {
        let x = Tensor3::zeros(3, 4, 4);
        let w = Tensor4::zeros(1, 2, 3, 3);
        let _ = conv2d(&x, &w, None, &Conv2dCfg::default());
    }
}
