//! Sparse-activation × sparse-weight convolution over CSC-compacted weights.
//!
//! The paper's victim accelerators (Eyeriss v2, SCNN) keep both operands in
//! compressed-sparse form and multiply only nonzero pairs; this module is the
//! corresponding compute model and the performance backbone of the prober hot
//! loop. Weights are compacted once into [`CscWeights`] — for every filter
//! tap position `(c, r, s)` the list of `(k, value)` entries that survive
//! pruning — and the kernel walks the nonzero input pixels, scattering each
//! into the output positions its taps reach.
//!
//! # Bit-identity contract
//!
//! [`conv2d_csc`] reproduces [`crate::conv::conv2d`]'s `Direct` backend
//! bit-for-bit: for every output element the surviving contributions are
//! accumulated in ascending `(c, r, s)` tap order starting from the bias.
//! Walking input pixels in ascending `(c, y, x)` guarantees that order,
//! because for a fixed output position ascending `y` is ascending `r` and
//! ascending `x` is ascending `s`. The scatter therefore performs the exact
//! same f32 additions in the exact same order as the reference loop nest.

use crate::colspan::ColSpan;
use crate::conv::{conv_out_dim, same_pad, Conv2dCfg, Padding};
use crate::{Tensor3, Tensor4};

/// Per-tap compressed-sparse-column encoding of a pruned weight tensor.
///
/// Entries are grouped by tap position `(c, r, s)` and sorted by output
/// channel `k` within each group; zero weights are elided with the same
/// exact `!= 0.0` test the dense kernels use for zero-skipping.
#[derive(Clone, Debug)]
pub struct CscWeights {
    k: usize,
    c: usize,
    r: usize,
    s: usize,
    /// Bucket boundaries per `(c, r, s)` tap, length `c*r*s + 1`.
    offsets: Vec<u32>,
    /// Output-channel index per surviving weight.
    filters: Vec<u32>,
    /// Weight value per surviving weight.
    values: Vec<f32>,
}

impl CscWeights {
    /// Compacts `weight` (layout `K x C x R x S`) into per-tap CSC lists.
    pub fn build(weight: &Tensor4) -> Self {
        let (k, c, r, s) = (weight.k(), weight.c(), weight.r(), weight.s());
        let taps = c * r * s;
        let mut counts = vec![0u32; taps + 1];
        let data = weight.data();
        for (idx, &v) in data.iter().enumerate() {
            if v != 0.0 {
                counts[idx % taps.max(1) + 1] += 1;
            }
        }
        for t in 1..counts.len() {
            counts[t] += counts[t - 1];
        }
        let offsets = counts;
        let nnz = *offsets.last().unwrap_or(&0) as usize;
        let mut filters = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        let mut cursor = offsets.clone();
        // Ascending flat index is ascending k within each tap bucket (k is
        // the outermost weight dimension), keeping the lists k-sorted.
        for (idx, &v) in data.iter().enumerate() {
            if v != 0.0 {
                let bucket = idx % taps.max(1);
                let slot = cursor[bucket] as usize;
                filters[slot] = (idx / taps.max(1)) as u32;
                values[slot] = v;
                cursor[bucket] += 1;
            }
        }
        CscWeights {
            k,
            c,
            r,
            s,
            offsets,
            filters,
            values,
        }
    }

    /// Output channels.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Input channels.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Kernel rows.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Kernel columns.
    pub fn s(&self) -> usize {
        self.s
    }

    /// Surviving (nonzero) weights.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of weights that survived pruning.
    pub fn density(&self) -> f64 {
        let total = self.k * self.c * self.r * self.s;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// The `(k, value)` entries at tap `(c, r, s)`, k-ascending.
    #[inline]
    fn taps(&self, bucket: usize) -> (&[u32], &[f32]) {
        let lo = self.offsets[bucket] as usize;
        let hi = self.offsets[bucket + 1] as usize;
        (&self.filters[lo..hi], &self.values[lo..hi])
    }
}

/// Input-stationary sparse × sparse convolution restricted to the output
/// columns reachable from `in_span`.
///
/// The caller guarantees one of two contracts:
///
/// * `baseline == None`: every input column outside `in_span` is zero. The
///   untouched output columns are then exactly `bias[k]`, which is what this
///   kernel writes there.
/// * `baseline == Some(base)`: `base` is this convolution's output for a
///   reference input that agrees with `input` on every column outside
///   `in_span` (the incremental-forward case, where `base` comes from the
///   zero-input baseline trace). Untouched output columns are copied from
///   `base`; columns reachable from `in_span` are recomputed from scratch.
///
/// Under either contract the result is bit-identical to running the direct
/// loop nest over the full map.
///
/// # Panics
///
/// Panics if the input channel count does not match `weights`, if a provided
/// `baseline` has the wrong shape, or if `cfg.stride == 0`.
pub fn conv2d_csc(
    input: &Tensor3,
    weights: &CscWeights,
    bias: Option<&[f32]>,
    cfg: &Conv2dCfg,
    in_span: ColSpan,
    baseline: Option<&Tensor3>,
) -> Tensor3 {
    assert!(cfg.stride > 0, "stride must be positive");
    assert_eq!(
        input.c(),
        weights.c(),
        "input channels {} do not match weight channels {}",
        input.c(),
        weights.c()
    );
    if let Some(b) = bias {
        assert_eq!(
            b.len(),
            weights.k(),
            "bias length must equal output channels"
        );
    }

    let (kr, ks) = (weights.r(), weights.s());
    let out_h = conv_out_dim(input.h(), kr, cfg.stride, cfg.padding);
    let out_w = conv_out_dim(input.w(), ks, cfg.stride, cfg.padding);
    let (pad_y, pad_x) = match cfg.padding {
        Padding::Same => (
            same_pad(input.h(), kr, cfg.stride),
            same_pad(input.w(), ks, cfg.stride),
        ),
        Padding::Valid => (0, 0),
    };

    let mut out = match baseline {
        Some(base) => {
            assert_eq!(
                (base.c(), base.h(), base.w()),
                (weights.k(), out_h, out_w),
                "baseline shape must match the convolution output"
            );
            base.clone()
        }
        None => {
            let mut t = Tensor3::zeros(weights.k(), out_h, out_w);
            if let Some(b) = bias {
                let plane = out_h * out_w;
                for (k, chunk) in t.data_mut().chunks_exact_mut(plane.max(1)).enumerate() {
                    chunk.fill(b[k]);
                }
            }
            t
        }
    };
    let out_span = in_span.clamp(input.w()).conv(ks, cfg.stride, pad_x, out_w);
    if out_h == 0 || out_w == 0 || out_span.is_empty() {
        return out;
    }

    // Reset the recomputed columns to the bias so accumulation starts from
    // the same value as the direct loop's `acc = bias[k]`.
    let plane = out_h * out_w;
    {
        let data = out.data_mut();
        for k in 0..weights.k() {
            let b = bias.map_or(0.0, |b| b[k]);
            for p in 0..out_h {
                let row = k * plane + p * out_w;
                data[row + out_span.lo()..row + out_span.hi()].fill(b);
            }
        }
    }

    // Per-row tap maps: which (r -> p) pairs exist for each input row y, and
    // which (s -> q) pairs land inside `out_span` for each input column x.
    // Both are built in ascending r / s order (the bit-identity contract).
    let rp: Vec<Vec<(usize, usize)>> = (0..input.h())
        .map(|y| {
            (0..kr)
                .filter_map(|r| {
                    let py = y as isize + pad_y as isize - r as isize;
                    if py < 0 || py % cfg.stride as isize != 0 {
                        return None;
                    }
                    let p = (py / cfg.stride as isize) as usize;
                    (p < out_h).then_some((r, p))
                })
                .collect()
        })
        .collect();
    // Input columns whose window can reach `out_span`.
    let x_lo = (out_span.lo() * cfg.stride).saturating_sub(pad_x);
    let x_hi = ((out_span.hi() - 1) * cfg.stride + ks - 1)
        .saturating_sub(pad_x)
        .min(input.w().saturating_sub(1));
    let sq: Vec<Vec<(usize, usize)>> = (x_lo..=x_hi)
        .map(|x| {
            (0..ks)
                .filter_map(|s| {
                    let qx = x as isize + pad_x as isize - s as isize;
                    if qx < 0 || qx % cfg.stride as isize != 0 {
                        return None;
                    }
                    let q = (qx / cfg.stride as isize) as usize;
                    out_span.contains(q).then_some((s, q))
                })
                .collect()
        })
        .collect();

    let in_w = input.w();
    let in_plane = input.h() * in_w;
    let in_data = input.data();
    let out_data = out.data_mut();
    let span_len = x_hi + 1 - x_lo;
    for c in 0..weights.c() {
        let tap_base_c = c * kr * ks;
        for (y, rps) in rp.iter().enumerate() {
            if rps.is_empty() {
                continue;
            }
            let row = &in_data[c * in_plane + y * in_w..c * in_plane + y * in_w + in_w];
            // Dense rows at stride 1 take a vectorized path: one masked
            // axpy per (tap, surviving weight) over the contiguous
            // output-x run. Per output element the contribution order is
            // (c asc, y asc == r asc, s asc) — exactly the scatter's
            // order — so both paths are bit-identical and the cutover
            // density is purely a speed heuristic. Sparse rows (the
            // probe-image regime) keep the pixel scatter, which skips
            // all taps of a zero pixel at the cost of one compare.
            if cfg.stride == 1 && span_len >= 8 {
                let nnz_in_span = crate::nnz(&row[x_lo..=x_hi]);
                if nnz_in_span * 4 >= span_len {
                    for &(r, p) in rps {
                        let out_row = p * out_w;
                        let tap_base = tap_base_c + r * ks;
                        for s in 0..ks {
                            // Output-x range reaching tap s from columns
                            // in [x_lo, x_hi] (q = x + pad_x - s) inside
                            // the recomputed span.
                            let q_lo = out_span.lo().max((x_lo + pad_x).saturating_sub(s));
                            let q_hi = out_span.hi().min((x_hi + pad_x + 1).saturating_sub(s));
                            if q_lo >= q_hi {
                                continue;
                            }
                            let x_first = q_lo + s - pad_x;
                            let (ks_list, wv_list) = weights.taps(tap_base + s);
                            for (&k, &wv) in ks_list.iter().zip(wv_list) {
                                let dst = k as usize * plane + out_row;
                                crate::simd::axpy_nonzero(
                                    &mut out_data[dst + q_lo..dst + q_hi],
                                    &row[x_first..x_first + (q_hi - q_lo)],
                                    wv,
                                );
                            }
                        }
                    }
                    continue;
                }
            }
            for x in x_lo..=x_hi {
                let xv = row[x];
                if xv == 0.0 {
                    continue; // activation zero-skipping
                }
                let sqs = &sq[x - x_lo];
                if sqs.is_empty() {
                    continue;
                }
                for &(r, p) in rps {
                    let out_row = p * out_w;
                    let tap_base = tap_base_c + r * ks;
                    for &(s, q) in sqs {
                        let (ks_list, wv_list) = weights.taps(tap_base + s);
                        let dst = out_row + q;
                        for (&k, &wv) in ks_list.iter().zip(wv_list) {
                            out_data[k as usize * plane + dst] += wv * xv;
                        }
                    }
                }
            }
        }
    }
    out
}

/// [`conv2d_csc`] with the weight compaction and span scan done on the fly —
/// the dispatch target for one-shot sparse-input convolutions (callers with
/// a reusable [`CscWeights`] should invoke the kernel directly).
pub fn conv2d_sparse_csc(
    input: &Tensor3,
    weight: &Tensor4,
    bias: Option<&[f32]>,
    cfg: &Conv2dCfg,
) -> Tensor3 {
    let csc = CscWeights::build(weight);
    conv2d_csc(input, &csc, bias, cfg, ColSpan::of_tensor(input), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pruned_weights(k: usize, c: usize, r: usize, s: usize, keep: f64, seed: u64) -> Tensor4 {
        let mut w = Tensor4::zeros(k, c, r, s);
        w.init_he(&mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFF);
        for v in w.data_mut().iter_mut() {
            if rng.gen_range(0.0..1.0) >= keep as f32 {
                *v = 0.0;
            }
        }
        w
    }

    #[test]
    fn csc_roundtrips_every_tap() {
        let w = pruned_weights(5, 3, 3, 3, 0.4, 9);
        let csc = CscWeights::build(&w);
        assert_eq!(csc.nnz(), w.nnz());
        let mut rebuilt = Tensor4::zeros(5, 3, 3, 3);
        for c in 0..3 {
            for r in 0..3 {
                for s in 0..3 {
                    let (ks_list, vs) = csc.taps((c * 3 + r) * 3 + s);
                    let mut prev = None;
                    for (&k, &v) in ks_list.iter().zip(vs) {
                        assert!(prev.is_none_or(|p| p < k), "k order not ascending");
                        prev = Some(k);
                        rebuilt.set(k as usize, c, r, s, v);
                    }
                }
            }
        }
        assert_eq!(rebuilt.data(), w.data());
    }

    #[test]
    fn matches_direct_bitwise_on_random_shapes() {
        let mut rng = StdRng::seed_from_u64(0xC5C);
        for case in 0..40u64 {
            let (c, h, w) = (
                rng.gen_range(1..4usize),
                rng.gen_range(1..9usize),
                rng.gen_range(1..9usize),
            );
            let k = rng.gen_range(1..5usize);
            let kr = rng.gen_range(1..4usize);
            let stride = rng.gen_range(1..3usize);
            let padding = if rng.gen_bool(0.5) {
                Padding::Same
            } else {
                Padding::Valid
            };
            let mut x = Tensor3::zeros(c, h, w);
            // Mix of sparse and dense inputs.
            let density = if case % 2 == 0 { 0.1 } else { 1.0 };
            for v in x.data_mut().iter_mut() {
                if rng.gen_range(0.0..1.0) < density {
                    *v = rng.gen_range(-2.0..2.0);
                }
            }
            let weight = pruned_weights(k, c, kr, kr, 0.5, 0xBEEF + case);
            let bias: Vec<f32> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let cfg =
                Conv2dCfg::new(stride, padding).with_backend(crate::conv::ConvBackend::Direct);
            let want = crate::conv::conv2d_reference(&x, &weight, Some(&bias), &cfg);
            let got = conv2d_sparse_csc(&x, &weight, Some(&bias), &cfg);
            assert_eq!(want.shape(), got.shape(), "case {case}");
            assert_eq!(want.data(), got.data(), "bitwise divergence in case {case}");
        }
    }

    #[test]
    fn incremental_recompute_matches_full_run() {
        // A baseline computed on one input, patched with a single dirty
        // column, must equal the from-scratch result bit-for-bit.
        let mut rng = StdRng::seed_from_u64(0x1D1);
        let weight = pruned_weights(6, 2, 3, 3, 0.5, 0x51);
        let csc = CscWeights::build(&weight);
        let cfg = Conv2dCfg::new(1, Padding::Same);
        let mut base_in = Tensor3::zeros(2, 8, 8);
        for v in base_in.data_mut().iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let base_out = conv2d_csc(&base_in, &csc, None, &cfg, ColSpan::full(8), None);
        let mut patched = base_in.clone();
        for ch in 0..2 {
            for y in 0..8 {
                patched.set(ch, y, 5, rng.gen_range(-1.0..1.0));
            }
        }
        let incremental = conv2d_csc(
            &patched,
            &csc,
            None,
            &cfg,
            ColSpan::new(5, 6),
            Some(&base_out),
        );
        let full = conv2d_csc(&patched, &csc, None, &cfg, ColSpan::full(8), None);
        assert_eq!(incremental.data(), full.data());
    }

    #[test]
    fn empty_span_returns_bias_planes() {
        let weight = pruned_weights(3, 1, 3, 3, 0.5, 4);
        let x = Tensor3::zeros(1, 5, 5);
        let csc = CscWeights::build(&weight);
        let out = conv2d_csc(
            &x,
            &csc,
            Some(&[1.0, -2.0, 0.5]),
            &Conv2dCfg::default(),
            ColSpan::empty(),
            None,
        );
        for k in 0..3 {
            let b = [1.0, -2.0, 0.5][k];
            assert!(out.data()[k * 25..(k + 1) * 25].iter().all(|&v| v == b));
        }
    }
}
