//! INT8 quantized 2-D convolution with i32 accumulators and a
//! deterministic requantize step.
//!
//! The arithmetic follows the standard affine-quantization contract with
//! symmetric (`zero_point == 0`) per-output-channel weights:
//!
//! ```text
//! acc[k,p,q] = bias_q[k] + sum_{c,r,s} w_q[k,c,r,s] * (x_q[c,y,x] - zp_in)
//! out_q[k,p,q] = clamp(zp_out + round(acc * m[k]), -128, 127)
//! ```
//!
//! where `m[k] = s_in * s_w[k] / s_out` folds the three scales into one
//! per-channel requantization multiplier. Every accumulation is exact
//! integer arithmetic, so — unlike the f32 kernels — the vectorized and
//! scalar paths (and any accumulation order) are trivially identical;
//! only the final rounding touches floating point, and it is evaluated
//! once per output element from the same i32 accumulator. Accumulators
//! cannot overflow: `|w| <= 127`, `|x - zp| <= 255`, and the largest
//! victim layer has `512 * 3 * 3` taps, bounding `|acc|` well under
//! `2^31`.

use crate::conv::{conv_out_dim, same_pad, Conv2dCfg, Padding};
use crate::qtensor::{QTensor3, QTensor4, QuantParams};

/// Requantization bundle for one quantized conv layer.
#[derive(Clone, Debug)]
pub struct QConvParams {
    /// Symmetric per-output-channel quantized weights.
    pub weight: QTensor4,
    /// Bias in accumulator units: `round(bias[k] / (s_in * s_w[k]))`.
    pub bias_q: Vec<i32>,
    /// Per-channel requantization multiplier `s_in * s_w[k] / s_out`.
    pub multipliers: Vec<f32>,
    /// Output activation quantization.
    pub out_qp: QuantParams,
}

/// Clamped round-to-nearest requantization of one i32 accumulator.
#[inline]
pub fn requantize(acc: i32, multiplier: f32, zp_out: i32) -> i8 {
    let q = zp_out as f32 + (acc as f32 * multiplier).round();
    q.clamp(-128.0, 127.0) as i8
}

/// Quantized convolution. Dispatches to a rowwise kernel vectorized over
/// output-x lanes ([`crate::simd::qaxpy`]) at stride 1, falling back to
/// the reference loop nest otherwise; both produce identical bytes.
///
/// # Panics
///
/// Panics if shapes or per-channel vector lengths disagree, or if
/// `cfg.stride == 0`.
pub fn qconv2d(input: &QTensor3, p: &QConvParams, cfg: &Conv2dCfg) -> QTensor3 {
    check_args(input, p, cfg);
    if cfg.stride == 1 {
        qconv2d_rowwise(input, p, cfg)
    } else {
        qconv2d_reference(input, p, cfg)
    }
}

fn check_args(input: &QTensor3, p: &QConvParams, cfg: &Conv2dCfg) {
    assert!(cfg.stride > 0, "stride must be positive");
    assert_eq!(
        input.c(),
        p.weight.c(),
        "input channels {} do not match weight channels {}",
        input.c(),
        p.weight.c()
    );
    assert_eq!(p.bias_q.len(), p.weight.k(), "bias length must equal K");
    assert_eq!(
        p.multipliers.len(),
        p.weight.k(),
        "multiplier length must equal K"
    );
}

fn geometry(input: &QTensor3, p: &QConvParams, cfg: &Conv2dCfg) -> (usize, usize, usize, usize) {
    let (kr, ks) = (p.weight.r(), p.weight.s());
    let out_h = conv_out_dim(input.h(), kr, cfg.stride, cfg.padding);
    let out_w = conv_out_dim(input.w(), ks, cfg.stride, cfg.padding);
    let (pad_y, pad_x) = match cfg.padding {
        Padding::Same => (
            same_pad(input.h(), kr, cfg.stride),
            same_pad(input.w(), ks, cfg.stride),
        ),
        Padding::Valid => (0, 0),
    };
    (out_h, out_w, pad_y, pad_x)
}

/// Scalar i32 reference loop nest — the specification both the rowwise
/// kernel and the differential proptests compare against.
pub fn qconv2d_reference(input: &QTensor3, p: &QConvParams, cfg: &Conv2dCfg) -> QTensor3 {
    check_args(input, p, cfg);
    let (out_h, out_w, pad_y, pad_x) = geometry(input, p, cfg);
    let w = &p.weight;
    let zp_in = input.qp.zero_point;
    let zp_out = p.out_qp.zero_point;
    let mut out = vec![0i8; w.k() * out_h * out_w];
    for k in 0..w.k() {
        for pq in 0..out_h {
            for q in 0..out_w {
                let mut acc = p.bias_q[k];
                for c in 0..input.c() {
                    for r in 0..w.r() {
                        let iy = (pq * cfg.stride + r) as isize - pad_y as isize;
                        if iy < 0 || iy >= input.h() as isize {
                            continue;
                        }
                        for s in 0..w.s() {
                            let ix = (q * cfg.stride + s) as isize - pad_x as isize;
                            if ix < 0 || ix >= input.w() as isize {
                                continue;
                            }
                            let wv = w.at(k, c, r, s) as i32;
                            if wv == 0 {
                                continue; // pruned weight
                            }
                            let idx = (c * input.h() + iy as usize) * input.w() + ix as usize;
                            let xv = input.data()[idx] as i32 - zp_in;
                            acc += wv * xv;
                        }
                    }
                }
                out[(k * out_h + pq) * out_w + q] = requantize(acc, p.multipliers[k], zp_out);
            }
        }
    }
    QTensor3::from_raw(w.k(), out_h, out_w, out, p.out_qp)
}

/// Stride-1 kernel accumulating whole output rows: for each `(k, p)` the
/// i32 accumulator row starts at `bias_q[k]` and every surviving weight
/// tap contributes one [`crate::simd::qaxpy`] over the valid output-x
/// range. Integer math makes this identical to the reference regardless
/// of SIMD mode.
fn qconv2d_rowwise(input: &QTensor3, p: &QConvParams, cfg: &Conv2dCfg) -> QTensor3 {
    let (out_h, out_w, pad_y, pad_x) = geometry(input, p, cfg);
    let w = &p.weight;
    let zp_in = input.qp.zero_point;
    let zp_out = p.out_qp.zero_point;
    let (in_h, in_w) = (input.h(), input.w());
    // Zero-point-centered input in accumulator units, one contiguous
    // i32 row per (c, y).
    let centered: Vec<i32> = input.data().iter().map(|&q| q as i32 - zp_in).collect();
    let mut out = vec![0i8; w.k() * out_h * out_w];
    let mut acc_row = vec![0i32; out_w];
    for k in 0..w.k() {
        for pq in 0..out_h {
            acc_row.fill(p.bias_q[k]);
            for c in 0..input.c() {
                for r in 0..w.r() {
                    let iy = (pq + r) as isize - pad_y as isize;
                    if iy < 0 || iy >= in_h as isize {
                        continue;
                    }
                    let in_row = &centered[(c * in_h + iy as usize) * in_w..][..in_w];
                    for s in 0..w.s() {
                        let wv = w.at(k, c, r, s) as i32;
                        if wv == 0 {
                            continue; // pruned weight
                        }
                        // Valid output-x range: 0 <= q + s - pad_x < in_w.
                        let q_lo = pad_x.saturating_sub(s);
                        let q_hi = (in_w + pad_x).saturating_sub(s).min(out_w);
                        if q_lo >= q_hi {
                            continue;
                        }
                        let x_lo = q_lo + s - pad_x;
                        crate::simd::qaxpy(
                            &mut acc_row[q_lo..q_hi],
                            &in_row[x_lo..x_lo + (q_hi - q_lo)],
                            wv,
                        );
                    }
                }
            }
            let out_row = &mut out[(k * out_h + pq) * out_w..][..out_w];
            for (dst, &acc) in out_row.iter_mut().zip(&acc_row) {
                *dst = requantize(acc, p.multipliers[k], zp_out);
            }
        }
    }
    QTensor3::from_raw(w.k(), out_h, out_w, out, p.out_qp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tensor3, Tensor4};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_qconv(seed: u64, k: usize, c: usize, kr: usize) -> (QConvParams, QuantParams) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Tensor4::zeros(k, c, kr, kr);
        w.init_he(&mut rng);
        for v in w.data_mut().iter_mut() {
            if rng.gen_bool(0.5) {
                *v = 0.0;
            }
        }
        let weight = QTensor4::quantize(&w);
        let in_qp = QuantParams::from_range(-1.0, 1.0);
        let out_qp = QuantParams::from_range(-4.0, 4.0);
        let bias_q: Vec<i32> = (0..k).map(|_| rng.gen_range(-500..500)).collect();
        let multipliers: Vec<f32> = weight
            .scales()
            .iter()
            .map(|&sw| in_qp.scale * sw / out_qp.scale)
            .collect();
        (
            QConvParams {
                weight,
                bias_q,
                multipliers,
                out_qp,
            },
            in_qp,
        )
    }

    #[test]
    fn rowwise_matches_reference_exactly() {
        let mut rng = StdRng::seed_from_u64(0xC017);
        for case in 0..25u64 {
            let (c, h, w) = (
                rng.gen_range(1..4usize),
                rng.gen_range(1..9usize),
                rng.gen_range(1..9usize),
            );
            let k = rng.gen_range(1..5usize);
            let kr = rng.gen_range(1..4usize);
            let padding = if rng.gen_bool(0.5) {
                Padding::Same
            } else {
                Padding::Valid
            };
            let (p, in_qp) = random_qconv(case, k, c, kr);
            let mut x = Tensor3::zeros(c, h, w);
            x.fill_uniform(&mut rng, -1.0, 1.0);
            let qx = QTensor3::quantize(&x, in_qp);
            let cfg = Conv2dCfg::new(1, padding);
            let want = qconv2d_reference(&qx, &p, &cfg);
            let got = qconv2d(&qx, &p, &cfg);
            assert_eq!(want.shape(), got.shape(), "case {case}");
            assert_eq!(want.data(), got.data(), "case {case}");
        }
    }

    #[test]
    fn stride_two_takes_reference_path() {
        let (p, in_qp) = random_qconv(3, 3, 2, 3);
        let mut x = Tensor3::zeros(2, 6, 6);
        x.fill_uniform(&mut StdRng::seed_from_u64(4), -1.0, 1.0);
        let qx = QTensor3::quantize(&x, in_qp);
        let cfg = Conv2dCfg::new(2, Padding::Same);
        let out = qconv2d(&qx, &p, &cfg);
        assert_eq!((out.c(), out.h(), out.w()), (3, 3, 3));
    }

    #[test]
    fn quantized_conv_approximates_f32_conv() {
        // End-to-end sanity: dequantized INT8 output tracks the f32 conv
        // within a few quantization steps.
        let mut rng = StdRng::seed_from_u64(21);
        let mut w = Tensor4::zeros(4, 3, 3, 3);
        w.init_he(&mut rng);
        let mut x = Tensor3::zeros(3, 8, 8);
        x.fill_uniform(&mut rng, -1.0, 1.0);
        let cfg = Conv2dCfg::new(1, Padding::Same);
        let f32_out = crate::conv::conv2d_reference(&x, &w, None, &cfg);
        let lo = f32_out.data().iter().cloned().fold(f32::MAX, f32::min);
        let hi = f32_out.data().iter().cloned().fold(f32::MIN, f32::max);

        let weight = QTensor4::quantize(&w);
        let in_qp = QuantParams::from_range(-1.0, 1.0);
        let out_qp = QuantParams::from_range(lo, hi);
        let multipliers: Vec<f32> = weight
            .scales()
            .iter()
            .map(|&sw| in_qp.scale * sw / out_qp.scale)
            .collect();
        let p = QConvParams {
            weight,
            bias_q: vec![0; 4],
            multipliers,
            out_qp,
        };
        let qx = QTensor3::quantize(&x, in_qp);
        let qout = qconv2d(&qx, &p, &cfg).dequantize();
        let mut worst = 0.0f32;
        for (a, b) in qout.data().iter().zip(f32_out.data()) {
            worst = worst.max((a - b).abs());
        }
        assert!(
            worst < out_qp.scale * 4.0 + 0.05,
            "worst INT8-vs-f32 error {worst} (step {})",
            out_qp.scale
        );
    }
}
