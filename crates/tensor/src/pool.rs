//! Pooling kernels (max / average) and their gradients.

use crate::colspan::ColSpan;
use crate::Tensor3;

/// Pooling flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window.
    Avg,
}

/// Non-overlapping symmetric pooling: window `factor x factor`, stride
/// `factor` (the paper's `POOL_X = POOL_Y` model, Eq. 2).
///
/// Trailing rows/columns that do not fill a complete window are dropped,
/// matching PyTorch's default (`ceil_mode = False`).
///
/// # Panics
///
/// Panics if `factor == 0`.
///
/// # Examples
///
/// ```
/// use hd_tensor::{Tensor3, pool::{pool2d, PoolKind}};
///
/// let x = Tensor3::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(pool2d(&x, 2, PoolKind::Max).data(), &[4.0]);
/// assert_eq!(pool2d(&x, 2, PoolKind::Avg).data(), &[2.5]);
/// ```
pub fn pool2d(input: &Tensor3, factor: usize, kind: PoolKind) -> Tensor3 {
    assert!(factor > 0, "pool factor must be positive");
    if factor == 1 {
        return input.clone();
    }
    let out_h = input.h() / factor;
    let out_w = input.w() / factor;
    let mut out = Tensor3::zeros(input.c(), out_h, out_w);
    for c in 0..input.c() {
        for p in 0..out_h {
            for q in 0..out_w {
                let mut best = f32::NEG_INFINITY;
                let mut sum = 0.0;
                for dy in 0..factor {
                    for dx in 0..factor {
                        let v = input.at(c, p * factor + dy, q * factor + dx);
                        best = best.max(v);
                        sum += v;
                    }
                }
                let v = match kind {
                    PoolKind::Max => best,
                    PoolKind::Avg => sum / (factor * factor) as f32,
                };
                out.set(c, p, q, v);
            }
        }
    }
    out
}

/// [`pool2d`] restricted to the output columns in `span`: the rest are
/// copied from `baseline` (the pool of a reference input agreeing with
/// `input` outside `span`'s pre-image). Recomputed elements run the exact
/// per-window loop of [`pool2d`], so the result is bit-identical to pooling
/// the full map.
///
/// # Panics
///
/// Panics if `factor == 0` or `baseline` does not have the pooled shape.
pub fn pool2d_cols(
    input: &Tensor3,
    factor: usize,
    kind: PoolKind,
    span: ColSpan,
    baseline: &Tensor3,
) -> Tensor3 {
    assert!(factor > 0, "pool factor must be positive");
    if factor == 1 {
        return input.clone();
    }
    let out_h = input.h() / factor;
    let out_w = input.w() / factor;
    assert_eq!(
        (baseline.c(), baseline.h(), baseline.w()),
        (input.c(), out_h, out_w),
        "baseline shape must match the pooled output"
    );
    let mut out = baseline.clone();
    let span = span.clamp(out_w);
    for c in 0..input.c() {
        for p in 0..out_h {
            for q in span.lo()..span.hi() {
                let mut best = f32::NEG_INFINITY;
                let mut sum = 0.0;
                for dy in 0..factor {
                    for dx in 0..factor {
                        let v = input.at(c, p * factor + dy, q * factor + dx);
                        best = best.max(v);
                        sum += v;
                    }
                }
                let v = match kind {
                    PoolKind::Max => best,
                    PoolKind::Avg => sum / (factor * factor) as f32,
                };
                out.set(c, p, q, v);
            }
        }
    }
    out
}

/// Global average pooling: collapses each channel to a single value.
pub fn global_avg_pool(input: &Tensor3) -> Vec<f32> {
    let area = (input.h() * input.w()).max(1) as f32;
    (0..input.c())
        .map(|c| {
            let mut sum = 0.0;
            for y in 0..input.h() {
                for x in 0..input.w() {
                    sum += input.at(c, y, x);
                }
            }
            sum / area
        })
        .collect()
}

/// Backward pass of [`pool2d`]: routes the upstream gradient to the argmax
/// (for max pooling) or spreads it evenly (for average pooling).
pub fn pool2d_backward(
    grad_out: &Tensor3,
    input: &Tensor3,
    factor: usize,
    kind: PoolKind,
) -> Tensor3 {
    assert!(factor > 0, "pool factor must be positive");
    if factor == 1 {
        return grad_out.clone();
    }
    let mut grad_in = Tensor3::zeros(input.c(), input.h(), input.w());
    for c in 0..grad_out.c() {
        for p in 0..grad_out.h() {
            for q in 0..grad_out.w() {
                let g = grad_out.at(c, p, q);
                if g == 0.0 {
                    continue;
                }
                match kind {
                    PoolKind::Max => {
                        let mut best = f32::NEG_INFINITY;
                        let mut by = 0;
                        let mut bx = 0;
                        for dy in 0..factor {
                            for dx in 0..factor {
                                let v = input.at(c, p * factor + dy, q * factor + dx);
                                if v > best {
                                    best = v;
                                    by = p * factor + dy;
                                    bx = q * factor + dx;
                                }
                            }
                        }
                        let idx = grad_in.shape().index(c, by, bx);
                        grad_in.data_mut()[idx] += g;
                    }
                    PoolKind::Avg => {
                        let share = g / (factor * factor) as f32;
                        for dy in 0..factor {
                            for dx in 0..factor {
                                let idx =
                                    grad_in.shape().index(c, p * factor + dy, q * factor + dx);
                                grad_in.data_mut()[idx] += share;
                            }
                        }
                    }
                }
            }
        }
    }
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_2x2() {
        let x = Tensor3::from_vec(1, 4, 4, (1..=16).map(|v| v as f32).collect());
        let y = pool2d(&x, 2, PoolKind::Max);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avg_pool_2x2() {
        let x = Tensor3::from_vec(1, 2, 4, vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0]);
        let y = pool2d(&x, 2, PoolKind::Avg);
        assert_eq!(y.data(), &[6.0, 10.0]);
    }

    #[test]
    fn factor_one_is_identity() {
        let x = Tensor3::from_vec(1, 2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(pool2d(&x, 1, PoolKind::Max), x);
    }

    #[test]
    fn odd_trailing_edge_dropped() {
        let x = Tensor3::full(1, 5, 5, 1.0);
        let y = pool2d(&x, 2, PoolKind::Max);
        assert_eq!((y.h(), y.w()), (2, 2));
    }

    #[test]
    fn global_avg() {
        let x = Tensor3::from_vec(2, 1, 2, vec![1.0, 3.0, 10.0, 30.0]);
        assert_eq!(global_avg_pool(&x), vec![2.0, 20.0]);
    }

    #[test]
    fn pool2d_cols_patches_only_span() {
        let x = Tensor3::from_vec(1, 2, 6, (1..=12).map(|v| v as f32).collect());
        let base_in = Tensor3::zeros(1, 2, 6);
        for kind in [PoolKind::Max, PoolKind::Avg] {
            let baseline = pool2d(&base_in, 2, kind);
            // Patch all columns: must equal the full pool bit-for-bit.
            let full = pool2d_cols(&x, 2, kind, ColSpan::full(3), &baseline);
            assert_eq!(full.data(), pool2d(&x, 2, kind).data());
            // Patch one column: the others keep the baseline value.
            let partial = pool2d_cols(&x, 2, kind, ColSpan::new(1, 2), &baseline);
            assert_eq!(partial.at(0, 0, 1), pool2d(&x, 2, kind).at(0, 0, 1));
            assert_eq!(partial.at(0, 0, 0), baseline.at(0, 0, 0));
            assert_eq!(partial.at(0, 0, 2), baseline.at(0, 0, 2));
        }
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor3::from_vec(1, 2, 2, vec![1.0, 9.0, 3.0, 4.0]);
        let g = Tensor3::from_vec(1, 1, 1, vec![5.0]);
        let gi = pool2d_backward(&g, &x, 2, PoolKind::Max);
        assert_eq!(gi.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_backward_spreads() {
        let x = Tensor3::zeros(1, 2, 2);
        let g = Tensor3::from_vec(1, 1, 1, vec![4.0]);
        let gi = pool2d_backward(&g, &x, 2, PoolKind::Avg);
        assert_eq!(gi.data(), &[1.0, 1.0, 1.0, 1.0]);
    }
}
