//! Shape types shared across the workspace.

use std::fmt;

/// The shape of a single-sample activation tensor: channels x height x width.
///
/// # Examples
///
/// ```
/// use hd_tensor::Shape3;
///
/// let s = Shape3::new(3, 32, 32);
/// assert_eq!(s.len(), 3 * 32 * 32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Shape3 {
    /// Channel count.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape3 {
    /// Creates a shape.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Shape3 { c, h, w }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Returns `true` if the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major (C, H, W) flat index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when an index exceeds its dimension.
    #[inline]
    pub fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        (c * self.h + y) * self.w + x
    }
}

impl fmt::Display for Shape3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_index() {
        let s = Shape3::new(2, 3, 4);
        assert_eq!(s.len(), 24);
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(1, 2, 3), 23);
        assert_eq!(s.index(0, 1, 0), 4);
    }

    #[test]
    fn empty() {
        assert!(Shape3::new(0, 5, 5).is_empty());
        assert!(!Shape3::new(1, 1, 1).is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(Shape3::new(3, 32, 32).to_string(), "3x32x32");
    }
}
