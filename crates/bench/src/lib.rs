//! Experiment harness for the HuffDuff reproduction.
//!
//! Every table and figure in the paper's evaluation (§8) has a regenerator
//! here; the `experiments` binary prints them at full scale and the
//! Criterion benches print fast-scale versions while timing the hot
//! kernels. See `EXPERIMENTS.md` at the workspace root for the
//! paper-vs-measured record.

pub mod experiments;
pub mod table;
pub mod victims;

pub use table::Table;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sizes for `cargo bench` table previews.
    Smoke,
    /// Reduced sizes for quick runs (`experiments --fast`).
    Fast,
    /// The scale reported in `EXPERIMENTS.md`.
    Full,
}
