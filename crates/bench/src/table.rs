//! Minimal text-table rendering for experiment output.

use std::fmt;

/// A printable experiment result table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    /// Title line.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                write!(f, "{:<width$}  ", cell, width = w)?;
            }
            writeln!(f)
        };
        fmt_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            fmt_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_rows_and_notes() {
        let mut t = Table::new("demo", &["a", "bee"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_note("hello");
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("bee"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn pads_columns() {
        let mut t = Table::new("w", &["x"]);
        t.push_row(vec!["longvalue".into()]);
        let s = t.to_string();
        assert!(s.contains("longvalue"));
    }
}
