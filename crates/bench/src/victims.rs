//! Victim construction shared by the experiments.

use hd_accel::{AccelConfig, Device, Precision};
use hd_dnn::graph::{Network, Params};
use hd_dnn::prune::{
    apply_sparsity_profile, magnitude_prune_profile, nm_prune, paper_profile, structured_prune,
    Mask, SparsityProfile, StructuredCfg,
};

/// Which paper victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Model {
    /// VGG-S (7 conv layers, 96-channel 7x7 stem).
    VggS,
    /// CIFAR ResNet-18.
    ResNet18,
}

impl Model {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Model::VggS => "VGG-S",
            Model::ResNet18 => "ResNet18",
        }
    }

    /// Full-size network.
    pub fn network(&self, classes: usize) -> Network {
        match self {
            Model::VggS => hd_dnn::zoo::vgg_s(classes),
            Model::ResNet18 => hd_dnn::zoo::resnet18(classes),
        }
    }

    /// Width-scaled network for matrix experiments that cannot afford
    /// the full-size probe budget per cell.
    pub fn network_scaled(&self, classes: usize, width: f64) -> Network {
        match self {
            Model::VggS => hd_dnn::zoo::vgg_s_scaled(classes, width),
            Model::ResNet18 => hd_dnn::zoo::resnet18_scaled(classes, width),
        }
    }

    /// Both paper victims.
    pub const BOTH: [Model; 2] = [Model::VggS, Model::ResNet18];
}

/// How the victim was pruned before deployment. Unstructured is the
/// paper's regime; the other two are the structured/N:M deployments the
/// robustness matrix probes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PruneMode {
    /// Per-layer magnitude pruning to a sparsity profile (paper default).
    Unstructured,
    /// N:M fine-grained sparsity along the input-channel axis.
    Nm {
        /// Kept weights per group.
        n: usize,
        /// Group size.
        m: usize,
    },
    /// Channel removal by L1 norm: shapes physically shrink.
    Structured {
        /// Fraction of each prunable class's channels kept.
        keep_frac: f64,
    },
}

impl PruneMode {
    /// Stable display name used in tables and JSON artifacts.
    pub fn name(&self) -> String {
        match self {
            PruneMode::Unstructured => "unstructured".to_string(),
            PruneMode::Nm { n, m } => format!("{n}:{m}"),
            PruneMode::Structured { keep_frac } => format!("structured-{keep_frac:.2}"),
        }
    }

    /// The matrix's default presets: paper-style magnitude pruning,
    /// 2:4 fine-grained sparsity, and half-width structured removal.
    pub const DEFAULTS: [PruneMode; 3] = [
        PruneMode::Unstructured,
        PruneMode::Nm { n: 2, m: 4 },
        PruneMode::Structured { keep_frac: 0.5 },
    ];
}

/// A width-scaled victim pruned with `mode` and sealed inside `cfg`.
///
/// Structured victims are channel-removed first and then magnitude-pruned
/// with the mini profile *within* the surviving channels, so the timing
/// channel still sees realistic nnz statistics; N:M victims rely on the
/// group constraint alone.
pub fn pruned_victim(
    model: Model,
    mode: PruneMode,
    width: f64,
    seed: u64,
    cfg: AccelConfig,
) -> (Device, Network) {
    let net = model.network_scaled(10, width);
    let mut params = Params::init(&net, seed);
    let (net, params) = match mode {
        PruneMode::Unstructured => {
            let profile = mini_profile(&net);
            apply_sparsity_profile(&net, &mut params, &profile, seed ^ 0xBEEF);
            (net, params)
        }
        PruneMode::Nm { n, m } => {
            nm_prune(&net, &mut params, n, m);
            (net, params)
        }
        PruneMode::Structured { keep_frac } => {
            let r = structured_prune(
                &net,
                &params,
                &StructuredCfg {
                    keep_frac,
                    min_keep: 2,
                },
            );
            let (net, mut params) = (r.net, r.params);
            let profile = mini_profile(&net);
            magnitude_prune_profile(&net, &mut params, &profile);
            (net, params)
        }
    };
    let device = Device::new(net.clone(), params, cfg);
    (device, net)
}

/// A full-size victim pruned with the paper-shaped sparsity profile and
/// sealed inside an Eyeriss-v2-like device.
pub fn paper_victim(model: Model, seed: u64) -> (Device, Network) {
    let net = model.network(10);
    let mut params = Params::init(&net, seed);
    let profile = paper_profile(&net);
    apply_sparsity_profile(&net, &mut params, &profile, seed ^ 0xBEEF);
    let device = Device::new(net.clone(), params, AccelConfig::eyeriss_v2());
    (device, net)
}

/// A width-scaled victim deployed INT8-quantized (PTQ, BN folded) on an
/// otherwise stock Eyeriss-v2 device. The f32 counterpart with the same
/// `(model, mode, width, seed)` is [`pruned_victim`] with the default
/// config, so f32-vs-INT8 attack comparisons hold everything else fixed.
pub fn quantized_victim(model: Model, mode: PruneMode, width: f64, seed: u64) -> (Device, Network) {
    pruned_victim(
        model,
        mode,
        width,
        seed,
        AccelConfig::eyeriss_v2().with_precision(Precision::Int8),
    )
}

/// The full-size paper victim deployed INT8-quantized.
pub fn paper_victim_quantized(model: Model, seed: u64) -> (Device, Network) {
    paper_victim_with(
        model,
        seed,
        AccelConfig::eyeriss_v2().with_precision(Precision::Int8),
    )
}

/// Same victim on a custom accelerator configuration.
pub fn paper_victim_with(model: Model, seed: u64, cfg: AccelConfig) -> (Device, Network) {
    let net = model.network(10);
    let mut params = Params::init(&net, seed);
    let profile = paper_profile(&net);
    apply_sparsity_profile(&net, &mut params, &profile, seed ^ 0xBEEF);
    let device = Device::new(net.clone(), params, cfg);
    (device, net)
}

/// Uniform-moderate profile for width-scaled "mini" victims: the full
/// paper profile is calibrated to 512-channel layers and would leave a
/// 2-digit-channel layer with almost no weights.
pub fn mini_profile(net: &Network) -> SparsityProfile {
    SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.75 }))
            .collect(),
    }
}

/// Prunes `params` globally so the surviving weight count is close to
/// `footprint` (the iso-footprint constraint of Fig. 4). Returns the mask.
pub fn prune_to_footprint(
    net: &Network,
    params: &mut Params,
    footprint: usize,
    min_layer_keep: usize,
) -> Mask {
    let dense = net.dense_weight_count(params);
    let sparsity = (1.0 - footprint as f64 / dense as f64).clamp(0.0, 0.995);
    let mask = hd_dnn::prune::magnitude_prune_global(net, params, sparsity, min_layer_keep);
    mask.apply(params);
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_have_paper_first_layers() {
        let (dev, net) = paper_victim(Model::VggS, 1);
        let oracle = dev.oracle();
        let first_conv = net.conv_nodes()[0];
        let w = oracle.params.conv(first_conv).w;
        assert_eq!((w.k(), w.r()), (96, 7));
        // First layer sparsity stays under the paper's 60% bound.
        assert!(w.sparsity() <= 0.6);

        let (dev, net) = paper_victim(Model::ResNet18, 1);
        let w = dev.oracle().params.conv(net.conv_nodes()[0]).w;
        assert_eq!((w.k(), w.r()), (64, 3));
    }

    #[test]
    fn paper_victims_are_10x_compressed() {
        for model in Model::BOTH {
            let (dev, net) = paper_victim(model, 2);
            let oracle = dev.oracle();
            let dense = net.dense_weight_count(oracle.params);
            let sparse = net.sparse_weight_count(oracle.params);
            let compression = dense as f64 / sparse as f64;
            // Paper reports 10x on ImageNet-scale models whose giant FC
            // layers dominate the parameter count; our CIFAR-scale heads
            // are small, so the same per-layer profile compresses more.
            assert!(
                compression > 5.0 && compression < 300.0,
                "{}: compression {compression}",
                model.name()
            );
        }
    }

    #[test]
    fn pruned_victims_honor_their_mode() {
        let width = 0.25;
        // N:M: every 4-group along C in every conv holds at most 2 nonzeros.
        let (dev, net) = pruned_victim(
            Model::VggS,
            PruneMode::Nm { n: 2, m: 4 },
            width,
            5,
            AccelConfig::eyeriss_v2(),
        );
        let oracle = dev.oracle();
        for &id in &net.conv_nodes() {
            let w = oracle.params.conv(id).w;
            for k in 0..w.k() {
                for r in 0..w.r() {
                    for s in 0..w.s() {
                        for c0 in (0..w.c()).step_by(4) {
                            let nnz = (c0..(c0 + 4).min(w.c()))
                                .filter(|&c| w.data()[w.index(k, c, r, s)] != 0.0)
                                .count();
                            assert!(nnz <= 2, "node {id}: group nnz {nnz}");
                        }
                    }
                }
            }
        }

        // Structured: the first conv physically shrank below the scaled
        // width, and the graph still verifies.
        let (dev, net) = pruned_victim(
            Model::VggS,
            PruneMode::Structured { keep_frac: 0.5 },
            width,
            5,
            AccelConfig::eyeriss_v2(),
        );
        let dense = Model::VggS.network_scaled(10, width);
        let first = net.conv_nodes()[0];
        let got = dev.oracle().params.conv(first).w.k();
        let full = Params::init(&dense, 5).conv(dense.conv_nodes()[0]).w.k();
        assert!(got < full, "structured victim kept all {full} channels");
        assert!(hd_dnn::verify::verify_strict(
            &net,
            Some(dev.oracle().params),
            &hd_dnn::verify::Limits::default()
        )
        .is_ok());
    }

    #[test]
    fn quantized_victims_deploy_int8_and_run() {
        let (dev, net) = quantized_victim(Model::VggS, PruneMode::Unstructured, 0.125, 7);
        assert_eq!(dev.config().compute, Precision::Int8);
        // The INT8 device still produces a bus trace the attacker can read.
        let shape = net.input_shape();
        let trace = dev.run(&hd_tensor::Tensor3::full(shape.c, shape.h, shape.w, 0.25));
        assert!(!trace.is_empty());
        // Pruned weights survive quantization exactly: zeros stay zero, so
        // the nonzero count never grows (it may shrink slightly — weights
        // under half a quantization step round to 0).
        let qnet = dev.quantized_net();
        let oracle = dev.oracle();
        let f32_nnz = net.sparse_weight_count(oracle.params);
        let q_nnz = qnet.sparse_weight_count();
        assert!(
            q_nnz <= f32_nnz,
            "quantization created weights: {q_nnz} > {f32_nnz}"
        );
        assert!(
            q_nnz * 100 >= f32_nnz * 95,
            "quantization erased too much: {q_nnz} of {f32_nnz}"
        );
    }

    #[test]
    fn footprint_pruning_hits_target() {
        let net = hd_dnn::zoo::vgg_s_scaled(10, 0.0625);
        let mut params = Params::init(&net, 3);
        let dense = net.dense_weight_count(&params);
        let target = dense / 10;
        prune_to_footprint(&net, &mut params, target, 4);
        let got = net.sparse_weight_count(&params);
        assert!(
            (got as f64 - target as f64).abs() / (target as f64) < 0.25,
            "target {target}, got {got}"
        );
    }
}
