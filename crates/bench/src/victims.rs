//! Victim construction shared by the experiments.

use hd_accel::{AccelConfig, Device};
use hd_dnn::graph::{Network, Params};
use hd_dnn::prune::{apply_sparsity_profile, paper_profile, Mask, SparsityProfile};

/// Which paper victim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Model {
    /// VGG-S (7 conv layers, 96-channel 7x7 stem).
    VggS,
    /// CIFAR ResNet-18.
    ResNet18,
}

impl Model {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Model::VggS => "VGG-S",
            Model::ResNet18 => "ResNet18",
        }
    }

    /// Full-size network.
    pub fn network(&self, classes: usize) -> Network {
        match self {
            Model::VggS => hd_dnn::zoo::vgg_s(classes),
            Model::ResNet18 => hd_dnn::zoo::resnet18(classes),
        }
    }

    /// Both paper victims.
    pub const BOTH: [Model; 2] = [Model::VggS, Model::ResNet18];
}

/// A full-size victim pruned with the paper-shaped sparsity profile and
/// sealed inside an Eyeriss-v2-like device.
pub fn paper_victim(model: Model, seed: u64) -> (Device, Network) {
    let net = model.network(10);
    let mut params = Params::init(&net, seed);
    let profile = paper_profile(&net);
    apply_sparsity_profile(&net, &mut params, &profile, seed ^ 0xBEEF);
    let device = Device::new(net.clone(), params, AccelConfig::eyeriss_v2());
    (device, net)
}

/// Same victim on a custom accelerator configuration.
pub fn paper_victim_with(model: Model, seed: u64, cfg: AccelConfig) -> (Device, Network) {
    let net = model.network(10);
    let mut params = Params::init(&net, seed);
    let profile = paper_profile(&net);
    apply_sparsity_profile(&net, &mut params, &profile, seed ^ 0xBEEF);
    let device = Device::new(net.clone(), params, cfg);
    (device, net)
}

/// Uniform-moderate profile for width-scaled "mini" victims: the full
/// paper profile is calibrated to 512-channel layers and would leave a
/// 2-digit-channel layer with almost no weights.
pub fn mini_profile(net: &Network) -> SparsityProfile {
    SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.45 } else { 0.75 }))
            .collect(),
    }
}

/// Prunes `params` globally so the surviving weight count is close to
/// `footprint` (the iso-footprint constraint of Fig. 4). Returns the mask.
pub fn prune_to_footprint(
    net: &Network,
    params: &mut Params,
    footprint: usize,
    min_layer_keep: usize,
) -> Mask {
    let dense = net.dense_weight_count(params);
    let sparsity = (1.0 - footprint as f64 / dense as f64).clamp(0.0, 0.995);
    let mask = hd_dnn::prune::magnitude_prune_global(net, params, sparsity, min_layer_keep);
    mask.apply(params);
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_have_paper_first_layers() {
        let (dev, net) = paper_victim(Model::VggS, 1);
        let oracle = dev.oracle();
        let first_conv = net.conv_nodes()[0];
        let w = oracle.params.conv(first_conv).w;
        assert_eq!((w.k(), w.r()), (96, 7));
        // First layer sparsity stays under the paper's 60% bound.
        assert!(w.sparsity() <= 0.6);

        let (dev, net) = paper_victim(Model::ResNet18, 1);
        let w = dev.oracle().params.conv(net.conv_nodes()[0]).w;
        assert_eq!((w.k(), w.r()), (64, 3));
    }

    #[test]
    fn paper_victims_are_10x_compressed() {
        for model in Model::BOTH {
            let (dev, net) = paper_victim(model, 2);
            let oracle = dev.oracle();
            let dense = net.dense_weight_count(oracle.params);
            let sparse = net.sparse_weight_count(oracle.params);
            let compression = dense as f64 / sparse as f64;
            // Paper reports 10x on ImageNet-scale models whose giant FC
            // layers dominate the parameter count; our CIFAR-scale heads
            // are small, so the same per-layer profile compresses more.
            assert!(
                compression > 5.0 && compression < 300.0,
                "{}: compression {compression}",
                model.name()
            );
        }
    }

    #[test]
    fn footprint_pruning_hits_target() {
        let net = hd_dnn::zoo::vgg_s_scaled(10, 0.0625);
        let mut params = Params::init(&net, 3);
        let dense = net.dense_weight_count(&params);
        let target = dense / 10;
        prune_to_footprint(&net, &mut params, target, 4);
        let got = net.sparse_weight_count(&params);
        assert!(
            (got as f64 - target as f64).abs() / (target as f64) < 0.25,
            "target {target}, got {got}"
        );
    }
}
