//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p hd-bench --bin experiments -- all
//! cargo run --release -p hd-bench --bin experiments -- table1 glb figs
//! cargo run --release -p hd-bench --bin experiments -- --fast all
//! ```

use hd_adversarial::Epsilon;
use hd_bench::experiments::*;
use hd_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let scale = if fast { Scale::Fast } else { Scale::Full };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let wanted: Vec<&str> = if wanted.is_empty() || wanted.contains(&"all") {
        vec![
            "table1",
            "observability",
            "prober",
            "glb",
            "finalize",
            "figs",
            "ablations",
            "prune_matrix",
            "channel_matrix",
            "quantized",
        ]
    } else {
        wanted
    };

    for name in wanted {
        let t0 = std::time::Instant::now();
        match name {
            "table1" => println!("{}", table1(scale)),
            "observability" => println!("{}", observability_table(scale)),
            "prober" => println!("{}", prober_table(scale)),
            "glb" => println!("{}", glb_bound_table(scale)),
            "finalize" => println!("{}", final_solution_table(scale)),
            "figs" | "fig4" | "fig5" | "fig6" => {
                let prepared = prepare_models(scale, 42);
                if name == "figs" || name == "fig4" {
                    println!("{}", fig4_accuracy(&prepared));
                }
                if name == "figs" || name == "fig5" {
                    println!("{}", fig5_fig6_transfer(&prepared, Epsilon::fig5()));
                }
                if name == "figs" || name == "fig6" {
                    println!("{}", fig5_fig6_transfer(&prepared, Epsilon::fig6()));
                }
            }
            "prune_matrix" => println!("{}", prune_matrix(scale)),
            "channel_matrix" => println!("{}", channel_matrix(scale)),
            "quantized" => println!("{}", quantized_table(scale)),
            "ablations" => {
                println!("{}", codec_ablation(scale));
                println!("{}", defence_ablation(scale));
                println!("{}", probe_budget_ablation(scale));
                println!("{}", generality_sweep(scale));
            }
            other => {
                eprintln!("unknown experiment `{other}`; known: table1 observability prober glb finalize figs fig4 fig5 fig6 ablations prune_matrix channel_matrix quantized all");
                std::process::exit(2);
            }
        }
        eprintln!("[{name}: {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
