//! Ablations beyond the paper's tables: transfer-codec choice, the §9.2
//! defence sketch (random uncompressed zeros), and probe budget.

use crate::table::Table;
use crate::victims::{mini_profile, Model};
use crate::Scale;
use hd_accel::{AccelConfig, Device};
use hd_dnn::graph::Params;
use hd_tensor::{CompressionScheme, Tensor3};
use huffduff_core::eval::score_geometry;
use huffduff_core::prober::{probe, ProberConfig};

/// Codec ablation: per-scheme transfer volume of a pruned VGG-S run and
/// whether the scheme leaks nnz (invertible size function).
pub fn codec_ablation(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation — transfer codec vs leaked information",
        &["codec", "total write bytes", "vs dense", "size reveals nnz"],
    );
    let model = match scale {
        Scale::Smoke | Scale::Fast => Model::ResNet18,
        Scale::Full => Model::VggS,
    };
    let schemes = [
        (CompressionScheme::Dense, "no"),
        (CompressionScheme::Bitmap, "yes"),
        (
            CompressionScheme::RunLength { run_bits: 5 },
            "approximately",
        ),
        (CompressionScheme::Csc { offset_bits: 10 }, "yes"),
        (
            CompressionScheme::Huffman { quant_bits: 8 },
            "approximately",
        ),
    ];
    let image = Tensor3::full(3, 32, 32, 0.4);
    let mut dense_bytes = 0u64;
    for (scheme, leaks) in schemes {
        let cfg = AccelConfig::eyeriss_v2().with_schemes(scheme, scheme);
        let (device, _) = crate::victims::paper_victim_with(model, 5, cfg);
        let trace = device.run(&image);
        let bytes = trace.total_bytes(hd_accel::AccessKind::Write);
        if scheme == CompressionScheme::Dense {
            dense_bytes = bytes;
        }
        t.push_row(vec![
            scheme.to_string(),
            bytes.to_string(),
            format!("{:.2}x", dense_bytes as f64 / bytes.max(1) as f64),
            leaks.to_string(),
        ]);
    }
    t.push_note("every zero-eliding codec leaks nnz; only the dense codec hides it, paying the full uncompressed bandwidth");
    t
}

/// Defence ablation: prober geometry accuracy and energy cost for the two
/// §9.2 countermeasure families, now first-class device features
/// ([`hd_accel::Defence`]).
pub fn defence_ablation(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation — §9.2 defences vs prober (and their energy bill)",
        &[
            "defence",
            "probes used",
            "geometry exact",
            "energy vs baseline",
        ],
    );
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, 8, 3, 1);
    let x = b.conv(x, 16, 5, 1);
    let x = b.max_pool(x, 2);
    b.conv(x, 16, 3, 1);
    let net = b.build();
    let mut params = Params::init(&net, 4);
    let profile = mini_profile(&net);
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 5);

    let mut defences: Vec<(String, hd_accel::Defence)> = vec![
        ("none".into(), hd_accel::Defence::None),
        (
            "pad-edges band=1".into(),
            hd_accel::Defence::PadEdges { band: 1 },
        ),
        (
            "pad-edges band=2".into(),
            hd_accel::Defence::PadEdges { band: 2 },
        ),
    ];
    let noise_levels: &[u64] = match scale {
        Scale::Smoke | Scale::Fast => &[8, 64],
        Scale::Full => &[2, 8, 32, 64, 256],
    };
    for &n in noise_levels {
        defences.push((
            format!("random-zeros <= {n}B"),
            hd_accel::Defence::RandomZeros {
                max_bytes: n,
                seed: n ^ 0xD1CE,
            },
        ));
    }

    let energy_model = hd_accel::EnergyModel::default();
    let image = hd_tensor::Tensor3::full(3, 16, 16, 0.4);
    let baseline_energy = Device::new(net.clone(), params.clone(), AccelConfig::eyeriss_v2())
        .energy_estimate(&image, &energy_model)
        .total_pj();

    for (label, defence) in defences {
        let device = Device::new(
            net.clone(),
            params.clone(),
            AccelConfig::eyeriss_v2().with_defence(defence),
        );
        let energy = device.energy_estimate(&image, &energy_model).total_pj();
        let cfg = ProberConfig {
            shifts: 12,
            max_probes: 12,
            stable_probes: 3,
            kernels: vec![1, 3, 5],
            strides: vec![1, 2],
            pools: vec![2, 3],
            seed: 31,
            parallelism: None,
        };
        let res = probe(&device, &cfg).expect("probe runs");
        let score = score_geometry(&net, &res);
        t.push_row(vec![
            label,
            res.probes_used.to_string(),
            format!("{}/{}", score.correct, score.total),
            format!("{:+.1}%", (energy / baseline_energy - 1.0) * 100.0),
        ]);
    }
    t.push_note("pad-edges blanks the boundary signal deterministically; random zeros breaks the one-sided-error assumption");
    t.push_note(
        "both defences pay DRAM bandwidth/energy on every inference (paper §9.2: non-trivial)",
    );
    t
}

/// Probe-budget ablation/// Probe-budget ablation: geometry accuracy as the probe budget grows.
pub fn probe_budget_ablation(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation — probe budget vs geometry accuracy",
        &["max probes", "geometry exact"],
    );
    let mut b = hd_dnn::graph::NetworkBuilder::new(3, 16, 16);
    let x = b.input();
    let x = b.conv(x, 8, 5, 1);
    let x = b.max_pool(x, 2);
    b.conv(x, 16, 3, 1);
    let net = b.build();
    let mut params = Params::init(&net, 6);
    // Heavier pruning than the other ablations: single probes should
    // plausibly miss boundary effects so the budget sweep has a slope.
    let profile = hd_dnn::prune::SparsityProfile {
        targets: net
            .weighted_nodes()
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id, if pos == 0 { 0.6 } else { 0.93 }))
            .collect(),
    };
    hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 7);
    let device = Device::new(net.clone(), params, AccelConfig::eyeriss_v2());

    let budgets: &[usize] = match scale {
        Scale::Smoke | Scale::Fast => &[1, 4, 8],
        Scale::Full => &[1, 2, 4, 8, 16],
    };
    for &max_probes in budgets {
        let cfg = ProberConfig {
            shifts: 12,
            max_probes,
            stable_probes: max_probes, // disable early stopping
            kernels: vec![1, 3, 5],
            strides: vec![1, 2],
            pools: vec![2, 3],
            seed: 17,
            parallelism: None,
        };
        let res = probe(&device, &cfg).expect("probe runs");
        let score = score_geometry(&net, &res);
        t.push_row(vec![
            max_probes.to_string(),
            format!("{}/{}", score.correct, score.total),
        ]);
    }
    t.push_note("one-sided errors vanish exponentially in the probe count (§5.4)");
    t
}

/// Cross-accelerator + cross-model sweep: the attack should not depend on
/// Eyeriss-v2 specifics (paper: "these generic insights apply to all
/// inference accelerators with irregular sparsity") nor on the victim's
/// kernel mix. VGG-16's all-3x3 front end spreads probe features slowly,
/// keeping the boundary effect observable deeper than VGG-S's 7x7 stem.
pub fn generality_sweep(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation — generality across accelerators and victims",
        &["victim", "accelerator", "layers", "exact", "covered"],
    );
    let mut entries: Vec<(&str, hd_dnn::graph::Network, AccelConfig)> =
        vec![("VGG-S", hd_dnn::zoo::vgg_s(10), AccelConfig::scnn_like())];
    if scale == Scale::Full {
        entries.push(("VGG-16", hd_dnn::zoo::vgg16(10), AccelConfig::eyeriss_v2()));
        entries.push(("VGG-16", hd_dnn::zoo::vgg16(10), AccelConfig::scnn_like()));
    }
    for (name, net, accel) in entries {
        let mut params = Params::init(&net, 9);
        let profile = hd_dnn::prune::paper_profile(&net);
        hd_dnn::prune::apply_sparsity_profile(&net, &mut params, &profile, 10);
        let device = Device::new(net.clone(), params, accel.clone());
        let cfg = ProberConfig {
            shifts: 20,
            max_probes: 8,
            stable_probes: 2,
            ..Default::default()
        };
        let res = probe(&device, &cfg).expect("probe runs");
        let score = score_geometry(&net, &res);
        let expected = huffduff_core::eval::expected_kinds(&net);
        let covered = expected
            .iter()
            .zip(&res.layers)
            .filter(|(e, l)| l.kind == **e || l.alternatives.contains(e))
            .count();
        let accel_name = if accel == AccelConfig::scnn_like() {
            "SCNN-like (CSC)"
        } else {
            "Eyeriss-v2 (bitmap)"
        };
        t.push_row(vec![
            name.to_string(),
            accel_name.to_string(),
            score.total.to_string(),
            format!("{}/{}", score.correct, score.total),
            format!("{}/{}", covered, expected.len()),
        ]);
    }
    t.push_note("the prober only needs a monotone codec and a GLB-bound encoder; the accelerator preset is irrelevant");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_ablation_orders_schemes() {
        let t = codec_ablation(Scale::Fast);
        assert_eq!(t.rows.len(), 5);
        let dense: u64 = t.rows[0][1].parse().unwrap();
        let bitmap: u64 = t.rows[1][1].parse().unwrap();
        assert!(bitmap < dense, "bitmap {bitmap} vs dense {dense}");
    }

    #[test]
    fn defence_noise_degrades_recovery() {
        let t = defence_ablation(Scale::Fast);
        let exact_of =
            |row: &Vec<String>| -> usize { row[2].split('/').next().unwrap().parse().unwrap() };
        let clean = exact_of(&t.rows[0]);
        let noisy = exact_of(t.rows.last().unwrap());
        assert!(clean >= noisy, "clean {clean} vs noisy {noisy}");
        assert_eq!(clean, 4, "clean run should recover all 4 layers");
    }

    #[test]
    fn probe_budget_monotone_improvement() {
        let t = probe_budget_ablation(Scale::Fast);
        let exact_of =
            |row: &Vec<String>| -> usize { row[1].split('/').next().unwrap().parse().unwrap() };
        let first = exact_of(&t.rows[0]);
        let last = exact_of(t.rows.last().unwrap());
        assert!(last >= first);
        assert_eq!(last, 3, "full budget should recover all 3 layers");
    }
}
