//! The pruning-mode robustness matrix: zoo × {unstructured, N:M,
//! structured} × defence × conv backend, scoring the boundary prober's
//! geometry recovery and probe budget in every cell.
//!
//! Structured victims physically change layer shapes — exactly what the
//! boundary prober is supposed to read off the device — while N:M victims
//! change the nnz statistics the timing channel leans on. Cells where
//! recovery degrades are findings, not failures: this matrix is the first
//! experiment that can falsify parts of the attack instead of speeding it
//! up.

use crate::table::Table;
use crate::victims::{pruned_victim, Model, PruneMode};
use crate::Scale;
use hd_accel::{AccelConfig, Defence};
use hd_tensor::ConvBackend;
use huffduff_core::eval::score_geometry;
use huffduff_core::prober::{probe, ProberConfig};

/// Width used for the matrix victims: full-size probes cost seconds per
/// cell, and the matrix has dozens of cells.
pub const MATRIX_WIDTH: f64 = 0.25;

/// One fully-identified cell of the robustness matrix.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Victim family.
    pub model: Model,
    /// How the victim was pruned.
    pub mode: PruneMode,
    /// Deployed defence label.
    pub defence: String,
    /// Conv backend the device ran.
    pub backend: ConvBackend,
    /// Probes the prober spent.
    pub probes_used: usize,
    /// Layers recovered exactly.
    pub geometry_correct: usize,
    /// Layers scored.
    pub geometry_total: usize,
}

impl MatrixCell {
    /// Stable key identifying the victim-side coordinates (everything but
    /// the backend) — cells sharing a key must agree bit-for-bit.
    pub fn victim_key(&self) -> String {
        format!(
            "{}|{}|{}",
            self.model.name(),
            self.mode.name(),
            self.defence
        )
    }
}

fn backend_name(b: ConvBackend) -> &'static str {
    match b {
        ConvBackend::Direct => "direct",
        ConvBackend::Im2colGemm => "im2col-gemm",
        ConvBackend::SparseCsc => "sparse-csc",
    }
}

fn defences(scale: Scale) -> Vec<(String, Defence)> {
    let mut d = vec![("none".to_string(), Defence::None)];
    if scale != Scale::Smoke {
        d.push((
            "pad-edges band=1".to_string(),
            Defence::PadEdges { band: 1 },
        ));
        d.push((
            "random-zeros <= 32B".to_string(),
            Defence::RandomZeros {
                max_bytes: 32,
                seed: 0xD1CE,
            },
        ));
    }
    d
}

/// Runs the matrix and returns every cell. Deterministic in `scale`.
pub fn prune_matrix_cells(scale: Scale) -> Vec<MatrixCell> {
    let models: &[Model] = match scale {
        Scale::Smoke | Scale::Fast => &[Model::VggS],
        Scale::Full => &Model::BOTH,
    };
    let backends: &[ConvBackend] = match scale {
        Scale::Smoke => &[ConvBackend::Direct, ConvBackend::SparseCsc],
        Scale::Fast | Scale::Full => &[
            ConvBackend::Direct,
            ConvBackend::Im2colGemm,
            ConvBackend::SparseCsc,
        ],
    };
    let defences = defences(scale);
    let mut cells = Vec::new();
    for &model in models {
        for mode in PruneMode::DEFAULTS {
            for (label, defence) in &defences {
                for &backend in backends {
                    let cfg = AccelConfig::eyeriss_v2()
                        .with_defence(defence.clone())
                        .with_conv_backend(backend);
                    let (device, net) = pruned_victim(model, mode, MATRIX_WIDTH, 23, cfg);
                    let pcfg = ProberConfig {
                        shifts: 12,
                        max_probes: 8,
                        stable_probes: 2,
                        seed: 41,
                        ..ProberConfig::default()
                    };
                    let res = probe(&device, &pcfg).expect("probe runs");
                    let score = score_geometry(&net, &res);
                    cells.push(MatrixCell {
                        model,
                        mode,
                        defence: label.clone(),
                        backend,
                        probes_used: res.probes_used,
                        geometry_correct: score.correct,
                        geometry_total: score.total,
                    });
                }
            }
        }
    }
    cells
}

/// Renders the matrix as a table, asserting the cross-backend agreement
/// contract along the way: cells that differ only in backend must report
/// identical recovery and probe budget (the backends are bit-identical,
/// so the prober cannot tell them apart).
pub fn prune_matrix(scale: Scale) -> Table {
    render_matrix(&prune_matrix_cells(scale))
}

/// Renders precomputed cells (see [`prune_matrix_cells`]).
pub fn render_matrix(cells: &[MatrixCell]) -> Table {
    let mut t = Table::new(
        "Pruning-mode robustness matrix — geometry recovery per cell",
        &[
            "victim",
            "pruning",
            "defence",
            "backend",
            "probes",
            "geometry exact",
        ],
    );
    for c in cells {
        t.push_row(vec![
            c.model.name().to_string(),
            c.mode.name(),
            c.defence.clone(),
            backend_name(c.backend).to_string(),
            c.probes_used.to_string(),
            format!("{}/{}", c.geometry_correct, c.geometry_total),
        ]);
    }
    let groups = cross_backend_agreement(cells);
    t.push_note(format!(
        "cross-backend agreement: {groups} victim cells identical across all conv backends"
    ));
    t.push_note("structured cells shrink real layer shapes; recovered geometry tracks the *pruned* channel counts, not the zoo's textbook values");
    t.push_note("pad-edges blanks the boundary signal; random zeros attacks probe stability, so budgets rise before accuracy falls");
    t
}

/// Counts victim-side groups whose cells agree across every backend.
///
/// # Panics
///
/// Panics if any group disagrees — that is a broken bit-identity contract,
/// not a measurement.
pub fn cross_backend_agreement(cells: &[MatrixCell]) -> usize {
    let mut groups: Vec<(String, (usize, usize, usize))> = Vec::new();
    for c in cells {
        let key = c.victim_key();
        let sig = (c.probes_used, c.geometry_correct, c.geometry_total);
        match groups.iter().find(|(k, _)| *k == key) {
            Some((_, existing)) => {
                assert_eq!(
                    *existing, sig,
                    "backends disagree on cell {key}: {existing:?} vs {sig:?}"
                );
            }
            None => groups.push((key, sig)),
        }
    }
    groups.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_covers_every_mode_and_agrees() {
        let cells = prune_matrix_cells(Scale::Smoke);
        // 1 model x 3 modes x 1 defence x 2 backends.
        assert_eq!(cells.len(), 6);
        for mode in PruneMode::DEFAULTS {
            assert!(cells.iter().any(|c| c.mode == mode));
        }
        assert_eq!(cross_backend_agreement(&cells), 3);
        // The undefended unstructured cell recovers (nearly) every layer:
        // at matrix width the deepest layer's boundary signal has decayed,
        // so allow one miss but no more.
        let baseline = cells
            .iter()
            .find(|c| c.mode == PruneMode::Unstructured)
            .unwrap();
        assert!(
            baseline.geometry_correct + 1 >= baseline.geometry_total,
            "baseline recovery collapsed: {}/{}",
            baseline.geometry_correct,
            baseline.geometry_total
        );
    }

    #[test]
    fn table_renders_one_row_per_cell() {
        let cells: Vec<MatrixCell> = [ConvBackend::Direct, ConvBackend::SparseCsc]
            .into_iter()
            .map(|backend| MatrixCell {
                model: Model::VggS,
                mode: PruneMode::Nm { n: 2, m: 4 },
                defence: "none".to_string(),
                backend,
                probes_used: 9,
                geometry_correct: 12,
                geometry_total: 13,
            })
            .collect();
        let t = render_matrix(&cells);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows.iter().all(|r| r.len() == 6));
        assert_eq!(t.rows[0][5], "12/13");
    }

    #[test]
    #[should_panic(expected = "backends disagree")]
    fn backend_disagreement_is_fatal() {
        let mk = |backend, probes| MatrixCell {
            model: Model::VggS,
            mode: PruneMode::Unstructured,
            defence: "none".to_string(),
            backend,
            probes_used: probes,
            geometry_correct: 13,
            geometry_total: 13,
        };
        cross_backend_agreement(&[mk(ConvBackend::Direct, 9), mk(ConvBackend::SparseCsc, 10)]);
    }
}
