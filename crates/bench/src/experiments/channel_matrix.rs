//! The channel × defence matrix: zoo × observation channel × defence,
//! scoring every attack stage in every cell.
//!
//! This is the experiment the [`huffduff_core::ObservationModel`] boundary
//! exists for. Each cell mounts the *same* attack through a different
//! channel — the paper's full trace+timing channel, the trace-only and
//! timing-only restrictions, and the Cache-Telepathy-style GEMM-dimension
//! channel — against a device deploying one defence. A defence is only as
//! good as its weakest surviving channel, and a channel is only as strong
//! as the stages it can still complete: the matrix records geometry
//! recovery, conv-only recovery (the fair score for the GEMM channel,
//! which cannot see weightless layers), channel-ratio availability, and
//! whether the finalized k1 candidates cover the live first-layer width.
//!
//! The headline asymmetry: NNReArch-style schedule padding rounds every
//! dimension the *scheduler* leaks (GEMM block counts, encode windows) up
//! to a tile multiple, degrading the GEMM channel's geometry and exact-k1
//! recovery — while the volume channels sail through untouched.

use crate::table::Table;
use crate::victims::{pruned_victim, Model, PruneMode};
use crate::Scale;
use hd_accel::{AccelConfig, Defence, Device};
use hd_tensor::ConvBackend;
use huffduff_core::eval::{score_conv_geometry, score_geometry};
use huffduff_core::{AttackConfig, ChannelKind};

/// Width used for the matrix victims (matches the pruning matrix).
pub const CHANNEL_MATRIX_WIDTH: f64 = 0.25;

/// One fully-identified cell of the channel × defence matrix.
#[derive(Clone, Debug)]
pub struct ChannelCell {
    /// Victim family.
    pub model: Model,
    /// Observation channel the attacker read.
    pub channel: ChannelKind,
    /// Deployed defence label.
    pub defence: String,
    /// Probes the prober spent.
    pub probes_used: usize,
    /// Layers recovered exactly (all layer kinds).
    pub geometry_correct: usize,
    /// Layers scored.
    pub geometry_total: usize,
    /// Conv layers recovered exactly (conv subsequence only).
    pub conv_correct: usize,
    /// Conv layers scored.
    pub conv_total: usize,
    /// Whether the timing/GEMM stage yielded channel ratios.
    pub ratios_recovered: bool,
    /// Finalized candidate count (0 when no space survived the channel).
    pub solution_count: usize,
    /// Whether the k1 candidate set covers the live first-layer width.
    pub k1_hit: bool,
}

impl ChannelCell {
    /// `correct/total` over all layers.
    pub fn geometry(&self) -> String {
        format!("{}/{}", self.geometry_correct, self.geometry_total)
    }

    /// `correct/total` over conv layers only.
    pub fn conv_geometry(&self) -> String {
        format!("{}/{}", self.conv_correct, self.conv_total)
    }
}

/// The matrix's defence column: nothing, the two volume-channel defences,
/// and NNReArch-style schedule padding.
pub fn matrix_defences(scale: Scale) -> Vec<(String, Defence)> {
    let mut d = vec![("none".to_string(), Defence::None)];
    if scale != Scale::Smoke {
        d.push((
            "pad-edges band=1".to_string(),
            Defence::PadEdges { band: 1 },
        ));
        d.push((
            "random-zeros <= 32B".to_string(),
            Defence::RandomZeros {
                max_bytes: 32,
                seed: 0xD1CE,
            },
        ));
    }
    d.push((
        "nn-rearch tile=16".to_string(),
        Defence::NnRearch { tile: 16 },
    ));
    d
}

/// Number of live (≥1 nonzero weight) rows in the victim's first conv —
/// the quantity the attack's k1 candidates must cover. Pruned dead rows
/// never touch the bus, so the textbook width is the wrong oracle.
fn live_k1(device: &Device, net: &hd_dnn::graph::Network) -> usize {
    let first = net.conv_nodes()[0];
    let w = device.oracle().params.conv(first).w;
    (0..w.k())
        .filter(|&k| {
            (0..w.c()).any(|c| {
                (0..w.r()).any(|r| (0..w.s()).any(|s| w.data()[w.index(k, c, r, s)] != 0.0))
            })
        })
        .count()
}

/// Runs the matrix and returns every cell. Deterministic in `scale`.
///
/// Every device runs the im2col+GEMM backend so the GEMM channel has
/// calls to observe; bit-identity across backends is already enforced by
/// the pruning matrix and the backend-invariance tests, so re-spanning
/// backends here would triple the cost without adding information.
pub fn channel_matrix_cells(scale: Scale) -> Vec<ChannelCell> {
    let models: &[Model] = match scale {
        Scale::Smoke | Scale::Fast => &[Model::VggS],
        Scale::Full => &Model::BOTH,
    };
    let defences = matrix_defences(scale);
    let mut cells = Vec::new();
    for &model in models {
        for (label, defence) in &defences {
            let cfg = AccelConfig::eyeriss_v2()
                .with_defence(defence.clone())
                .with_conv_backend(ConvBackend::Im2colGemm);
            let (device, net) = pruned_victim(
                model,
                PruneMode::Unstructured,
                CHANNEL_MATRIX_WIDTH,
                23,
                cfg,
            );
            let true_k1 = live_k1(&device, &net);
            for channel in ChannelKind::ALL {
                let acfg = AttackConfig {
                    prober: huffduff_core::ProberConfig {
                        shifts: 12,
                        max_probes: 8,
                        stable_probes: 2,
                        seed: 41,
                        ..Default::default()
                    },
                    classes: 10,
                    max_k: 256,
                    ..Default::default()
                };
                let target = channel.model(&device);
                let outcome = huffduff_core::run(target.as_ref(), &acfg).expect("attack completes");
                let score = score_geometry(&net, &outcome.prober);
                let conv_score = score_conv_geometry(&net, &outcome.prober);
                cells.push(ChannelCell {
                    model,
                    channel,
                    defence: label.clone(),
                    probes_used: outcome.prober.probes_used,
                    geometry_correct: score.correct,
                    geometry_total: score.total,
                    conv_correct: conv_score.correct,
                    conv_total: conv_score.total,
                    ratios_recovered: outcome.ratios.is_some(),
                    solution_count: outcome.space.as_ref().map_or(0, |s| s.count()),
                    k1_hit: outcome
                        .space
                        .as_ref()
                        .is_some_and(|s| s.k1_candidates.contains(&true_k1)),
                });
            }
        }
    }
    cells
}

/// Runs the matrix and renders it as a table.
pub fn channel_matrix(scale: Scale) -> Table {
    render_channel_matrix(&channel_matrix_cells(scale))
}

/// Renders precomputed cells (see [`channel_matrix_cells`]).
pub fn render_channel_matrix(cells: &[ChannelCell]) -> Table {
    let mut t = Table::new(
        "Channel x defence matrix — attack stages surviving per cell",
        &[
            "victim",
            "channel",
            "defence",
            "probes",
            "geometry",
            "conv-only",
            "ratios",
            "solutions",
            "k1 hit",
        ],
    );
    for c in cells {
        t.push_row(vec![
            c.model.name().to_string(),
            c.channel.label().to_string(),
            c.defence.clone(),
            c.probes_used.to_string(),
            c.geometry(),
            c.conv_geometry(),
            if c.ratios_recovered { "yes" } else { "no" }.to_string(),
            c.solution_count.to_string(),
            if c.k1_hit { "yes" } else { "no" }.to_string(),
        ]);
    }
    t.push_note("full = trace + timing (the paper); trace drops timestamps; timing drops volumes; gemm = Cache-Telepathy-style GEMM call dimensions");
    t.push_note("conv-only is the fair geometry score for the gemm channel, which cannot observe weightless layers (pools fold into the next conv's stride)");
    t.push_note("nn-rearch pads scheduler-visible dimensions to the tile, degrading gemm geometry/k1 while volume channels pass through untouched");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_exposes_the_channel_hierarchy() {
        let cells = channel_matrix_cells(Scale::Smoke);
        // 1 model x 4 channels x 2 defences (none + nn-rearch).
        assert_eq!(cells.len(), 8);

        let cell = |ch: ChannelKind, def: &str| {
            cells
                .iter()
                .find(|c| c.channel == ch && c.defence.starts_with(def))
                .unwrap()
        };

        // Undefended full channel: every stage completes.
        let full = cell(ChannelKind::Full, "none");
        assert!(full.ratios_recovered);
        assert!(full.k1_hit, "full channel k1 candidates miss the live k1");
        assert!(full.geometry_correct + 1 >= full.geometry_total);

        // Trace-only loses the ratios but keeps the geometry.
        let trace = cell(ChannelKind::Trace, "none");
        assert!(!trace.ratios_recovered);
        assert_eq!(trace.geometry_correct, full.geometry_correct);

        // Timing-only keeps the ratios but loses the volume geometry.
        let timing = cell(ChannelKind::Timing, "none");
        assert!(timing.geometry_correct < full.geometry_correct);

        // GEMM channel: sees every conv (and nothing else), recovers the
        // exact k1 from `m`. Convs directly after a pool read as stride-2
        // convs (the pool folds into the invisible stride — VGG-S has
        // three pools, so three stride mismatches are the documented
        // ambiguity, not a failure), every other conv is exact.
        let gemm = cell(ChannelKind::Gemm, "none");
        // One observed GEMM call per conv: exactly VGG-S's 7 convs, with
        // no spurious extras (the full channel's deepest decayed layer
        // can add a phantom conv point-estimate; the GEMM channel cannot).
        assert_eq!(gemm.conv_total, 7);
        assert!(
            gemm.conv_correct + 3 >= gemm.conv_total && gemm.conv_correct >= gemm.conv_total / 2,
            "gemm conv recovery collapsed beyond the pool folds: {}/{}",
            gemm.conv_correct,
            gemm.conv_total
        );
        assert!(gemm.k1_hit);
        assert!(
            gemm.solution_count >= 1 && gemm.solution_count <= full.solution_count,
            "gemm k1 is exact, so its space ({}) cannot exceed the full channel's ({})",
            gemm.solution_count,
            full.solution_count
        );

        // THE degraded cell: nn-rearch breaks the gemm channel's exact
        // recovery while leaving the full channel's geometry alone.
        let gemm_def = cell(ChannelKind::Gemm, "nn-rearch");
        assert!(
            gemm_def.conv_correct < gemm.conv_correct || !gemm_def.k1_hit,
            "nn-rearch failed to degrade the gemm channel: {}/{} conv, k1_hit={}",
            gemm_def.conv_correct,
            gemm_def.conv_total,
            gemm_def.k1_hit
        );
        let full_def = cell(ChannelKind::Full, "nn-rearch");
        assert_eq!(
            full_def.geometry_correct, full.geometry_correct,
            "nn-rearch must not touch the volume channel's geometry"
        );
    }

    #[test]
    fn table_renders_one_row_per_cell() {
        let cells: Vec<ChannelCell> = [ChannelKind::Full, ChannelKind::Gemm]
            .into_iter()
            .map(|channel| ChannelCell {
                model: Model::VggS,
                channel,
                defence: "none".to_string(),
                probes_used: 9,
                geometry_correct: 12,
                geometry_total: 13,
                conv_correct: 7,
                conv_total: 7,
                ratios_recovered: true,
                solution_count: 66,
                k1_hit: true,
            })
            .collect();
        let t = render_channel_matrix(&cells);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows.iter().all(|r| r.len() == 9));
        assert_eq!(t.rows[0][4], "12/13");
        assert_eq!(t.rows[1][5], "7/7");
    }
}
