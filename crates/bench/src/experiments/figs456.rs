//! E6–E8 — Figures 4, 5, 6: quality of the reverse-engineered candidates.
//!
//! Mini-scale substitution (see DESIGN.md): width-scaled victims trained on
//! the synthetic CIFAR-like dataset with a pure-Rust SGD engine. The full
//! pipeline is the paper's: train + prune the victim, attack its device,
//! sample candidates from the solution space, retrain each candidate under
//! the iso-footprint constraint, then measure accuracy (Fig. 4) and
//! black-box targeted transfer (Figs. 5–6).

use crate::table::Table;
use crate::victims::{mini_profile, prune_to_footprint};
use crate::Scale;
use hd_accel::{AccelConfig, Device};
use hd_adversarial::{targeted_transfer_rate, untargeted_transfer_rate, BimConfig, Epsilon};
use hd_dnn::data::SyntheticImages;
use hd_dnn::graph::{Network, Params};
use hd_dnn::train::{accuracy, normalize_init, train, TrainConfig};
use hd_tensor::Tensor3;
use huffduff_core::attack::{run, AttackConfig};
use huffduff_core::prober::ProberConfig;

/// Everything Figures 4–6 need, trained once.
pub struct PreparedModels {
    /// Dataset generator.
    pub gen: SyntheticImages,
    /// The pruned victim.
    pub victim: (Network, Params),
    /// Victim test accuracy.
    pub victim_acc: f64,
    /// Victim sparse weight footprint (iso-footprint constraint).
    pub victim_footprint: usize,
    /// Same architecture as the victim, independently trained (the
    /// "semi-white-box" oracle line in Figs. 5–6).
    pub oracle: (Network, Params),
    /// Prior-generation baseline accuracy (AlexNet, Fig. 4).
    pub baseline_acc: f64,
    /// HuffDuff candidates: `(label, net, params, accuracy)`.
    pub candidates: Vec<(String, Network, Params, f64)>,
    /// Random-surrogate transfer baselines B1–B4: `(label, net, params)`.
    pub transfer_baselines: Vec<(String, Network, Params)>,
    /// Clean test images used for transfer evaluation.
    pub transfer_images: Vec<Tensor3>,
    /// Solution-space size the candidates were sampled from.
    pub solution_count: usize,
}

struct Budget {
    width: f64,
    n_train: usize,
    n_test: usize,
    epochs: usize,
    candidates: usize,
    transfer_images: usize,
}

fn budget(scale: Scale) -> Budget {
    match scale {
        Scale::Smoke => Budget {
            width: 0.0625,
            n_train: 48,
            n_test: 24,
            epochs: 3,
            candidates: 2,
            transfer_images: 8,
        },
        Scale::Fast => Budget {
            width: 0.0625,
            n_train: 96,
            n_test: 48,
            epochs: 5,
            candidates: 4,
            transfer_images: 16,
        },
        Scale::Full => Budget {
            width: 0.125,
            n_train: 240,
            n_test: 120,
            epochs: 8,
            candidates: 8,
            transfer_images: 40,
        },
    }
}

fn fit(
    net: &Network,
    seed: u64,
    train_set: &[(Tensor3, usize)],
    test_set: &[(Tensor3, usize)],
    epochs: usize,
    footprint: Option<usize>,
) -> (Params, f64) {
    let mut params = Params::init(net, seed);
    let calib: Vec<Tensor3> = train_set.iter().take(4).map(|(x, _)| x.clone()).collect();
    normalize_init(net, &mut params, &calib);
    let cfg = TrainConfig {
        epochs,
        lr: 0.001,
        momentum: 0.9,
        weight_decay: 1e-4,
        lr_decay: 1.0,
    };
    train(net, &mut params, train_set, &cfg, None);
    if let Some(fp) = footprint {
        let mask = prune_to_footprint(net, &mut params, fp, 4);
        let fine = TrainConfig {
            epochs: epochs / 2 + 1,
            ..cfg
        };
        train(net, &mut params, train_set, &fine, Some(&mask));
    }
    let acc = accuracy(net, &params, test_set);
    (params, acc)
}

/// Trains the victim, attacks it, and trains every model Figures 4–6 use.
pub fn prepare_models(scale: Scale, seed: u64) -> PreparedModels {
    let b = budget(scale);
    // Extra per-sample noise keeps the task from saturating, so the
    // iso-footprint constraint actually differentiates architectures.
    let mut gen = SyntheticImages::cifar_like(seed);
    gen.noise = 0.3;
    let train_set = gen.dataset(b.n_train, 0);
    let test_set = gen.dataset(b.n_test, 1_000_000);
    let calib: Vec<Tensor3> = train_set.iter().take(4).map(|(x, _)| x.clone()).collect();

    // --- Victim: width-scaled VGG-S, trained then pruned ~10x. ---
    let victim_net = hd_dnn::zoo::vgg_s_scaled(10, b.width);
    let mut victim_params = Params::init(&victim_net, seed ^ 1);
    normalize_init(&victim_net, &mut victim_params, &calib);
    let cfg = TrainConfig {
        epochs: b.epochs,
        lr: 0.001,
        momentum: 0.9,
        weight_decay: 1e-4,
        lr_decay: 1.0,
    };
    train(&victim_net, &mut victim_params, &train_set, &cfg, None);
    // Prune with the (mini-calibrated) profile by magnitude — the victim
    // is trained, so the surviving weights must be the informative ones —
    // and fine-tune the ticket.
    let profile = mini_profile(&victim_net);
    let mask = hd_dnn::prune::magnitude_prune_profile(&victim_net, &mut victim_params, &profile);
    train(
        &victim_net,
        &mut victim_params,
        &train_set,
        &TrainConfig {
            epochs: b.epochs / 2 + 1,
            ..cfg
        },
        Some(&mask),
    );
    let victim_acc = accuracy(&victim_net, &victim_params, &test_set);
    let victim_footprint = victim_net.sparse_weight_count(&victim_params);

    // --- Attack the victim's device to obtain the candidate space. ---
    let device = Device::new(
        victim_net.clone(),
        victim_params.clone(),
        AccelConfig::eyeriss_v2(),
    );
    let attack_cfg = AttackConfig {
        prober: ProberConfig {
            shifts: 16,
            max_probes: 8,
            stable_probes: 2,
            ..Default::default()
        },
        classes: 10,
        max_k: 256,
        ..Default::default()
    };
    let outcome = run(&device, &attack_cfg).expect("attack on mini victim succeeds");
    let space = outcome
        .space
        .as_ref()
        .expect("full channel recovers a solution space");
    let archs = space.sample(b.candidates, seed ^ 3);
    let solution_count = space.count();

    // --- Train each sampled candidate under the iso-footprint constraint. ---
    let mut candidates = Vec::new();
    for (i, arch) in archs.iter().enumerate() {
        let net = space.build_network(arch);
        let (params, acc) = fit(
            &net,
            seed ^ (100 + i as u64),
            &train_set,
            &test_set,
            b.epochs * 2 + 2,
            Some(victim_footprint),
        );
        candidates.push((format!("{}", i + 1), net, params, acc));
    }

    // --- Fig. 4 baseline: prior-generation AlexNet at iso footprint. ---
    let alex = hd_dnn::zoo::alexnet_scaled(10, b.width);
    let (_, baseline_acc) = fit(
        &alex,
        seed ^ 7,
        &train_set,
        &test_set,
        b.epochs * 2 + 2,
        Some(victim_footprint),
    );

    // --- Oracle: victim architecture, independent training run. ---
    let (oracle_params, _) = fit(
        &victim_net,
        seed ^ 8,
        &train_set,
        &test_set,
        b.epochs * 2 + 2,
        Some(victim_footprint),
    );

    // --- Figs. 5–6 random-surrogate baselines: ResNet18 / MobileNetV2
    //     pruned 2x and 5x (paper's B1–B4). ---
    let mut transfer_baselines = Vec::new();
    for (label, net, sparsity) in [
        (
            "B1 ResNet18 2x",
            hd_dnn::zoo::resnet18_scaled(10, b.width),
            0.5,
        ),
        (
            "B2 ResNet18 5x",
            hd_dnn::zoo::resnet18_scaled(10, b.width),
            0.8,
        ),
        (
            "B3 MobileNetV2 2x",
            hd_dnn::zoo::mobilenet_v2_scaled(10, b.width * 2.0),
            0.5,
        ),
        (
            "B4 MobileNetV2 5x",
            hd_dnn::zoo::mobilenet_v2_scaled(10, b.width * 2.0),
            0.8,
        ),
    ] {
        let mut params = Params::init(&net, seed ^ 9);
        normalize_init(&net, &mut params, &calib);
        let base_cfg = TrainConfig {
            epochs: b.epochs * 2 + 2,
            ..cfg
        };
        train(&net, &mut params, &train_set, &base_cfg, None);
        let mask = hd_dnn::prune::magnitude_prune_global(&net, &params, sparsity, 4);
        mask.apply(&mut params);
        train(
            &net,
            &mut params,
            &train_set,
            &TrainConfig {
                epochs: b.epochs / 2 + 1,
                ..cfg
            },
            Some(&mask),
        );
        transfer_baselines.push((label.to_string(), net, params));
    }

    let transfer_images: Vec<Tensor3> = gen
        .dataset(b.transfer_images, 2_000_000)
        .into_iter()
        .map(|(x, _)| x)
        .collect();

    PreparedModels {
        gen,
        victim: (victim_net, victim_params),
        victim_acc,
        victim_footprint,
        oracle: (hd_dnn::zoo::vgg_s_scaled(10, b.width), oracle_params),
        baseline_acc,
        candidates,
        transfer_baselines,
        transfer_images,
        solution_count,
    }
}

/// Figure 4: accuracy of sampled candidates vs the prior-generation
/// baseline, under the iso-footprint constraint.
pub fn fig4_accuracy(prepared: &PreparedModels) -> Table {
    let mut t = Table::new(
        "Figure 4 — candidate accuracy at iso footprint",
        &["instance", "accuracy"],
    );
    t.push_row(vec![
        "B (AlexNet baseline)".to_string(),
        format!("{:.1}%", prepared.baseline_acc * 100.0),
    ]);
    for (label, _, _, acc) in &prepared.candidates {
        t.push_row(vec![label.clone(), format!("{:.1}%", acc * 100.0)]);
    }
    t.push_note(format!(
        "victim accuracy {:.1}% at footprint {} non-zero weights; {} candidates in space",
        prepared.victim_acc * 100.0,
        prepared.victim_footprint,
        prepared.solution_count,
    ));
    t
}

/// Figures 5 and 6: black-box targeted transfer success against the victim
/// for the random-surrogate baselines, the HuffDuff candidates, and the
/// oracle-architecture surrogate.
pub fn fig5_fig6_transfer(prepared: &PreparedModels, epsilon: Epsilon) -> Table {
    let mut t = Table::new(
        format!(
            "Figures 5/6 — black-box transfer success, eps = {}",
            epsilon.over_255
        ),
        &["surrogate", "targeted", "untargeted"],
    );
    let cfg = BimConfig::for_epsilon(epsilon);
    let victim = (&prepared.victim.0, &prepared.victim.1);
    let eval = |label: String, net: &Network, params: &Params, t: &mut Table| {
        let tg = targeted_transfer_rate((net, params), victim, &prepared.transfer_images, &cfg);
        let ut = untargeted_transfer_rate((net, params), victim, &prepared.transfer_images, &cfg);
        t.push_row(vec![
            label,
            format!("{:.1}%", tg.rate() * 100.0),
            format!("{:.1}%", ut.rate() * 100.0),
        ]);
    };
    for (label, net, params) in &prepared.transfer_baselines {
        eval(label.clone(), net, params, &mut t);
    }
    for (label, net, params, _) in &prepared.candidates {
        eval(format!("candidate {label}"), net, params, &mut t);
    }
    let otg = targeted_transfer_rate(
        (&prepared.oracle.0, &prepared.oracle.1),
        victim,
        &prepared.transfer_images,
        &cfg,
    );
    let out = untargeted_transfer_rate(
        (&prepared.oracle.0, &prepared.oracle.1),
        victim,
        &prepared.transfer_images,
        &cfg,
    );
    t.push_note(format!(
        "oracle (same architecture, different seed): targeted {:.1}%, untargeted {:.1}%",
        otg.rate() * 100.0,
        out.rate() * 100.0
    ));
    t.push_note("targets use the victim's least-likely label (hardest heuristic)");
    t.push_note("at mini scale the targeted metric floors near zero for every surrogate; the untargeted column resolves the architecture-similarity ordering");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "trains ~11 mini models, minutes in release; run with --ignored"]
    fn figures_pipeline_end_to_end() {
        let prepared = prepare_models(Scale::Fast, 42);
        assert!(
            prepared.victim_acc > 0.2,
            "victim acc {}",
            prepared.victim_acc
        );
        assert!(!prepared.candidates.is_empty());

        let f4 = fig4_accuracy(&prepared);
        assert!(f4.rows.len() >= 2);

        let f5 = fig5_fig6_transfer(&prepared, Epsilon::fig5());
        assert_eq!(f5.rows.len(), 4 + prepared.candidates.len());
    }
}
