//! One module per paper artifact. Each function returns a [`crate::Table`]
//! suitable for printing and for recording in `EXPERIMENTS.md`.

mod ablations;
mod channel_matrix;
mod figs456;
mod glb;
mod observability;
mod prober_exp;
mod prune_matrix;
mod quantized;
mod solutions;
mod table1;

pub use ablations::{codec_ablation, defence_ablation, generality_sweep, probe_budget_ablation};
pub use channel_matrix::{
    channel_matrix, channel_matrix_cells, matrix_defences, render_channel_matrix, ChannelCell,
    CHANNEL_MATRIX_WIDTH,
};
pub use figs456::{fig4_accuracy, fig5_fig6_transfer, prepare_models, PreparedModels};
pub use glb::glb_bound_table;
pub use observability::observability_table;
pub use prober_exp::prober_table;
pub use prune_matrix::{
    cross_backend_agreement, prune_matrix, prune_matrix_cells, render_matrix, MatrixCell,
    MATRIX_WIDTH,
};
pub use quantized::{
    f32_int8_recovery_agreement, quantized_cells, quantized_table, render_quantized, QuantCell,
    QUANT_WIDTH,
};
pub use solutions::final_solution_table;
pub use table1::table1;
