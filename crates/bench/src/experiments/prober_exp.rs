//! E3 — §8.2 "Prober": geometry recovery on the full-size victims, probes
//! to convergence, and point-estimate vs candidate-set coverage.

use crate::table::Table;
use crate::victims::{paper_victim, Model};
use crate::Scale;
use huffduff_core::eval::{expected_kinds, score_geometry};
use huffduff_core::prober::{probe, ProberConfig};

/// Regenerates the prober effectiveness table: per victim, the number of
/// probes/runs used, the fraction of layers whose geometry point estimate
/// is exact, and the fraction covered by the consistent candidate set.
pub fn prober_table(scale: Scale) -> Table {
    let mut t = Table::new(
        "§8.2 — prober: geometry recovery on full-size victims",
        &[
            "model",
            "layers",
            "probes",
            "device runs",
            "exact",
            "covered",
            "wall time",
        ],
    );
    let models: &[Model] = match scale {
        Scale::Smoke | Scale::Fast => &[Model::VggS],
        Scale::Full => &Model::BOTH,
    };
    for &model in models {
        let (device, net) = paper_victim(model, 3);
        let cfg = match scale {
            Scale::Smoke | Scale::Fast => ProberConfig {
                shifts: 16,
                max_probes: 6,
                stable_probes: 2,
                ..Default::default()
            },
            Scale::Full => ProberConfig::default(),
        };
        let t0 = std::time::Instant::now();
        let res = probe(&device, &cfg).expect("probe succeeds");
        let elapsed = t0.elapsed();
        let score = score_geometry(&net, &res);

        // Coverage: the true kind is either the point estimate or listed
        // among the alternatives the observations could not separate.
        let expected = expected_kinds(&net);
        let covered = expected
            .iter()
            .zip(&res.layers)
            .filter(|(e, l)| l.kind == **e || l.alternatives.contains(e))
            .count();

        t.push_row(vec![
            model.name().to_string(),
            score.total.to_string(),
            res.probes_used.to_string(),
            res.runs_used.to_string(),
            format!("{}/{}", score.correct, score.total),
            format!("{}/{}", covered, expected.len()),
            format!("{:.1}s", elapsed.as_secs_f64()),
        ]);
    }
    t.push_note("paper: all geometry recovered within 2048 probes, <10 min on a 2080Ti");
    t.push_note("residual point-estimate misses are iso-footprint families (see EXPERIMENTS.md)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full-size probe, ~25 s in release; run with --ignored"]
    fn vgg_prober_is_exact() {
        let t = prober_table(Scale::Fast);
        let exact = &t.rows[0][4];
        let (num, den) = exact.split_once('/').unwrap();
        let (num, den): (usize, usize) = (num.parse().unwrap(), den.parse().unwrap());
        assert!(num * 10 >= den * 9, "exact {exact}");
    }
}
