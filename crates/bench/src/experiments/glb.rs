//! E4 — §8.2 encoder table: GLB-boundedness check and the minimum GLB
//! bandwidth multiplier before any layer turns DRAM-bound, across the six
//! LPDDR configurations.

use crate::table::Table;
use crate::victims::{paper_victim_with, Model};
use crate::Scale;
use hd_accel::{AccelConfig, DramConfig, EncodeBound};
use hd_tensor::Tensor3;

/// Regenerates the bandwidth-multiplier table (§8.2). Every stock
/// configuration must be GLB-bound; the cell reports how much extra GLB
/// bandwidth flips the first layer to DRAM-bound.
pub fn glb_bound_table(scale: Scale) -> Table {
    let mut header: Vec<String> = vec!["model".to_string()];
    let sweep = DramConfig::paper_sweep();
    for cfg in &sweep {
        header.push(cfg.to_string());
    }
    let mut t = Table::new(
        "§8.2 — GLB bandwidth multiplier to first DRAM-bound layer",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    let models: &[Model] = match scale {
        Scale::Smoke | Scale::Fast => &[Model::ResNet18],
        Scale::Full => &Model::BOTH,
    };
    // A natural-image-like input exercises realistic activation sparsity.
    let mut image = Tensor3::zeros(3, 32, 32);
    for (i, v) in image.data_mut().iter_mut().enumerate() {
        *v = ((i % 17) as f32 / 17.0 - 0.2).max(0.0);
    }

    for &model in models {
        let mut row = vec![model.name().to_string()];
        for dram in &sweep {
            let (device, _) =
                paper_victim_with(model, 5, AccelConfig::eyeriss_v2().with_dram(*dram));
            let timings = device.encode_timings(&image);
            let mut min_mult = f64::INFINITY;
            let mut all_glb = true;
            for (_, timing) in &timings {
                if timing.bound == EncodeBound::DramBound {
                    all_glb = false;
                }
                min_mult = min_mult.min(timing.flip_multiplier());
            }
            row.push(if all_glb {
                format!("{min_mult:.1}x")
            } else {
                format!("DRAM-bound ({min_mult:.1}x)")
            });
        }
        t.push_row(row);
    }
    t.push_note("paper row for VGG-S: 2x / 4x / 2.3x / 4.6x / 2.7x / 5.3x");
    t.push_note("paper row for ResNet18: 1.8x / 3.5x / 2x / 4.1x / 2.3x / 4.7x");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_configs_are_glb_bound_with_sane_multipliers() {
        let t = glb_bound_table(Scale::Fast);
        for cell in &t.rows[0][1..] {
            assert!(!cell.contains("DRAM-bound"), "cell {cell}");
            let mult: f64 = cell.trim_end_matches('x').parse().unwrap();
            assert!((1.0..30.0).contains(&mult), "multiplier {mult}");
        }
        // Dual-channel columns are ~2x the single-channel ones.
        let single: f64 = t.rows[0][1].trim_end_matches('x').parse().unwrap();
        let dual: f64 = t.rows[0][2].trim_end_matches('x').parse().unwrap();
        let ratio = dual / single;
        assert!((1.6..2.4).contains(&ratio), "dual/single ratio {ratio}");
    }
}
