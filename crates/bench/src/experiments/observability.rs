//! E2 — §5.2 in-text statistic: boundary-effect observability of a single
//! random probe (paper reports 77%) and its amplification over probes.

use crate::table::Table;
use crate::Scale;
use huffduff_core::boundary_obs::{amplified_rate, observability_rate, ObservabilityConfig};

/// Regenerates the observability Monte-Carlo across kernel sizes and
/// pruned-weight densities, plus the multi-probe amplification row.
pub fn observability_table(scale: Scale) -> Table {
    let trials = match scale {
        Scale::Smoke | Scale::Fast => 2_000,
        Scale::Full => 20_000,
    };
    let mut t = Table::new(
        "§5.2 — boundary-effect observability of one random probe",
        &[
            "kernel",
            "weight density",
            "observable",
            "P(>=1 of 8 probes)",
        ],
    );
    for kernel in [3usize, 5, 7] {
        for density in [0.10, 0.35, 0.90] {
            let cfg = ObservabilityConfig {
                kernel,
                weight_density: density,
                bias_std: 0.5,
                trials,
            };
            let rate = observability_rate(&cfg, 0xB0B + kernel as u64);
            t.push_row(vec![
                format!("{kernel}x{kernel}"),
                format!("{density:.2}"),
                format!("{:.1}%", rate * 100.0),
                format!("{:.2}%", amplified_rate(rate, 8) * 100.0),
            ]);
        }
    }
    t.push_note("paper: 77% observable for kernels sampled from pruned models");
    t.push_note("one-sided errors: repeated probes amplify exponentially (§5.4)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_rates_in_band() {
        let t = observability_table(Scale::Fast);
        assert_eq!(t.rows.len(), 9);
        // The paper's configuration (3x3, ~35% density) lands near 77%.
        let cell = &t.rows[1][2];
        let pct: f64 = cell.trim_end_matches('%').parse().unwrap();
        assert!((55.0..95.0).contains(&pct), "3x3@0.35 rate {pct}");
    }
}
