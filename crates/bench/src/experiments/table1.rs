//! E1 — Table 1 (+ §4.2): solution-space size and retraining cost, dense
//! ReverseCNN vs the naive sparse bound.

use crate::table::Table;
use crate::victims::{paper_victim_with, Model};
use crate::Scale;
use hd_accel::AccelConfig;
use hd_dnn::graph::{Op, Params};
use hd_tensor::{CompressionScheme, Tensor3};
use huffduff_core::reversecnn::{
    gpu_hours, naive_sparse_count, reverse_cnn_dense, DenseCodec, SearchSpace,
};

/// Regenerates Table 1: dense solution counts via ReverseCNN and naive
/// sparse bounds (alpha = 0.999), with the 2-GPU-hour-per-candidate cost
/// model.
pub fn table1(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 1 — solution space: dense ReverseCNN vs naive sparse bound",
        &[
            "model",
            "dense solutions",
            "dense GPU-h",
            "sparse solutions",
            "sparse GPU-h",
        ],
    );
    let models: &[Model] = match scale {
        Scale::Smoke | Scale::Fast => &[Model::ResNet18],
        Scale::Full => &Model::BOTH,
    };
    for &model in models {
        // --- Dense device: exact footprints, ReverseCNN applies. ---
        let dense_cfg = AccelConfig::eyeriss_v2()
            .with_schemes(CompressionScheme::Dense, CompressionScheme::Dense);
        let net = model.network(10);
        let params = Params::init(&net, 11);
        let device = hd_accel::Device::new(net.clone(), params, dense_cfg);
        let trace = device.run(&Tensor3::full(3, 32, 32, 0.5));
        let analysis = hd_trace::analyze(&trace).expect("dense trace analyzes");
        let dense = reverse_cnn_dense(
            &analysis,
            (32, 32, 3),
            &SearchSpace::default(),
            &DenseCodec::default(),
        );

        // --- Sparse victim: naive counting from observed weight bytes. ---
        let (sparse_device, sparse_net) = paper_victim_with(model, 11, AccelConfig::eyeriss_v2());
        let sparse_trace = sparse_device.run(&Tensor3::full(3, 32, 32, 0.5));
        let sparse_analysis = hd_trace::analyze(&sparse_trace).expect("sparse trace analyzes");
        // Conv layers only; nominal input-channel sequence from the zoo
        // geometry (a *lower bound*: the true space also has c unknown).
        let conv_channels: Vec<usize> = sparse_net
            .nodes()
            .iter()
            .filter_map(|n| match &n.op {
                Op::Conv(_) => sparse_net.value_shape(n.inputs[0]).as_map().map(|s| s.c),
                _ => None,
            })
            .collect();
        let weighted: Vec<u64> = sparse_analysis
            .layers
            .iter()
            .filter(|l| l.weight_bytes > 0)
            .map(|l| l.weight_bytes)
            .take(conv_channels.len())
            .collect();
        let sparse = naive_sparse_count(
            &weighted,
            &conv_channels[..weighted.len()],
            &SearchSpace::default(),
            0.999,
            8,
        );

        t.push_row(vec![
            model.name().to_string(),
            dense.total.to_string(),
            format!("{:.0}", gpu_hours(&dense.total)),
            sparse.to_scientific(1),
            format!("{:.1e}", gpu_hours(&sparse) / (24.0 * 365.0)) + " GPU-years",
        ]);
    }
    t.push_note("sparse bound assumes alpha = 0.999 max sparsity (paper §4.2)");
    t.push_note("cost model: 2 GPU-hours per candidate (paper: 16 GPU-h for 8)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_table1_shape() {
        let t = table1(Scale::Fast);
        assert_eq!(t.rows.len(), 1);
        // Dense count is small; sparse count is astronomical.
        let dense: f64 = t.rows[0][1].parse().unwrap_or(f64::NAN);
        assert!(
            dense.is_finite() && (1.0..=1e6).contains(&dense),
            "{}",
            t.rows[0][1]
        );
        assert!(t.rows[0][3].contains('e'), "sparse col: {}", t.rows[0][3]);
    }
}
